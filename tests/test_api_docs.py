"""Tests for the API-doc generator (tools/gen_api_docs.py)."""

import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent


def test_generator_runs_and_covers_all_packages():
    result = subprocess.run(
        [sys.executable, str(ROOT / "tools" / "gen_api_docs.py")],
        capture_output=True,
        text=True,
        check=True,
    )
    assert "wrote" in result.stdout
    text = (ROOT / "docs" / "API.md").read_text()
    for package in (
        "repro.core",
        "repro.crypto",
        "repro.net",
        "repro.baselines",
        "repro.analysis",
        "repro.obs",
        "repro.faults",
    ):
        assert f"## Package `{package}`" in text
    # Spot-check that headline API members are present and documented.
    assert "class `Broker`" in text
    assert "class `WitnessService`" in text
    assert "run_payment" in text
    assert "(undocumented)" not in text  # every public item has a docstring
