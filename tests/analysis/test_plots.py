"""Tests for the terminal plots."""

import pytest

from repro.analysis.plots import histogram, sparkline


class TestHistogram:
    def test_buckets_and_counts(self):
        text = histogram([1.0, 1.1, 5.0, 9.9], bins=3, width=10)
        lines = text.splitlines()
        assert len(lines) == 3
        # All four samples accounted for.
        assert sum(int(line.rsplit(" ", 1)[1]) for line in lines) == 4

    def test_degenerate_sample(self):
        text = histogram([3.0, 3.0, 3.0], width=5)
        assert "#####" in text
        assert "(3)" in text

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            histogram([])
        with pytest.raises(ValueError):
            histogram([1.0], bins=0)

    def test_peak_bucket_full_width(self):
        text = histogram([1.0] * 10 + [2.0], bins=2, width=20)
        first = text.splitlines()[0]
        assert "#" * 20 in first


class TestSparkline:
    def test_monotone_ramp(self):
        line = sparkline([0, 1, 2, 3, 4, 5, 6, 7, 8])
        assert line[0] == " "
        assert line[-1] == "█"
        assert len(line) == 9

    def test_flat(self):
        assert sparkline([2.0, 2.0]) == "▄▄"

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            sparkline([])
