"""Edge cases for the statistics helpers: empty, singleton, unsorted input."""

from __future__ import annotations

import pytest

from repro.analysis.stats import Summary, mean, percentile, stdev


def test_mean_empty_raises():
    with pytest.raises(ValueError):
        mean([])


def test_mean_single_element():
    assert mean([7.0]) == 7.0


def test_stdev_empty_and_single_are_zero():
    assert stdev([]) == 0.0
    assert stdev([5.0]) == 0.0


def test_stdev_two_elements():
    # Sample stdev of (1, 3): sqrt(((1-2)^2 + (3-2)^2) / 1) = sqrt(2).
    assert stdev([1.0, 3.0]) == pytest.approx(2 ** 0.5)


def test_stdev_order_independent():
    assert stdev([3.0, 1.0, 2.0]) == pytest.approx(stdev([1.0, 2.0, 3.0]))


def test_percentile_empty_raises():
    with pytest.raises(ValueError):
        percentile([], 50)


def test_percentile_out_of_range_raises():
    with pytest.raises(ValueError):
        percentile([1.0], -0.1)
    with pytest.raises(ValueError):
        percentile([1.0], 100.1)


def test_percentile_single_element_any_p():
    for p in (0, 50, 100):
        assert percentile([42.0], p) == 42.0


def test_percentile_sorts_internally():
    unsorted = [5.0, 1.0, 4.0, 2.0, 3.0]
    assert percentile(unsorted, 0) == 1.0
    assert percentile(unsorted, 100) == 5.0
    assert percentile(unsorted, 50) == 3.0
    # Input must not be mutated.
    assert unsorted == [5.0, 1.0, 4.0, 2.0, 3.0]


def test_percentile_interpolates_between_ranks():
    assert percentile([10.0, 20.0], 25) == pytest.approx(12.5)
    assert percentile([1.0, 2.0, 3.0, 4.0], 50) == pytest.approx(2.5)


def test_percentile_boundary_p_values():
    values = [9.0, 7.0, 8.0]
    assert percentile(values, 0) == 7.0
    assert percentile(values, 100) == 9.0


def test_summary_empty_raises():
    with pytest.raises(ValueError):
        Summary.of([])


def test_summary_single_element():
    summary = Summary.of([3.0])
    assert summary.n == 1
    assert summary.mean == 3.0
    assert summary.stdev == 0.0
    assert summary.minimum == summary.maximum == 3.0


def test_summary_unsorted_input():
    summary = Summary.of([4.0, 1.0, 3.0])
    assert summary.minimum == 1.0
    assert summary.maximum == 4.0
    assert summary.mean == pytest.approx(8.0 / 3)


def test_summary_format_ms():
    text = Summary.of([100.0, 100.0]).format_ms()
    assert text == "avg 100ms, st.dev 0ms (n=2)"
