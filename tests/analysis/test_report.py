"""Tests for the consolidated reproduction report."""

from repro.analysis.report import generate_report
from repro.cli import main


def test_generate_report_fast(tmp_path):
    path = tmp_path / "report.md"
    text = generate_report(path, trials=3, fast=True, seed=7)
    assert path.read_text() == text
    assert "# Reproduction report" in text
    assert "9/9 cells match the paper exactly." in text
    assert "Table 2" in text
    assert "Rounds per protocol" in text
    assert "aggregate compute per payment" in text


def test_report_cli(tmp_path, capsys):
    output = tmp_path / "r.md"
    code = main(["report", "--fast", "--trials", "2", "--output", str(output)])
    out = capsys.readouterr().out
    assert code == 0
    assert output.exists()
    assert "written to" in out
