"""Tests for the experiment harnesses (Table 1/2, rounds, stats, tables)."""

import pytest

from repro.analysis.opcount import (
    PAPER_TABLE1,
    measure_double_spend_deltas,
    measure_table1,
    render_table1,
)
from repro.analysis.payment_bench import (
    PAPER_ROUNDS,
    ad_comparison,
    compute_vs_network,
    measure_message_rounds,
    run_payment_trials,
)
from repro.analysis.stats import Summary, mean, percentile, stdev
from repro.analysis.tables import render_table
from repro.core.params import test_params as make_test_params


class TestStats:
    def test_mean_stdev(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert stdev([2.0, 4.0]) == pytest.approx(2.0**0.5)
        assert stdev([5.0]) == 0.0
        with pytest.raises(ValueError):
            mean([])

    def test_percentile(self):
        values = [1.0, 2.0, 3.0, 4.0]
        assert percentile(values, 0) == 1.0
        assert percentile(values, 100) == 4.0
        assert percentile(values, 50) == 2.5
        with pytest.raises(ValueError):
            percentile([], 50)
        with pytest.raises(ValueError):
            percentile(values, 101)

    def test_summary(self):
        summary = Summary.of([10.0, 20.0, 30.0])
        assert summary.n == 3
        assert summary.mean == 20.0
        assert summary.minimum == 10.0
        assert "avg 20ms" in summary.format_ms()


class TestTables:
    def test_render(self):
        text = render_table("Title", ["A", "B"], [["1", "22"], ["333", "4"]])
        assert "Title" in text
        assert "| 333 | 4" in text

    def test_row_mismatch(self):
        with pytest.raises(ValueError):
            render_table("T", ["A"], [["1", "2"]])


class TestTable1:
    def test_every_row_matches_paper(self):
        rows = measure_table1()
        assert len(rows) == len(PAPER_TABLE1)
        for row in rows:
            assert row.matches, f"{row.protocol}/{row.party}: {row.measured} != {row.paper}"

    def test_render(self):
        text = render_table1(measure_table1())
        assert "Withdrawal" in text and "12" in text

    def test_double_spend_deltas(self):
        deltas = measure_double_spend_deltas()
        happy_merchant = PAPER_TABLE1[("Payment", "Merchant")]
        # Section 7: merchant does 2 additional exponentiations and one
        # fewer signature verification.
        assert deltas["Merchant"]["Exp"] == happy_merchant[0] + 2
        assert deltas["Merchant"]["Ver"] == happy_merchant[3] - 1
        # ... while the witness does at most two exponentiations.
        assert deltas["Witness"]["Exp"] <= 2
        assert deltas["Witness"]["Sig"] <= 1  # only the commitment


class TestPaymentBench:
    def test_message_rounds_match_paper(self):
        assert measure_message_rounds() == PAPER_ROUNDS

    def test_small_trial_run(self):
        result = run_payment_trials(trials=3, params=make_test_params(), seed=5)
        assert result.latency_ms.n == 3
        assert 500 < result.latency_ms.mean < 4000  # seconds-scale, like the paper
        assert 800 < result.client_bytes.mean < 2500
        assert "Table 2" in result.render()

    def test_compute_vs_network(self):
        breakdown = compute_vs_network()
        assert breakdown.compute_ms <= 30.0  # the paper's OpenSSL claim
        assert breakdown.network_ms > breakdown.compute_ms  # compute << network

    def test_ad_comparison(self):
        comparison = ad_comparison(trials=2, seed=6)
        assert comparison.payment_is_cheaper
        assert comparison.ad_page_bytes > 10 * comparison.payment_client_bytes
