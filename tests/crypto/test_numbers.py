"""Unit and property tests for the number-theory helpers."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.crypto.numbers import (
    generate_group_parameters,
    inverse_mod,
    is_probable_prime,
    random_bits,
    random_scalar,
)

KNOWN_PRIMES = [2, 3, 5, 7, 97, 101, 7919, 2**31 - 1, 2**61 - 1]
KNOWN_COMPOSITES = [1, 4, 9, 100, 561, 1105, 1729, 2465, 6601, 8911, 2**32 - 1]
# 561, 1105, ... are Carmichael numbers: Fermat pseudoprimes to every base,
# the classic trap for weak primality tests.


@pytest.mark.parametrize("n", KNOWN_PRIMES)
def test_known_primes_accepted(n):
    assert is_probable_prime(n)


@pytest.mark.parametrize("n", KNOWN_COMPOSITES)
def test_known_composites_rejected(n):
    assert not is_probable_prime(n)


def test_negative_and_zero_not_prime():
    assert not is_probable_prime(0)
    assert not is_probable_prime(-7)


@given(st.integers(min_value=2, max_value=10_000))
def test_agrees_with_trial_division(n):
    by_trial = all(n % d for d in range(2, int(n**0.5) + 1)) and n >= 2
    assert is_probable_prime(n) == by_trial


@given(st.integers(min_value=1, max_value=10**9))
def test_inverse_mod_is_inverse(a):
    p = 2**61 - 1  # prime modulus: everything nonzero is invertible
    value = a % p or 1
    assert (value * inverse_mod(value, p)) % p == 1


def test_inverse_of_noninvertible_raises():
    with pytest.raises(ZeroDivisionError):
        inverse_mod(6, 9)


def test_random_scalar_range():
    q = 101
    rng = random.Random(0)
    values = {random_scalar(q, rng) for _ in range(2000)}
    assert min(values) >= 1
    assert max(values) <= q - 1
    # With 2000 draws from 100 values, essentially all should appear.
    assert len(values) == q - 1


def test_random_scalar_secure_path():
    value = random_scalar(2**160)
    assert 1 <= value < 2**160


def test_random_bits_range():
    rng = random.Random(1)
    assert all(0 <= random_bits(8, rng) < 256 for _ in range(100))
    assert 0 <= random_bits(16) < 2**16


@settings(deadline=None)
@given(st.integers(min_value=0, max_value=2**31))
def test_random_bits_deterministic_with_seed(seed):
    assert random_bits(64, random.Random(seed)) == random_bits(64, random.Random(seed))


def test_generate_group_parameters_small():
    p, q, g, g1, g2 = generate_group_parameters(128, 64, seed=7)
    assert p.bit_length() == 128
    assert q.bit_length() == 64
    assert (p - 1) % q == 0
    assert is_probable_prime(p)
    assert is_probable_prime(q)
    for gen in (g, g1, g2):
        assert gen != 1
        assert pow(gen, q, p) == 1
    assert len({g, g1, g2}) == 3


def test_generate_group_parameters_reproducible():
    assert generate_group_parameters(96, 48, seed=3) == generate_group_parameters(96, 48, seed=3)


def test_generate_group_parameters_rejects_bad_sizes():
    with pytest.raises(ValueError):
        generate_group_parameters(64, 64)
