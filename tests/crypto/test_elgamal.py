"""Tests for ElGamal encryption (the escrow substrate)."""

import random

import pytest

from repro.core.params import test_params as make_test_params
from repro.crypto.elgamal import ElGamalKeyPair, encrypt, verify_opening


@pytest.fixture(scope="module")
def group():
    return make_test_params().group


@pytest.fixture(scope="module")
def keypair(group):
    return ElGamalKeyPair.generate(group, random.Random(12))


def test_encrypt_decrypt_roundtrip(group, keypair, rng):
    message = group.random_element(rng)
    ciphertext, _ = encrypt(group, keypair.public, message, rng)
    assert keypair.decrypt(ciphertext) == message


def test_ciphertexts_randomized(group, keypair, rng):
    message = group.random_element(rng)
    first, _ = encrypt(group, keypair.public, message, rng)
    second, _ = encrypt(group, keypair.public, message, rng)
    assert first != second
    assert keypair.decrypt(first) == keypair.decrypt(second) == message


def test_non_group_plaintext_rejected(group, keypair):
    with pytest.raises(ValueError):
        encrypt(group, keypair.public, 0)
    # An element outside the order-q subgroup is also rejected.
    for candidate in range(2, 50):
        if pow(candidate, group.q, group.p) != 1:
            with pytest.raises(ValueError):
                encrypt(group, keypair.public, candidate)
            break


def test_opening_verification(group, keypair, rng):
    message = group.random_element(rng)
    ciphertext, randomness = encrypt(group, keypair.public, message, rng)
    assert verify_opening(group, keypair.public, ciphertext, message, randomness)
    other = group.random_element(rng)
    assert not verify_opening(group, keypair.public, ciphertext, other, randomness)
    assert not verify_opening(group, keypair.public, ciphertext, message, randomness + 1)


def test_rerandomize_unlinkable_same_plaintext(group, keypair, rng):
    message = group.random_element(rng)
    ciphertext, _ = encrypt(group, keypair.public, message, rng)
    fresh, _ = ciphertext.rerandomize(group, keypair.public, rng)
    assert fresh != ciphertext
    assert keypair.decrypt(fresh) == message


def test_wrong_key_decrypts_garbage(group, rng):
    alice = ElGamalKeyPair.generate(group, random.Random(1))
    eve = ElGamalKeyPair.generate(group, random.Random(2))
    message = group.random_element(rng)
    ciphertext, _ = encrypt(group, alice.public, message, rng)
    assert eve.decrypt(ciphertext) != message


def test_wire_roundtrip(group, keypair, rng):
    from repro.crypto.elgamal import ElGamalCiphertext
    from repro.crypto.serialize import decode, encode

    message = group.random_element(rng)
    ciphertext, _ = encrypt(group, keypair.public, message, rng)
    restored = ElGamalCiphertext.from_wire(decode(encode(ciphertext.to_wire())))
    assert restored == ciphertext
