"""Tests for batched Schnorr verification (`schnorr.verify_batch`)."""

import random

import pytest

from repro import perf
from repro.core.params import test_params as make_test_params
from repro.crypto.counters import OpCounter
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature, verify, verify_batch


@pytest.fixture(autouse=True)
def cold_perf_engine():
    perf.reset()
    yield
    perf.reset()


@pytest.fixture(scope="module")
def group():
    return make_test_params().group


@pytest.fixture(scope="module")
def keypairs(group):
    rng = random.Random(11)
    return [SchnorrKeyPair.generate(group, rng) for _ in range(4)]


def _make_items(keypairs, count, tag="msg"):
    items = []
    for index in range(count):
        pair = keypairs[index % len(keypairs)]
        signature = pair.sign(tag, index)
        items.append((pair.public, signature, (tag, index)))
    return items


def test_all_valid_batch_accepted(group, keypairs):
    items = _make_items(keypairs, 16)
    with perf.forced(True):
        assert verify_batch(group, items, rng=random.Random(1)) == [True] * 16


def test_bad_signature_in_batch_of_64_pinpointed(group, keypairs):
    items = _make_items(keypairs, 64)
    bad_index = 41
    public, signature, parts = items[bad_index]
    items[bad_index] = (
        public,
        SchnorrSignature(e=signature.e, s=(signature.s + 1) % group.q),
        parts,
    )
    with perf.forced(True):
        results = verify_batch(group, items, rng=random.Random(2))
    assert results == [index != bad_index for index in range(64)]


def test_multiple_bad_signatures_pinpointed(group, keypairs):
    items = _make_items(keypairs, 32)
    bad = {3, 17, 30}
    for index in bad:
        public, signature, parts = items[index]
        items[index] = (public, SchnorrSignature(e=signature.e ^ 1, s=signature.s), parts)
    with perf.forced(True):
        results = verify_batch(group, items, rng=random.Random(3))
    assert results == [index not in bad for index in range(32)]


def test_outcome_identical_with_perf_off(group, keypairs):
    items = _make_items(keypairs, 24)
    for index in (0, 7, 23):
        public, signature, parts = items[index]
        items[index] = (public, SchnorrSignature(e=signature.e + 1, s=signature.s), parts)
    with perf.forced(True):
        fast = verify_batch(group, items, rng=random.Random(4))
    with perf.forced(False):
        naive = verify_batch(group, items, rng=random.Random(4))
    loop = [verify(group, pk, sig, *parts) for pk, sig, parts in items]
    assert fast == naive == loop


def test_empty_batch(group):
    with perf.forced(True):
        assert verify_batch(group, [], rng=random.Random(5)) == []
    with perf.forced(False):
        assert verify_batch(group, []) == []


def test_singleton_batch(group, keypairs):
    good = _make_items(keypairs, 1)
    public, signature, parts = good[0]
    bad = [(public, SchnorrSignature(e=signature.e, s=signature.s ^ 1), parts)]
    for enabled in (True, False):
        with perf.forced(enabled):
            assert verify_batch(group, good, rng=random.Random(6)) == [True]
            assert verify_batch(group, bad, rng=random.Random(6)) == [False]


def test_batch_records_one_ver_per_item(group, keypairs):
    items = _make_items(keypairs, 8)
    with perf.forced(True), OpCounter() as fast_ops:
        verify_batch(group, items, rng=random.Random(7))
    with perf.forced(False), OpCounter() as naive_ops:
        for public, signature, parts in items:
            verify(group, public, signature, *parts)
    assert fast_ops.snapshot() == naive_ops.snapshot()


def test_seeded_batches_are_deterministic(group, keypairs):
    items = _make_items(keypairs, 12)
    with perf.forced(True):
        first = verify_batch(group, items, rng=random.Random(42))
        second = verify_batch(group, items, rng=random.Random(42))
    assert first == second == [True] * 12
