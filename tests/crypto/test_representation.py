"""Tests for representation commitments, the payment NIZK and extraction."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import test_params as make_test_params
from repro.crypto.counters import OpCounter
from repro.crypto.representation import (
    Representation,
    RepresentationPair,
    RepresentationResponse,
    extract_representations,
    respond,
    verify_response,
)


@pytest.fixture(scope="module")
def params():
    return make_test_params()


@pytest.fixture()
def secrets(params, rng):
    return RepresentationPair.generate(params.group, rng)


def test_commitments_and_valid_response(params, secrets):
    a, b = secrets.commitments(params.group)
    d = 123456789 % params.group.q
    response = respond(secrets, d, params.group.q)
    assert verify_response(params.group, a, b, d, response)


def test_wrong_response_rejected(params, secrets):
    a, b = secrets.commitments(params.group)
    d = 42
    response = respond(secrets, d, params.group.q)
    bad = RepresentationResponse(r1=(response.r1 + 1) % params.group.q, r2=response.r2)
    assert not verify_response(params.group, a, b, d, bad)
    assert not verify_response(params.group, a, b, d + 1, response)


def test_response_is_zero_exponentiations(params, secrets):
    counter = OpCounter()
    with counter:
        respond(secrets, 99, params.group.q)
    assert counter.exp == 0


def test_verify_is_three_exponentiations(params, secrets):
    a, b = secrets.commitments(params.group)
    response = respond(secrets, 7, params.group.q)
    counter = OpCounter()
    with counter:
        verify_response(params.group, a, b, 7, response)
    assert counter.exp == 3


def test_extraction_recovers_secrets(params, secrets):
    q = params.group.q
    d1, d2 = 1111, 2222
    extracted = extract_representations(
        d1, respond(secrets, d1, q), d2, respond(secrets, d2, q), q
    )
    assert extracted == secrets


def test_extraction_requires_distinct_challenges(params, secrets):
    q = params.group.q
    response = respond(secrets, 5, q)
    with pytest.raises(ValueError):
        extract_representations(5, response, 5, response, q)
    with pytest.raises(ValueError):
        extract_representations(5, response, 5 + q, response, q)


@settings(deadline=None, max_examples=30)
@given(
    st.integers(min_value=0, max_value=2**64),
    st.integers(min_value=0, max_value=2**64),
)
def test_extraction_property(params, d1, d2):
    q = params.group.q
    rng = random.Random(d1 * 31 + d2)
    secrets = RepresentationPair.generate(params.group, rng)
    if (d1 - d2) % q == 0:
        with pytest.raises(ValueError):
            extract_representations(
                d1, respond(secrets, d1, q), d2, respond(secrets, d2, q), q
            )
    else:
        extracted = extract_representations(
            d1, respond(secrets, d1, q), d2, respond(secrets, d2, q), q
        )
        assert extracted == secrets


def test_opens(params, secrets):
    a, b = secrets.commitments(params.group)
    assert secrets.x.opens(params.group, a)
    assert secrets.y.opens(params.group, b)
    assert not secrets.x.opens(params.group, b)
    assert not Representation(1, 2).opens(params.group, a)


def test_single_response_hides_secrets(params):
    """One response reveals nothing: for any candidate y-representation
    there exists a consistent x — the response is information-theoretically
    consistent with every possible secret (the NIZK's zero-knowledge)."""
    q = params.group.q
    rng = random.Random(77)
    secrets = RepresentationPair.generate(params.group, rng)
    d = 31337
    response = respond(secrets, d, q)
    for _ in range(10):
        candidate_y = Representation(rng.randrange(q), rng.randrange(q))
        implied_x1 = (response.r1 - d * candidate_y.k1) % q
        implied_x2 = (response.r2 - d * candidate_y.k2) % q
        implied = RepresentationPair(x=Representation(implied_x1, implied_x2), y=candidate_y)
        assert respond(implied, d, q) == response
