"""Tests for the Abe-Okamoto partially blind signature scheme."""

import random

import pytest

from repro.core.params import test_params as make_test_params
from repro.crypto import blind
from repro.crypto.blind import (
    BlindSession,
    PartiallyBlindSignature,
    PartiallyBlindSigner,
    SignerResponse,
)


@pytest.fixture(scope="module")
def params():
    return make_test_params()


@pytest.fixture(scope="module")
def signer(params):
    return PartiallyBlindSigner(params.group, params.hashes, rng=random.Random(11))


INFO = ("denom", 25, "version", 1)
MESSAGE = (123456789, 987654321)


def run_session(params, signer, info=INFO, message=MESSAGE, rng_seed=42):
    challenge, state = signer.start(info)
    session = BlindSession.start(
        params.group,
        params.hashes,
        signer.public,
        info,
        message,
        challenge,
        random.Random(rng_seed),
    )
    response = signer.respond(state, session.e)
    return session.finish(response)


def test_completeness(params, signer):
    signature = run_session(params, signer)
    assert blind.verify(params.group, params.hashes, signer.public, INFO, MESSAGE, signature)


def test_verify_with_secret_agrees(params, signer):
    signature = run_session(params, signer)
    assert signer.verify_with_secret(INFO, MESSAGE, signature)


def test_wrong_info_rejected(params, signer):
    signature = run_session(params, signer)
    assert not blind.verify(
        params.group, params.hashes, signer.public, ("denom", 26, "version", 1), MESSAGE, signature
    )
    assert not signer.verify_with_secret(("other",), MESSAGE, signature)


def test_wrong_message_rejected(params, signer):
    signature = run_session(params, signer)
    assert not blind.verify(
        params.group, params.hashes, signer.public, INFO, (MESSAGE[0] + 1, MESSAGE[1]), signature
    )


@pytest.mark.parametrize("component", ["rho", "omega", "sigma", "delta"])
def test_tampered_signature_rejected(params, signer, component):
    signature = run_session(params, signer)
    fields = {
        "rho": signature.rho,
        "omega": signature.omega,
        "sigma": signature.sigma,
        "delta": signature.delta,
    }
    fields[component] = (fields[component] + 1) % params.group.q
    tampered = PartiallyBlindSignature(**fields)
    assert not blind.verify(params.group, params.hashes, signer.public, INFO, MESSAGE, tampered)
    assert not signer.verify_with_secret(INFO, MESSAGE, tampered)


def test_out_of_range_signature_rejected(params, signer):
    signature = run_session(params, signer)
    oversized = PartiallyBlindSignature(
        rho=signature.rho + params.group.q,
        omega=signature.omega,
        sigma=signature.sigma,
        delta=signature.delta,
    )
    assert not blind.verify(params.group, params.hashes, signer.public, INFO, MESSAGE, oversized)


def test_bad_signer_response_detected(params, signer):
    challenge, state = signer.start(INFO)
    session = BlindSession.start(
        params.group, params.hashes, signer.public, INFO, MESSAGE, challenge, random.Random(1)
    )
    good = signer.respond(state, session.e)
    bad = SignerResponse(r=(good.r + 1) % params.group.q, c=good.c, s=good.s)
    with pytest.raises(ValueError):
        session.finish(bad)


def test_wrong_signer_key_rejected(params):
    honest = PartiallyBlindSigner(params.group, params.hashes, rng=random.Random(21))
    impostor = PartiallyBlindSigner(params.group, params.hashes, rng=random.Random(22))
    challenge, state = impostor.start(INFO)
    # Client blinds against the honest broker's key but an impostor signs.
    session = BlindSession.start(
        params.group, params.hashes, honest.public, INFO, MESSAGE, challenge, random.Random(2)
    )
    response = impostor.respond(state, session.e)
    with pytest.raises(ValueError):
        session.finish(response)


def test_signatures_unlinkable_across_blindings(params, signer):
    """Blindness, structurally: the signer's view is independent of the output.

    Two sessions with identical info and identical *signer randomness
    cannot* be arranged here (the signer draws fresh nonces), so we check
    the operational consequence: two unblinded signatures on the same
    message from the same signer are distinct and both valid, and the
    blinded challenge ``e`` seen by the signer differs from the unblinded
    ``omega + delta``.
    """
    challenge, state = signer.start(INFO)
    session = BlindSession.start(
        params.group, params.hashes, signer.public, INFO, MESSAGE, challenge, random.Random(3)
    )
    response = signer.respond(state, session.e)
    signature = session.finish(response)
    assert (signature.omega + signature.delta) % params.group.q != session.e % params.group.q
    other = run_session(params, signer, rng_seed=4)
    assert other != signature
    for candidate in (signature, other):
        assert blind.verify(
            params.group, params.hashes, signer.public, INFO, MESSAGE, candidate
        )


def test_blindness_unlinkability_game(params):
    """The Section 6 unlinkability game, played for real.

    The broker runs two withdrawals with the same info; for ANY unblinded
    coin and ANY of its signing transcripts there must exist blinding
    factors (t1..t4) linking them — i.e. each transcript is perfectly
    consistent with each coin, so the broker learns nothing. We verify the
    consistency equations for both pairings of two coins with two
    transcripts.
    """
    group, hashes = params.group, params.hashes
    signer = PartiallyBlindSigner(group, hashes, rng=random.Random(33))
    transcripts = []
    signatures = []
    messages = [(11111, 22222), (33333, 44444)]
    for index, message in enumerate(messages):
        challenge, state = signer.start(INFO)
        session = BlindSession.start(
            group, hashes, signer.public, INFO, message, challenge, random.Random(50 + index)
        )
        response = signer.respond(state, session.e)
        signatures.append(session.finish(response))
        transcripts.append((challenge, session.e, response))

    z = hashes.F(*INFO)
    for sig, message in zip(signatures, messages):
        for challenge, e, response in transcripts:
            # Reconstruct the unique blinding factors that would link them.
            t1 = (sig.rho - response.r) % group.q
            t2 = (sig.omega - response.c) % group.q
            t3 = (sig.sigma - response.s) % group.q
            t4 = (sig.delta - (e - response.c)) % group.q
            alpha = group.mul(challenge.a, group.commit2(group.g, t1, signer.public, t2))
            beta = group.mul(challenge.b, group.commit2(group.g, t3, z, t4))
            epsilon = hashes.H(alpha, beta, z, *message)
            # The linking equation epsilon = e + t2 + t4 must hold for the
            # true pairing AND for the crossed pairing: that is blindness.
            assert epsilon == (e + t2 + t4) % group.q
