"""Tests for the Schnorr group wrapper."""

import pytest

from repro.core.params import test_params as make_test_params
from repro.crypto.counters import OpCounter
from repro.crypto.group import SchnorrGroup


@pytest.fixture(scope="module")
def group():
    return make_test_params().group


def test_validate_accepts_embedded_params(group):
    group.validate()  # must not raise


@pytest.mark.parametrize(
    "field",
    ["p", "q", "g"],
)
def test_validate_rejects_corrupted_params(group, field):
    corrupted = {
        "p": group.p,
        "q": group.q,
        "g": group.g,
        "g1": group.g1,
        "g2": group.g2,
    }
    corrupted[field] = corrupted[field] + 1
    with pytest.raises(ValueError):
        SchnorrGroup(**corrupted).validate()


def test_exp_matches_pow_and_counts(group):
    counter = OpCounter()
    with counter:
        result = group.exp(group.g, 12345)
    assert result == pow(group.g, 12345, group.p)
    assert counter.exp == 1


def test_exp_reduces_exponent_mod_q(group):
    assert group.exp(group.g, group.q + 5) == group.exp(group.g, 5)


def test_commit2_is_two_exponentiations(group):
    counter = OpCounter()
    with counter:
        value = group.commit2(group.g1, 3, group.g2, 4)
    assert value == (pow(group.g1, 3, group.p) * pow(group.g2, 4, group.p)) % group.p
    assert counter.exp == 2


def test_mul_and_inv(group):
    element = group.exp(group.g, 7)
    assert group.mul(element, group.inv(element)) == 1
    assert group.mul(element, 1) == element


def test_mul_rejects_empty_product(group):
    with pytest.raises(ValueError):
        group.mul()


def test_validate_memoizes_success(group):
    group.validate()
    assert group._validated
    # A second validation must be a no-op (no Miller-Rabin re-runs); the
    # memo must not leak onto corrupted copies.
    group.validate()
    bad = SchnorrGroup(p=group.p, q=group.q, g=1, g1=group.g1, g2=group.g2)
    with pytest.raises(ValueError):
        bad.validate()
    assert not bad._validated


def test_scalar_inverse(group):
    value = 123456789 % group.q
    assert (value * group.scalar_inv(value)) % group.q == 1
    with pytest.raises(ZeroDivisionError):
        group.scalar_inv(0)


def test_random_element_in_subgroup(group, rng):
    element = group.random_element(rng)
    assert group.is_element(element)


def test_is_element_rejects_outsiders(group):
    assert not group.is_element(0)
    assert not group.is_element(group.p)
    assert not group.is_element(group.p - 1) or pow(group.p - 1, group.q, group.p) == 1
    # A generator of the full group (order p-1 > q) is not in the subgroup:
    # find a quadratic non-residue-ish element cheaply by trial.
    for candidate in range(2, 50):
        if pow(candidate, group.q, group.p) != 1:
            assert not group.is_element(candidate)
            break
    else:  # pragma: no cover
        pytest.skip("no outsider found in range")


def test_is_element_does_not_count(group):
    counter = OpCounter()
    with counter:
        group.is_element(group.g)
    assert counter.exp == 0


def test_byte_sizes(group):
    assert group.element_bytes() == (group.p.bit_length() + 7) // 8
    assert group.scalar_bytes() == 20  # 160-bit q
