"""Tests for the pluggable bigint backend."""

import random

import pytest

from repro.crypto import backend


@pytest.fixture(autouse=True)
def restore_backend():
    """Leave the process on the backend it entered with."""
    active = backend.name()
    yield
    backend.set_backend(active)


def test_python_backend_always_available():
    assert backend.BACKEND_PYTHON in backend.available()
    assert backend.name() in backend.available()


def test_unknown_backend_rejected():
    with pytest.raises(ValueError, match="unknown bigint backend"):
        backend.set_backend("fpga")


def test_set_backend_returns_active_name():
    assert backend.set_backend("python") == backend.BACKEND_PYTHON
    assert backend.name() == backend.BACKEND_PYTHON


def test_auto_prefers_gmpy2_when_available():
    chosen = backend.set_backend("auto")
    assert chosen == backend.available()[0]


def test_strict_gmpy2_request_without_package_raises():
    if backend.BACKEND_GMPY2 in backend.available():
        pytest.skip("gmpy2 is installed in this environment")
    with pytest.raises(RuntimeError, match="gmpy2 backend requested"):
        backend.set_backend("gmpy2", strict=True)


def test_non_strict_gmpy2_request_falls_back():
    chosen = backend.set_backend("gmpy2", strict=False)
    if backend.BACKEND_GMPY2 in backend.available():
        assert chosen == backend.BACKEND_GMPY2
    else:
        assert chosen == backend.BACKEND_PYTHON


def test_env_init_survives_bogus_value(monkeypatch):
    monkeypatch.setenv("REPRO_BACKEND", "definitely-not-a-backend")
    backend._init_from_env()
    assert backend.name() in backend.available()


def test_gmp_version_matches_active_backend():
    version = backend.gmp_version()
    if backend.name() == backend.BACKEND_GMPY2:
        assert isinstance(version, str) and version
    else:
        assert version is None


@pytest.mark.parametrize("requested", ["python", "auto"])
def test_powmod_matches_builtin_pow(requested):
    backend.set_backend(requested, strict=False)
    rng = random.Random(2007)
    modulus = 0xFFFFFFFFFFFFFFC5  # a 64-bit prime
    for _ in range(50):
        base = rng.randrange(1, modulus)
        exponent = rng.randrange(0, modulus)
        assert backend.powmod(base, exponent, modulus) == pow(base, exponent, modulus)
        assert backend.powmod(backend.wrap(base), exponent, modulus) == pow(
            base, exponent, modulus
        )


@pytest.mark.parametrize("requested", ["python", "auto"])
def test_invert_matches_builtin_pow(requested):
    backend.set_backend(requested, strict=False)
    rng = random.Random(2008)
    modulus = 0xFFFFFFFFFFFFFFC5
    for _ in range(50):
        value = rng.randrange(1, modulus)
        inverse = backend.invert(value, modulus)
        assert (value * inverse) % modulus == 1
        assert inverse == pow(value, -1, modulus)


@pytest.mark.parametrize("requested", ["python", "auto"])
def test_invert_error_contract(requested):
    backend.set_backend(requested, strict=False)
    with pytest.raises(ZeroDivisionError):
        backend.invert(0, 97)
    with pytest.raises(ZeroDivisionError):
        backend.invert(6, 9)


def test_wrap_unwrap_roundtrip():
    for requested in backend.available():
        backend.set_backend(requested)
        value = 2**521 - 1
        assert backend.unwrap(backend.wrap(value)) == value
        assert isinstance(backend.unwrap(backend.wrap(value)), int)


def test_on_change_fires_only_on_real_switch():
    fired: list[str] = []
    listener = fired.append
    backend.on_change(listener)
    try:
        backend.set_backend(backend.name())
        assert fired == []
        others = [b for b in backend.available() if b != backend.name()]
        if others:
            backend.set_backend(others[0])
            assert fired == [others[0]]
    finally:
        backend._listeners.remove(listener)
