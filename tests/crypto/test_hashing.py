"""Tests for the protocol hash suite F, H, H0, h."""

import pytest
from hypothesis import given, strategies as st

from repro.core.params import test_params as make_test_params
from repro.crypto.counters import OpCounter
from repro.crypto.hashing import WITNESS_HASH_BITS, constant_time_eq, encode_for_hash


@pytest.fixture(scope="module")
def params():
    return make_test_params()


def test_deterministic(params):
    assert params.hashes.H("a", 1) == params.hashes.H("a", 1)
    assert params.hashes.F("a", 1) == params.hashes.F("a", 1)
    assert params.hashes.h("a", 1) == params.hashes.h("a", 1)


def test_domain_separation(params):
    # The four oracles must be independent even on identical input.
    h_out = params.hashes.H("x") % params.group.q
    h0_out = params.hashes.H0("x") % params.group.q
    assert h_out != h0_out
    assert params.hashes.h("x") != params.hashes.H("x")


def test_F_lands_in_subgroup(params):
    for payload in ("info-1", "info-2", "info-3"):
        element = params.hashes.F(payload)
        assert params.group.is_element(element)


def test_H_and_H0_in_scalar_range(params):
    for i in range(20):
        assert 0 <= params.hashes.H("m", i) < params.group.q
        assert 0 <= params.hashes.H0("m", i) < params.group.q


def test_h_width(params):
    values = [params.hashes.h("coin", i) for i in range(50)]
    assert all(0 <= v < 2**256 for v in values)
    # Values spread across the space, not clustered at the bottom.
    assert max(values) > 2**250


def test_each_call_counts_one_hash(params):
    counter = OpCounter()
    with counter:
        params.hashes.F("a")
        params.hashes.H("b")
        params.hashes.H0("c")
        params.hashes.h("d")
    assert counter.hash == 4
    assert counter.exp == 0  # F's internal exponentiation is suppressed


@given(
    st.lists(st.one_of(st.integers(min_value=0), st.text(), st.binary()), max_size=6),
    st.lists(st.one_of(st.integers(min_value=0), st.text(), st.binary()), max_size=6),
)
def test_encode_for_hash_injective(parts_a, parts_b):
    if tuple(parts_a) != tuple(parts_b):
        assert encode_for_hash(*parts_a) != encode_for_hash(*parts_b)
    else:
        assert encode_for_hash(*parts_a) == encode_for_hash(*parts_b)


def test_encode_concat_ambiguity_resolved():
    assert encode_for_hash("ab", "c") != encode_for_hash("a", "bc")
    assert encode_for_hash(1, 23) != encode_for_hash(12, 3)
    assert encode_for_hash("1") != encode_for_hash(1)
    assert encode_for_hash(b"1") != encode_for_hash("1")


def test_encode_rejects_bad_types():
    with pytest.raises(TypeError):
        encode_for_hash(True)
    with pytest.raises(ValueError):
        encode_for_hash(-1)
    with pytest.raises(TypeError):
        encode_for_hash(3.14)


def test_witness_hash_bits_constant(params):
    assert params.witness_hash_bits == WITNESS_HASH_BITS == 256
    assert params.witness_hash_space == 2**256


# ----------------------------------------------------------------------
# constant_time_eq: the digest-comparison primitive the linter enforces
# ----------------------------------------------------------------------

def test_constant_time_eq_ints():
    assert constant_time_eq(0, 0)
    assert constant_time_eq(2**255 + 17, 2**255 + 17)
    assert not constant_time_eq(2**255 + 17, 2**255 + 18)
    # Differing widths compare unequal, not crash.
    assert not constant_time_eq(1, 2**64)


def test_constant_time_eq_matches_equality_semantics():
    for a in (0, 1, 7, 2**31, 2**160 - 1):
        for b in (0, 1, 7, 2**31, 2**160 - 1):
            assert constant_time_eq(a, b) == (a == b)


def test_constant_time_eq_bytes_and_str():
    assert constant_time_eq(b"abc", b"abc")
    assert not constant_time_eq(b"abc", b"abd")
    assert constant_time_eq("salt", "salt")
    assert constant_time_eq("salt", b"salt")  # str is compared utf-8 encoded
    assert not constant_time_eq("salt", "Salt")


def test_constant_time_eq_mixed_and_negative():
    assert not constant_time_eq(97, b"a")  # mixed types mirror ==
    assert not constant_time_eq(-1, -1)  # negatives cannot be digests
