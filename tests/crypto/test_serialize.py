"""Tests for the URI wire format (base64 ints, key abbreviation)."""

import pytest
from hypothesis import given, strategies as st

from repro.crypto.serialize import (
    KEY_ABBREVIATIONS,
    abbreviate_key,
    decode,
    encode,
    expand_key,
    flatten,
    int_to_text,
    text_to_int,
    unflatten,
    wire_bytes,
)


@given(st.integers(min_value=0, max_value=2**2048))
def test_int_roundtrip(value):
    assert text_to_int(int_to_text(value)) == value


def test_int_encoding_compact():
    # base64 is ~4/3 of byte length, far below hex's 2x.
    value = 2**1023
    assert len(int_to_text(value)) <= (1024 // 8) * 4 // 3 + 3


def test_negative_int_rejected():
    with pytest.raises(ValueError):
        int_to_text(-1)


def test_malformed_int_rejected():
    with pytest.raises(ValueError):
        text_to_int("")
    with pytest.raises(ValueError):
        text_to_int("!!not-base64!!")


def test_abbreviation_roundtrip_all_keys():
    for long_key in KEY_ABBREVIATIONS:
        assert expand_key(abbreviate_key(long_key)) == long_key
    dotted = "transcript.coin.bare.sig.rho"
    assert expand_key(abbreviate_key(dotted)) == dotted
    assert abbreviate_key(dotted) == "t.n.b.g.r"


def test_unknown_segments_pass_through():
    assert abbreviate_key("custom.field") == "custom.field"
    assert expand_key("custom.field") == "custom.field"


def test_flatten_nested():
    assert flatten({"a": {"b": 1, "c": "x"}, "d": 2}) == {"a.b": 1, "a.c": "x", "d": 2}


def test_flatten_rejects_bad_values():
    with pytest.raises(TypeError):
        flatten({"a": 3.14})
    with pytest.raises(TypeError):
        flatten({"a": True})
    with pytest.raises(ValueError):
        flatten({"a.b": 1})


def test_encode_decode_roundtrip():
    payload = {"coin": {"bare": {"sig": {"rho": 12345}}}, "merchant_id": "bob-news"}
    wire = encode(payload)
    decoded = decode(wire)
    assert decoded["coin.bare.sig.rho"] == int_to_text(12345)
    assert decoded["merchant_id"] == "bob-news"
    assert unflatten(decoded)["coin"]["bare"]["sig"]["rho"] == int_to_text(12345)


def test_encode_deterministic():
    payload = {"b": 1, "a": 2, "c": {"z": 3, "y": 4}}
    assert encode(payload) == encode({"c": {"y": 4, "z": 3}, "a": 2, "b": 1})


def test_decode_rejects_duplicates():
    with pytest.raises(ValueError):
        decode("a=1&a=2")


def test_unflatten_conflicts_detected():
    with pytest.raises(ValueError):
        unflatten({"a": "1", "a.b": "2"})
    with pytest.raises(ValueError):
        unflatten({"a.b": "2", "a": "1"})


def test_wire_bytes_counts_encoded_length():
    payload = {"k": 255}
    assert wire_bytes(payload) == len(encode(payload).encode("ascii"))


@given(
    st.dictionaries(
        st.text(alphabet="abcdefgh_", min_size=1, max_size=8),
        st.one_of(st.integers(min_value=0, max_value=2**64), st.text(max_size=16)),
        max_size=6,
    )
)
def test_encode_decode_property(payload):
    decoded = decode(encode(payload))
    assert set(decoded) == {expand_key(abbreviate_key(k)) for k in payload}
