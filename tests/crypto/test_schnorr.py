"""Tests for Schnorr signatures."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import test_params as make_test_params
from repro.crypto.counters import OpCounter
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature, verify


@pytest.fixture(scope="module")
def group():
    return make_test_params().group


@pytest.fixture(scope="module")
def keypair(group):
    return SchnorrKeyPair.generate(group, random.Random(5))


def test_sign_verify_roundtrip(group, keypair):
    signature = keypair.sign("hello", 42)
    assert keypair.verify(signature, "hello", 42)
    assert verify(group, keypair.public, signature, "hello", 42)


def test_wrong_message_rejected(keypair):
    signature = keypair.sign("hello", 42)
    assert not keypair.verify(signature, "hello", 43)
    assert not keypair.verify(signature, "hellp", 42)
    assert not keypair.verify(signature)


def test_wrong_key_rejected(group, keypair):
    other = SchnorrKeyPair.generate(group, random.Random(6))
    signature = keypair.sign("msg")
    assert not other.verify(signature, "msg")


def test_tampered_signature_rejected(group, keypair):
    signature = keypair.sign("msg")
    assert not keypair.verify(SchnorrSignature(e=signature.e + 1, s=signature.s), "msg")
    assert not keypair.verify(SchnorrSignature(e=signature.e, s=signature.s + 1), "msg")


def test_out_of_range_signature_rejected(group, keypair):
    signature = keypair.sign("msg")
    assert not keypair.verify(
        SchnorrSignature(e=signature.e + group.q, s=signature.s), "msg"
    )
    assert not keypair.verify(SchnorrSignature(e=-1 % 2**200, s=signature.s), "msg")


def test_bad_public_key_rejected(group, keypair):
    signature = keypair.sign("msg")
    assert not verify(group, 0, signature, "msg")
    assert not verify(group, group.p - 1, signature, "msg") or group.is_element(group.p - 1)


def test_signatures_are_randomized(group, keypair):
    first = keypair.sign("msg")
    second = keypair.sign("msg")
    assert first != second  # fresh nonce each time
    assert keypair.verify(first, "msg") and keypair.verify(second, "msg")


def test_counter_accounting(group, keypair):
    counter = OpCounter()
    with counter:
        signature = keypair.sign("msg")
    assert counter.snapshot() == (0, 0, 1, 0)
    counter.reset()
    with counter:
        keypair.verify(signature, "msg")
    assert counter.snapshot() == (0, 0, 0, 1)


@settings(deadline=None, max_examples=25)
@given(st.text(max_size=64), st.integers(min_value=0, max_value=2**64))
def test_roundtrip_property(group, keypair, text, number):
    signature = keypair.sign(text, number)
    assert keypair.verify(signature, text, number)
    assert not keypair.verify(signature, text, number + 1)


def test_deterministic_with_seeded_rng(group):
    pair_a = SchnorrKeyPair.generate(group, random.Random(7))
    pair_b = SchnorrKeyPair.generate(group, random.Random(7))
    assert pair_a.public == pair_b.public
    assert pair_a.sign("m", rng=random.Random(8)) == pair_b.sign("m", rng=random.Random(8))
