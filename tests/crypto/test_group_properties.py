"""Property-based tests of algebraic laws the protocols rely on."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.params import test_params as make_test_params
from repro.crypto.schnorr import SchnorrKeyPair

PARAMS = make_test_params()
GROUP = PARAMS.group

scalars = st.integers(min_value=0, max_value=GROUP.q - 1)


@settings(deadline=None, max_examples=40)
@given(scalars, scalars)
def test_exponent_addition_law(a, b):
    """g^a * g^b == g^(a+b): the identity every blinding step depends on."""
    left = GROUP.mul(GROUP.exp(GROUP.g, a), GROUP.exp(GROUP.g, b))
    assert left == GROUP.exp(GROUP.g, a + b)


@settings(deadline=None, max_examples=40)
@given(scalars, scalars)
def test_exponent_multiplication_law(a, b):
    """(g^a)^b == g^(a*b): what makes challenge-response linear algebra work."""
    assert GROUP.exp(GROUP.exp(GROUP.g, a), b) == GROUP.exp(GROUP.g, a * b)


@settings(deadline=None, max_examples=40)
@given(scalars)
def test_order_q_subgroup(a):
    """Every power of g has order dividing q — exponent arithmetic mod q."""
    element = GROUP.exp(GROUP.g, a)
    assert GROUP.exp(element, GROUP.q) == 1
    assert GROUP.is_element(element)


@settings(deadline=None, max_examples=40)
@given(scalars, scalars)
def test_commitment_homomorphism(x1, x2):
    """g1^x1 g2^x2 * g1^y1 g2^y2 == g1^(x1+y1) g2^(x2+y2).

    This is exactly why one payment response r_i = x_i + d*y_i verifies
    against A * B^d.
    """
    y1 = (x1 * 7 + 13) % GROUP.q
    y2 = (x2 * 11 + 17) % GROUP.q
    lhs = GROUP.mul(GROUP.commit2(GROUP.g1, x1, GROUP.g2, x2),
                    GROUP.commit2(GROUP.g1, y1, GROUP.g2, y2))
    rhs = GROUP.commit2(GROUP.g1, x1 + y1, GROUP.g2, x2 + y2)
    assert lhs == rhs


@settings(deadline=None, max_examples=40)
@given(scalars)
def test_inverse_law(a):
    element = GROUP.exp(GROUP.g, a)
    assert GROUP.mul(element, GROUP.inv(element)) == 1


@settings(deadline=None, max_examples=25)
@given(st.integers(min_value=0, max_value=2**32), st.binary(max_size=32))
def test_schnorr_rejects_any_bit_perturbation(nonce_seed, message):
    """Flipping either signature component always breaks verification."""
    keypair = SchnorrKeyPair.generate(GROUP, random.Random(5))
    signature = keypair.sign("m", message, rng=random.Random(nonce_seed))
    assert keypair.verify(signature, "m", message)
    from repro.crypto.schnorr import SchnorrSignature

    flipped_e = SchnorrSignature(e=signature.e ^ 1, s=signature.s)
    flipped_s = SchnorrSignature(e=signature.e, s=signature.s ^ 1)
    assert not keypair.verify(flipped_e, "m", message)
    assert not keypair.verify(flipped_s, "m", message)


@settings(deadline=None, max_examples=60)
@given(
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**64 - 1),
    st.integers(min_value=0, max_value=2**64 - 1),
)
def test_chord_interval_partition_property(value, low, high):
    """For low != high, exactly one of (low, high] and (high, low] holds."""
    from repro.net.chord import in_interval

    if low % 2**64 == high % 2**64:
        return
    first = in_interval(value, low, high, inclusive_high=True)
    second = in_interval(value, high, low, inclusive_high=True)
    if value % 2**64 == low % 2**64:
        # The shared endpoint `low` belongs to (high, low] only.
        assert not first and second
    else:
        assert first != second
