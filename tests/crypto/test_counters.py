"""Tests for the operation-counter instrumentation."""

from repro.crypto import counters
from repro.crypto.counters import OpCounter, counting, current_counter, suppressed


def test_no_counter_by_default():
    assert current_counter() is None
    counters.record_exp()  # must be a no-op, not an error


def test_records_attribute_to_active_counter():
    counter = OpCounter()
    with counter:
        counters.record_exp()
        counters.record_hash(2)
        counters.record_sig()
        counters.record_ver(3)
    assert counter.snapshot() == (1, 2, 1, 3)


def test_counting_context_manager():
    counter = OpCounter()
    with counting(counter) as active:
        assert active is counter
        counters.record_exp()
    assert counter.exp == 1


def test_nested_counters_inner_wins():
    outer, inner = OpCounter(), OpCounter()
    with outer:
        counters.record_exp()
        with inner:
            counters.record_exp()
        counters.record_exp()
    assert outer.exp == 2
    assert inner.exp == 1


def test_suppression_hides_operations():
    counter = OpCounter()
    with counter:
        counters.record_exp()
        with suppressed():
            counters.record_exp(10)
            counters.record_hash(10)
        counters.record_hash()
    assert counter.snapshot() == (1, 1, 0, 0)


def test_counter_deactivates_after_exit():
    counter = OpCounter()
    with counter:
        pass
    counters.record_exp()
    assert counter.exp == 0


def test_reset_and_snapshot():
    counter = OpCounter(exp=5, hash=4, sig=3, ver=2)
    assert counter.as_dict() == {"Exp": 5, "Hash": 4, "Sig": 3, "Ver": 2}
    counter.reset()
    assert counter.snapshot() == (0, 0, 0, 0)


def test_counter_addition():
    total = OpCounter(exp=1, hash=2) + OpCounter(exp=3, sig=1, ver=4)
    assert total.snapshot() == (4, 2, 1, 4)
