"""The store's obs instrumentation: fsyncs, WAL bytes, replay, retries."""

import random

import pytest

from repro import obs
from repro.store import RetryPolicy, Shard, StoreIOError, with_retries


@pytest.fixture(autouse=True)
def metrics():
    obs.reset()
    obs.enable()
    yield obs.registry()
    obs.disable()
    obs.reset()


def test_fsync_and_wal_bytes_metrics(tmp_path, metrics):
    shard = Shard(tmp_path, backend="memory", sleep=lambda _d: None)
    shard.put("deposits", "00ab", {"amount": 25})
    shard.ack()
    shard.close()
    assert metrics.counter_value("store_fsyncs_total") >= 1
    assert metrics.gauge("store_wal_bytes").value > 0


def test_replay_metrics_cover_records_and_torn_bytes(tmp_path, metrics):
    shard = Shard(tmp_path, backend="memory", sleep=lambda _d: None)
    shard.put("deposits", "00ab", {"amount": 25})
    shard.put("deposits", "ffcd", {"amount": 50})
    shard.close()
    with (tmp_path / "wal.log").open("ab") as handle:
        handle.write(b"\x00\x01")  # torn header

    reopened = Shard(tmp_path, backend="memory", sleep=lambda _d: None)
    reopened.recover()
    reopened.close()
    assert metrics.counter_value("store_replayed_records_total") == 2.0
    assert metrics.counter_value("store_wal_torn_bytes_total") == 2.0
    summary = metrics.histogram("store_replay_ms").summary()
    assert summary["count"] == 1


def test_io_retries_are_counted(metrics):
    attempts = {"count": 0}

    def flaky():
        attempts["count"] += 1
        raise OSError("hiccup")

    with pytest.raises(StoreIOError):
        with_retries(
            flaky,
            policy=RetryPolicy(attempts=3),
            rng=random.Random(5),
            describe="flaky op",
            sleep=lambda _delay: None,
        )
    assert metrics.counter_value("store_io_retries_total") == 3.0
