"""Tests for the bounded, seeded retry wrapper around store IO."""

import random

import pytest

from repro.store import RetryPolicy, StoreIOError, with_retries


def test_transient_failures_are_retried_to_success():
    calls = {"count": 0}
    delays = []

    def flaky():
        calls["count"] += 1
        if calls["count"] < 3:
            raise OSError("hiccup")
        return "done"

    result = with_retries(
        flaky,
        policy=RetryPolicy(attempts=4),
        rng=random.Random(7),
        describe="flaky op",
        sleep=delays.append,
    )
    assert result == "done"
    assert calls["count"] == 3
    assert len(delays) == 2
    assert all(delay > 0 for delay in delays)


def test_exhausted_attempts_raise_typed_store_io_error():
    calls = {"count": 0}

    def broken():
        calls["count"] += 1
        raise OSError("still broken")

    with pytest.raises(StoreIOError, match="3 attempt"):
        with_retries(
            broken,
            policy=RetryPolicy(attempts=3),
            rng=random.Random(7),
            describe="broken op",
            sleep=lambda _delay: None,
        )
    assert calls["count"] == 3


def test_failure_chains_the_original_os_error():
    try:
        with_retries(
            lambda: (_ for _ in ()).throw(OSError("root cause")),
            policy=RetryPolicy(attempts=1),
            rng=random.Random(7),
            describe="doomed op",
            sleep=lambda _delay: None,
        )
    except StoreIOError as error:
        assert isinstance(error.__cause__, OSError)
        assert "root cause" in str(error)
    else:
        pytest.fail("expected StoreIOError")


def test_non_os_errors_propagate_unwrapped():
    with pytest.raises(ValueError):
        with_retries(
            lambda: (_ for _ in ()).throw(ValueError("logic bug")),
            policy=RetryPolicy(attempts=4),
            rng=random.Random(7),
            describe="buggy op",
            sleep=lambda _delay: None,
        )


def test_backoff_delays_replay_deterministically_per_seed():
    def run():
        delays = []
        attempts = {"count": 0}

        def flaky():
            attempts["count"] += 1
            if attempts["count"] < 4:
                raise OSError("hiccup")
            return None

        with_retries(
            flaky,
            policy=RetryPolicy(attempts=4),
            rng=random.Random("retry-seed"),
            describe="flaky op",
            sleep=delays.append,
        )
        return delays

    first, second = run(), run()
    assert first == second
    # Exponential spacing: each delay at least as long as the one before,
    # up to jitter.
    assert len(first) == 3


def test_retry_policy_rejects_zero_attempts():
    with pytest.raises(ValueError):
        RetryPolicy(attempts=0)
