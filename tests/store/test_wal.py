"""Tests for the write-ahead log: framing, group commit, torn tails."""

import pytest

from repro.store import (
    MAGIC,
    StoreCorruptError,
    WriteAheadLog,
    scan_wal_bytes,
)


def make_wal(tmp_path, **kwargs):
    kwargs.setdefault("sleep", lambda _delay: None)
    return WriteAheadLog(tmp_path / "wal.log", **kwargs)


def test_round_trip_preserves_payloads_in_order(tmp_path):
    wal = make_wal(tmp_path)
    payloads = [b"first", b"second", b'{"op": "put"}']
    for payload in payloads:
        wal.append(payload)
    wal.close()
    assert make_wal(tmp_path).replay() == payloads


def test_empty_log_replays_to_nothing(tmp_path):
    wal = make_wal(tmp_path)
    assert wal.replay() == []


def test_fsync_every_batches_group_commit(tmp_path):
    wal = make_wal(tmp_path, fsync_every=3)
    for index in range(7):
        wal.append(b"record-%d" % index)
    # 7 appends at width 3: fsync after records 3 and 6 only.
    assert wal.fsync_count == 2
    wal.flush()
    assert wal.fsync_count == 3
    wal.close()
    assert make_wal(tmp_path).replay() == [b"record-%d" % i for i in range(7)]


def test_torn_header_at_tail_is_truncated_not_fatal(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(b"durable")
    wal.close()
    with open(tmp_path / "wal.log", "ab") as handle:
        handle.write(b"\x00\x00")  # 2 bytes: not even a full header
    healer = make_wal(tmp_path)
    assert healer.replay() == [b"durable"]
    assert healer.truncated_bytes == 2
    # The heal is durable: a second pass sees a clean log.
    fresh = make_wal(tmp_path)
    assert fresh.replay() == [b"durable"]
    assert fresh.truncated_bytes == 0


def test_torn_payload_at_tail_is_truncated_not_fatal(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(b"durable")
    wal.close()
    import struct
    import zlib

    torn = b"lost-payload"
    with open(tmp_path / "wal.log", "ab") as handle:
        # A full header promising more bytes than follow.
        handle.write(struct.pack(">II", len(torn) + 10, zlib.crc32(torn)) + torn)
    healer = make_wal(tmp_path)
    assert healer.replay() == [b"durable"]
    assert healer.truncated_bytes > 0


def test_crc_bad_final_record_counts_as_torn(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(b"durable")
    wal.append(b"torn-by-bitrot")
    wal.close()
    path = tmp_path / "wal.log"
    data = bytearray(path.read_bytes())
    data[-1] ^= 0xFF  # flip a bit inside the final record's payload
    path.write_bytes(bytes(data))
    assert make_wal(tmp_path).replay() == [b"durable"]


def test_crc_mismatch_before_the_tail_is_fatal(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(b"first-record-payload")
    wal.append(b"second-record-payload")
    wal.close()
    path = tmp_path / "wal.log"
    data = bytearray(path.read_bytes())
    data[len(MAGIC) + 8] ^= 0xFF  # corrupt the *first* record's payload
    path.write_bytes(bytes(data))
    with pytest.raises(StoreCorruptError, match="with data after it"):
        make_wal(tmp_path).replay()


def test_bad_magic_is_fatal(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"XXXXX-not-a-wal-file")
    with pytest.raises(StoreCorruptError, match="bad file magic"):
        make_wal(tmp_path).replay()


def test_file_shorter_than_magic_is_a_torn_creation(tmp_path):
    scanned = scan_wal_bytes(b"RW")
    assert scanned.problem is None
    assert scanned.torn_bytes == 2
    assert scanned.payloads == ()


def test_verify_reports_without_mutating(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(b"durable")
    wal.close()
    path = tmp_path / "wal.log"
    with open(path, "ab") as handle:
        handle.write(b"\x01\x02\x03")
    size_before = path.stat().st_size
    problems = make_wal(tmp_path).verify()
    assert problems and "torn tail" in problems[0]
    assert path.stat().st_size == size_before
    assert make_wal(tmp_path).verify() == problems


def test_reset_truncates_to_header_only(tmp_path):
    wal = make_wal(tmp_path)
    wal.append(b"soon-compacted-away")
    wal.reset()
    wal.close()
    assert (tmp_path / "wal.log").read_bytes() == MAGIC
    assert make_wal(tmp_path).replay() == []


def test_open_heals_torn_tail_before_appending(tmp_path):
    """Appending to a damaged log must not bury the torn bytes mid-file."""
    wal = make_wal(tmp_path)
    wal.append(b"durable")
    wal.close()
    with open(tmp_path / "wal.log", "ab") as handle:
        handle.write(b"\x00\x00\x00")  # power died mid-header
    appender = make_wal(tmp_path)
    appender.append(b"after-the-crash")  # no replay() first
    appender.close()
    fresh = make_wal(tmp_path)
    assert fresh.replay() == [b"durable", b"after-the-crash"]
    assert fresh.truncated_bytes == 0


def test_open_refuses_to_append_past_bad_magic(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"XXXXX-not-a-wal-file")
    wal = make_wal(tmp_path)
    with pytest.raises(StoreCorruptError, match="bad file magic"):
        wal.append(b"must-not-land")
    assert path.read_bytes() == b"XXXXX-not-a-wal-file"


def test_open_heals_a_torn_creation(tmp_path):
    """A crash during file creation leaves a partial magic; open rewrites it."""
    path = tmp_path / "wal.log"
    path.write_bytes(MAGIC[:2])
    wal = make_wal(tmp_path)
    wal.append(b"first")
    wal.close()
    assert make_wal(tmp_path).replay() == [b"first"]


class FlakyFile:
    """Wraps a real file handle; the next ``fail`` writes are cut short."""

    def __init__(self, inner, fail=1):
        self.inner = inner
        self.fail = fail

    def write(self, data):
        if self.fail:
            self.fail -= 1
            self.inner.write(data[: len(data) // 2])  # partial write, then error
            raise OSError("disk hiccup")
        return self.inner.write(data)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def test_append_retries_overwrite_partial_writes(tmp_path):
    """A failed write retried at the same offset must not double a record."""
    wal = make_wal(tmp_path)
    wal.append(b"steady")
    wal._file = FlakyFile(wal._file)
    wal.append(b"retried-once")
    wal.close()
    assert make_wal(tmp_path).replay() == [b"steady", b"retried-once"]
