"""Tests for shards and the sharded store: recovery, routing, digests."""

import json

import pytest

from repro.store import (
    BACKENDS,
    MAGIC,
    Shard,
    Store,
    StoreCorruptError,
    make_backend,
    open_store,
    shard_index,
)

NO_SLEEP = {"sleep": lambda _delay: None}


def seed_ops(target):
    """A fixed little workload touching sharded and singleton spaces."""
    target.put("meta", "state", {"version": 2, "account": "broker"})
    target.put("deposits", "00ab12", {"amount": 25})
    target.put("deposits", "ffcd34", {"amount": 50})
    target.put("renewals", "1a2b3c", {"amount": 25})
    target.put("deposits", "00ab12", {"amount": 30})  # upsert
    target.delete("renewals", "1a2b3c")
    target.put("merchants", "alice-books", {"balance": 55})
    target.ack()


# ----------------------------------------------------------------------
# Shard
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", BACKENDS)
def test_shard_recover_rebuilds_the_same_state(tmp_path, backend):
    shard = Shard(tmp_path, backend=backend, **NO_SLEEP)
    seed_ops(shard)
    expected = shard.dump()
    digest = shard.state_digest()
    shard.close()

    reopened = Shard(tmp_path, backend=backend, **NO_SLEEP)
    stats = reopened.recover()
    assert reopened.dump() == expected
    assert reopened.state_digest() == digest
    assert stats.replayed_records == 7
    assert stats.snapshot_records == 0
    assert stats.truncated_bytes == 0
    reopened.close()


def test_recovery_is_identical_across_backends_for_one_journal(tmp_path):
    """The same WAL + snapshot materializes the same state everywhere."""
    shard = Shard(tmp_path, backend="memory", **NO_SLEEP)
    seed_ops(shard)
    shard.compact()
    shard.put("deposits", "9f9f9f", {"amount": 75})  # journal past the snapshot
    shard.close()

    digests = {}
    for backend in BACKENDS:
        reopened = Shard(tmp_path, backend=backend, **NO_SLEEP)
        reopened.recover()
        digests[backend] = reopened.state_digest()
        reopened.close()
    assert len(set(digests.values())) == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_duplicate_replay_is_idempotent(tmp_path, backend):
    """Stale snapshot + a WAL the snapshot already contains: no change."""
    shard = Shard(tmp_path, backend=backend, **NO_SLEEP)
    seed_ops(shard)
    wal_bytes = shard.wal.path.read_bytes()
    shard.compact()  # snapshot now holds everything, WAL reset
    shard.close()
    # Simulate a crash between snapshot replace and WAL reset: the old
    # journal (every op the snapshot already has) is still in place.
    (tmp_path / "wal.log").write_bytes(wal_bytes)

    reopened = Shard(tmp_path, backend=backend, **NO_SLEEP)
    before = reopened.recover()
    digest = reopened.state_digest()
    reopened.close()
    again = Shard(tmp_path, backend=backend, **NO_SLEEP)
    again.recover()
    assert again.state_digest() == digest
    assert before.replayed_records == 7  # the stale journal really replayed
    again.close()


def test_compact_preserves_state_and_empties_the_wal(tmp_path):
    shard = Shard(tmp_path, backend="memory", **NO_SLEEP)
    seed_ops(shard)
    digest = shard.state_digest()
    shard.compact()
    assert shard.state_digest() == digest
    assert shard.wal.path.read_bytes() == MAGIC
    # Compacting twice is harmless.
    shard.compact()
    assert shard.state_digest() == digest
    shard.close()

    reopened = Shard(tmp_path, backend="memory", **NO_SLEEP)
    stats = reopened.recover()
    assert stats.snapshot_records == 4
    assert stats.replayed_records == 0
    assert reopened.state_digest() == digest
    reopened.close()


def test_snapshot_garbage_is_corruption(tmp_path):
    shard = Shard(tmp_path, backend="memory", **NO_SLEEP)
    seed_ops(shard)
    shard.compact()
    shard.close()
    (tmp_path / "snapshot.json").write_text("{not json", "utf-8")
    with pytest.raises(StoreCorruptError, match="not valid JSON"):
        Shard(tmp_path, backend="memory", **NO_SLEEP).recover()


def test_snapshot_version_mismatch_is_corruption(tmp_path):
    shard = Shard(tmp_path, backend="memory", **NO_SLEEP)
    seed_ops(shard)
    shard.compact()
    shard.close()
    (tmp_path / "snapshot.json").write_text(
        json.dumps({"version": 999, "spaces": {}}), "utf-8"
    )
    with pytest.raises(StoreCorruptError, match="version 999"):
        Shard(tmp_path, backend="memory", **NO_SLEEP).recover()


def test_unknown_journal_operation_is_corruption(tmp_path):
    shard = Shard(tmp_path, backend="memory", **NO_SLEEP)
    shard.wal.append(
        json.dumps({"op": "increment", "space": "x", "key": "y"}).encode()
    )
    shard.close()
    with pytest.raises(StoreCorruptError, match="unknown journal operation"):
        Shard(tmp_path, backend="memory", **NO_SLEEP).recover()


# ----------------------------------------------------------------------
# Sharded store
# ----------------------------------------------------------------------

def test_shard_index_routes_hex_prefixes_and_falls_back():
    assert shard_index("00ab12", 4) == int("00ab12"[:8], 16) % 4
    assert shard_index("ffcd34", 4) == int("ffcd34", 16) % 4
    assert 0 <= shard_index("not-hex-at-all", 4) < 4
    assert shard_index("anything", 1) == 0


def test_sharded_spaces_route_by_key_singletons_pin_to_shard_zero(tmp_path):
    store = Store(tmp_path, backend="memory", shards=4, **NO_SLEEP)
    seed_ops(store)
    assert store.shard_for("meta", "state") is store.shards[0]
    assert store.shard_for("merchants", "zzz") is store.shards[0]
    expected = store.shards[shard_index("ffcd34", 4)]
    assert store.shard_for("deposits", "ffcd34") is expected
    # Qualified spaces route on the base name before the colon.
    assert (
        store.shard_for("commitments:alice-books", "ffcd34") is expected
    )
    store.close()


def test_store_digest_is_invariant_under_shard_count_and_backend(tmp_path):
    digests = set()
    for backend in BACKENDS:
        for shards in (1, 2, 4):
            directory = tmp_path / f"{backend}-{shards}"
            store = Store(directory, backend=backend, shards=shards, **NO_SLEEP)
            seed_ops(store)
            digests.add(store.state_digest())
            store.close()
    assert len(digests) == 1


@pytest.mark.parametrize("backend", BACKENDS)
def test_store_recovers_after_abrupt_close_with_torn_tail(tmp_path, backend):
    store = Store(tmp_path, backend=backend, shards=4, **NO_SLEEP)
    seed_ops(store)
    expected = store.dump()
    digest = store.state_digest()
    store.close()
    with (tmp_path / "shard-00" / "wal.log").open("ab") as handle:
        handle.write(b"\x00\x00\x00")  # power died mid-header

    reopened = Store(tmp_path, backend=backend, shards=4, **NO_SLEEP)
    stats = reopened.recover()
    assert stats.truncated_bytes == 3
    assert reopened.dump() == expected
    assert reopened.state_digest() == digest
    reopened.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_operation_commits_atomically_across_shards(tmp_path, backend):
    """One operation spanning two shards survives recovery as a whole."""
    store = Store(tmp_path, backend=backend, shards=4, **NO_SLEEP)
    with store.operation():
        store.put("ledger", "merchant/acme", {"balance": 25})  # shard 0
        store.put("deposits", "00000001", {"amount": 25})  # shard 1
    store.close()

    reopened = Store(tmp_path, backend=backend, shards=4, **NO_SLEEP)
    stats = reopened.recover()
    assert stats.discarded_records == 0
    assert reopened.get("ledger", "merchant/acme") == {"balance": 25}
    assert reopened.get("deposits", "00000001") == {"amount": 25}
    reopened.close()


@pytest.mark.parametrize("backend", BACKENDS)
def test_uncommitted_operation_is_discarded_whole_on_recovery(tmp_path, backend):
    """A crash before the commit marker lands erases the whole operation.

    This is the double-credit window the operation scope exists to close:
    without it, a ledger credit could survive a crash that lost the
    deposit record journaled to a different shard's WAL.
    """
    store = Store(tmp_path, backend=backend, shards=4, **NO_SLEEP)
    store.put("merchants", "acme", {"registered": True})
    store.ack()
    store.begin()
    store.put("ledger", "merchant/acme", {"balance": 25})
    store.put("deposits", "00000001", {"amount": 25})
    store.close()  # fsyncs the records but never writes the marker

    reopened = Store(tmp_path, backend=backend, shards=4, **NO_SLEEP)
    stats = reopened.recover()
    assert stats.discarded_records == 2
    assert reopened.get("ledger", "merchant/acme") is None
    assert reopened.get("deposits", "00000001") is None
    assert reopened.get("merchants", "acme") == {"registered": True}
    reopened.close()


def test_operation_scope_aborts_on_exception(tmp_path):
    store = Store(tmp_path, backend="memory", shards=2, **NO_SLEEP)
    with pytest.raises(RuntimeError, match="request failed"):
        with store.operation():
            store.put("deposits", "00000001", {"amount": 25})
            raise RuntimeError("request failed")
    assert not store.in_operation
    store.close()

    reopened = Store(tmp_path, backend="memory", shards=2, **NO_SLEEP)
    reopened.recover()
    assert reopened.get("deposits", "00000001") is None
    reopened.close()


def test_nested_operation_scopes_join_into_one_commit(tmp_path):
    store = Store(tmp_path, backend="memory", shards=2, **NO_SLEEP)
    with store.operation():
        with store.operation():
            store.put("deposits", "00000001", {"amount": 25})
        # Still open: the inner scope must not have committed.
        assert store.in_operation
        store.put("ledger", "merchant/acme", {"balance": 25})
    assert not store.in_operation
    store.close()

    reopened = Store(tmp_path, backend="memory", shards=2, **NO_SLEEP)
    assert reopened.recover().discarded_records == 0
    assert reopened.get("deposits", "00000001") == {"amount": 25}
    assert reopened.get("ledger", "merchant/acme") == {"balance": 25}
    reopened.close()


def test_txn_ids_never_collide_after_reopen_without_recover(tmp_path):
    """A fresh store over old WALs must not reissue a committed txn id."""
    store = Store(tmp_path, backend="memory", shards=1, **NO_SLEEP)
    with store.operation():
        store.put("deposits", "00000001", {"amount": 25})
    store.close()

    # Attach without recover(), run a new operation, crash before commit.
    attached = Store(tmp_path, backend="memory", shards=1, **NO_SLEEP)
    attached.begin()
    attached.put("deposits", "00000002", {"amount": 50})
    attached.close()

    reopened = Store(tmp_path, backend="memory", shards=1, **NO_SLEEP)
    stats = reopened.recover()
    assert stats.discarded_records == 1  # only the uncommitted put
    assert reopened.get("deposits", "00000001") == {"amount": 25}
    assert reopened.get("deposits", "00000002") is None
    reopened.close()


def test_manifest_pins_the_shard_count(tmp_path):
    Store(tmp_path, backend="memory", shards=4, **NO_SLEEP).close()
    with pytest.raises(StoreCorruptError, match="explicit migration"):
        Store(tmp_path, backend="memory", shards=8, **NO_SLEEP)


def test_manifest_pins_the_backend(tmp_path):
    Store(tmp_path, backend="sqlite", shards=2, **NO_SLEEP).close()
    with pytest.raises(StoreCorruptError, match="use open_store"):
        Store(tmp_path, backend="memory", shards=2, **NO_SLEEP)


def test_manifest_is_written_atomically(tmp_path):
    store = Store(tmp_path, backend="memory", shards=2, **NO_SLEEP)
    assert not list(tmp_path.glob("*.tmp"))  # no temp file left behind
    manifest = json.loads(store.manifest_path.read_text("utf-8"))
    assert manifest["backend"] == "memory"
    store.close()


def test_open_store_reuses_the_recorded_layout(tmp_path):
    store = Store(tmp_path, backend="sqlite", shards=2, **NO_SLEEP)
    seed_ops(store)
    digest = store.state_digest()
    store.close()

    reopened = open_store(tmp_path, **NO_SLEEP)
    assert reopened.backend_kind == "sqlite"
    assert reopened.shard_count == 2
    reopened.recover()
    assert reopened.state_digest() == digest
    reopened.close()


def test_open_store_without_a_manifest_is_corruption(tmp_path):
    with pytest.raises(StoreCorruptError, match="no store manifest"):
        open_store(tmp_path / "never-created")


def test_verify_prefixes_problems_with_the_shard(tmp_path):
    store = Store(tmp_path, backend="memory", shards=2, **NO_SLEEP)
    seed_ops(store)
    store.close()
    with (tmp_path / "shard-01" / "wal.log").open("ab") as handle:
        handle.write(b"\xff")
    problems = Store(tmp_path, backend="memory", shards=2, **NO_SLEEP).verify()
    assert any(problem.startswith("shard-01/") for problem in problems)
    assert not any(problem.startswith("shard-00/") for problem in problems)


def test_unknown_backend_is_rejected(tmp_path):
    with pytest.raises(ValueError, match="unknown store backend"):
        make_backend("postgres", tmp_path / "data.db")


def test_store_requires_at_least_one_shard(tmp_path):
    with pytest.raises(ValueError, match="at least one shard"):
        Store(tmp_path, shards=0, **NO_SLEEP)
