"""Golden-transcript test: protocol bytes are backend-invariant.

A fully deterministic (seeded) withdrawal + payment lifecycle is run and
its wire serialization hashed. The digest below was recorded under the
pure-python backend; the suite also runs in CI under ``REPRO_BACKEND=
gmpy2``, so any arithmetic divergence between the backends — or any
perf-engine shortcut that changes a protocol value — shows up here as a
digest mismatch, not as a subtle interop break later.
"""

import hashlib
import json

import pytest

from repro import perf
from repro.core.params import test_params as make_test_params
from repro.core.protocols import run_payment, run_withdrawal
from repro.core.system import EcashSystem


GOLDEN_SHA256 = "96c8cd47fb63cf416e792eaf143d2a784b7b7467cb87ae6d7cb88419f39aff40"


def _lifecycle_digest() -> str:
    system = EcashSystem(
        merchant_ids=("gold-shop", "gold-witness-a", "gold-witness-b"),
        params=make_test_params(),
        seed=20070625,
    )
    client = system.new_client()
    now = 10
    wires = []
    for _ in range(3):
        stored = run_withdrawal(client, system.broker, system.standard_info(100, now))
        merchant_id = next(
            mid for mid in system.nodes if mid != stored.coin.witness_id
        )
        signed = run_payment(
            client,
            stored,
            system.merchant(merchant_id),
            system.witness_of(stored),
            now,
        )
        wires.append(signed.to_wire())
    payload = json.dumps(wires, sort_keys=True, default=str)
    return hashlib.sha256(payload.encode()).hexdigest()


@pytest.mark.parametrize("engine", [False, True])
def test_lifecycle_bytes_match_golden_digest(engine):
    perf.reset()
    with perf.forced(engine):
        assert _lifecycle_digest() == GOLDEN_SHA256
