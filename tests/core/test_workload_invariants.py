"""Randomized-workload integration test: system invariants under load.

Drives a seeded random mix of withdrawals, payments, deposits, renewals
and double-spend attempts against one deployment and then checks the
global invariants the paper's design promises:

* money conservation (minted == held + burned);
* no honest merchant is ever left unpaid for an accepted payment;
* every double-spend attempt against an honest witness is refused with a
  verifying proof;
* the broker's float always covers the outstanding coin liability.
"""

import random

import pytest

from repro.core.broker import DepositOutcome
from repro.core.exceptions import DoubleSpendError, EcashError, RenewalRefusedError
from repro.core.protocols import run_deposit, run_payment, run_renewal, run_withdrawal
from repro.core.system import EcashSystem

MERCHANTS = tuple(f"shop-{i}" for i in range(5))


@pytest.mark.parametrize("seed", [11, 22, 33])
def test_random_workload_invariants(params, seed):
    system = EcashSystem(merchant_ids=MERCHANTS, params=params, seed=seed)
    rng = random.Random(seed * 13)
    clients = [system.new_client() for _ in range(3)]
    live_coins = []   # (client, stored)
    spent_coins = []  # (client, stored) kept by the "attacker" side
    accepted_payments = {m: 0 for m in MERCHANTS}
    refused_double_spends = 0
    clock = 0

    for step in range(60):
        clock += rng.randrange(1, 300)
        action = rng.random()
        client = rng.choice(clients)
        if action < 0.35 or not live_coins:
            denomination = rng.choice([1, 5, 25, 100])
            stored = run_withdrawal(
                client, system.broker, system.standard_info(denomination, now=clock)
            )
            live_coins.append((client, stored))
        elif action < 0.65:
            owner, stored = live_coins.pop(rng.randrange(len(live_coins)))
            merchant_id = rng.choice(
                [m for m in MERCHANTS if m != stored.coin.witness_id]
            )
            run_payment(
                owner, stored, system.merchant(merchant_id),
                system.witness_of(stored), clock,
            )
            accepted_payments[merchant_id] += stored.denomination
            spent_coins.append((owner, stored))
        elif action < 0.80 and spent_coins:
            # Double-spend attempt with an already-spent coin.
            owner, stored = rng.choice(spent_coins)
            merchant_id = rng.choice(
                [m for m in MERCHANTS if m != stored.coin.witness_id]
            )
            owner.wallet.add(stored)
            try:
                run_payment(
                    owner, stored, system.merchant(merchant_id),
                    system.witness_of(stored), clock,
                )
                raise AssertionError("double-spend accepted by an honest witness")
            except DoubleSpendError as refusal:
                assert refusal.proof.verify(system.params, stored.coin)
                refused_double_spends += 1
            except EcashError:
                pass  # e.g. merchant had already seen the coin itself
            finally:
                owner.mark_spent(stored)
        elif action < 0.9 and live_coins:
            owner, stored = live_coins.pop(rng.randrange(len(live_coins)))
            try:
                fresh = run_renewal(
                    owner, stored, system.broker,
                    system.standard_info(stored.denomination, now=clock), clock,
                )
                live_coins.append((owner, fresh))
            except RenewalRefusedError:  # pragma: no cover - not expected here
                raise
        else:
            merchant_id = rng.choice(MERCHANTS)
            results = run_deposit(system.merchant(merchant_id), system.broker, clock)
            for result in results:
                assert result.outcome is DepositOutcome.CREDITED

    # Final settlement: everyone deposits everything.
    clock += 1
    for merchant_id in MERCHANTS:
        run_deposit(system.merchant(merchant_id), system.broker, clock)

    # --- invariants -----------------------------------------------------
    assert system.ledger.conserved()
    for merchant_id in MERCHANTS:
        assert system.broker.merchant_balance(merchant_id) == accepted_payments[merchant_id]
        # Honest run: every security deposit is intact.
        assert system.broker.security_deposit_balance(merchant_id) == 100_00
    outstanding = sum(stored.denomination for _, stored in live_coins)
    assert system.ledger.balance(system.broker.account) >= outstanding
    if spent_coins:
        assert refused_double_spends >= 0  # recorded attempts all verified above


def test_workload_with_faulty_witnesses(params):
    """Same workload shape, but half the witnesses collude; merchants must
    still never lose money (case 2-b settles from witness escrow)."""
    system = EcashSystem(merchant_ids=MERCHANTS, params=params, seed=77)
    rng = random.Random(999)
    client = system.new_client()
    for merchant_id in list(MERCHANTS)[:2]:
        system.witness(merchant_id).faulty = True

    expected = {m: 0 for m in MERCHANTS}
    clock = 0
    for round_index in range(10):
        clock += 500
        stored = run_withdrawal(client, system.broker, system.standard_info(25, now=clock))
        witness = system.witness_of(stored)
        shops = [m for m in MERCHANTS if m != stored.coin.witness_id]
        first, second = rng.sample(shops, 2)
        run_payment(client, stored, system.merchant(first), witness, clock)
        expected[first] += 25
        client.wallet.add(stored)
        try:
            run_payment(client, stored, system.merchant(second), witness, clock + 200)
            expected[second] += 25  # colluding witness signed twice
        except DoubleSpendError:
            client.mark_spent(stored)

    clock += 1000
    for merchant_id in MERCHANTS:
        run_deposit(system.merchant(merchant_id), system.broker, clock)

    assert system.ledger.conserved()
    for merchant_id in MERCHANTS:
        # Every accepted payment was honored, fraud or not.
        assert system.broker.merchant_balance(merchant_id) == expected[merchant_id]
    # The colluding witnesses paid for the damage out of escrow.
    escrow_paid = sum(
        100_00 - system.broker.security_deposit_balance(m) for m in MERCHANTS
    )
    double_paid = sum(expected.values()) - 10 * 25
    assert escrow_paid == double_paid
