"""Tests for witness-list version transitions.

Withdrawal protocol requirement 3: "merchants do not need to store the
entire history of witness range assignments" — a coin carries its own
signed entry, so coins bound to old list versions keep working after the
broker publishes new versions.
"""

import pytest

from repro.core.exceptions import WrongWitnessError
from repro.core.protocols import run_deposit, run_payment, run_renewal, run_withdrawal
from tests.conftest import other_merchant


def test_old_version_coin_spendable_after_new_version(system, funded_client):
    client, stored = funded_client
    assert stored.coin.info.list_version == 1
    # The broker rolls the witness list twice.
    system.broker.publish_witness_table({m: 2.0 for m in system.merchant_ids})
    system.broker.publish_witness_table({m: 3.0 for m in system.merchant_ids})
    assert system.broker.current_table.version == 3
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    results = run_deposit(merchant, system.broker, now=20)
    assert results[0].amount == stored.denomination


def test_new_coins_bind_to_new_version(system):
    system.broker.publish_witness_table({m: 2.0 for m in system.merchant_ids})
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    assert stored.coin.info.list_version == 2
    assert stored.coin.witness_entry.version == 2


def test_version_confusion_rejected(system, funded_client):
    """A coin cannot borrow a witness entry from a different list version."""
    from repro.core.coin import Coin

    client, stored = funded_client
    table2 = system.broker.publish_witness_table({m: 1.0 for m in system.merchant_ids})
    digest = stored.coin.digest(system.params)
    v2_entry = table2.witness_for(digest)
    frankencoin = Coin(bare=stored.coin.bare, witness_entry=v2_entry)
    from repro.core.witness_ranges import verify_entry_matches

    with pytest.raises(WrongWitnessError):
        verify_entry_matches(
            system.params,
            system.broker.sign_public,
            frankencoin.witness_entry,
            digest,
            frankencoin.info.list_version,  # coin says v1, entry says v2
        )


def test_renewal_moves_coin_to_current_version(system, funded_client):
    client, stored = funded_client
    system.broker.publish_witness_table({m: 1.0 for m in system.merchant_ids})
    new_version = system.broker.current_table.version
    from repro.core.info import standard_info

    new_info = standard_info(25, new_version, now=100)
    fresh = run_renewal(client, stored, system.broker, new_info, now=100)
    assert fresh.coin.info.list_version == new_version
    assert fresh.coin.witness_entry.version == new_version


def test_broker_rejects_deposit_for_unknown_version(system, funded_client):
    """A coin claiming a version the broker never published is refused."""
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    # Surgically rewrite the broker's table registry to simulate a coin
    # referencing a version that no longer exists (e.g. pruned state).
    saved = system.broker.tables.pop(1)
    try:
        with pytest.raises(WrongWitnessError):
            system.broker.deposit(merchant.merchant_id, signed, now=20)
    finally:
        system.broker.tables[1] = saved
