"""Tests for batched withdrawal (Algorithm 1, step 0)."""

import pytest

from repro.core.protocols import run_batch_withdrawal, run_payment
from repro.core.system import EcashSystem
from repro.net.costmodel import instant_profile
from repro.net.services import BROKER_NODE, NetworkDeployment
from tests.conftest import other_merchant


def test_batch_withdrawal_yields_valid_coins(system):
    client = system.new_client()
    infos = [system.standard_info(d, now=0) for d in (1, 5, 25)]
    coins = run_batch_withdrawal(client, system.broker, infos)
    assert [c.denomination for c in coins] == [1, 5, 25]
    assert client.wallet.total_value() == 31
    for stored in coins:
        stored.coin.ensure_valid_signature(system.params, system.broker.blind_public)


def test_batch_charged_once_for_total(system):
    client = system.new_client()
    system.ledger.mint("client-card", 100)
    before = system.ledger.balance("client-card")
    run_batch_withdrawal(
        client,
        system.broker,
        [system.standard_info(10, now=0)] * 3,
        paid_by="client-card",
    )
    assert before - system.ledger.balance("client-card") == 30
    assert system.ledger.conserved()


def test_batch_coins_unlinkable_structure(system):
    """Independent blinding per coin: no shared values across the batch."""
    client = system.new_client()
    coins = run_batch_withdrawal(
        client, system.broker, [system.standard_info(25, now=0)] * 3
    )
    signatures = [c.coin.bare.signature for c in coins]
    secrets = [c.secrets for c in coins]
    assert len(set(signatures)) == 3
    assert len({s.x for s in secrets}) == 3
    commitments = [c.coin.bare.commitment_a for c in coins]
    assert len(set(commitments)) == 3


def test_batch_spendable(system):
    client = system.new_client()
    coins = run_batch_withdrawal(
        client, system.broker, [system.standard_info(25, now=0)] * 2
    )
    for stored in coins:
        merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
        run_payment(client, stored, merchant, system.witness_of(stored), now=10)


def test_empty_batch_rejected(system):
    with pytest.raises(ValueError):
        system.broker.begin_batch_withdrawal([])


def test_wrong_challenge_count_rejected(system):
    client = system.new_client()
    infos = [system.standard_info(25, now=0)] * 2
    ticket, challenges = system.broker.begin_batch_withdrawal(infos)
    with pytest.raises(ValueError):
        system.broker.complete_batch_withdrawal(ticket, [1])
    # The ticket survives a malformed completion attempt.
    sessions = [client.begin_withdrawal(i, c) for i, c in zip(infos, challenges)]
    responses = system.broker.complete_batch_withdrawal(ticket, [s.e for s in sessions])
    assert len(responses) == 2


def test_networked_batch_saves_messages_and_bytes(params):
    """The point of batching: 2 messages for K coins instead of 2K."""
    batch_size = 4

    def run(batched: bool) -> tuple[int, int]:
        system = EcashSystem(params=params, seed=500)
        deployment = NetworkDeployment(system, cost_model=instant_profile(), seed=500)
        deployment.add_client("c")
        infos = [system.standard_info(25, now=0) for _ in range(batch_size)]
        node = deployment.network.node("c")
        if batched:
            coins = deployment.run(deployment.batch_withdrawal_process("c", infos))
        else:
            coins = [
                deployment.run(deployment.withdrawal_process("c", info))
                for info in infos
            ]
        assert len(coins) == batch_size
        return node.meter.messages_sent, node.meter.sent_bytes

    batched_messages, batched_bytes = run(batched=True)
    separate_messages, separate_bytes = run(batched=False)
    assert batched_messages == 2
    assert separate_messages == 2 * batch_size
    assert batched_bytes < separate_bytes  # HTTP framing amortized away
