"""Fuzz the wire parsers: malformed input must fail loudly, never crash.

Every ``from_wire`` parser and the query-string decoder are fed corrupted
versions of valid messages (bit flips, truncations, duplications, type
confusion). The contract: a clean Python exception from a small allowed
set — never an unhandled crash, never silent acceptance of a corrupted
cryptographic object.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.coin import Coin
from repro.core.protocols import run_payment, run_withdrawal
from repro.core.transcripts import PaymentTranscript, SignedTranscript, WitnessCommitment
from repro.crypto.serialize import decode, encode
from tests.conftest import other_merchant

#: The only exception types a parser may raise on malformed input.
PARSE_ERRORS = (ValueError, KeyError, TypeError)


@pytest.fixture(scope="module")
def wire_corpus(params):
    """Valid wire strings for each protocol object."""
    from repro.core.system import EcashSystem

    system = EcashSystem(params=params, seed=404)
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    merchant_id = other_merchant(system, stored.coin.witness_id)
    witness = system.witness_of(stored)
    request, pending = client.prepare_commitment_request(stored, merchant_id, 10)
    commitment = witness.request_commitment(request, 10)
    transcript = client.build_payment(pending, commitment, witness.public_key, 10)
    signed = witness.sign_transcript(transcript, 10)
    return {
        Coin: encode(stored.coin.to_wire()),
        WitnessCommitment: encode(commitment.to_wire()),
        PaymentTranscript: encode(transcript.to_wire()),
        SignedTranscript: encode(signed.to_wire()),
    }


def corrupt(wire: str, rng: random.Random) -> str:
    """Apply one random corruption to a wire string."""
    mode = rng.randrange(5)
    if mode == 0 and len(wire) > 2:  # truncate
        return wire[: rng.randrange(1, len(wire))]
    if mode == 1:  # flip a character
        index = rng.randrange(len(wire))
        return wire[:index] + chr(33 + rng.randrange(90)) + wire[index + 1 :]
    if mode == 2:  # drop a field
        fields = wire.split("&")
        fields.pop(rng.randrange(len(fields)))
        return "&".join(fields)
    if mode == 3:  # duplicate a field
        fields = wire.split("&")
        fields.append(rng.choice(fields))
        return "&".join(fields)
    # swap two values
    fields = wire.split("&")
    if len(fields) >= 2:
        i, j = rng.sample(range(len(fields)), 2)
        key_i, _, value_i = fields[i].partition("=")
        key_j, _, value_j = fields[j].partition("=")
        fields[i] = f"{key_i}={value_j}"
        fields[j] = f"{key_j}={value_i}"
    return "&".join(fields)


@pytest.mark.parametrize("seed", range(6))
def test_corrupted_wire_never_crashes(wire_corpus, params, seed):
    rng = random.Random(seed)
    system_broker_key = None
    for cls, wire in wire_corpus.items():
        for _ in range(40):
            mangled = corrupt(wire, rng)
            try:
                fields = decode(mangled)
                parsed = cls.from_wire(fields)
            except PARSE_ERRORS:
                continue  # loud, typed failure: exactly what we want
            # If parsing "succeeded", the object must be structurally valid
            # Python data; cryptographic checks downstream are what decide
            # authenticity (tested elsewhere). Nothing to assert beyond
            # not crashing.
            assert parsed is not None


def test_valid_corpus_roundtrips(wire_corpus):
    for cls, wire in wire_corpus.items():
        parsed = cls.from_wire(decode(wire))
        assert encode(parsed.to_wire()) == wire


@settings(deadline=None, max_examples=80)
@given(st.text(max_size=200))
def test_decoder_handles_arbitrary_text(text):
    try:
        decode(text)
    except PARSE_ERRORS:
        pass


@settings(deadline=None, max_examples=60)
@given(st.text(max_size=120))
def test_coin_parser_handles_arbitrary_text(text):
    try:
        Coin.from_wire(decode(text))
    except PARSE_ERRORS:
        pass


def test_tampered_but_parseable_coin_fails_crypto(wire_corpus, params):
    """A wire coin with two value fields swapped parses but cannot verify."""
    from repro.core.system import EcashSystem

    system = EcashSystem(params=params, seed=405)
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    fields = decode(encode(stored.coin.to_wire()))
    fields["bare.sig.rho"], fields["bare.sig.sigma"] = (
        fields["bare.sig.sigma"],
        fields["bare.sig.rho"],
    )
    tampered = Coin.from_wire(fields)
    assert not tampered.bare.verify_signature(system.params, system.broker.blind_public)
