"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.core.protocols import run_withdrawal


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_demo(capsys):
    code, out = run_cli(capsys, "demo")
    assert code == 0
    assert "ledger conserved = True" in out


def test_demo_custom_denomination(capsys):
    code, out = run_cli(capsys, "--seed", "3", "demo", "--denomination", "99")
    assert code == 0
    assert "0.99" in out


def test_attack(capsys):
    code, out = run_cli(capsys, "attack")
    assert code == 0
    assert "refused in real time" in out
    assert "proof verifies: True" in out


def test_table1(capsys):
    code, out = run_cli(capsys, "table1")
    assert code == 0
    assert "12/4/0/1" in out
    assert "NO" not in out.replace("NO.", "")


def test_table2_fast(capsys):
    code, out = run_cli(capsys, "table2", "--trials", "3", "--fast")
    assert code == 0
    assert "Table 2" in out
    assert "Paper avg" in out


def test_rounds(capsys):
    code, out = run_cli(capsys, "rounds")
    assert code == 0
    assert "withdrawal" in out


def test_trace(capsys):
    code, out = run_cli(capsys, "trace")
    assert code == 0
    assert "witness/commit" in out
    assert "deposit" in out


def test_wallet(capsys, system, tmp_path):
    client = system.new_client()
    run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    path = tmp_path / "wallet.json"
    client.wallet.save(path)
    code, out = run_cli(capsys, "wallet", str(path))
    assert code == 0
    assert "total 25 cents" in out


def test_unknown_command_errors():
    with pytest.raises(SystemExit):
        main(["no-such-command"])
