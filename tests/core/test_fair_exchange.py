"""Tests for the optimistic fair-exchange extension."""

import pytest

from repro.core.fair_exchange import (
    FairExchangeArbiter,
    FxDispute,
    FxResolution,
    decrypt_good,
    encrypt_good,
    make_offer,
    prepare_bound_payment,
    verify_binding,
    verify_delivered_key,
)
from repro.core.merchant import PaymentRequest
from repro.core.protocols import run_deposit
from tests.conftest import other_merchant

GOOD = b"Chapter 1. It was a bright cold day in April..." * 4
PRICE = 25


@pytest.fixture()
def exchange_setup(system, funded_client):
    client, stored = funded_client
    merchant_id = other_merchant(system, stored.coin.witness_id)
    merchant = system.merchant(merchant_id)
    witness = system.witness_of(stored)
    offer, blob, key = make_offer(
        system.params, merchant.keypair, merchant_id, "novel-ch1", PRICE, GOOD, now=0
    )
    return client, stored, merchant, witness, offer, blob, key


def run_bound_payment(system, client, stored, offer, witness, now=10):
    """Drive the standard payment protocol with an offer-bound salt."""
    request, pending, opening = prepare_bound_payment(
        system.params, client, stored, offer, now
    )
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    merchant = system.merchant(offer.merchant_id)
    merchant.verify_payment_request(
        PaymentRequest(transcript=transcript, commitment=commitment), now
    )
    signed = witness.sign_transcript(transcript, now)
    merchant.accept_signed_transcript(signed, now)
    client.mark_spent(stored)
    return transcript, opening


class TestSymmetricLayer:
    def test_roundtrip(self):
        assert decrypt_good(42, encrypt_good(42, GOOD)) == GOOD

    def test_wrong_key_garbage(self):
        assert decrypt_good(43, encrypt_good(42, GOOD)) != GOOD

    def test_empty_good(self):
        assert decrypt_good(1, encrypt_good(1, b"")) == b""


class TestHappyPath:
    def test_offer_verifies(self, system, exchange_setup):
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        assert offer.verify(system.params, merchant.public_key)
        assert not offer.verify(system.params, system.broker.sign_public)

    def test_pay_then_decrypt(self, system, exchange_setup):
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        transcript, opening = run_bound_payment(system, client, stored, offer, witness)
        # Merchant delivers the key; client verifies and decrypts.
        assert verify_delivered_key(system.params, offer, key)
        assert decrypt_good(key, blob) == GOOD
        # The payment is a perfectly normal one: it deposits fine.
        results = run_deposit(merchant, system.broker, now=100)
        assert results[0].amount == PRICE

    def test_binding_provable_and_private(self, system, exchange_setup):
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        transcript, opening = run_bound_payment(system, client, stored, offer, witness)
        assert verify_binding(system.params, transcript, offer, opening)
        assert not verify_binding(system.params, transcript, offer, opening + 1)
        # Without the opening, the salt is an opaque hash — indistinguishable
        # from a normal payment's random salt (structural privacy check).
        assert transcript.salt != offer.digest(system.params)


class TestDisputes:
    @pytest.fixture()
    def arbiter(self, system):
        return FairExchangeArbiter(params=system.params, broker=system.broker)

    def test_withheld_key_forced_release(self, system, exchange_setup, arbiter):
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        transcript, opening = run_bound_payment(system, client, stored, offer, witness)
        dispute = FxDispute(
            offer=offer, transcript=transcript, opening=opening, encrypted_good=blob
        )
        resolution, released = arbiter.resolve(
            dispute, merchant.public_key, witness,
            merchant_key=key,  # merchant answers the arbiter's demand
            refund_account="refund:client", now=50,
        )
        assert resolution is FxResolution.KEY_RELEASED
        assert decrypt_good(released, blob) == GOOD

    def test_unresponsive_merchant_refund(self, system, exchange_setup, arbiter):
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        transcript, opening = run_bound_payment(system, client, stored, offer, witness)
        run_deposit(merchant, system.broker, now=60)  # merchant even cashed it
        dispute = FxDispute(
            offer=offer, transcript=transcript, opening=opening, encrypted_good=blob
        )
        resolution, released = arbiter.resolve(
            dispute, merchant.public_key, witness,
            merchant_key=None,  # merchant never answers
            refund_account="refund:client", now=50,
        )
        assert resolution is FxResolution.CLIENT_REFUNDED
        assert released is None
        assert system.ledger.balance("refund:client") == PRICE
        assert system.ledger.conserved()

    def test_wrong_key_refund(self, system, exchange_setup, arbiter):
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        transcript, opening = run_bound_payment(system, client, stored, offer, witness)
        run_deposit(merchant, system.broker, now=60)
        dispute = FxDispute(
            offer=offer, transcript=transcript, opening=opening, encrypted_good=blob
        )
        resolution, _ = arbiter.resolve(
            dispute, merchant.public_key, witness,
            merchant_key=key + 1,  # merchant hands over garbage
            refund_account="refund:client", now=50,
        )
        assert resolution is FxResolution.CLIENT_REFUNDED
        assert system.ledger.balance("refund:client") == PRICE

    def test_bogus_claim_rejected_no_payment(self, system, exchange_setup, arbiter):
        """A client who never paid cannot extort a refund."""
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        # Build a transcript locally but never run it past the witness.
        request, pending, opening = prepare_bound_payment(
            system.params, client, stored, offer, now=10
        )
        commitment = witness.request_commitment(request, 10)
        transcript = client.build_payment(pending, commitment, witness.public_key, 10)
        dispute = FxDispute(
            offer=offer, transcript=transcript, opening=opening, encrypted_good=blob
        )
        resolution, _ = arbiter.resolve(
            dispute, merchant.public_key, witness,
            merchant_key=None, refund_account="refund:client", now=50,
        )
        assert resolution is FxResolution.CLAIM_REJECTED
        assert system.ledger.balance("refund:client") == 0

    def test_bogus_claim_rejected_wrong_binding(self, system, exchange_setup, arbiter):
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        transcript, opening = run_bound_payment(system, client, stored, offer, witness)
        dispute = FxDispute(
            offer=offer, transcript=transcript, opening=opening ^ 1, encrypted_good=blob
        )
        resolution, _ = arbiter.resolve(
            dispute, merchant.public_key, witness,
            merchant_key=None, refund_account="refund:client", now=50,
        )
        assert resolution is FxResolution.CLAIM_REJECTED

    def test_forged_offer_rejected(self, system, exchange_setup, arbiter):
        client, stored, merchant, witness, offer, blob, key = exchange_setup
        transcript, opening = run_bound_payment(system, client, stored, offer, witness)
        from dataclasses import replace

        inflated = replace(offer, price=offer.price * 100)
        dispute = FxDispute(
            offer=inflated, transcript=transcript, opening=opening, encrypted_good=blob
        )
        resolution, _ = arbiter.resolve(
            dispute, merchant.public_key, witness,
            merchant_key=None, refund_account="refund:client", now=50,
        )
        assert resolution is FxResolution.CLAIM_REJECTED
