"""Tests for CoinInfo and the coin model."""

import pytest

from repro.core.coin import BareCoin, Coin
from repro.core.exceptions import ExpiredCoinError, InvalidCoinError
from repro.core.info import CoinInfo, standard_info
from repro.core.protocols import run_withdrawal
from repro.crypto.blind import PartiallyBlindSignature


def make_info(**overrides):
    base = dict(denomination=25, list_version=1, soft_expiry=100, hard_expiry=200)
    base.update(overrides)
    return CoinInfo(**base)


class TestCoinInfo:
    def test_validation(self):
        with pytest.raises(ValueError):
            make_info(denomination=0)
        with pytest.raises(ValueError):
            make_info(hard_expiry=100)  # equal to soft
        with pytest.raises(ValueError):
            make_info(list_version=-1)

    def test_lifecycle_windows(self):
        info = make_info()
        assert info.is_spendable(50)
        assert not info.is_spendable(100)
        assert info.is_renewable(150)
        assert not info.is_renewable(200)
        assert info.is_void(200)
        assert not info.is_void(199)

    def test_renewable_before_soft_expiry(self):
        # A not-yet-expired coin is renewable too (unavailable-witness path).
        assert make_info().is_renewable(10)

    def test_wire_roundtrip(self):
        info = make_info()
        flat = {k: v for k, v in info.to_wire().items()}
        from repro.crypto.serialize import int_to_text

        text_fields = {k: int_to_text(v) for k, v in flat.items()}
        assert CoinInfo.from_wire(text_fields) == info

    def test_standard_info_windows(self):
        info = standard_info(25, 3, now=1000)
        assert info.soft_expiry == 1000 + 30 * 24 * 3600
        assert info.hard_expiry == info.soft_expiry + 60 * 24 * 3600
        assert info.list_version == 3

    def test_hash_parts_distinct(self):
        assert make_info().hash_parts() != make_info(denomination=26).hash_parts()

    def test_short_label(self):
        assert make_info(denomination=125).short_label() == "1.25 (list v1)"


class TestCoin:
    @pytest.fixture()
    def stored(self, system):
        client = system.new_client()
        return run_withdrawal(client, system.broker, system.standard_info(25, now=0))

    def test_signature_verifies(self, system, stored):
        assert stored.coin.bare.verify_signature(system.params, system.broker.blind_public)
        stored.coin.ensure_valid_signature(system.params, system.broker.blind_public)

    def test_digest_stable_and_in_space(self, system, stored):
        digest = stored.coin.digest(system.params)
        assert digest == stored.coin.bare.digest(system.params)
        assert 0 <= digest < system.params.witness_hash_space

    def test_witness_matches_digest(self, system, stored):
        digest = stored.coin.digest(system.params)
        assert stored.coin.witness_entry.range.contains(digest)
        expected = system.broker.current_table.witness_for(digest)
        assert expected.merchant_id == stored.coin.witness_id

    @pytest.mark.parametrize("field", ["rho", "omega", "sigma", "delta"])
    def test_tampered_signature_fails(self, system, stored, field):
        sig = stored.coin.bare.signature
        values = {
            "rho": sig.rho, "omega": sig.omega, "sigma": sig.sigma, "delta": sig.delta
        }
        values[field] = (values[field] + 1) % system.params.group.q
        tampered = BareCoin(
            signature=PartiallyBlindSignature(**values),
            info=stored.coin.bare.info,
            commitment_a=stored.coin.bare.commitment_a,
            commitment_b=stored.coin.bare.commitment_b,
        )
        assert not tampered.verify_signature(system.params, system.broker.blind_public)

    def test_tampered_info_fails(self, system, stored):
        bumped = CoinInfo(
            denomination=stored.coin.info.denomination * 100,  # try to inflate value
            list_version=stored.coin.info.list_version,
            soft_expiry=stored.coin.info.soft_expiry,
            hard_expiry=stored.coin.info.hard_expiry,
        )
        tampered = BareCoin(
            signature=stored.coin.bare.signature,
            info=bumped,
            commitment_a=stored.coin.bare.commitment_a,
            commitment_b=stored.coin.bare.commitment_b,
        )
        assert not tampered.verify_signature(system.params, system.broker.blind_public)
        with pytest.raises(InvalidCoinError):
            Coin(bare=tampered, witness_entry=stored.coin.witness_entry).ensure_valid_signature(
                system.params, system.broker.blind_public
            )

    def test_tampered_commitments_fail(self, system, stored):
        tampered = BareCoin(
            signature=stored.coin.bare.signature,
            info=stored.coin.bare.info,
            commitment_a=stored.coin.bare.commitment_b,  # swapped
            commitment_b=stored.coin.bare.commitment_a,
        )
        assert not tampered.verify_signature(system.params, system.broker.blind_public)

    def test_expiry_enforcement(self, system, stored):
        stored.coin.ensure_spendable(now=0)
        with pytest.raises(ExpiredCoinError):
            stored.coin.ensure_spendable(now=stored.coin.info.soft_expiry)

    def test_wire_roundtrip(self, system, stored):
        from repro.crypto.serialize import decode, encode

        wire = encode(stored.coin.to_wire())
        restored = Coin.from_wire(decode(wire))
        assert restored == stored.coin

    def test_properties(self, stored):
        assert stored.coin.denomination == 25
        assert stored.coin.info is stored.coin.bare.info
        assert stored.denomination == 25
