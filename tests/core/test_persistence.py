"""Tests for broker state persistence across restarts."""

import pytest

from repro.core.exceptions import DoubleDepositError, RenewalRefusedError
from repro.core.persistence import load_broker, save_broker
from repro.core.protocols import run_deposit, run_payment, run_renewal, run_withdrawal
from tests.conftest import other_merchant


@pytest.fixture()
def busy_system(system, funded_client, tmp_path):
    """A system with a deposit and a renewal already in the books."""
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    run_deposit(merchant, system.broker, now=20)
    renewed_source = run_withdrawal(client, system.broker, system.standard_info(50, now=0))
    fresh = run_renewal(
        client, renewed_source, system.broker, system.standard_info(50, now=30), now=30
    )
    path = tmp_path / "broker-state.json"
    save_broker(system.broker, path)
    return system, client, merchant, signed, renewed_source, fresh, path


def test_keys_survive_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    assert restored.blind_public == system.broker.blind_public
    assert restored.sign_public == system.broker.sign_public


def test_old_coins_verify_after_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    fresh.coin.ensure_valid_signature(system.params, restored.blind_public)
    # The witness tables came back signed and valid.
    table = restored.current_table
    entry = table.witness_for(fresh.coin.digest(system.params))
    assert entry.merchant_id == fresh.coin.witness_id


def test_double_deposit_detected_across_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    with pytest.raises(DoubleDepositError):
        restored.deposit(merchant.merchant_id, signed, now=100)


def test_renewal_refused_across_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    client.wallet.add(renewed_source)
    with pytest.raises(RenewalRefusedError) as refusal:
        run_renewal(
            client, renewed_source, restored, system.standard_info(50, now=200), now=200
        )
    assert refusal.value.proof.verify(system.params, renewed_source.coin)


def test_ledger_restored_and_conserved(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    assert restored.ledger.conserved()
    assert restored.merchant_balance(merchant.merchant_id) == system.broker.merchant_balance(
        merchant.merchant_id
    )
    for merchant_id in system.merchant_ids:
        assert restored.security_deposit_balance(
            merchant_id
        ) == system.broker.security_deposit_balance(merchant_id)


def test_new_withdrawals_work_after_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    # A brand-new client can withdraw and spend against the restored broker.
    newcomer = system.new_client()
    stored = run_withdrawal(newcomer, restored, system.standard_info(25, now=300))
    stored.coin.ensure_valid_signature(system.params, system.broker.blind_public)


def test_version_check(tmp_path, system):
    path = tmp_path / "state.json"
    path.write_text('{"version": 999}')
    with pytest.raises(ValueError):
        load_broker(path, system.params)


def test_merchant_registry_restored(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    assert set(restored.merchants) == set(system.merchant_ids)
    for merchant_id in system.merchant_ids:
        assert (
            restored.merchants[merchant_id].public_key
            == system.broker.merchants[merchant_id].public_key
        )
