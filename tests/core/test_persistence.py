"""Tests for broker state persistence across restarts."""

import pytest

from repro.core.exceptions import DoubleDepositError, RenewalRefusedError
from repro.core.persistence import (
    attach_broker_store,
    attach_witness_journal,
    broker_spaces,
    load_broker,
    load_broker_from_store,
    restore_witness,
    save_broker,
    witness_spaces,
)
from repro.core.protocols import run_deposit, run_payment, run_renewal, run_withdrawal
from repro.core.witness import WitnessService
from repro.store import Store
from tests.conftest import other_merchant

NO_SLEEP = {"sleep": lambda _delay: None}


@pytest.fixture()
def busy_system(system, funded_client, tmp_path):
    """A system with a deposit and a renewal already in the books."""
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    run_deposit(merchant, system.broker, now=20)
    renewed_source = run_withdrawal(client, system.broker, system.standard_info(50, now=0))
    fresh = run_renewal(
        client, renewed_source, system.broker, system.standard_info(50, now=30), now=30
    )
    path = tmp_path / "broker-state.json"
    save_broker(system.broker, path)
    return system, client, merchant, signed, renewed_source, fresh, path


def test_keys_survive_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    assert restored.blind_public == system.broker.blind_public
    assert restored.sign_public == system.broker.sign_public


def test_old_coins_verify_after_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    fresh.coin.ensure_valid_signature(system.params, restored.blind_public)
    # The witness tables came back signed and valid.
    table = restored.current_table
    entry = table.witness_for(fresh.coin.digest(system.params))
    assert entry.merchant_id == fresh.coin.witness_id


def test_double_deposit_detected_across_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    with pytest.raises(DoubleDepositError):
        restored.deposit(merchant.merchant_id, signed, now=100)


def test_renewal_refused_across_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    client.wallet.add(renewed_source)
    with pytest.raises(RenewalRefusedError) as refusal:
        run_renewal(
            client, renewed_source, restored, system.standard_info(50, now=200), now=200
        )
    assert refusal.value.proof.verify(system.params, renewed_source.coin)


def test_ledger_restored_and_conserved(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    assert restored.ledger.conserved()
    assert restored.merchant_balance(merchant.merchant_id) == system.broker.merchant_balance(
        merchant.merchant_id
    )
    for merchant_id in system.merchant_ids:
        assert restored.security_deposit_balance(
            merchant_id
        ) == system.broker.security_deposit_balance(merchant_id)


def test_new_withdrawals_work_after_restart(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    # A brand-new client can withdraw and spend against the restored broker.
    newcomer = system.new_client()
    stored = run_withdrawal(newcomer, restored, system.standard_info(25, now=300))
    stored.coin.ensure_valid_signature(system.params, system.broker.blind_public)


def test_version_check(tmp_path, system):
    path = tmp_path / "state.json"
    path.write_text('{"version": 999}')
    with pytest.raises(ValueError):
        load_broker(path, system.params)


def test_merchant_registry_restored(busy_system):
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    restored = load_broker(path, system.params)
    assert set(restored.merchants) == set(system.merchant_ids)
    for merchant_id in system.merchant_ids:
        assert (
            restored.merchants[merchant_id].public_key
            == system.broker.merchants[merchant_id].public_key
        )


# ----------------------------------------------------------------------
# Exhaustive snapshot round-trips (including in-flight tickets)
# ----------------------------------------------------------------------

def test_save_load_save_is_byte_identical_with_inflight_tickets(
    busy_system, tmp_path
):
    """Every table round-trips: the second save equals the first, byte
    for byte, even with withdrawal and batch tickets still in flight."""
    system, client, merchant, signed, renewed_source, fresh, path = busy_system
    broker = system.broker
    # Leave a plain ticket and a batch ticket open mid-protocol.
    broker.begin_withdrawal(system.standard_info(25, now=40))
    broker.begin_batch_withdrawal(
        [system.standard_info(25, now=41), system.standard_info(50, now=41)]
    )
    assert broker._tickets and broker._batch_tickets
    assert broker._renewals and broker._deposits
    first = tmp_path / "first.json"
    second = tmp_path / "second.json"
    save_broker(broker, first)
    reloaded = load_broker(first, system.params)
    save_broker(reloaded, second)
    assert first.read_bytes() == second.read_bytes()
    assert broker_spaces(reloaded) == broker_spaces(broker)


def test_inflight_tickets_complete_against_the_restored_broker(
    system, tmp_path
):
    """A withdrawal begun before the save finishes after the load."""
    client = system.new_client()
    info = system.standard_info(25, now=0)
    ticket, challenge = system.broker.begin_withdrawal(info)
    signer = client.begin_withdrawal(info, challenge)
    path = tmp_path / "mid-withdrawal.json"
    save_broker(system.broker, path)
    restored = load_broker(path, system.params)
    response = restored.complete_withdrawal(ticket, signer.e)
    stored = client.finish_withdrawal(signer, response, restored.current_table)
    stored.coin.ensure_valid_signature(system.params, restored.blind_public)
    # The ticket was consumed by the restored broker too.
    with pytest.raises(KeyError):
        restored.complete_withdrawal(ticket, signer.e)


def test_ticket_counter_does_not_collide_after_restore(system, tmp_path):
    info = system.standard_info(25, now=0)
    ticket, _challenge = system.broker.begin_withdrawal(info)
    path = tmp_path / "counter.json"
    save_broker(system.broker, path)
    restored = load_broker(path, system.params)
    fresh_ticket, _ = restored.begin_withdrawal(info)
    assert fresh_ticket > ticket


# ----------------------------------------------------------------------
# Journaling into a store + crash recovery
# ----------------------------------------------------------------------

@pytest.mark.parametrize("backend", ("memory", "sqlite"))
def test_journaled_broker_recovers_from_the_store(
    system, funded_client, tmp_path, backend
):
    store = Store(tmp_path / "state", backend=backend, shards=4, **NO_SLEEP)
    attach_broker_store(system.broker, store)
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    run_deposit(merchant, system.broker, now=20)
    expected = broker_spaces(system.broker)
    store.close()  # crash: nothing flushed beyond the acknowledged journal

    reopened = Store(tmp_path / "state", backend=backend, shards=4, **NO_SLEEP)
    restored = load_broker_from_store(reopened, system.params)
    assert broker_spaces(restored) == expected
    assert restored.ledger.conserved()
    with pytest.raises(DoubleDepositError):
        restored.deposit(merchant.merchant_id, signed, now=100)
    reopened.close()


def test_attach_broker_store_restores_in_place(system, funded_client, tmp_path):
    store = Store(tmp_path / "state", backend="memory", shards=2, **NO_SLEEP)
    attach_broker_store(system.broker, store)
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    run_deposit(merchant, system.broker, now=20)
    expected = broker_spaces(system.broker)
    store.close()

    reopened = Store(tmp_path / "state", backend="memory", shards=2, **NO_SLEEP)
    # Same broker object: references held by dispatchers stay valid.
    stats = attach_broker_store(system.broker, reopened)
    assert broker_spaces(system.broker) == expected
    assert stats.replayed_records > 0
    reopened.close()


def test_load_broker_from_empty_store_is_an_error(system, tmp_path):
    store = Store(tmp_path / "empty", backend="memory", shards=1, **NO_SLEEP)
    with pytest.raises(ValueError, match="no broker state"):
        load_broker_from_store(store, system.params)
    store.close()


# ----------------------------------------------------------------------
# Atomic settlement: a half-journaled deposit never survives recovery
# ----------------------------------------------------------------------

class PowerLoss(Exception):
    """Simulated crash between the record fsyncs and the commit marker."""


@pytest.mark.parametrize("backend", ("memory", "sqlite"))
def test_crashed_deposit_is_discarded_whole_and_safe_to_retry(
    system, funded_client, tmp_path, backend
):
    """A crash mid-settlement must not leave the merchant credited
    without a deposit record — the retry would double-credit."""
    store = Store(tmp_path / "state", backend=backend, shards=4, **NO_SLEEP)
    attach_broker_store(system.broker, store)
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, system.witness_of(stored), now=10)

    def crash_before_marker():
        raise PowerLoss()

    store.commit = crash_before_marker  # the marker never reaches disk
    with pytest.raises(PowerLoss):
        system.broker.deposit(merchant.merchant_id, signed, now=20)
    store.close()  # flushes the orphaned records; still no marker

    reopened = Store(tmp_path / "state", backend=backend, shards=4, **NO_SLEEP)
    restored = load_broker_from_store(reopened, system.params)
    # Neither half of the settlement survived: no credit, no record.
    assert restored.merchant_balance(merchant.merchant_id) == 0
    assert not restored._deposits
    assert restored.ledger.conserved()
    # The retry is then an ordinary first deposit: exactly one credit.
    restored.deposit(merchant.merchant_id, signed, now=30)
    assert restored.merchant_balance(merchant.merchant_id) == 25
    with pytest.raises(DoubleDepositError):
        restored.deposit(merchant.merchant_id, signed, now=40)
    reopened.close()


def test_begin_renewal_journals_its_ticket(system, tmp_path):
    store = Store(tmp_path / "state", backend="memory", shards=2, **NO_SLEEP)
    attach_broker_store(system.broker, store)
    ticket_id, _challenge = system.broker.begin_renewal(
        system.standard_info(50, now=30)
    )
    assert store.get("tickets", str(ticket_id)) is not None
    meta = store.get("meta", "state")
    assert meta["next_ticket"] == ticket_id + 1
    store.close()

    reopened = Store(tmp_path / "state", backend="memory", shards=2, **NO_SLEEP)
    restored = load_broker_from_store(reopened, system.params)
    # The in-flight ticket survived, and the counter moved past it.
    assert ticket_id in restored._tickets
    fresh_ticket, _ = restored.begin_withdrawal(system.standard_info(25, now=31))
    assert fresh_ticket > ticket_id
    reopened.close()


def test_journaled_meta_matches_the_full_snapshot(system, tmp_path):
    """The incremental meta record equals the one a full dump produces."""
    store = Store(tmp_path / "state", backend="memory", shards=2, **NO_SLEEP)
    attach_broker_store(system.broker, store)
    system.broker.begin_withdrawal(system.standard_info(25, now=0))
    assert store.get("meta", "state") == broker_spaces(system.broker)["meta"]
    store.close()


def test_recovery_rejects_a_record_without_its_funding_credit(
    system, funded_client, tmp_path
):
    from repro.store import StoreCorruptError

    store = Store(tmp_path / "state", backend="memory", shards=2, **NO_SLEEP)
    attach_broker_store(system.broker, store)
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    run_deposit(merchant, system.broker, now=20)
    # Surgically remove the funding movement, leaving the deposit record.
    ledger_table = store.dump()["ledger"]
    key = next(k for k, v in ledger_table.items() if v["memo"] == "coin deposit")
    store.delete("ledger", key)
    store.ack()
    store.close()

    reopened = Store(tmp_path / "state", backend="memory", shards=2, **NO_SLEEP)
    with pytest.raises(StoreCorruptError, match="without its funding movement"):
        load_broker_from_store(reopened, system.params)
    reopened.close()


# ----------------------------------------------------------------------
# Witness journaling round-trips
# ----------------------------------------------------------------------

def test_witness_journal_round_trips_through_a_store(
    system, funded_client, tmp_path
):
    client, stored = funded_client
    witness = system.witness_of(stored)
    store = Store(tmp_path / "witness", backend="sqlite", shards=2, **NO_SLEEP)
    attach_witness_journal(witness, store)
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    run_payment(client, stored, merchant, witness, now=10)
    expected = witness_spaces(witness)
    store.close()

    reopened = Store(tmp_path / "witness", backend="sqlite", shards=2, **NO_SLEEP)
    reopened.recover()
    blank = WitnessService(
        params=system.params,
        merchant_id=witness.merchant_id,
        keypair=witness.keypair,
        broker_sign_public=witness.broker_sign_public,
        broker_blind_public=witness.broker_blind_public,
    )
    restore_witness(blank, reopened.dump())
    assert witness_spaces(blank) == expected
    assert blank.signed_count == witness.signed_count
    digest = stored.coin.digest(system.params)
    assert digest in blank._spent
    reopened.close()
