"""Tests for the payment protocol (Algorithm 2), honest and adversarial."""

import pytest

from repro.core.client import PendingPayment
from repro.core.exceptions import (
    CommitmentError,
    CommitmentOutstandingError,
    ExpiredCoinError,
    InvalidPaymentError,
    WrongWitnessError,
)
from repro.core.merchant import PaymentRequest
from repro.core.protocols import run_payment, run_withdrawal
from repro.core.transcripts import CommitmentRequest, PaymentTranscript, WitnessCommitment
from tests.conftest import other_merchant


@pytest.fixture()
def payment_parties(system, funded_client):
    client, stored = funded_client
    merchant_id = other_merchant(system, stored.coin.witness_id)
    return client, stored, system.merchant(merchant_id), system.witness_of(stored)


def test_happy_path(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    signed = run_payment(client, stored, merchant, witness, now=10)
    assert signed.verify_witness_signature(system.params, witness.public_key)
    assert stored not in client.wallet.coins
    assert merchant.pending_deposits() == [signed]
    assert witness.has_seen(stored.coin.digest(system.params))


def test_payment_at_witness_itself(system, funded_client):
    """A coin can be spent AT its witness merchant too."""
    client, stored = funded_client
    witness_id = stored.coin.witness_id
    signed = run_payment(
        client, stored, system.merchant(witness_id), system.witness(witness_id), now=10
    )
    assert signed.transcript.merchant_id == witness_id


def test_expired_coin_refused_by_client(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    with pytest.raises(ExpiredCoinError):
        client.prepare_commitment_request(
            stored, merchant.merchant_id, now=stored.coin.info.soft_expiry + 1
        )


def test_expired_coin_refused_by_witness(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    late = stored.coin.info.soft_expiry + 1
    # Reissue commitment far in the future so only the coin expiry fails.
    with pytest.raises(ExpiredCoinError):
        witness.sign_transcript(transcript, late)


def test_wrong_witness_refuses(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    impostor_id = next(
        m for m in system.merchant_ids
        if m not in (stored.coin.witness_id, merchant.merchant_id)
    )
    impostor = system.witness(impostor_id)
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = impostor.request_commitment(request, now)
    # The client itself catches the wrong witness id on the commitment.
    with pytest.raises(CommitmentError):
        client.build_payment(pending, commitment, impostor.public_key, now)


def test_wrong_witness_sign_refused(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    impostor_id = next(
        m for m in system.merchant_ids
        if m not in (stored.coin.witness_id, merchant.merchant_id)
    )
    impostor = system.witness(impostor_id)
    impostor.request_commitment(request, now)  # has a commitment, still not the witness
    with pytest.raises(WrongWitnessError):
        impostor.sign_transcript(transcript, now)


def test_commitment_outstanding_blocks_second_nonce(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request_a, _ = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    witness.request_commitment(request_a, now)
    request_b, _ = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    assert request_a.nonce != request_b.nonce  # fresh salt
    with pytest.raises(CommitmentOutstandingError):
        witness.request_commitment(request_b, now)


def test_same_commitment_reissued_idempotently(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request, _ = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    first = witness.request_commitment(request, now)
    again = witness.request_commitment(request, now)
    assert first == again


def test_commitment_expires_and_reopens(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    request_a, _ = client.prepare_commitment_request(stored, merchant.merchant_id, 10)
    first = witness.request_commitment(request_a, 10)
    later = first.expires_at + 1
    request_b, _ = client.prepare_commitment_request(stored, merchant.merchant_id, later)
    second = witness.request_commitment(request_b, later)
    assert second.nonce == request_b.nonce


def test_expired_commitment_rejected_by_client(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    with pytest.raises(CommitmentError):
        client.build_payment(pending, commitment, witness.public_key, commitment.expires_at)


def test_no_commitment_no_signature(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    witness.expire_commitments(commitment.expires_at + 1)
    with pytest.raises(CommitmentError):
        witness.sign_transcript(transcript, now)


def test_nonce_binds_merchant(system, payment_parties):
    """A transcript naming a different merchant than the nonce is refused."""
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    hijacked = PaymentTranscript(
        coin=transcript.coin,
        response=transcript.response,
        merchant_id=other_merchant(system, merchant.merchant_id),
        timestamp=transcript.timestamp,
        salt=transcript.salt,
    )
    with pytest.raises(CommitmentError):
        witness.sign_transcript(hijacked, now)


def test_merchant_rejects_transcript_for_other_merchant(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    other = system.merchant(other_merchant(system, merchant.merchant_id))
    with pytest.raises(InvalidPaymentError):
        other.verify_payment_request(
            PaymentRequest(transcript=transcript, commitment=commitment), now
        )


def test_merchant_rejects_bad_nizk(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    from repro.crypto.representation import RepresentationResponse

    forged = PaymentTranscript(
        coin=transcript.coin,
        response=RepresentationResponse(
            r1=(transcript.response.r1 + 1) % system.params.group.q,
            r2=transcript.response.r2,
        ),
        merchant_id=transcript.merchant_id,
        timestamp=transcript.timestamp,
        salt=transcript.salt,
    )
    with pytest.raises(InvalidPaymentError):
        merchant.verify_payment_request(
            PaymentRequest(transcript=forged, commitment=commitment), now
        )


def test_transcript_replay_at_other_time_fails(system, payment_parties):
    """The challenge binds date/time: shifting the timestamp breaks the proof."""
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    shifted = PaymentTranscript(
        coin=transcript.coin,
        response=transcript.response,
        merchant_id=transcript.merchant_id,
        timestamp=now + 1,
        salt=transcript.salt,
    )
    with pytest.raises(InvalidPaymentError):
        merchant.verify_payment_request(
            PaymentRequest(transcript=shifted, commitment=commitment), now
        )


def test_forged_commitment_rejected(system, payment_parties):
    client, stored, merchant, witness = payment_parties
    now = 10
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    forged = WitnessCommitment(
        witness_id=commitment.witness_id,
        coin_hash=commitment.coin_hash,
        nonce=commitment.nonce,
        v_hash=commitment.v_hash,
        expires_at=commitment.expires_at + 1000,  # extend lifetime
        signature=commitment.signature,
    )
    with pytest.raises(CommitmentError):
        client.build_payment(pending, forged, witness.public_key, now)


def test_merchant_refuses_second_payment_with_same_coin(system, payment_parties):
    """Even a colluding witness cannot make one merchant accept twice."""
    client, stored, merchant, witness = payment_parties
    witness.faulty = True
    run_payment(client, stored, merchant, witness, now=10)
    client.wallet.add(stored)
    now = 400
    request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = client.build_payment(pending, commitment, witness.public_key, now)
    with pytest.raises(InvalidPaymentError):
        merchant.verify_payment_request(
            PaymentRequest(transcript=transcript, commitment=commitment), now
        )


def test_stolen_coin_without_secrets_unusable(system, payment_parties):
    """A thief holding the coin (but not x1,x2,y1,y2) cannot build a valid payment."""
    client, stored, merchant, witness = payment_parties
    from repro.core.client import StoredCoin
    from repro.crypto.representation import RepresentationPair

    thief = system.new_client()
    guessed = RepresentationPair.generate(system.params.group, None)
    stolen = StoredCoin(coin=stored.coin, secrets=guessed)
    now = 10
    request, pending = thief.prepare_commitment_request(stolen, merchant.merchant_id, now)
    commitment = witness.request_commitment(request, now)
    transcript = thief.build_payment(pending, commitment, witness.public_key, now)
    with pytest.raises(InvalidPaymentError):
        merchant.verify_payment_request(
            PaymentRequest(transcript=transcript, commitment=commitment), now
        )
