"""Hypothesis stateful model of the e-cash economy.

Hypothesis drives arbitrary interleavings of withdrawals, payments,
deposits, renewals and double-spend attempts; after every step the
machine's invariants must hold:

* the ledger conserves money;
* a merchant's revenue equals exactly the value of its accepted payments;
* security deposits stay intact in honest runs;
* an honest witness never signs the same coin twice.
"""

import random

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.core.exceptions import DoubleSpendError, EcashError
from repro.core.params import test_params as make_test_params
from repro.core.protocols import run_deposit, run_payment, run_renewal, run_withdrawal
from repro.core.system import EcashSystem

MERCHANTS = ("shop-a", "shop-b", "shop-c")


class EcashMachine(RuleBasedStateMachine):
    """One deployment, one client, adversarial scheduling by hypothesis."""

    @initialize(seed=st.integers(min_value=0, max_value=2**16))
    def setup(self, seed):
        self.system = EcashSystem(
            merchant_ids=MERCHANTS, params=make_test_params(), seed=seed
        )
        self.rng = random.Random(seed)
        self.client = self.system.new_client()
        self.clock = 0
        self.live = []          # spendable StoredCoins
        self.spent = []         # coins already spent once (attack material)
        self.accepted = {m: 0 for m in MERCHANTS}

    def _tick(self):
        self.clock += self.rng.randrange(1, 200)
        return self.clock

    @rule(denomination=st.sampled_from([1, 5, 25, 100]))
    def withdraw(self, denomination):
        now = self._tick()
        stored = run_withdrawal(
            self.client, self.system.broker, self.system.standard_info(denomination, now)
        )
        self.live.append(stored)

    @precondition(lambda self: self.live)
    @rule(choice=st.randoms(use_true_random=False))
    def pay(self, choice):
        now = self._tick()
        stored = self.live.pop(choice.randrange(len(self.live)))
        merchant_id = choice.choice(
            [m for m in MERCHANTS if m != stored.coin.witness_id]
        )
        run_payment(
            self.client, stored, self.system.merchant(merchant_id),
            self.system.witness_of(stored), now,
        )
        self.accepted[merchant_id] += stored.denomination
        self.spent.append(stored)

    @precondition(lambda self: self.spent)
    @rule(choice=st.randoms(use_true_random=False))
    def double_spend_attempt(self, choice):
        now = self._tick()
        stored = choice.choice(self.spent)
        merchant_id = choice.choice(
            [m for m in MERCHANTS if m != stored.coin.witness_id]
        )
        self.client.wallet.add(stored)
        try:
            run_payment(
                self.client, stored, self.system.merchant(merchant_id),
                self.system.witness_of(stored), now,
            )
            raise AssertionError("honest witness allowed a double spend")
        except DoubleSpendError as refusal:
            assert refusal.proof.verify(self.system.params, stored.coin)
        except EcashError:
            pass  # merchant-side refusal (already saw the coin) is also fine
        finally:
            self.client.mark_spent(stored)

    @precondition(lambda self: self.live)
    @rule(choice=st.randoms(use_true_random=False))
    def renew(self, choice):
        now = self._tick()
        stored = self.live.pop(choice.randrange(len(self.live)))
        fresh = run_renewal(
            self.client, stored, self.system.broker,
            self.system.standard_info(stored.denomination, now), now,
        )
        self.live.append(fresh)

    @rule(merchant_id=st.sampled_from(MERCHANTS))
    def deposit(self, merchant_id):
        now = self._tick()
        run_deposit(self.system.merchant(merchant_id), self.system.broker, now)

    @invariant()
    def money_is_conserved(self):
        if not hasattr(self, "system"):
            return
        assert self.system.ledger.conserved()

    @invariant()
    def security_deposits_intact(self):
        if not hasattr(self, "system"):
            return
        for merchant_id in MERCHANTS:
            assert self.system.broker.security_deposit_balance(merchant_id) == 100_00

    @invariant()
    def revenue_matches_accepted_payments(self):
        if not hasattr(self, "system"):
            return
        for merchant_id in MERCHANTS:
            merchant = self.system.merchant(merchant_id)
            deposited = sum(
                signed.transcript.coin.denomination for signed in merchant.deposited
            )
            assert self.system.broker.merchant_balance(merchant_id) == deposited
            assert deposited <= self.accepted[merchant_id]


EcashMachineTest = EcashMachine.TestCase
EcashMachineTest.settings = settings(
    max_examples=8, stateful_step_count=12, deadline=None
)
