"""Tests for third-party conflict resolution."""

import pytest

from repro.core.arbiter import Arbiter, Verdict
from repro.core.exceptions import DoubleSpendError
from repro.core.protocols import run_payment
from repro.core.transcripts import DoubleSpendProof, PaymentTranscript, SignedTranscript
from repro.crypto.representation import Representation
from tests.conftest import other_merchant


@pytest.fixture()
def arbiter(system):
    return Arbiter(
        params=system.params,
        broker_blind_public=system.broker.blind_public,
        broker_sign_public=system.broker.sign_public,
    )


def test_valid_double_spend_proof_convicts_client(system, arbiter, funded_client):
    client, stored = funded_client
    proof = DoubleSpendProof(
        coin_hash=stored.coin.digest(system.params), x=stored.secrets.x, y=None
    )
    judgment = arbiter.judge_double_spend_claim(stored.coin, proof)
    assert judgment.verdict is Verdict.CLIENT_DOUBLE_SPENT


def test_invalid_proof_rejected(system, arbiter, funded_client):
    client, stored = funded_client
    bogus = DoubleSpendProof(
        coin_hash=stored.coin.digest(system.params), x=Representation(7, 8), y=None
    )
    judgment = arbiter.judge_double_spend_claim(stored.coin, bogus)
    assert judgment.verdict is Verdict.PROOF_INVALID


def test_conflicting_transcripts_convict_witness(system, arbiter, funded_client):
    client, stored = funded_client
    witness = system.witness_of(stored)
    witness.faulty = True
    candidates = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    signed_a = run_payment(client, stored, system.merchant(candidates[0]), witness, now=10)
    client.wallet.add(stored)
    signed_b = run_payment(client, stored, system.merchant(candidates[1]), witness, now=400)
    judgment = arbiter.judge_conflicting_transcripts(witness.public_key, signed_a, signed_b)
    assert judgment.verdict is Verdict.WITNESS_VIOLATED


def test_identical_transcripts_no_violation(system, arbiter, funded_client):
    client, stored = funded_client
    witness = system.witness_of(stored)
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, witness, now=10)
    judgment = arbiter.judge_conflicting_transcripts(witness.public_key, signed, signed)
    assert judgment.verdict is Verdict.NO_VIOLATION


def test_different_coins_no_violation(system, arbiter):
    from repro.core.protocols import run_withdrawal

    client = system.new_client()
    signeds = []
    for _ in range(2):
        stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
        merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
        signeds.append(
            run_payment(client, stored, merchant, system.witness_of(stored), now=10)
        )
    witness_key = system.witness(signeds[0].transcript.coin.witness_id).public_key
    judgment = arbiter.judge_conflicting_transcripts(witness_key, signeds[0], signeds[1])
    assert judgment.verdict is Verdict.NO_VIOLATION


def test_forged_witness_signature_detected(system, arbiter, funded_client):
    client, stored = funded_client
    witness = system.witness_of(stored)
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, witness, now=10)
    from repro.crypto.schnorr import SchnorrSignature

    forged = SignedTranscript(
        transcript=PaymentTranscript(
            coin=signed.transcript.coin,
            response=signed.transcript.response,
            merchant_id=other_merchant(system, merchant.merchant_id),
            timestamp=999,
            salt=1,
        ),
        witness_signature=SchnorrSignature(e=1, s=1),
    )
    judgment = arbiter.judge_conflicting_transcripts(witness.public_key, signed, forged)
    assert judgment.verdict is Verdict.PROOF_INVALID


def test_commitment_race_honest_witness(system, arbiter, funded_client):
    """Witness committed after the first spend: its v holds the evidence,
    so the refusal stands and the client is convicted."""
    client, stored = funded_client
    witness = system.witness_of(stored)
    candidates = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    run_payment(client, stored, system.merchant(candidates[0]), witness, now=10)
    client.wallet.add(stored)
    # Second merchant gets a commitment (v records the prior spend), then
    # is refused with a proof.
    request, pending = client.prepare_commitment_request(stored, candidates[1], now=400)
    commitment = witness.request_commitment(request, now=400)
    transcript = client.build_payment(pending, commitment, witness.public_key, now=400)
    with pytest.raises(DoubleSpendError) as refusal:
        witness.sign_transcript(transcript, now=400)
    revealed = witness.reveal_commitment_value(request.coin_hash)
    judgment = arbiter.judge_commitment_race(
        witness.public_key, commitment, revealed, refusal.value.proof, stored.coin
    )
    assert judgment.verdict is Verdict.CLIENT_DOUBLE_SPENT


def test_commitment_race_lying_witness(system, arbiter, funded_client):
    """Witness committed to a FRESH coin then produced a refusal anyway:
    revealing v convicts the witness."""
    client, stored = funded_client
    witness = system.witness_of(stored)
    merchant_id = other_merchant(system, stored.coin.witness_id)
    request, _ = client.prepare_commitment_request(stored, merchant_id, now=10)
    commitment = witness.request_commitment(request, now=10)
    revealed = witness.reveal_commitment_value(request.coin_hash)
    assert revealed[0] == "fresh"
    # The lying witness fabricates a refusal using the real secrets (e.g.
    # colluding with the client or having extracted them elsewhere).
    fake_refusal = DoubleSpendProof(
        coin_hash=stored.coin.digest(system.params), x=stored.secrets.x, y=None
    )
    judgment = arbiter.judge_commitment_race(
        witness.public_key, commitment, revealed, fake_refusal, stored.coin
    )
    assert judgment.verdict is Verdict.WITNESS_VIOLATED


def test_commitment_race_mismatched_v(system, arbiter, funded_client):
    client, stored = funded_client
    witness = system.witness_of(stored)
    merchant_id = other_merchant(system, stored.coin.witness_id)
    request, _ = client.prepare_commitment_request(stored, merchant_id, now=10)
    commitment = witness.request_commitment(request, now=10)
    judgment = arbiter.judge_commitment_race(
        witness.public_key,
        commitment,
        ("fresh", 12345),  # not what was committed
        DoubleSpendProof(coin_hash=request.coin_hash, x=None, y=None),
        stored.coin,
    )
    assert judgment.verdict is Verdict.WITNESS_VIOLATED


def test_judge_payment_transcript(system, arbiter, funded_client):
    client, stored = funded_client
    witness = system.witness_of(stored)
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, witness, now=10)
    assert arbiter.judge_payment_transcript(signed.transcript).verdict is Verdict.NO_VIOLATION
    from repro.crypto.representation import RepresentationResponse

    tampered = PaymentTranscript(
        coin=signed.transcript.coin,
        response=RepresentationResponse(r1=1, r2=2),
        merchant_id=signed.transcript.merchant_id,
        timestamp=signed.transcript.timestamp,
        salt=signed.transcript.salt,
    )
    assert arbiter.judge_payment_transcript(tampered).verdict is not Verdict.NO_VIOLATION
