"""Tests for the withdrawal protocol (Algorithm 1)."""

import pytest

from repro.core.exceptions import WrongWitnessError
from repro.core.protocols import run_withdrawal
from repro.crypto.blind import SignerResponse
from tests.conftest import other_merchant


def test_happy_path(system):
    client = system.new_client()
    info = system.standard_info(25, now=0)
    stored = run_withdrawal(client, system.broker, info)
    assert stored in client.wallet.coins
    assert stored.coin.info == info
    assert stored.coin.witness_id in system.merchant_ids


def test_client_pays_for_coin(system):
    client = system.new_client()
    before = system.ledger.balance(system.broker.account)
    run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    assert system.ledger.balance(system.broker.account) == before + 25
    assert system.ledger.conserved()


def test_named_payer_account_charged(system):
    system.ledger.mint("client-funds", 100)
    client = system.new_client()
    run_withdrawal(client, system.broker, system.standard_info(30, now=0), paid_by="client-funds")
    assert system.ledger.balance("client-funds") == 70


def test_unpublished_list_version_rejected(system):
    client = system.new_client()
    from repro.core.info import standard_info

    info = standard_info(25, list_version=99, now=0)
    with pytest.raises(ValueError):
        system.broker.begin_withdrawal(info)


def test_ticket_single_use(system):
    client = system.new_client()
    info = system.standard_info(25, now=0)
    ticket, challenge = system.broker.begin_withdrawal(info)
    session = client.begin_withdrawal(info, challenge)
    system.broker.complete_withdrawal(ticket, session.e)
    with pytest.raises(KeyError):
        system.broker.complete_withdrawal(ticket, session.e)


def test_tampered_broker_response_detected(system):
    client = system.new_client()
    info = system.standard_info(25, now=0)
    ticket, challenge = system.broker.begin_withdrawal(info)
    session = client.begin_withdrawal(info, challenge)
    response = system.broker.complete_withdrawal(ticket, session.e)
    bad = SignerResponse(r=(response.r + 1) % system.params.group.q, c=response.c, s=response.s)
    with pytest.raises(ValueError):
        client.finish_withdrawal(session, bad, system.broker.current_table)


def test_table_version_must_match_info(system):
    client = system.new_client()
    info = system.standard_info(25, now=0)
    ticket, challenge = system.broker.begin_withdrawal(info)
    session = client.begin_withdrawal(info, challenge)
    response = system.broker.complete_withdrawal(ticket, session.e)
    newer = system.broker.publish_witness_table({m: 1.0 for m in system.merchant_ids})
    with pytest.raises(WrongWitnessError):
        client.finish_withdrawal(session, response, newer)


def test_witness_distribution_follows_weights(params):
    """Statistical check: heavier-weighted merchants witness more coins."""
    from repro.core.system import EcashSystem

    system = EcashSystem(
        merchant_ids=("heavy", "light"),
        params=params,
        weights={"heavy": 9.0, "light": 1.0},
        seed=77,
    )
    client = system.new_client()
    counts = {"heavy": 0, "light": 0}
    for _ in range(60):
        stored = run_withdrawal(client, system.broker, system.standard_info(1, now=0))
        counts[stored.coin.witness_id] += 1
    # Expected 54/6; allow broad slack, the point is the skew direction
    # and rough magnitude (P(heavy < 40) is astronomically small).
    assert counts["heavy"] >= 40
    assert counts["heavy"] + counts["light"] == 60


def test_coins_are_distinct(system):
    client = system.new_client()
    info = system.standard_info(25, now=0)
    first = run_withdrawal(client, system.broker, info)
    second = run_withdrawal(client, system.broker, info)
    assert first.coin.bare != second.coin.bare
    assert first.secrets != second.secrets


def test_broker_never_sees_bare_coin(system):
    """The broker's view (its ticket log) contains no coin fields.

    Structural blindness check: after a withdrawal the broker has no
    record equal to any component of the unblinded coin.
    """
    client = system.new_client()
    info = system.standard_info(25, now=0)
    ticket, challenge = system.broker.begin_withdrawal(info)
    session = client.begin_withdrawal(info, challenge)
    ticket_state = system.broker._tickets[ticket]
    response = system.broker.complete_withdrawal(ticket, session.e)
    stored = client.finish_withdrawal(session, response, system.broker.current_table)
    sig = stored.coin.bare.signature
    broker_values = {
        ticket_state.session.u,
        ticket_state.session.s,
        ticket_state.session.d,
        response.r,
        response.c,
        response.s,
        session.e,
    }
    coin_values = {sig.rho, sig.omega, sig.sigma, sig.delta}
    assert broker_values.isdisjoint(coin_values)
