"""Tests for witness-range allocation and the signed assignment table."""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.exceptions import WrongWitnessError
from repro.core.params import test_params as make_test_params
from repro.core.witness_ranges import (
    SignedWitnessEntry,
    WitnessAssignmentTable,
    WitnessRange,
    allocate_ranges,
    build_table,
    merge_weights,
    verify_entry_matches,
)
from repro.crypto.schnorr import SchnorrKeyPair


@pytest.fixture(scope="module")
def params():
    return make_test_params()


@pytest.fixture(scope="module")
def signer(params):
    return SchnorrKeyPair.generate(params.group, random.Random(4))


class TestAllocation:
    def test_exact_partition(self):
        ranges = allocate_ranges({"a": 1.0, "b": 2.0, "c": 3.0}, space=1000)
        assert ranges[0].low == 0
        for prev, nxt in zip(ranges, ranges[1:]):
            assert prev.high == nxt.low
        assert ranges[-1].high == 1000

    def test_proportional_to_weights(self):
        ranges = allocate_ranges({"a": 1.0, "b": 3.0}, space=1 << 256)
        widths = {r.merchant_id: r.width for r in ranges}
        assert abs(widths["b"] / widths["a"] - 3.0) < 1e-6

    def test_huge_space_integer_exact(self):
        space = 1 << 256
        ranges = allocate_ranges({f"m{i}": 1 + i * 0.1 for i in range(17)}, space)
        assert sum(r.width for r in ranges) == space

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            allocate_ranges({}, 100)
        with pytest.raises(ValueError):
            allocate_ranges({"a": 0.0}, 100)
        with pytest.raises(ValueError):
            allocate_ranges({"a": -1.0}, 100)

    def test_tiny_space_empty_range_detected(self):
        with pytest.raises(ValueError):
            allocate_ranges({"a": 1.0, "b": 1e9}, space=4)

    @settings(deadline=None, max_examples=50)
    @given(
        st.dictionaries(
            st.text(alphabet="abcdefgh", min_size=1, max_size=4),
            st.floats(min_value=0.01, max_value=1000.0),
            min_size=1,
            max_size=10,
        )
    )
    def test_partition_property(self, weights):
        space = 1 << 64
        ranges = allocate_ranges(weights, space)
        assert len(ranges) == len(weights)
        cursor = 0
        for witness_range in ranges:
            assert witness_range.low == cursor
            assert witness_range.width >= 1
            cursor = witness_range.high
        assert cursor == space


class TestTable:
    def test_build_and_lookup(self, params, signer):
        table = build_table(params, signer, 1, {"a": 1.0, "b": 1.0}, rng=random.Random(9))
        entry = table.witness_for(0)
        assert entry.merchant_id in ("a", "b")
        last = table.witness_for(params.witness_hash_space - 1)
        assert last.merchant_id in ("a", "b")
        assert entry.merchant_id != last.merchant_id

    def test_lookup_out_of_space(self, params, signer):
        table = build_table(params, signer, 1, {"a": 1.0}, rng=random.Random(9))
        with pytest.raises(WrongWitnessError):
            table.witness_for(params.witness_hash_space)
        with pytest.raises(WrongWitnessError):
            table.witness_for(-1)

    def test_entry_for_merchant(self, params, signer):
        table = build_table(params, signer, 1, {"a": 1.0, "b": 2.0}, rng=random.Random(9))
        assert table.entry_for_merchant("a").merchant_id == "a"
        with pytest.raises(WrongWitnessError):
            table.entry_for_merchant("zz")

    def test_selection_probability(self, params, signer):
        table = build_table(params, signer, 1, {"a": 1.0, "b": 3.0}, rng=random.Random(9))
        assert abs(table.selection_probability("b") - 0.75) < 1e-9
        assert abs(table.selection_probability("a") - 0.25) < 1e-9

    def test_partition_validation_rejects_gaps(self, params, signer):
        table = build_table(params, signer, 1, {"a": 1.0, "b": 1.0}, rng=random.Random(9))
        broken = tuple(
            entry
            for entry in table.entries
            if entry.merchant_id != "a"
        )
        with pytest.raises(ValueError):
            WitnessAssignmentTable(version=1, entries=broken, space=table.space)

    def test_version_mismatch_rejected(self, params, signer):
        table = build_table(params, signer, 2, {"a": 1.0}, rng=random.Random(9))
        with pytest.raises(ValueError):
            WitnessAssignmentTable(version=3, entries=table.entries, space=table.space)

    def test_signatures_verify(self, params, signer):
        table = build_table(params, signer, 1, {"a": 1.0, "b": 1.0}, rng=random.Random(9))
        for entry in table.entries:
            assert entry.verify(params, signer.public)

    def test_entry_wire_roundtrip(self, params, signer):
        table = build_table(params, signer, 1, {"a": 1.0}, rng=random.Random(9))
        entry = table.entries[0]
        from repro.crypto.serialize import decode, encode

        restored = SignedWitnessEntry.from_wire(decode(encode(entry.to_wire())))
        assert restored == entry


class TestVerifyEntryMatches:
    @pytest.fixture()
    def table(self, params, signer):
        return build_table(params, signer, 5, {"a": 1.0, "b": 1.0}, rng=random.Random(9))

    def test_accepts_valid(self, params, signer, table):
        digest = 123456
        entry = table.witness_for(digest)
        verify_entry_matches(params, signer.public, entry, digest, expected_version=5)

    def test_rejects_version_mismatch(self, params, signer, table):
        entry = table.witness_for(0)
        with pytest.raises(WrongWitnessError):
            verify_entry_matches(params, signer.public, entry, 0, expected_version=6)

    def test_rejects_digest_outside_range(self, params, signer, table):
        entry = table.witness_for(0)
        outside = entry.range.high
        with pytest.raises(WrongWitnessError):
            verify_entry_matches(params, signer.public, entry, outside, expected_version=5)

    def test_rejects_forged_signature(self, params, signer, table):
        entry = table.witness_for(0)
        forged = SignedWitnessEntry(
            version=entry.version,
            range=WitnessRange(
                merchant_id="evil", low=entry.range.low, high=entry.range.high
            ),
            signature=entry.signature,
        )
        with pytest.raises(WrongWitnessError):
            verify_entry_matches(params, signer.public, forged, 0, expected_version=5)


def test_merge_weights():
    merged = merge_weights({"a": 2.0, "b": 4.0}, {"b": 8.0, "c": 2.0}, smoothing=0.5)
    assert merged["a"] == pytest.approx(1.0)
    assert merged["b"] == pytest.approx(6.0)
    assert merged["c"] == pytest.approx(1.0)
    with pytest.raises(ValueError):
        merge_weights({}, {}, smoothing=1.5)


def test_witness_range_validation():
    with pytest.raises(ValueError):
        WitnessRange(merchant_id="a", low=5, high=5)
    with pytest.raises(ValueError):
        WitnessRange(merchant_id="a", low=-1, high=5)
    assert WitnessRange(merchant_id="a", low=0, high=10).contains(9)
    assert not WitnessRange(merchant_id="a", low=0, high=10).contains(10)
