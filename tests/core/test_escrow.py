"""Tests for the escrow/tracing extension (cut-and-choose issuing)."""

import random

import pytest

from repro.core.escrow import (
    TrusteeService,
    run_escrowed_withdrawal,
)
from repro.core.exceptions import ProtocolViolationError
from repro.core.info import standard_info
from repro.crypto import counters
from repro.crypto.blind import PartiallyBlindSigner


@pytest.fixture()
def setting(params):
    signer = PartiallyBlindSigner(params.group, params.hashes, rng=random.Random(40))
    trustee = TrusteeService(params=params, rng=random.Random(41))
    secret = 987654321 % params.group.q
    with counters.suppressed():
        identity = pow(params.group.g, secret, params.group.p)
    info = standard_info(25, list_version=1, now=0)
    return params, signer, trustee, identity, info


def test_escrowed_withdrawal_and_trace(setting):
    params, signer, trustee, identity, info = setting
    result = run_escrowed_withdrawal(
        params, signer, trustee, identity, info, rng=random.Random(50)
    )
    assert result.coin.verify_signature(params, signer.public)
    # The trustee — and only the trustee — recovers the identity.
    assert trustee.trace(result.coin) == identity
    assert trustee.traces_performed == 1


def test_tag_opaque_without_trustee_key(setting):
    params, signer, trustee, identity, info = setting
    result = run_escrowed_withdrawal(
        params, signer, trustee, identity, info, rng=random.Random(51)
    )
    # The broker's view of the coin contains only the ciphertext; a second
    # trustee with a different key decrypts to something else entirely.
    impostor = TrusteeService(params=params, rng=random.Random(99))
    assert impostor.keypair.decrypt(result.coin.tag) != identity


def test_cut_and_choose_catches_cheater_in_opened_candidate(setting):
    params, signer, trustee, identity, info = setting
    # The client substitutes a fake-identity tag into EVERY position over
    # repeated runs; whenever the bad candidate is opened, the audit fires.
    caught = 0
    passed = 0
    runs = 12
    for attempt in range(runs):
        try:
            run_escrowed_withdrawal(
                params,
                signer,
                trustee,
                identity,
                info,
                cut_and_choose=4,
                rng=random.Random(1000 + attempt),
                cheat_candidate=attempt % 4,
            )
            passed += 1
        except ProtocolViolationError:
            caught += 1
    assert caught + passed == runs
    # With K=4 the cheater escapes ~1/4 of the time; catching must clearly
    # dominate (P(caught < 5 of 12) < 0.01 under the 3/4 catch rate).
    assert caught >= 5


def test_escaped_cheat_is_still_traceable_to_fake_identity(setting):
    """Even when a cheater slips through, tracing yields the (wrong)
    identity it chose — it gains unlinkability to itself but produces a
    coin whose trace points nowhere, which the broker's registry exposes."""
    params, signer, trustee, identity, info = setting
    fake = params.group.g  # identity nobody registered
    result = None
    for attempt in range(40):
        try:
            result = run_escrowed_withdrawal(
                params,
                signer,
                trustee,
                identity,
                info,
                cut_and_choose=2,  # cheater escapes with p = 1/2
                rng=random.Random(3000 + attempt),
                cheat_candidate=attempt % 2,
                cheat_identity=fake,
            )
            break
        except ProtocolViolationError:
            continue
    if result is None:
        pytest.skip("cheater never escaped in 40 tries (p < 1e-12)")
    traced = trustee.trace(result.coin)
    assert traced in (fake, identity)  # escaped => fake; honest candidate => real


def test_invalid_cut_and_choose_width(setting):
    params, signer, trustee, identity, info = setting
    with pytest.raises(ValueError):
        run_escrowed_withdrawal(
            params, signer, trustee, identity, info, cut_and_choose=1
        )


def test_escrowed_coin_tamper_detected(setting):
    params, signer, trustee, identity, info = setting
    result = run_escrowed_withdrawal(
        params, signer, trustee, identity, info, rng=random.Random(52)
    )
    from dataclasses import replace
    from repro.crypto.elgamal import ElGamalCiphertext

    # Swapping in a different tag invalidates the broker's signature: the
    # tag is part of the blind-signed message, hence non-malleable.
    other_tag = ElGamalCiphertext(c1=params.group.g, c2=params.group.g1)
    tampered = replace(result.coin, tag=other_tag)
    assert not tampered.verify_signature(params, signer.public)


def test_escrowed_coin_spendable_with_nizk(setting):
    """Escrowed coins pay with the same representation proof as plain ones."""
    params, signer, trustee, identity, info = setting
    result = run_escrowed_withdrawal(
        params, signer, trustee, identity, info, rng=random.Random(53)
    )
    from repro.crypto.representation import respond, verify_response

    d = params.hashes.H0(
        *result.coin.message_parts(), "escrow-payment", "shop-a", 10
    )
    response = respond(result.secrets, d, params.group.q)
    assert verify_response(
        params.group,
        result.coin.commitment_a,
        result.coin.commitment_b,
        d,
        response,
    )
