"""Tests for wallet coin selection and multi-coin purchases."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.protocols import run_batch_withdrawal, run_purchase
from tests.conftest import other_merchant


def fill_wallet(system, client, denominations):
    infos = [system.standard_info(d, now=0) for d in denominations]
    return run_batch_withdrawal(client, system.broker, infos)


class TestSelectCoins:
    def test_exact_single_coin(self, system):
        client = system.new_client()
        fill_wallet(system, client, [25, 10, 5])
        chosen = client.wallet.select_coins(10, now=0)
        assert [c.denomination for c in chosen] == [10]

    def test_greedy_combination(self, system):
        client = system.new_client()
        fill_wallet(system, client, [25, 25, 5, 5])
        chosen = client.wallet.select_coins(60, now=0)
        assert sum(c.denomination for c in chosen) == 60
        assert len(chosen) == 4

    def test_greedy_failure_falls_back_to_dp(self, system):
        """Pay 30 from {25, 10, 10, 10}: greedy picks 25 and strands 5."""
        client = system.new_client()
        fill_wallet(system, client, [25, 10, 10, 10])
        chosen = client.wallet.select_coins(30, now=0)
        assert sum(c.denomination for c in chosen) == 30
        assert [c.denomination for c in chosen] == [10, 10, 10]

    def test_insufficient_balance(self, system):
        client = system.new_client()
        fill_wallet(system, client, [5])
        with pytest.raises(ValueError, match="cannot pay"):
            client.wallet.select_coins(10, now=0)

    def test_untileable_amount(self, system):
        client = system.new_client()
        fill_wallet(system, client, [25, 25])
        with pytest.raises(ValueError, match="exactly"):
            client.wallet.select_coins(30, now=0)

    def test_non_positive_amount(self, system):
        client = system.new_client()
        with pytest.raises(ValueError):
            client.wallet.select_coins(0, now=0)

    def test_expired_coins_excluded(self, system):
        client = system.new_client()
        coins = fill_wallet(system, client, [25])
        soft = coins[0].coin.info.soft_expiry
        with pytest.raises(ValueError):
            client.wallet.select_coins(25, now=soft + 1)

    @settings(deadline=None, max_examples=30)
    @given(
        denominations=st.lists(
            st.sampled_from([1, 5, 10, 25, 100]), min_size=1, max_size=8
        ),
        data=st.data(),
    )
    def test_selection_property(self, denominations, data):
        """If ANY subset tiles the amount, select_coins finds one.

        Pure wallet-arithmetic property: uses lightweight fake coins (no
        crypto) so hypothesis can explore widely.
        """
        from itertools import combinations
        from unittest.mock import Mock

        fakes = []
        for denomination in denominations:
            fake = Mock()
            fake.denomination = denomination
            fake.coin.info.is_spendable.return_value = True
            fakes.append(fake)
        from repro.core.client import Wallet

        wallet = Wallet(coins=list(fakes))
        amount = data.draw(
            st.integers(min_value=1, max_value=sum(denominations)), label="amount"
        )
        tileable = any(
            sum(c.denomination for c in combo) == amount
            for size in range(1, len(fakes) + 1)
            for combo in combinations(fakes, size)
        )
        if tileable:
            chosen = wallet.select_coins(amount, now=0)
            assert sum(c.denomination for c in chosen) == amount
            assert len(set(map(id, chosen))) == len(chosen)  # no coin reused
        else:
            with pytest.raises(ValueError):
                wallet.select_coins(amount, now=0)


class TestRunPurchase:
    def test_multi_coin_purchase(self, system):
        client = system.new_client()
        fill_wallet(system, client, [25, 25, 10])
        merchant = system.merchant(system.merchant_ids[0])
        witnesses = {m: system.witness(m) for m in system.merchant_ids}
        signed = run_purchase(client, 60, merchant, witnesses, now=10)
        assert sum(s.transcript.coin.denomination for s in signed) == 60
        assert client.wallet.total_value() == 0
        # All transcripts deposit and the merchant is made whole.
        from repro.core.protocols import run_deposit

        results = run_deposit(merchant, system.broker, now=20)
        assert sum(r.amount for r in results) == 60
        assert system.ledger.conserved()

    def test_purchase_rejects_unpayable_amount(self, system):
        client = system.new_client()
        fill_wallet(system, client, [25])
        merchant = system.merchant(system.merchant_ids[0])
        witnesses = {m: system.witness(m) for m in system.merchant_ids}
        with pytest.raises(ValueError):
            run_purchase(client, 26, merchant, witnesses, now=10)
        # The held coin was not burned by the failed attempt.
        assert client.wallet.total_value() == 25
