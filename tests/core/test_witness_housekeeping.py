"""Tests for witness-side housekeeping (commitment expiry, spent-record GC)
and for withdrawal-session misuse (unexpandibility-style attacks)."""

import pytest

from repro.core.protocols import run_payment, run_withdrawal
from tests.conftest import other_merchant


class TestWitnessHousekeeping:
    def test_expire_commitments(self, system, funded_client):
        client, stored = funded_client
        witness = system.witness_of(stored)
        merchant_id = other_merchant(system, stored.coin.witness_id)
        request, _ = client.prepare_commitment_request(stored, merchant_id, now=10)
        commitment = witness.request_commitment(request, now=10)
        assert witness.expire_commitments(now=20) == 0  # still live
        assert witness.expire_commitments(now=commitment.expires_at + 1) == 1
        assert witness.expire_commitments(now=commitment.expires_at + 2) == 0

    def test_purge_spent_with_transcript(self, system, funded_client):
        client, stored = funded_client
        witness = system.witness_of(stored)
        merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
        run_payment(client, stored, merchant, witness, now=10)
        digest = stored.coin.digest(system.params)
        assert witness.has_seen(digest)
        # Not yet void: nothing purged.
        assert witness.purge_spent(now=stored.coin.info.soft_expiry) == 0
        assert witness.purge_spent(now=stored.coin.info.hard_expiry + 1) == 1
        assert not witness.has_seen(digest)

    def test_purge_spent_extracted_record_needs_hint(self, system, funded_client):
        from repro.core.exceptions import DoubleSpendError

        client, stored = funded_client
        witness = system.witness_of(stored)
        shops = [m for m in system.merchant_ids if m != stored.coin.witness_id]
        run_payment(client, stored, system.merchant(shops[0]), witness, now=10)
        client.wallet.add(stored)
        with pytest.raises(DoubleSpendError):
            run_payment(client, stored, system.merchant(shops[1]), witness, now=400)
        digest = stored.coin.digest(system.params)
        # The transcript was dropped; only the proof remains. Without an
        # expiry hint the record is conservatively kept...
        assert witness.purge_spent(now=stored.coin.info.hard_expiry + 1) == 0
        assert witness.has_seen(digest)
        # ...and purged once the broker-provided hint says the coin is void.
        hints = {digest: stored.coin.info.hard_expiry}
        assert witness.purge_spent(
            now=stored.coin.info.hard_expiry + 1, hard_expiry_of=hints
        ) == 1
        assert not witness.has_seen(digest)


class TestWithdrawalSessionMisuse:
    def test_mixed_session_responses_fail(self, system):
        """A response from session A cannot complete session B — blinding
        factors are session-specific, so mixing transcripts cannot expand
        N sessions into more than N coins."""
        client = system.new_client()
        info = system.standard_info(25, now=0)
        ticket_a, challenge_a = system.broker.begin_withdrawal(info)
        ticket_b, challenge_b = system.broker.begin_withdrawal(info)
        session_a = client.begin_withdrawal(info, challenge_a)
        session_b = client.begin_withdrawal(info, challenge_b)
        response_a = system.broker.complete_withdrawal(ticket_a, session_a.e)
        with pytest.raises(ValueError):
            session_b.blind_session.finish(response_a)

    def test_same_response_cannot_mint_second_coin(self, system):
        """Replaying the broker's one response through a second unblinding
        of the same session yields the SAME coin, not a new one."""
        client = system.new_client()
        info = system.standard_info(25, now=0)
        ticket, challenge = system.broker.begin_withdrawal(info)
        session = client.begin_withdrawal(info, challenge)
        response = system.broker.complete_withdrawal(ticket, session.e)
        first = session.blind_session.finish(response)
        second = session.blind_session.finish(response)
        assert first == second

    def test_response_for_different_info_fails(self, system):
        """A signature bought for one denomination cannot be unblinded
        into a coin of another (the partially blind part)."""
        client = system.new_client()
        cheap = system.standard_info(1, now=0)
        expensive = system.standard_info(100, now=0)
        ticket, challenge = system.broker.begin_withdrawal(cheap)
        # The client blinds pretending the info is the expensive one.
        session = client.begin_withdrawal(expensive, challenge)
        response = system.broker.complete_withdrawal(ticket, session.e)
        with pytest.raises(ValueError):
            client.finish_withdrawal(session, response, system.broker.current_table)
