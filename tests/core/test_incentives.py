"""Tests for the witness incentive (cashing-fee) policy."""

import pytest

from repro.core.incentives import FeeCollectingBroker, FeePolicy
from repro.core.protocols import run_payment, run_withdrawal
from tests.conftest import other_merchant


class TestFeePolicy:
    def test_no_service_pays_base(self):
        policy = FeePolicy(base_fee_bps=200, discount_per_ratio_bps=100)
        assert policy.fee_bps(coins_witnessed=0, coins_deposited=10) == 200

    def test_service_earns_discount(self):
        policy = FeePolicy(base_fee_bps=200, discount_per_ratio_bps=100)
        # ratio 1.0 -> 100 bps off
        assert policy.fee_bps(coins_witnessed=10, coins_deposited=10) == 100
        # ratio 2.0 -> at the floor
        assert policy.fee_bps(coins_witnessed=20, coins_deposited=10) == 0

    def test_floor(self):
        policy = FeePolicy(base_fee_bps=200, discount_per_ratio_bps=500, floor_bps=50)
        assert policy.fee_bps(coins_witnessed=100, coins_deposited=1) == 50

    def test_fee_amount_rounding(self):
        policy = FeePolicy(base_fee_bps=150)  # 1.5%
        assert policy.fee_amount(1000, 0, 1) == 15
        assert policy.fee_amount(10, 0, 1) == 0  # rounds down below a cent

    def test_validation(self):
        with pytest.raises(ValueError):
            FeePolicy(base_fee_bps=-1)
        with pytest.raises(ValueError):
            FeePolicy(base_fee_bps=10, floor_bps=20)


class TestFeeCollectingBroker:
    def test_fee_collected_and_conserved(self, system, funded_client):
        client, stored = funded_client
        front = FeeCollectingBroker(
            broker=system.broker, policy=FeePolicy(base_fee_bps=400)
        )
        merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
        signed = run_payment(client, stored, merchant, system.witness_of(stored), now=10)
        result, fee = front.deposit(merchant.merchant_id, signed, now=20)
        assert result.amount == 25
        assert fee == 1  # 4% of 25 cents
        assert system.broker.merchant_balance(merchant.merchant_id) == 24
        assert system.ledger.balance("broker:fees") == 1
        assert system.ledger.conserved()

    def test_hardworking_witness_pays_less(self, system):
        """The paper's incentive loop: witnessing earns fee discounts."""
        front = FeeCollectingBroker(
            broker=system.broker,
            policy=FeePolicy(base_fee_bps=200, discount_per_ratio_bps=150),
        )
        client = system.new_client()
        # Spend coins until some merchant has witnessed a few of them.
        for _ in range(8):
            stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
            merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
            signed = run_payment(
                client, stored, merchant, system.witness_of(stored), now=10
            )
            front.deposit(merchant.merchant_id, signed, now=20)
        witnessed = {
            m: system.broker.merchants[m].coins_witnessed for m in system.merchant_ids
        }
        busiest = max(witnessed, key=witnessed.get)
        laziest = min(witnessed, key=witnessed.get)
        if witnessed[busiest] == witnessed[laziest]:
            pytest.skip("witness load happened to be uniform at this seed")
        assert front.effective_fee_bps(busiest) <= front.effective_fee_bps(laziest)
