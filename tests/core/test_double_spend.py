"""Tests for double-spending detection and the extraction proof."""

import pytest

from repro.core.exceptions import DoubleSpendError, InvalidPaymentError
from repro.core.protocols import run_payment, run_withdrawal
from repro.core.transcripts import DoubleSpendProof
from tests.conftest import other_merchant


@pytest.fixture()
def double_spend_setup(system, funded_client):
    client, stored = funded_client
    witness = system.witness_of(stored)
    candidates = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    first, second = candidates[0], candidates[1]
    run_payment(client, stored, system.merchant(first), witness, now=10)
    client.wallet.add(stored)  # the attacker keeps a copy of the spent coin
    return client, stored, witness, second


def test_second_spend_refused_with_proof(system, double_spend_setup):
    client, stored, witness, second = double_spend_setup
    with pytest.raises(DoubleSpendError) as refusal:
        run_payment(client, stored, system.merchant(second), witness, now=400)
    proof = refusal.value.proof
    assert proof.verify(system.params, stored.coin)


def test_extraction_recovers_true_secrets(system, double_spend_setup):
    client, stored, witness, second = double_spend_setup
    with pytest.raises(DoubleSpendError) as refusal:
        run_payment(client, stored, system.merchant(second), witness, now=400)
    proof = refusal.value.proof
    # The revealed representation of A is the client's actual secret.
    assert proof.x == stored.secrets.x


def test_witness_drops_transcript_after_extraction(system, double_spend_setup):
    """Privacy: after extraction the witness keeps only the secrets,
    so it can no longer reveal where the coin was first spent."""
    client, stored, witness, second = double_spend_setup
    digest = stored.coin.digest(system.params)
    assert witness._spent[digest].transcript is not None
    with pytest.raises(DoubleSpendError):
        run_payment(client, stored, system.merchant(second), witness, now=400)
    record = witness._spent[digest]
    assert record.transcript is None
    assert record.proof is not None
    assert record.proof.y is None  # only the A-representation is released


def test_third_attempt_served_from_stored_proof(system, double_spend_setup):
    client, stored, witness, second = double_spend_setup
    with pytest.raises(DoubleSpendError):
        run_payment(client, stored, system.merchant(second), witness, now=400)
    third = next(
        m
        for m in system.merchant_ids
        if m not in (stored.coin.witness_id, second)
        and not system.merchant(m)._seen_bare_coins
    )
    with pytest.raises(DoubleSpendError) as refusal:
        run_payment(client, stored, system.merchant(third), witness, now=800)
    assert refusal.value.proof.verify(system.params, stored.coin)


def test_invalid_proof_rejected_by_merchant(system, funded_client):
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    from repro.crypto.representation import Representation

    bogus = DoubleSpendProof(
        coin_hash=stored.coin.digest(system.params),
        x=Representation(1, 2),
        y=None,
    )
    with pytest.raises(InvalidPaymentError):
        merchant.handle_double_spend_proof(bogus, stored.coin)


def test_empty_proof_invalid(system, funded_client):
    client, stored = funded_client
    proof = DoubleSpendProof(coin_hash=stored.coin.digest(system.params), x=None, y=None)
    assert not proof.verify(system.params, stored.coin)


def test_proof_bound_to_coin(system, funded_client):
    client, stored = funded_client
    other = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    proof = DoubleSpendProof(
        coin_hash=stored.coin.digest(system.params), x=stored.secrets.x, y=stored.secrets.y
    )
    assert proof.verify(system.params, stored.coin)
    assert not proof.verify(system.params, other.coin)


def test_faulty_witness_signs_both(system, funded_client):
    """A faulty witness signs conflicting transcripts — both merchants hold
    valid signatures (the deposit protocol is where this gets punished)."""
    client, stored = funded_client
    witness = system.witness_of(stored)
    witness.faulty = True
    candidates = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    signed_a = run_payment(client, stored, system.merchant(candidates[0]), witness, now=10)
    client.wallet.add(stored)
    signed_b = run_payment(client, stored, system.merchant(candidates[1]), witness, now=400)
    assert signed_a.verify_witness_signature(system.params, witness.public_key)
    assert signed_b.verify_witness_signature(system.params, witness.public_key)


def test_race_reveal_v_fresh_vs_spent(system, funded_client):
    """The Section 5 race-condition dispute hook: v reveals what the
    witness knew at commitment time."""
    client, stored = funded_client
    witness = system.witness_of(stored)
    merchant_id = other_merchant(system, stored.coin.witness_id)
    request, _ = client.prepare_commitment_request(stored, merchant_id, now=10)
    witness.request_commitment(request, now=10)
    v = witness.reveal_commitment_value(request.coin_hash)
    assert v[0] == "fresh"
