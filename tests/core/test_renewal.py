"""Tests for coin renewal (Algorithm 4)."""

import pytest

from repro.core.exceptions import (
    ExpiredCoinError,
    InvalidPaymentError,
    RenewalRefusedError,
)
from repro.core.protocols import run_deposit, run_payment, run_renewal, run_withdrawal
from tests.conftest import other_merchant


def test_renew_after_soft_expiry(system, funded_client):
    client, stored = funded_client
    after_soft = stored.coin.info.soft_expiry + 10
    new_info = system.standard_info(25, now=after_soft)
    fresh = run_renewal(client, stored, system.broker, new_info, now=after_soft)
    assert fresh.coin.info == new_info
    assert stored not in client.wallet.coins
    assert fresh in client.wallet.coins


def test_renewed_coin_is_spendable(system, funded_client):
    client, stored = funded_client
    now = stored.coin.info.soft_expiry + 10
    fresh = run_renewal(client, stored, system.broker, system.standard_info(25, now=now), now=now)
    merchant = system.merchant(other_merchant(system, fresh.coin.witness_id))
    signed = run_payment(client, fresh, merchant, system.witness_of(fresh), now=now + 5)
    results = run_deposit(merchant, system.broker, now=now + 10)
    assert results[0].amount == 25
    assert system.ledger.conserved()


def test_renewal_of_deposited_coin_refused_with_secrets(system, funded_client):
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    run_deposit(merchant, system.broker, now=20)
    client.wallet.add(stored)
    with pytest.raises(RenewalRefusedError) as refusal:
        run_renewal(client, stored, system.broker, system.standard_info(25, now=30), now=30)
    proof = refusal.value.proof
    assert proof.verify(system.params, stored.coin)
    assert proof.x == stored.secrets.x
    assert proof.y == stored.secrets.y


def test_double_renewal_refused_with_secrets(system, funded_client):
    client, stored = funded_client
    run_renewal(client, stored, system.broker, system.standard_info(25, now=100), now=100)
    client.wallet.add(stored)
    with pytest.raises(RenewalRefusedError) as refusal:
        run_renewal(client, stored, system.broker, system.standard_info(25, now=200), now=200)
    assert refusal.value.proof.verify(system.params, stored.coin)


def test_void_coin_unrenewable(system, funded_client):
    client, stored = funded_client
    after_hard = stored.coin.info.hard_expiry + 1
    with pytest.raises(ExpiredCoinError):
        run_renewal(
            client, stored, system.broker,
            system.standard_info(25, now=after_hard), now=after_hard,
        )


def test_denomination_must_match(system, funded_client):
    client, stored = funded_client
    with pytest.raises(ValueError):
        run_renewal(client, stored, system.broker, system.standard_info(50, now=100), now=100)


def test_renewal_requires_ownership_proof(system, funded_client):
    """A thief with the coin but not the secrets cannot renew it."""
    client, stored = funded_client
    thief = system.new_client()
    from repro.core.client import StoredCoin
    from repro.crypto.representation import RepresentationPair

    stolen = StoredCoin(
        coin=stored.coin, secrets=RepresentationPair.generate(system.params.group, None)
    )
    thief.wallet.add(stolen)
    with pytest.raises(InvalidPaymentError):
        run_renewal(thief, stolen, system.broker, system.standard_info(25, now=100), now=100)


def test_stale_proof_timestamp_rejected(system, funded_client):
    client, stored = funded_client
    new_info = system.standard_info(25, now=1000)
    ticket, challenge = system.broker.begin_renewal(new_info)
    session = client.begin_withdrawal(new_info, challenge)
    timestamp, salt, r1, r2 = client.renewal_proof(stored, now=100)  # old proof
    with pytest.raises(InvalidPaymentError):
        system.broker.complete_renewal(
            ticket, session.e, stored.coin.bare, timestamp, salt, r1, r2, now=1000
        )


def test_renewal_is_free(system, funded_client):
    client, stored = funded_client
    minted_before = system.ledger.minted
    run_renewal(client, stored, system.broker, system.standard_info(25, now=100), now=100)
    assert system.ledger.minted == minted_before  # no new money entered


def test_renewal_purge(system, funded_client):
    client, stored = funded_client
    run_renewal(client, stored, system.broker, system.standard_info(25, now=100), now=100)
    removed = system.broker.purge_expired_records(now=stored.coin.info.hard_expiry + 1)
    assert removed >= 1
