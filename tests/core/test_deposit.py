"""Tests for the deposit protocol (Algorithm 3), including case 2-b."""

import pytest

from repro.core.broker import DepositOutcome
from repro.core.exceptions import (
    DoubleDepositError,
    ExpiredCoinError,
    InvalidPaymentError,
    UnknownMerchantError,
)
from repro.core.protocols import run_deposit, run_payment, run_withdrawal
from tests.conftest import other_merchant


@pytest.fixture()
def paid_merchant(system, funded_client):
    client, stored = funded_client
    merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
    signed = run_payment(client, stored, merchant, system.witness_of(stored), now=10)
    return merchant, signed, stored


def test_deposit_credits_merchant(system, paid_merchant):
    merchant, signed, stored = paid_merchant
    results = run_deposit(merchant, system.broker, now=20)
    assert len(results) == 1
    assert results[0].outcome is DepositOutcome.CREDITED
    assert system.broker.merchant_balance(merchant.merchant_id) == stored.denomination
    assert system.ledger.conserved()


def test_double_deposit_same_merchant_refused(system, paid_merchant):
    merchant, signed, stored = paid_merchant
    system.broker.deposit(merchant.merchant_id, signed, now=20)
    with pytest.raises(DoubleDepositError):
        system.broker.deposit(merchant.merchant_id, signed, now=30)
    assert system.broker.merchant_balance(merchant.merchant_id) == stored.denomination


def test_case_2b_witness_charged(system, funded_client):
    """Faulty witness signs two transcripts; the second merchant is still
    paid — from the witness's security deposit."""
    client, stored = funded_client
    witness = system.witness_of(stored)
    witness.faulty = True
    witness_id = stored.coin.witness_id
    candidates = [m for m in system.merchant_ids if m != witness_id]
    merchant_a, merchant_b = system.merchant(candidates[0]), system.merchant(candidates[1])
    run_payment(client, stored, merchant_a, witness, now=10)
    client.wallet.add(stored)
    run_payment(client, stored, merchant_b, witness, now=400)

    deposit_before = system.broker.security_deposit_balance(witness_id)
    run_deposit(merchant_a, system.broker, now=500)
    results = run_deposit(merchant_b, system.broker, now=600)

    assert results[0].outcome is DepositOutcome.CREDITED_FROM_WITNESS_DEPOSIT
    assert results[0].witness_fault_proof is not None
    assert system.broker.merchant_balance(merchant_a.merchant_id) == 25
    assert system.broker.merchant_balance(merchant_b.merchant_id) == 25
    assert (
        system.broker.security_deposit_balance(witness_id) == deposit_before - 25
    )
    assert system.broker.merchants[witness_id].incidents == 1
    assert len(system.broker.witness_fault_log) == 1
    assert system.ledger.conserved()


def test_unknown_depositor_rejected(system, paid_merchant):
    merchant, signed, stored = paid_merchant
    with pytest.raises(UnknownMerchantError):
        system.broker.deposit("nobody", signed, now=20)


def test_transcript_merchant_mismatch_rejected(system, paid_merchant):
    merchant, signed, stored = paid_merchant
    thief = other_merchant(system, merchant.merchant_id)
    with pytest.raises(InvalidPaymentError):
        system.broker.deposit(thief, signed, now=20)


def test_soft_expired_coin_uncashable(system, paid_merchant):
    merchant, signed, stored = paid_merchant
    with pytest.raises(ExpiredCoinError):
        system.broker.deposit(
            merchant.merchant_id, signed, now=stored.coin.info.soft_expiry + 1
        )


def test_forged_witness_signature_rejected(system, paid_merchant):
    merchant, signed, stored = paid_merchant
    from repro.core.transcripts import SignedTranscript
    from repro.crypto.schnorr import SchnorrSignature

    forged = SignedTranscript(
        transcript=signed.transcript,
        witness_signature=SchnorrSignature(
            e=(signed.witness_signature.e + 1) % system.params.group.q,
            s=signed.witness_signature.s,
        ),
    )
    with pytest.raises(InvalidPaymentError):
        system.broker.deposit(merchant.merchant_id, forged, now=20)


def test_purge_expired_records(system, paid_merchant):
    merchant, signed, stored = paid_merchant
    system.broker.deposit(merchant.merchant_id, signed, now=20)
    assert system.broker.purge_expired_records(now=30) == 0
    removed = system.broker.purge_expired_records(now=stored.coin.info.hard_expiry + 1)
    assert removed == 1


def test_witness_performance_feeds_next_table(system, paid_merchant):
    merchant, signed, stored = paid_merchant
    system.broker.deposit(merchant.merchant_id, signed, now=20)
    performance = system.broker.witness_performance()
    witness_id = stored.coin.witness_id
    assert performance[witness_id] > performance[merchant.merchant_id] or (
        witness_id == merchant.merchant_id
    )
    table = system.broker.publish_witness_table(performance)
    assert table.version == 2
    assert table.selection_probability(witness_id) > 1.0 / (2 * len(system.merchant_ids))
