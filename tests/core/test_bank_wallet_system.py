"""Tests for the ledger, the wallet file, and the EcashSystem wiring."""

import pytest

from repro.core.bank import Ledger
from repro.core.client import Wallet
from repro.core.exceptions import InsufficientFundsError
from repro.core.protocols import run_withdrawal
from repro.core.system import EcashSystem


class TestLedger:
    def test_mint_transfer_burn(self):
        ledger = Ledger()
        ledger.mint("alice", 100)
        ledger.transfer("alice", "bob", 40)
        ledger.burn("bob", 10)
        assert ledger.balance("alice") == 60
        assert ledger.balance("bob") == 30
        assert ledger.minted == 100
        assert ledger.burned == 10
        assert ledger.conserved()

    def test_insufficient_funds(self):
        ledger = Ledger()
        ledger.mint("alice", 10)
        with pytest.raises(InsufficientFundsError):
            ledger.transfer("alice", "bob", 11)
        with pytest.raises(InsufficientFundsError):
            ledger.burn("alice", 11)

    def test_non_positive_amounts_rejected(self):
        ledger = Ledger()
        with pytest.raises(ValueError):
            ledger.mint("alice", 0)
        with pytest.raises(ValueError):
            ledger.transfer("a", "b", -5)

    def test_unknown_account_balance_zero(self):
        assert Ledger().balance("ghost") == 0

    def test_history_recorded(self):
        ledger = Ledger()
        ledger.mint("a", 5, memo="gift card")
        ledger.transfer("a", "b", 5, memo="coin")
        assert len(ledger.history) == 2
        assert ledger.history[0][2] == "gift card"


class TestWallet:
    def test_save_load_roundtrip(self, system, tmp_path):
        client = system.new_client()
        for denomination in (25, 50):
            run_withdrawal(client, system.broker, system.standard_info(denomination, now=0))
        path = tmp_path / "wallet.json"
        client.wallet.save(path)
        restored = Wallet.load(path)
        assert restored.coins == client.wallet.coins
        assert restored.total_value() == 75

    def test_restored_coins_spendable(self, system, tmp_path):
        from repro.core.protocols import run_payment
        from tests.conftest import other_merchant

        client = system.new_client()
        run_withdrawal(client, system.broker, system.standard_info(25, now=0))
        path = tmp_path / "wallet.json"
        client.wallet.save(path)
        fresh_client = system.new_client()
        fresh_client.wallet = Wallet.load(path)
        stored = fresh_client.wallet.coins[0]
        merchant = system.merchant(other_merchant(system, stored.coin.witness_id))
        signed = run_payment(fresh_client, stored, merchant, system.witness_of(stored), now=10)
        assert signed.transcript.coin == stored.coin

    def test_version_check(self, tmp_path):
        path = tmp_path / "wallet.json"
        path.write_text('{"version": 99, "coins": []}')
        with pytest.raises(ValueError):
            Wallet.load(path)

    def test_spendable_renewable_filters(self, system):
        client = system.new_client()
        stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
        soft = stored.coin.info.soft_expiry
        assert client.wallet.spendable(now=0) == [stored]
        assert client.wallet.renewable(now=0) == []
        assert client.wallet.spendable(now=soft) == []
        assert client.wallet.renewable(now=soft) == [stored]
        hard = stored.coin.info.hard_expiry
        assert client.wallet.renewable(now=hard) == []


class TestEcashSystem:
    def test_wiring(self, system):
        assert len(system.merchant_ids) == 4
        table = system.broker.current_table
        assert set(table.merchant_ids) == set(system.merchant_ids)
        for merchant_id in system.merchant_ids:
            node = system.nodes[merchant_id]
            assert node.merchant.keypair.public == node.witness.keypair.public
            assert set(node.merchant.witness_keys) == set(system.merchant_ids)

    def test_security_deposits_escrowed(self, system):
        for merchant_id in system.merchant_ids:
            assert system.broker.security_deposit_balance(merchant_id) == 100_00
        assert system.ledger.conserved()

    def test_requires_merchants(self, params):
        with pytest.raises(ValueError):
            EcashSystem(merchant_ids=(), params=params)

    def test_witness_of(self, system, funded_client):
        client, stored = funded_client
        witness = system.witness_of(stored)
        assert witness.merchant_id == stored.coin.witness_id

    def test_deterministic_with_seed(self, params):
        one = EcashSystem(merchant_ids=("a", "b"), params=params, seed=5)
        two = EcashSystem(merchant_ids=("a", "b"), params=params, seed=5)
        assert one.broker.blind_public == two.broker.blind_public
        assert one.nodes["a"].merchant.public_key == two.nodes["a"].merchant.public_key

    def test_independent_rngs_deterministic_across_instances(self, params):
        # Two instances — think two daemon processes rebuilding the
        # deployment — derive identical per-party randomness.
        one = EcashSystem(
            merchant_ids=("a", "b"), params=params, seed=5, independent_rngs=True
        )
        two = EcashSystem(
            merchant_ids=("a", "b"), params=params, seed=5, independent_rngs=True
        )
        assert one.broker.blind_public == two.broker.blind_public
        assert one.nodes["b"].merchant.public_key == two.nodes["b"].merchant.public_key
        info = one.standard_info(25, now=0)
        ticket_one, challenge_one = one.broker.begin_withdrawal(info)
        ticket_two, challenge_two = two.broker.begin_withdrawal(info)
        assert (ticket_one, challenge_one) == (ticket_two, challenge_two)
        # Clients are seeded by creation order, independent of the broker.
        assert one.new_client().rng.random() == two.new_client().rng.random()

    def test_independent_rngs_requires_seed(self, params):
        with pytest.raises(ValueError, match="seed"):
            EcashSystem(merchant_ids=("a",), params=params, independent_rngs=True)
