"""Tests for the k-of-n multi-witness extension."""

import pytest

from repro.core.exceptions import WrongWitnessError
from repro.core.multiwitness import (
    MultiWitnessCoin,
    MultiWitnessService,
    MultiWitnessTranscript,
    assign_witnesses,
    spend_multi,
    verify_quorum,
    witness_digest,
)
from repro.core.protocols import run_withdrawal
from repro.core.system import EcashSystem
from repro.crypto.representation import respond

MERCHANTS = tuple(f"m{i}" for i in range(8))


@pytest.fixture()
def multi_system(params):
    return EcashSystem(merchant_ids=MERCHANTS, params=params, seed=31)


@pytest.fixture()
def multi_coin(multi_system):
    client = multi_system.new_client()
    stored = run_withdrawal(client, multi_system.broker, multi_system.standard_info(25, 0))
    entries = assign_witnesses(
        multi_system.params, multi_system.broker.current_table, stored.coin.bare, 3
    )
    coin = MultiWitnessCoin(bare=stored.coin.bare, entries=entries, threshold=2)
    return client, stored, coin


def make_witnesses(multi_system, coin, **overrides):
    services = {}
    for merchant_id in coin.witness_ids:
        services[merchant_id] = MultiWitnessService(
            params=multi_system.params,
            merchant_id=merchant_id,
            keypair=multi_system.nodes[merchant_id].merchant.keypair,
            broker_sign_public=multi_system.broker.sign_public,
        )
    for merchant_id, up in overrides.items():
        services[merchant_id].up = up
    return services


def test_assignment_deterministic_and_distinct(multi_system, multi_coin):
    client, stored, coin = multi_coin
    again = assign_witnesses(
        multi_system.params, multi_system.broker.current_table, stored.coin.bare, 3
    )
    assert tuple(e.merchant_id for e in again) == coin.witness_ids
    assert len(set(coin.witness_ids)) == 3


def test_assignment_verifies(multi_system, multi_coin):
    client, stored, coin = multi_coin
    coin.verify_assignment(
        multi_system.params, multi_system.broker.current_table, multi_system.broker.sign_public
    )


def test_forged_assignment_rejected(multi_system, multi_coin):
    client, stored, coin = multi_coin
    table = multi_system.broker.current_table
    wrong_entries = tuple(
        table.entry_for_merchant(m)
        for m in MERCHANTS[:3]
    )
    if tuple(e.merchant_id for e in wrong_entries) == coin.witness_ids:
        pytest.skip("derivation happened to match the forged set")
    forged = MultiWitnessCoin(bare=stored.coin.bare, entries=wrong_entries, threshold=2)
    with pytest.raises(WrongWitnessError):
        forged.verify_assignment(
            multi_system.params, table, multi_system.broker.sign_public
        )


def test_too_many_witnesses_rejected(multi_system, multi_coin):
    client, stored, coin = multi_coin
    with pytest.raises(WrongWitnessError):
        assign_witnesses(
            multi_system.params, multi_system.broker.current_table, stored.coin.bare, 9
        )


def test_threshold_validation(multi_system, multi_coin):
    client, stored, coin = multi_coin
    with pytest.raises(ValueError):
        MultiWitnessCoin(bare=coin.bare, entries=coin.entries, threshold=4)
    with pytest.raises(ValueError):
        MultiWitnessCoin(bare=coin.bare, entries=coin.entries, threshold=0)


def test_spend_all_up(multi_system, multi_coin):
    client, stored, coin = multi_coin
    witnesses = make_witnesses(multi_system, coin)
    result = spend_multi(
        multi_system.params, coin, stored.secrets, witnesses, "shop", now=10
    )
    assert result.succeeded
    assert len(result.signatures) == 2  # stops at threshold


def test_spend_with_one_down(multi_system, multi_coin):
    client, stored, coin = multi_coin
    witnesses = make_witnesses(multi_system, coin, **{coin.witness_ids[0]: False})
    result = spend_multi(
        multi_system.params, coin, stored.secrets, witnesses, "shop", now=10
    )
    assert result.succeeded
    assert coin.witness_ids[0] not in result.signatures


def test_spend_fails_below_quorum(multi_system, multi_coin):
    client, stored, coin = multi_coin
    witnesses = make_witnesses(
        multi_system, coin,
        **{coin.witness_ids[0]: False, coin.witness_ids[1]: False},
    )
    result = spend_multi(
        multi_system.params, coin, stored.secrets, witnesses, "shop", now=10
    )
    assert not result.succeeded
    assert len(result.signatures) == 1


def test_quorum_verifies(multi_system, multi_coin):
    client, stored, coin = multi_coin
    witnesses = make_witnesses(multi_system, coin)
    result = spend_multi(
        multi_system.params, coin, stored.secrets, witnesses, "shop", now=10
    )
    d = multi_system.params.hashes.H0(*coin.bare.hash_parts(), "multi", "shop", 10)
    transcript = MultiWitnessTranscript(
        coin=coin,
        response=respond(stored.secrets, d, multi_system.params.group.q),
        merchant_id="shop",
        timestamp=10,
    )
    keys = {
        merchant_id: multi_system.nodes[merchant_id].merchant.public_key
        for merchant_id in coin.witness_ids
    }
    assert verify_quorum(multi_system.params, coin, transcript, result.signatures, keys)
    # Below-threshold signature sets do not verify.
    partial = dict(list(result.signatures.items())[:1])
    assert not verify_quorum(multi_system.params, coin, transcript, partial, keys)


def test_double_spend_detected(multi_system, multi_coin):
    client, stored, coin = multi_coin
    witnesses = make_witnesses(multi_system, coin)
    first = spend_multi(multi_system.params, coin, stored.secrets, witnesses, "shop-a", 10)
    assert first.succeeded
    second = spend_multi(multi_system.params, coin, stored.secrets, witnesses, "shop-b", 20)
    assert not second.succeeded
    assert second.double_spend_proof is not None
    assert second.double_spend_proof.x == stored.secrets.x


def test_double_spend_via_disjoint_witnesses_blocked(multi_system, multi_coin):
    """First spend uses witnesses {1,2}; the second tries to reach quorum
    avoiding them — only witness 3 is fresh, so the quorum fails."""
    client, stored, coin = multi_coin
    witnesses = make_witnesses(multi_system, coin)
    first = spend_multi(multi_system.params, coin, stored.secrets, witnesses, "shop-a", 10)
    used = set(first.signatures)
    # Attacker brings the used witnesses "down" from its own perspective by
    # only contacting the unused one: simulate by marking used ones down.
    for merchant_id in used:
        witnesses[merchant_id].up = False
    second = spend_multi(multi_system.params, coin, stored.secrets, witnesses, "shop-b", 20)
    assert not second.succeeded
    assert len(second.signatures) <= 1


def test_witness_digest_varies_by_index(multi_system, multi_coin):
    client, stored, coin = multi_coin
    digests = {witness_digest(multi_system.params, coin.bare, i) for i in range(5)}
    assert len(digests) == 5
