"""End-to-end: three OS processes, full coin lifecycle, byte parity."""

from repro.daemon.demo import format_report, run_loopback_demo


def test_loopback_demo_matches_sim(tmp_path):
    report = run_loopback_demo(tmp_path, seed=2026)

    outcomes = report["daemon"]["outcomes"]
    assert outcomes["withdrawn"] == 25
    assert outcomes["paid"] == 25
    assert outcomes["deposited"] == {
        "count": 1,
        "outcome": "credited",
        "amount": 25,
    }
    assert outcomes["double_spend_refused"] is True

    # The sim twin reached the same outcomes and the same books.
    assert report["problems"] == []
    assert report["sim"]["outcomes"] == outcomes

    # Non-trivial traffic was actually accounted on every node.
    for name, books in report["daemon"]["books"].items():
        sent, received, msg_out, msg_in = books["meter"]
        assert sent > 0 and received > 0, name
        assert msg_out > 0 and msg_in > 0, name

    text = format_report(report)
    assert "matches the sim transport exactly" in text
