"""Tests for durable broker state behind the daemon's ``--state-dir``."""

import pytest

from repro.core.persistence import broker_spaces
from repro.core.protocols import run_withdrawal
from repro.daemon.demo import write_deployment
from repro.daemon.service import build_daemon


@pytest.fixture()
def deployment_dir(tmp_path):
    write_deployment(tmp_path / "dep", seed=77)
    return str(tmp_path / "dep")


def test_broker_daemon_journals_and_recovers_across_restart(
    deployment_dir, tmp_path
):
    state_dir = str(tmp_path / "state")
    daemon = build_daemon(deployment_dir, "broker", state_dir=state_dir)
    assert daemon.store is not None
    first_boot = daemon.recovery
    assert first_boot.snapshot_records == 0  # nothing on disk yet
    system = daemon.system
    client = system.new_client()
    run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    expected = broker_spaces(system.broker)
    daemon.close_store()  # daemon process exits

    restarted = build_daemon(deployment_dir, "broker", state_dir=state_dir)
    assert restarted.recovery.replayed_records > 0
    assert broker_spaces(restarted.system.broker) == expected
    restarted.close_store()


def test_broker_daemon_without_state_dir_stays_memory_only(deployment_dir):
    daemon = build_daemon(deployment_dir, "broker")
    assert daemon.store is None
    assert daemon.recovery is None
    assert daemon.system.broker.journal is None


def test_state_dir_rejected_for_non_broker_roles(deployment_dir, tmp_path):
    with pytest.raises(ValueError, match="broker role"):
        build_daemon(
            deployment_dir, "alice-books", state_dir=str(tmp_path / "state")
        )
