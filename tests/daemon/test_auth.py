"""Mutual-handshake tests: acceptance, rejection, no-oracle refusals."""

import asyncio
import random

import pytest

from repro.daemon.auth import HandshakeError, client_handshake, server_handshake
from repro.daemon.framing import FrameError
from repro.daemon.keys import NodeIdentity, identity_keypair


def identity(name: str, seed: int = 99) -> NodeIdentity:
    return NodeIdentity(name=name, keypair=identity_keypair(name, seed))


async def handshake_pair(server_id, client_id, roster, client_roster=None):
    """Run both halves over a real loopback socket; return their outcomes."""
    server_result: dict = {}
    server_done = asyncio.Event()

    async def on_connect(reader, writer):
        try:
            server_result["peer"] = await server_handshake(
                reader, writer, server_id, roster, random.Random(1)
            )
        except Exception as error:  # recorded for assertions
            server_result["error"] = error
        finally:
            writer.close()
            server_done.set()

    server = await asyncio.start_server(on_connect, "127.0.0.1", 0)
    port = server.sockets[0].getsockname()[1]
    try:
        reader, writer = await asyncio.open_connection("127.0.0.1", port)
        try:
            await client_handshake(
                reader,
                writer,
                client_id,
                server_id.name,
                client_roster if client_roster is not None else roster,
                random.Random(2),
            )
        finally:
            writer.close()
        await asyncio.wait_for(server_done.wait(), 5)
    finally:
        server.close()
        await server.wait_closed()
    return server_result


def test_mutual_handshake_succeeds():
    server_id, client_id = identity("broker"), identity("client-0")
    roster = {"broker": server_id.public, "client-0": client_id.public}
    result = asyncio.run(handshake_pair(server_id, client_id, roster))
    assert result == {"peer": "client-0"}


def test_unprovisioned_peer_rejected_before_protocol():
    server_id, client_id = identity("broker"), identity("mallory")
    roster = {"broker": server_id.public}  # mallory is not provisioned
    client_roster = {"broker": server_id.public, "mallory": client_id.public}
    with pytest.raises((HandshakeError, FrameError, ConnectionError)):
        asyncio.run(
            handshake_pair(server_id, client_id, roster, client_roster=client_roster)
        )


def test_wrong_key_rejected_with_same_refusal():
    # A known name announcing the wrong key gets the identical refusal
    # as an unknown name: the roster check is not a membership oracle.
    server_id, client_id = identity("broker"), identity("client-0")
    imposter = NodeIdentity(name="client-0", keypair=identity_keypair("other", 7))
    roster = {"broker": server_id.public, "client-0": client_id.public}
    client_roster = {"broker": server_id.public, "client-0": imposter.public}
    with pytest.raises((HandshakeError, FrameError, ConnectionError)):
        asyncio.run(
            handshake_pair(server_id, imposter, roster, client_roster=client_roster)
        )


def test_client_requires_server_in_roster():
    async def scenario():
        reader = asyncio.StreamReader()

        class NullWriter:
            def write(self, data):  # pragma: no cover - never reached
                pass

        with pytest.raises(HandshakeError, match="roster"):
            await client_handshake(
                reader, NullWriter(), identity("client-0"), "broker", {}, random.Random(3)
            )

    asyncio.run(scenario())
