"""Unit tests for the length-prefixed framing codec."""

import asyncio

import pytest

from repro.daemon.framing import (
    Frame,
    FrameDecoder,
    FrameError,
    FrameTooLargeError,
    HEADER,
    HEADER_BYTES,
    KIND_CONTROL,
    KIND_REQUEST,
    KIND_RESPONSE,
    MAX_FRAME_BYTES,
    encode_frame,
    read_frame,
)


class TestEncodeDecode:
    def test_roundtrip(self):
        frame = Frame(kind=KIND_REQUEST, request_id=42, body=b"_method=pay")
        decoded = FrameDecoder().feed(encode_frame(frame))
        assert decoded == [frame]

    def test_roundtrip_empty_body(self):
        frame = Frame(kind=KIND_CONTROL, request_id=0, body=b"")
        assert FrameDecoder().feed(encode_frame(frame)) == [frame]

    def test_several_frames_in_one_chunk(self):
        frames = [
            Frame(kind=KIND_REQUEST, request_id=i, body=b"x" * i) for i in range(1, 4)
        ]
        chunk = b"".join(encode_frame(f) for f in frames)
        assert FrameDecoder().feed(chunk) == frames

    def test_encode_rejects_unknown_kind(self):
        with pytest.raises(FrameError):
            encode_frame(Frame(kind=9, request_id=1, body=b""))

    def test_encode_rejects_oversized_body(self):
        body = b"x" * (MAX_FRAME_BYTES + 1)
        with pytest.raises(FrameTooLargeError):
            encode_frame(Frame(kind=KIND_REQUEST, request_id=1, body=body))


class TestIncrementalDecoding:
    def test_byte_at_a_time(self):
        frame = Frame(kind=KIND_RESPONSE, request_id=7, body=b"_method=pay/ok")
        decoder = FrameDecoder()
        wire = encode_frame(frame)
        collected = []
        for index in range(len(wire)):
            collected.extend(decoder.feed(wire[index : index + 1]))
        assert collected == [frame]
        assert decoder.pending_bytes == 0

    def test_truncated_frame_stays_pending(self):
        frame = Frame(kind=KIND_REQUEST, request_id=1, body=b"abcdef")
        wire = encode_frame(frame)
        decoder = FrameDecoder()
        assert decoder.feed(wire[:-2]) == []
        assert decoder.pending_bytes == len(wire) - 2
        assert decoder.feed(wire[-2:]) == [frame]

    def test_oversized_header_rejected_before_body_arrives(self):
        # Only the 13-byte header is fed: the limit must fire without
        # waiting for (or buffering) the announced megabytes.
        header = HEADER.pack(MAX_FRAME_BYTES + 1, KIND_REQUEST, 1)
        with pytest.raises(FrameTooLargeError):
            FrameDecoder().feed(header)

    def test_unknown_kind_rejected(self):
        header = HEADER.pack(0, 200, 1)
        with pytest.raises(FrameError):
            FrameDecoder().feed(header)


class TestStreamReading:
    def run(self, coro):
        return asyncio.run(coro)

    def test_read_frame_roundtrip(self):
        async def scenario():
            reader = asyncio.StreamReader()
            frame = Frame(kind=KIND_REQUEST, request_id=3, body=b"payload")
            reader.feed_data(encode_frame(frame))
            return await read_frame(reader)

        frame = self.run(scenario())
        assert frame.request_id == 3
        assert frame.body == b"payload"

    def test_read_frame_clean_close(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_eof()
            with pytest.raises(FrameError, match="connection closed"):
                await read_frame(reader)

        self.run(scenario())

    def test_read_frame_truncated_header(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(b"\x00\x00")  # 2 of 13 header bytes
            reader.feed_eof()
            with pytest.raises(FrameError, match="truncated frame header"):
                await read_frame(reader)

        self.run(scenario())

    def test_read_frame_truncated_body(self):
        async def scenario():
            reader = asyncio.StreamReader()
            wire = encode_frame(Frame(kind=KIND_REQUEST, request_id=1, body=b"abcdef"))
            reader.feed_data(wire[: HEADER_BYTES + 2])
            reader.feed_eof()
            with pytest.raises(FrameError, match="truncated frame body"):
                await read_frame(reader)

        self.run(scenario())

    def test_read_frame_oversized(self):
        async def scenario():
            reader = asyncio.StreamReader()
            reader.feed_data(HEADER.pack(MAX_FRAME_BYTES + 1, KIND_REQUEST, 1))
            with pytest.raises(FrameTooLargeError):
                await read_frame(reader)

        self.run(scenario())
