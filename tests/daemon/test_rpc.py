"""RPC-layer tests: a real DaemonNode over loopback TCP."""

import asyncio

import pytest

from repro.core.exceptions import (
    EcashError,
    InvalidPaymentError,
    ServiceUnavailableError,
)
from repro.daemon.client import PeerConnection
from repro.daemon.keys import NodeIdentity, identity_keypair
from repro.daemon.service import DaemonClock, DaemonNode
from repro.daemon import wire
from repro.net.transport import TrafficMeter


def identity(name: str) -> NodeIdentity:
    return NodeIdentity(name=name, keypair=identity_keypair(name, 5))


class Loopback:
    """A DaemonNode plus an authenticated client connection."""

    def __init__(self, handlers):
        self.server_id = identity("server")
        self.client_id = identity("client")
        self.roster = {
            "server": self.server_id.public,
            "client": self.client_id.public,
        }
        self.handlers = handlers
        self.node: DaemonNode | None = None
        self.connection: PeerConnection | None = None
        self.meter = TrafficMeter()

    async def __aenter__(self):
        self.node = DaemonNode(
            identity=self.server_id,
            authorized=self.roster,
            host="127.0.0.1",
            port=0,
            handlers=self.handlers,
            clock=DaemonClock(),
        )
        await self.node.start()
        self.connection = await PeerConnection.open(
            "127.0.0.1",
            self.node.port,
            self.client_id,
            "server",
            self.roster,
            self.meter,
        )
        return self

    async def __aexit__(self, *exc):
        await self.connection.close()
        await self.node.stop()


def test_request_response_roundtrip():
    async def scenario():
        def echo(payload):
            return {"text": str(payload.get("text", ""))}

        async with Loopback({"echo": echo}) as loop:
            reply = await loop.connection.request("echo", {"text": "hello"})
            assert reply == {"text": "hello"}

    asyncio.run(scenario())


def test_interleaved_requests_multiplex_one_connection():
    async def scenario():
        gate = asyncio.Event()

        async def wait(payload):
            await gate.wait()
            return {"order": "second"}

        async def release(payload):
            gate.set()
            return {"order": "first"}

        async with Loopback({"wait": wait, "release": release}) as loop:
            # If requests were served sequentially, "wait" would hold the
            # connection and "release" could never unblock it.
            first, second = await asyncio.gather(
                loop.connection.request("wait", {}),
                loop.connection.request("release", {}),
            )
            assert first == {"order": "second"}
            assert second == {"order": "first"}

    asyncio.run(scenario())


def test_per_call_timeout():
    async def scenario():
        async def stall(payload):
            await asyncio.sleep(30)
            return {}

        async with Loopback({"stall": stall}) as loop:
            with pytest.raises(ServiceUnavailableError, match="timed out"):
                await loop.connection.request("stall", {}, timeout=0.2)

    asyncio.run(scenario())


def test_typed_error_propagates():
    async def scenario():
        def refuse(payload):
            raise InvalidPaymentError("nonce mismatch")

        async with Loopback({"refuse": refuse}) as loop:
            with pytest.raises(InvalidPaymentError, match="nonce mismatch"):
                await loop.connection.request("refuse", {})

    asyncio.run(scenario())


def test_unknown_method_is_typed_refusal():
    async def scenario():
        async with Loopback({}) as loop:
            with pytest.raises(EcashError, match="serves no"):
                await loop.connection.request("nope", {})

    asyncio.run(scenario())


def test_byte_accounting_mirrors_sim_arithmetic():
    async def scenario():
        def echo(payload):
            return {"text": "y"}

        async with Loopback({"echo": echo}) as loop:
            await loop.connection.request("echo", {"text": "x"})
            request = wire.request_body("echo", {"text": "x"})
            response = wire.response_body("echo", {"text": "y"})
            # Client sent one request, received one response; the server
            # recorded the mirror image; sizes are body + HTTP framing.
            assert loop.meter.snapshot() == (
                wire.message_size(request),
                wire.message_size(response),
            )
            assert loop.node.meter.snapshot() == (
                wire.message_size(response),
                wire.message_size(request),
            )
            assert loop.node.rpc_log == [
                {
                    "method": "echo",
                    "request_bytes": wire.message_size(request),
                    "response_bytes": wire.message_size(response),
                    "kind": "response",
                }
            ]

    asyncio.run(scenario())


def test_admin_calls_are_unmetered():
    async def scenario():
        async with Loopback({}) as loop:
            reply = await loop.connection.request("admin/ping", {})
            assert reply["name"] == "server"
            assert loop.meter.snapshot() == (0, 0)
            assert loop.node.meter.snapshot() == (0, 0)
            assert loop.node.rpc_log == []

    asyncio.run(scenario())


def test_admin_clock_pins_protocol_time():
    async def scenario():
        clock_reads = []

        def when(payload):
            clock_reads.append(loop.node.clock.now())
            return {"count": len(clock_reads)}

        async with Loopback({"when": when}) as loop:
            await loop.connection.request("admin/clock", {"now": 12345})
            await loop.connection.request("when", {})
            assert clock_reads == [12345]

    asyncio.run(scenario())


def test_unprovisioned_client_cannot_connect():
    async def scenario():
        async with Loopback({}) as loop:
            outsider = identity("mallory")
            bad_roster = {"server": loop.server_id.public, "mallory": outsider.public}
            with pytest.raises(ServiceUnavailableError):
                await PeerConnection.open(
                    "127.0.0.1",
                    loop.node.port,
                    outsider,
                    "server",
                    bad_roster,
                    TrafficMeter(),
                    attempts=2,
                )

    asyncio.run(scenario())
