"""Provisioning: key files, roster, deployment config."""

import json

import pytest

from repro.daemon.config import (
    DeploymentConfig,
    NETMAP_FILE,
    NodeAddress,
    load_config,
)
from repro.daemon.keys import (
    AUTHORIZED_FILE,
    identity_keypair,
    load_authorized,
    load_identity,
    provision,
)


def test_identity_keys_deterministic_per_name():
    first = identity_keypair("broker", 42)
    second = identity_keypair("broker", 42)
    other = identity_keypair("alice-books", 42)
    assert first.secret == second.secret
    assert first.public != other.public


def test_provision_roundtrip(tmp_path):
    provision(tmp_path, ["broker", "client-0"], seed=7)
    roster = load_authorized(tmp_path)
    assert set(roster) == {"broker", "client-0"}
    identity = load_identity(tmp_path, "broker")
    assert identity.name == "broker"
    assert roster["broker"] == identity.public
    # The roster file never contains secrets.
    raw = json.loads((tmp_path / AUTHORIZED_FILE).read_text())
    assert "secret" not in json.dumps(raw)


def test_config_roundtrip(tmp_path):
    config = DeploymentConfig(
        seed=9,
        merchants=("alice-books", "bob-news"),
        witness_weights={"alice-books": 1.0},
        nodes={
            "broker": NodeAddress("127.0.0.1", 4100, "broker"),
            "alice-books": NodeAddress("127.0.0.1", 4101, "witness"),
        },
    )
    config.save(tmp_path)
    loaded = load_config(tmp_path)
    assert loaded == config
    assert loaded.netmap() == {
        "broker": ("127.0.0.1", 4100),
        "alice-books": ("127.0.0.1", 4101),
    }


def test_config_rejects_unknown_role(tmp_path):
    config = DeploymentConfig(
        seed=9,
        merchants=("alice-books",),
        witness_weights={},
        nodes={"broker": NodeAddress("127.0.0.1", 4100, "broker")},
    )
    config.save(tmp_path)
    netmap_file = tmp_path / NETMAP_FILE
    blob = json.loads(netmap_file.read_text())
    blob["nodes"]["broker"]["role"] = "mint"
    netmap_file.write_text(json.dumps(blob))
    with pytest.raises(ValueError, match="role"):
        load_config(tmp_path)
