"""Frame-body encoding and typed error propagation."""

import pytest

from repro.core.exceptions import (
    EcashError,
    InsufficientFundsError,
    InvalidPaymentError,
)
from repro.daemon import wire
from repro.net.transport import HTTP_FRAMING_BYTES, Message, error_size_bytes


class TestBodies:
    def test_request_matches_sim_message(self):
        payload = {"ticket": 5, "sig_e": 123456789}
        body = wire.request_body("withdraw/complete", payload)
        assert body == Message(
            method="withdraw/complete", payload=payload
        ).encoded().encode("ascii")

    def test_request_roundtrip(self):
        payload = {"ticket": {"id": 7, "a": 11, "bare": 13}}
        method, parsed = wire.parse_request(wire.request_body("withdraw/begin", payload))
        assert method == "withdraw/begin"
        # Wire values come back as text; the structure must survive.
        assert set(parsed) == {"ticket"}
        assert set(parsed["ticket"]) == {"id", "a", "bare"}

    def test_response_roundtrip(self):
        payload = {"status": "ok", "amount": 25}
        parsed = wire.parse_response(wire.response_body("pay", payload))
        assert parsed["status"] == "ok"

    def test_message_size_matches_sim_accounting(self):
        payload = {"status": "ok"}
        body = wire.response_body("pay", payload)
        assert wire.message_size(body) == Message(
            method="pay/ok", payload=payload
        ).size_bytes
        assert wire.message_size(b"") == HTTP_FRAMING_BYTES

    def test_parse_request_requires_method(self):
        with pytest.raises(ValueError, match="_method"):
            wire.parse_request(b"ticket=5")

    def test_parse_request_rejects_reserved_error_field(self):
        with pytest.raises(ValueError, match="_error"):
            wire.parse_request(b"_method=pay&_error=EcashError")


class TestTypedErrors:
    def test_known_error_rebuilt(self):
        body = wire.error_body(InvalidPaymentError("nonce mismatch"))
        rebuilt = wire.parse_error(body)
        assert isinstance(rebuilt, InvalidPaymentError)
        assert "nonce mismatch" in str(rebuilt)

    def test_error_size_matches_sim_accounting(self):
        original = InsufficientFundsError("balance 0")
        assert wire.message_size(wire.error_body(original)) == error_size_bytes(
            original
        )

    def test_unknown_kind_becomes_protocol_error(self):
        rebuilt = wire.parse_error(b"_error=NoSuchError&detail=what")
        assert isinstance(rebuilt, wire.RemoteProtocolError)
        assert rebuilt.kind == "NoSuchError"

    def test_proof_carrying_never_rebuilt_proofless(self):
        # A DoubleSpendError must carry its extraction proof; an error
        # frame cannot, so it comes back as the generic protocol error.
        rebuilt = wire.parse_error(b"_error=DoubleSpendError&detail=spent")
        assert isinstance(rebuilt, wire.RemoteProtocolError)
        assert isinstance(rebuilt, EcashError)

    def test_handler_bug_surfaces_typed(self):
        rebuilt = wire.parse_error(wire.error_body(KeyError("boom")))
        assert isinstance(rebuilt, wire.RemoteProtocolError)
        assert rebuilt.kind == "KeyError"
