"""Shared fixtures: a fast parameter set and pre-wired deployments."""

from __future__ import annotations

import random

import pytest

from repro.core.params import SystemParams, test_params
from repro.core.protocols import run_withdrawal
from repro.core.system import EcashSystem

MERCHANTS = ("alice-books", "bob-news", "carol-games", "dave-music")


@pytest.fixture(scope="session")
def params() -> SystemParams:
    """The 512-bit test group (same code paths, fast)."""
    return test_params()


@pytest.fixture()
def system(params: SystemParams) -> EcashSystem:
    """A fresh four-merchant deployment with deterministic randomness."""
    return EcashSystem(merchant_ids=MERCHANTS, params=params, seed=1234)


@pytest.fixture()
def rng() -> random.Random:
    """A seeded RNG for tests that need their own randomness."""
    return random.Random(99)


@pytest.fixture()
def funded_client(system: EcashSystem):
    """A client holding one freshly withdrawn 25-cent coin."""
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    return client, stored


def other_merchant(system: EcashSystem, witness_id: str) -> str:
    """Any merchant other than the given witness."""
    return next(m for m in system.merchant_ids if m != witness_id)
