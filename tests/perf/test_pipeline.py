"""The bounded deposit pipeline: watermarks, capacity, drains.

The pipeline is deliberately passive — it never reads a wall clock; the
caller supplies ``now`` (the simulator clock in deployments), which keeps
flush behaviour deterministic under simulated time.
"""

from __future__ import annotations

import pytest

from repro.perf.pipeline import DepositPipeline, PipelineFullError


def test_size_watermark_triggers_ready():
    pipeline = DepositPipeline(max_batch=3, max_age=10.0)
    for index in range(2):
        pipeline.offer(f"t{index}", now=float(index))
        assert not pipeline.ready(now=float(index))
    pipeline.offer("t2", now=2.0)
    assert pipeline.ready(now=2.0)
    assert pipeline.drain() == ["t0", "t1", "t2"]
    assert not pipeline.ready(now=2.0)


def test_age_watermark_triggers_ready():
    pipeline = DepositPipeline(max_batch=100, max_age=5.0)
    pipeline.offer("old", now=0.0)
    assert not pipeline.ready(now=4.9)
    assert pipeline.oldest_age(now=4.9) == pytest.approx(4.9)
    assert pipeline.ready(now=5.0)
    assert pipeline.next_deadline() == pytest.approx(5.0)


def test_no_age_watermark_means_size_only():
    pipeline = DepositPipeline(max_batch=2, max_age=None)
    pipeline.offer("a", now=0.0)
    assert not pipeline.ready(now=10_000.0)
    assert pipeline.next_deadline() is None
    pipeline.offer("b", now=10_000.0)
    assert pipeline.ready(now=10_000.0)


def test_capacity_bound_is_enforced():
    pipeline = DepositPipeline(max_batch=2, capacity=3)
    for index in range(3):
        pipeline.offer(index, now=0.0)
    with pytest.raises(PipelineFullError):
        pipeline.offer(3, now=0.0)
    assert pipeline.drain() == [0, 1]
    pipeline.offer(3, now=1.0)  # room again after draining


def test_drain_respects_batch_size_and_order():
    pipeline = DepositPipeline(max_batch=2)
    for index in range(5):
        pipeline.offer(index, now=float(index))
    assert pipeline.drain() == [0, 1]
    assert pipeline.drain(limit=1) == [2]
    assert pipeline.drain_all() == [3, 4]
    assert pipeline.drain() == []
    assert len(pipeline) == 0


def test_constructor_validation():
    with pytest.raises(ValueError):
        DepositPipeline(max_batch=0)
    with pytest.raises(ValueError):
        DepositPipeline(max_batch=4, capacity=2)
    with pytest.raises(ValueError):
        DepositPipeline(max_age=-1.0)
