"""Pickle round-trips for everything the process pool ships to workers.

The parallel engine depends on group parameters, key material, comb
tables and whole signed transcripts surviving ``pickle`` by value. These
are regression tests for the custom ``__getstate__``/``__setstate__``
hooks (validated groups re-register their generators; comb tables rebuild
their block matrix instead of pickling megabytes of derived state).
"""

from __future__ import annotations

import pickle
import random

import pytest

from repro import perf
from repro.core.protocols import run_payment, run_withdrawal
from repro.core.system import EcashSystem
from repro.crypto.group import SchnorrGroup
from repro.crypto.schnorr import SchnorrKeyPair
from repro.perf import fixed_base

from tests.conftest import MERCHANTS


def test_schnorr_group_round_trips_validated(params):
    group = params.group
    clone = pickle.loads(pickle.dumps(group))
    assert clone == group
    assert (clone.p, clone.q, clone.g, clone.g1, clone.g2) == (
        group.p,
        group.q,
        group.g,
        group.g1,
        group.g2,
    )
    # The validated flag survives, so the copy never re-pays the
    # primality and subgroup checks.
    clone.validate()
    assert clone.exp(clone.g, 12345) == group.exp(group.g, 12345)


def test_unvalidated_group_does_not_gain_validation_by_pickling():
    group = SchnorrGroup(p=23, q=11, g=2, g1=4, g2=8)
    clone = pickle.loads(pickle.dumps(group))
    assert clone == group
    assert not clone._validated


def test_keypair_round_trips_and_still_signs(params):
    keypair = SchnorrKeyPair.generate(params.group, rng=random.Random(7))
    clone = pickle.loads(pickle.dumps(keypair))
    assert clone.public == keypair.public
    signature = clone.sign("pickled", 42, rng=random.Random(9))
    assert keypair.verify(signature, "pickled", 42)


def test_signed_transcript_round_trips_and_verifies(params):
    system = EcashSystem(merchant_ids=MERCHANTS, params=params, seed=60)
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(50, 0))
    merchant_id = next(m for m in MERCHANTS if m != stored.coin.witness_id)
    signed = run_payment(
        client, stored, system.merchant(merchant_id), system.witness_of(stored), 0
    )
    clone = pickle.loads(pickle.dumps(signed))
    assert clone == signed
    witness_public = system.merchant(clone.transcript.coin.witness_id).public_key
    assert clone.verify_witness_signature(params, witness_public)
    results = system.merchant(merchant_id).verify_payment_bulk([clone], now=0)
    assert results == [None]


def test_fixed_base_table_rebuilds_blocks(params):
    group = params.group
    table = fixed_base.build(group.g, group.p, group.q)
    blob = pickle.dumps(table)
    # The pickle must carry the four defining ints, not the block matrix.
    assert len(blob) < 4096
    clone = pickle.loads(blob)
    for exponent in (1, 2, group.q - 1, 123456789):
        assert clone.pow(exponent) == table.pow(exponent)


def test_params_round_trip_supports_full_protocol(params):
    clone_params = pickle.loads(pickle.dumps(params))
    system = EcashSystem(merchant_ids=MERCHANTS, params=clone_params, seed=61)
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, 0))
    merchant_id = next(m for m in MERCHANTS if m != stored.coin.witness_id)
    signed = run_payment(
        client, stored, system.merchant(merchant_id), system.witness_of(stored), 0
    )
    result = system.broker.deposit(merchant_id, signed, now=0)
    assert result.amount == 25
