"""The client-side precompute bank: offline tuples, online drain parity.

The bank front-loads the withdrawal blinding work (commitments, blinding
factors) and the payment salts into an offline phase; the online drain
must produce coins indistinguishable from the direct path and charge the
paper's full withdrawal row to Table 1 regardless.
"""

from __future__ import annotations

import random

import pytest

from repro.core.protocols import run_payment, run_withdrawal
from repro.core.system import EcashSystem
from repro.crypto.counters import OpCounter, counting
from repro.perf.precompute import PrecomputePool

from tests.conftest import MERCHANTS

NOW = 0


def _system(params, seed: int = 42) -> EcashSystem:
    return EcashSystem(merchant_ids=MERCHANTS, params=params, seed=seed)


def _banked_client(system: EcashSystem):
    client = system.new_client()
    client.precompute = PrecomputePool(
        params=system.params,
        broker_blind_public=system.broker.blind_public,
        rng=random.Random(2024),
    )
    return client


def test_fill_and_take_per_info(params):
    system = _system(params)
    client = _banked_client(system)
    info = system.standard_info(50, NOW)
    other = system.standard_info(100, NOW)
    assert client.precompute.level(info) == 0
    client.precompute.fill(info, count=2)
    assert client.precompute.level(info) == 2
    assert client.precompute.level(other) == 0
    assert client.precompute.take(other) is None
    assert client.precompute.take(info) is not None
    assert client.precompute.level(info) == 1


def test_banked_withdrawal_matches_direct_ops_and_spends(params):
    direct_system = _system(params, seed=7)
    direct_client = direct_system.new_client()
    with counting(OpCounter()) as direct_counter:
        run_withdrawal(
            direct_client, direct_system.broker, direct_system.standard_info(50, NOW)
        )

    banked_system = _system(params, seed=7)
    client = _banked_client(banked_system)
    info = banked_system.standard_info(50, NOW)
    client.precompute.fill(info)
    with counting(OpCounter()) as banked_counter:
        stored = run_withdrawal(client, banked_system.broker, info)
    # The bank shifts work offline but the *declared* Table 1 cost of the
    # online protocol is unchanged: (15, 5, 0, 1) either way.
    assert banked_counter.snapshot() == direct_counter.snapshot()
    assert client.precompute.level(info) == 0

    merchant_id = next(m for m in MERCHANTS if m != stored.coin.witness_id)
    signed = run_payment(
        client,
        stored,
        banked_system.merchant(merchant_id),
        banked_system.witness_of(stored),
        NOW,
    )
    assert banked_system.broker.deposit(merchant_id, signed, NOW).amount == 50


def test_bank_drains_in_fifo_order_then_falls_back(params):
    system = _system(params)
    client = _banked_client(system)
    info = system.standard_info(25, NOW)
    client.precompute.fill(info, count=2)
    for _ in range(3):  # third withdrawal outlives the bank
        stored = run_withdrawal(client, system.broker, info)
        assert stored.coin.info == info
    assert client.precompute.level(info) == 0


def test_payment_salt_bank(params):
    system = _system(params)
    client = _banked_client(system)
    assert client.precompute.salt_level() == 0
    client.precompute.fill_payment_salts(count=3)
    assert client.precompute.salt_level() == 3
    salts = {client.precompute.take_payment_salt() for _ in range(3)}
    assert len(salts) == 3
    assert all(salt is not None for salt in salts)
    assert client.precompute.take_payment_salt() is None

    stored = run_withdrawal(client, system.broker, system.standard_info(25, NOW))
    client.precompute.fill_payment_salts(count=1)
    merchant_id = next(m for m in MERCHANTS if m != stored.coin.witness_id)
    run_payment(
        client, stored, system.merchant(merchant_id), system.witness_of(stored), NOW
    )
    assert client.precompute.salt_level() == 0


def test_fill_is_offline_for_table1(params):
    system = _system(params)
    client = _banked_client(system)
    info = system.standard_info(50, NOW)
    with counting(OpCounter()) as counter:
        client.precompute.fill(info, count=2)
        client.precompute.fill_payment_salts(count=4)
    assert counter.snapshot() == (0, 0, 0, 0)
