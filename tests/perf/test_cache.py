"""Memoization caches: LRU behavior, key normalization, logical replay."""

from __future__ import annotations

from repro import perf
from repro.crypto.counters import OpCounter, counting
from repro.perf.cache import MemoCache, _MISSING, _normalize, memoized


class TestMemoCache:
    def test_miss_then_hit(self):
        store = MemoCache("t", max_size=4)
        assert store.get("k") is _MISSING
        store.put("k", 41)
        assert store.get("k") == 41

    def test_lru_eviction_prefers_recently_used(self):
        store = MemoCache("t", max_size=2)
        store.put("a", 1)
        store.put("b", 2)
        store.get("a")  # refresh "a" so "b" is the eviction victim
        store.put("c", 3)
        assert store.get("a") == 1
        assert store.get("b") is _MISSING
        assert store.get("c") == 3

    def test_long_byte_keys_are_digested(self):
        blob_a = b"x" * 1000
        blob_b = b"y" * 1000
        assert _normalize(blob_a) != _normalize(blob_b)
        assert len(_normalize(blob_a)) == 32
        # Short byte strings and non-bytes survive untouched; tuples recurse.
        assert _normalize((b"short", 7, blob_a)) == (b"short", 7, _normalize(blob_a))
        store = MemoCache("t")
        store.put(("sig", blob_a), True)
        assert store.get(("sig", blob_a)) is True
        assert store.get(("sig", blob_b)) is _MISSING


class TestMemoized:
    def test_compute_runs_once(self):
        calls = []
        for _ in range(3):
            value = memoized("memo-test", ("k",), lambda: calls.append(1) or "v")
        assert value == "v"
        assert len(calls) == 1

    def test_on_hit_fires_only_on_hits(self):
        hits = []
        memoized("memo-test", ("h",), lambda: 1, on_hit=lambda: hits.append(1))
        assert hits == []
        memoized("memo-test", ("h",), lambda: 1, on_hit=lambda: hits.append(1))
        assert hits == [1]


class TestVerifyMemo:
    def test_disabled_engine_always_computes(self):
        calls = []
        with perf.forced(False):
            for _ in range(3):
                perf.verify_memo("vm-test", ("k",), lambda: calls.append(1) or True)
        assert len(calls) == 3

    def test_hit_replays_declared_logical_counts(self):
        """Table 1 accounting must not change when the cache fires."""

        def compute():
            from repro.crypto import counters

            counters.record_exp(4)
            counters.record_hash(2)
            return True

        with perf.forced(True):
            with counting(OpCounter()) as miss_counter:
                perf.verify_memo("vm-replay", ("k",), compute, exp=4, hash=2)
            with counting(OpCounter()) as hit_counter:
                perf.verify_memo("vm-replay", ("k",), compute, exp=4, hash=2)
        assert miss_counter.snapshot() == (4, 2, 0, 0)
        assert hit_counter.snapshot() == miss_counter.snapshot()

    def test_cache_stats_include_fixed_base_tables(self):
        with perf.forced(True):
            perf.verify_memo("vm-stats", ("k",), lambda: True)
        stats = perf.cache_stats()
        assert stats["vm-stats"] == 1
        assert "fixed-base-tables" in stats
