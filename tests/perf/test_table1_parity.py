"""Table 1 logical operation counts are invariant under the perf engine."""

from __future__ import annotations

import pytest

from repro import perf
from repro.analysis.opcount import measure_table1


def _measured(rows):
    return {(row.protocol, row.party): row.measured for row in rows}


@pytest.mark.parametrize("enabled", [True, False])
def test_table1_matches_paper_either_way(enabled):
    with perf.forced(enabled):
        rows = measure_table1()
    for row in rows:
        assert row.matches, (
            f"perf={'on' if enabled else 'off'} {row.protocol}/{row.party}: "
            f"measured {row.measured}, paper {row.paper}"
        )


def test_counts_identical_across_engine_states_and_warm_caches():
    with perf.forced(False):
        naive = _measured(measure_table1())
    with perf.forced(True):
        cold = _measured(measure_table1())
        warm = _measured(measure_table1())  # caches primed by the cold run
    assert cold == naive
    assert warm == naive
