"""Parity suite: the pool-backed bulk paths versus the serial engine.

The contract under test is exact equivalence: for any batch, any seed and
any worker count, :meth:`Broker.deposit_batch` and
:meth:`Merchant.verify_payment_bulk` routed through a
:class:`~repro.perf.parallel.CryptoPool` must produce the same
accept/reject sets, the same culprit errors and the same Table 1 logical
op counts as the serial engine-on paths.
"""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import perf
from repro.core.broker import DepositResult
from repro.core.exceptions import EcashError, InvalidPaymentError
from repro.core.protocols import run_payment, run_withdrawal
from repro.core.system import EcashSystem
from repro.core.transcripts import SignedTranscript
from repro.crypto.counters import OpCounter, counting
from repro.crypto.representation import RepresentationResponse
from repro.perf.parallel import CryptoPool, set_parallel_enabled

from tests.conftest import MERCHANTS

MERCHANT = "alice-books"
NOW = 5


@pytest.fixture(autouse=True)
def parallel_on():
    """Force the parallel switch on so explicit pools activate anywhere."""
    set_parallel_enabled(True)
    yield
    set_parallel_enabled(True)


@pytest.fixture(scope="module")
def pool(params):
    """One long-lived two-worker pool shared by the module's tests.

    Reusing the executor keeps the suite fast: worker start-up (and the
    comb-table warm-up in the initializer) happens once, as it would in a
    real broker process.
    """
    with CryptoPool(max_workers=2, chunk_size=2) as shared:
        yield shared


def _fresh_system(params, seed: int = 777) -> EcashSystem:
    return EcashSystem(merchant_ids=MERCHANTS, params=params, seed=seed)


def _paid_transcripts(system: EcashSystem, count: int) -> list[SignedTranscript]:
    client = system.new_client()
    out: list[SignedTranscript] = []
    while len(out) < count:
        stored = run_withdrawal(client, system.broker, system.standard_info(50, NOW))
        if stored.coin.witness_id == MERCHANT:
            continue
        out.append(
            run_payment(
                client, stored, system.merchant(MERCHANT), system.witness_of(stored), NOW
            )
        )
    return out


def _poison(system: EcashSystem, signed: SignedTranscript) -> SignedTranscript:
    """Corrupt the representation response but re-sign as the witness."""
    q = system.params.group.q
    transcript = signed.transcript
    bad = replace(
        transcript,
        response=RepresentationResponse(
            r1=(transcript.response.r1 + 1) % q, r2=transcript.response.r2
        ),
    )
    witness_key = system.witness(transcript.coin.witness_id).keypair
    return SignedTranscript(
        transcript=bad, witness_signature=witness_key.sign(*bad.hash_parts())
    )


def _shape(results: list) -> list[tuple[type, str] | str]:
    """Comparable verdict per item: OK, or (error type, message)."""
    out: list[tuple[type, str] | str] = []
    for item in results:
        if item is None or isinstance(item, DepositResult):
            out.append("ok")
        else:
            out.append((type(item), str(item)))
    return out


@pytest.mark.parametrize("seed", [101, 202, 303])
def test_deposit_batch_pooled_matches_serial(params, pool, seed):
    serial_system = _fresh_system(params, seed)
    serial_items = _paid_transcripts(serial_system, 5)
    pooled_system = _fresh_system(params, seed)
    pooled_items = _paid_transcripts(pooled_system, 5)
    with counting(OpCounter()) as serial_counter:
        serial = serial_system.broker.deposit_batch(MERCHANT, serial_items, NOW)
    with counting(OpCounter()) as pooled_counter:
        pooled = pooled_system.broker.deposit_batch(
            MERCHANT, pooled_items, NOW, pool=pool
        )
    assert _shape(pooled) == _shape(serial)
    assert pooled_counter.snapshot() == serial_counter.snapshot()
    assert pooled_system.broker.merchant_balance(
        MERCHANT
    ) == serial_system.broker.merchant_balance(MERCHANT)


@pytest.mark.parametrize("position", range(5))
def test_poisoned_deposit_is_named_in_every_chunk_position(params, pool, position):
    """chunk_size=2 over 5 items puts ``position`` in every chunk slot."""
    serial_system = _fresh_system(params)
    serial_items = _paid_transcripts(serial_system, 5)
    serial_items[position] = _poison(serial_system, serial_items[position])
    pooled_system = _fresh_system(params)
    pooled_items = _paid_transcripts(pooled_system, 5)
    pooled_items[position] = _poison(pooled_system, pooled_items[position])
    with counting(OpCounter()) as serial_counter:
        serial = serial_system.broker.deposit_batch(MERCHANT, serial_items, NOW)
    with counting(OpCounter()) as pooled_counter:
        pooled = pooled_system.broker.deposit_batch(
            MERCHANT, pooled_items, NOW, pool=pool
        )
    assert isinstance(pooled[position], InvalidPaymentError)
    assert _shape(pooled) == _shape(serial)
    assert pooled_counter.snapshot() == serial_counter.snapshot()
    assert pooled_system.broker.merchant_balance(MERCHANT) == 200


@pytest.mark.parametrize("position", range(4))
def test_poisoned_payment_is_named_in_every_chunk_position(params, pool, position):
    system = _fresh_system(params)
    items = _paid_transcripts(system, 4)
    items[position] = _poison(system, items[position])
    merchant = system.merchant(MERCHANT)
    with counting(OpCounter()) as serial_counter:
        serial = merchant.verify_payment_bulk(items, NOW)
    with counting(OpCounter()) as pooled_counter:
        pooled = merchant.verify_payment_bulk(items, NOW, pool=pool)
    assert _shape(pooled) == _shape(serial)
    assert isinstance(pooled[position], InvalidPaymentError)
    assert [item is None for item in pooled].count(True) == 3
    assert pooled_counter.snapshot() == serial_counter.snapshot()


def test_payment_bulk_pooled_matches_serial_and_naive(params, pool):
    system = _fresh_system(params)
    items = _paid_transcripts(system, 4)
    merchant = system.merchant(MERCHANT)
    with counting(OpCounter()) as serial_counter:
        serial = merchant.verify_payment_bulk(items, NOW)
    pooled = merchant.verify_payment_bulk(items, NOW, pool=pool)
    with perf.forced(False):
        naive = merchant.verify_payment_bulk(items, NOW)
    assert serial == [None] * 4
    assert _shape(pooled) == _shape(serial) == _shape(naive)
    with counting(OpCounter()) as pooled_counter:
        merchant.verify_payment_bulk(items, NOW, pool=pool)
    assert pooled_counter.snapshot() == serial_counter.snapshot()


def test_outcomes_do_not_depend_on_worker_count(params):
    """Same chunk_size, different worker counts: identical outcomes.

    The chunk partition and per-chunk BGR seeds derive only from the
    batch seed and chunk size, so fan-out width cannot change verdicts.
    """
    verdicts = []
    for workers in (1, 3):
        system = _fresh_system(params, seed=55)
        items = _paid_transcripts(system, 5)
        items[2] = _poison(system, items[2])
        with CryptoPool(max_workers=workers, chunk_size=2) as pool:
            verdicts.append(
                _shape(system.broker.deposit_batch(MERCHANT, items, NOW, pool=pool))
            )
    assert verdicts[0] == verdicts[1]
    assert isinstance(verdicts[0][2], tuple)


def test_parallel_off_switch_keeps_results_identical(params, pool):
    from repro.perf.parallel import parallel_disabled

    off_system = _fresh_system(params, seed=9)
    off_items = _paid_transcripts(off_system, 4)
    on_system = _fresh_system(params, seed=9)
    on_items = _paid_transcripts(on_system, 4)
    with parallel_disabled():
        with counting(OpCounter()) as off_counter:
            off = off_system.broker.deposit_batch(MERCHANT, off_items, NOW, pool=pool)
    with counting(OpCounter()) as on_counter:
        on = on_system.broker.deposit_batch(MERCHANT, on_items, NOW, pool=pool)
    assert _shape(on) == _shape(off)
    assert on_counter.snapshot() == off_counter.snapshot()


def test_pooled_batch_withdrawal_yields_valid_coins(params, pool):
    system = _fresh_system(params, seed=31)
    client = system.new_client()
    infos = [system.standard_info(50, NOW) for _ in range(3)]
    with counting(OpCounter()) as counter:
        ticket, challenges = system.broker.begin_batch_withdrawal(infos, pool=pool)
        sessions = [
            client.begin_withdrawal(info, challenge)
            for info, challenge in zip(infos, challenges)
        ]
        responses = system.broker.complete_batch_withdrawal(
            ticket, [session.e for session in sessions]
        )
        coins = [
            client.finish_withdrawal(session, response, system.broker.tables[1])
            for session, response in zip(sessions, responses)
        ]
    assert len(coins) == 3
    # 3x the full-protocol withdrawal row of Table 1: (15, 5, 0, 1) each.
    assert counter.snapshot() == (45, 15, 0, 3)
    for stored in coins:
        merchant = system.merchant(MERCHANT)
        run_payment(client, stored, merchant, system.witness_of(stored), NOW)


def test_chunk_helpers_cover_edges():
    pool = CryptoPool(max_workers=2, chunk_size=3)
    assert pool._chunks(0) == []
    assert pool._chunks(3) == [(0, 3)]
    assert pool._chunks(7) == [(0, 3), (3, 6), (6, 7)]
    with pytest.raises(ValueError):
        CryptoPool(chunk_size=0)
