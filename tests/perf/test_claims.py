"""Tests for commitment-claim certification and binary-split pinpointing."""

import random

import pytest

from repro.core.params import test_params as make_test_params
from repro.perf.batch import ClaimSet, CommitmentClaim, certify_claims, false_claims


@pytest.fixture(scope="module")
def group():
    return make_test_params().group


def _good_claim(group, rng):
    a = rng.randrange(1, group.q)
    b = rng.randrange(1, group.q)
    commitment = (pow(group.g, a, group.p) * pow(group.g1, b, group.p)) % group.p
    return CommitmentClaim(commitment=commitment, pairs=((group.g, a), (group.g1, b)))


def _bad_claim(group, rng):
    claim = _good_claim(group, rng)
    return CommitmentClaim(
        commitment=(claim.commitment * group.g) % group.p, pairs=claim.pairs
    )


def test_certify_empty_claim_list(group):
    assert certify_claims(group.p, group.q, [], rng=random.Random(1))


def test_certify_valid_claims(group):
    rng = random.Random(2)
    claims = [_good_claim(group, rng) for _ in range(64)]
    assert certify_claims(group.p, group.q, claims, rng=random.Random(3))


def test_certify_detects_single_bad_claim(group):
    rng = random.Random(4)
    claims = [_good_claim(group, rng) for _ in range(64)]
    claims[29] = _bad_claim(group, rng)
    assert not certify_claims(group.p, group.q, claims, rng=random.Random(5))


def test_claim_with_no_pairs_certifies_trivially(group):
    claim = CommitmentClaim(commitment=1, pairs=())
    assert certify_claims(group.p, group.q, [claim], rng=random.Random(6))


def test_binary_split_pinpoints_one_bad_in_64(group):
    rng = random.Random(7)
    claims = [_good_claim(group, rng) for _ in range(64)]
    claims[41] = _bad_claim(group, rng)
    assert false_claims(group.p, group.q, claims, rng=random.Random(8)) == [41]


def test_binary_split_pinpoints_multiple_offenders(group):
    rng = random.Random(9)
    claims = [_good_claim(group, rng) for _ in range(32)]
    bad = [0, 15, 31]
    for index in bad:
        claims[index] = _bad_claim(group, rng)
    assert sorted(false_claims(group.p, group.q, claims, rng=random.Random(10))) == bad


def test_binary_split_on_all_valid_claims(group):
    rng = random.Random(11)
    claims = [_good_claim(group, rng) for _ in range(8)]
    assert false_claims(group.p, group.q, claims, rng=random.Random(12)) == []


def test_binary_split_singleton(group):
    rng = random.Random(13)
    assert false_claims(group.p, group.q, [_bad_claim(group, rng)]) == [0]
    assert false_claims(group.p, group.q, [_good_claim(group, rng)]) == []


def test_claim_set_reports_bad_tokens(group):
    rng = random.Random(14)
    claims = ClaimSet()
    for index in range(16):
        claim = _bad_claim(group, rng) if index == 9 else _good_claim(group, rng)
        claims.add(("item", index), (claim,), lambda: False)
    assert claims.certify(group.p, group.q, random.Random(15)) == [("item", 9)]


def test_claim_set_recheck_overrules_false_claim(group):
    # A wrong claim whose recheck passes models a fast-path bookkeeping
    # glitch over a genuinely valid item: the item must NOT be failed.
    rng = random.Random(16)
    claims = ClaimSet()
    claims.add("glitched", (_bad_claim(group, rng),), lambda: True)
    claims.add("fine", (_good_claim(group, rng),), lambda: True)
    assert claims.certify(group.p, group.q, random.Random(17)) == []


def test_claim_set_empty(group):
    assert ClaimSet().certify(group.p, group.q, random.Random(18)) == []


def test_claim_set_multiple_claims_per_token(group):
    rng = random.Random(19)
    claims = ClaimSet()
    claims.add("left-and-right", (_good_claim(group, rng), _bad_claim(group, rng)), lambda: False)
    assert claims.certify(group.p, group.q, random.Random(20)) == ["left-and-right"]
