"""Fixed-base comb tables: correctness properties and lazy promotion."""

from __future__ import annotations

import random

import pytest

from repro.core.params import test_params as make_test_params
from repro.perf import fixed_base
from repro.perf.fixed_base import BUILD_THRESHOLD, MAX_TABLES, FixedBaseTable


@pytest.fixture(scope="module")
def group():
    return make_test_params().group


class TestFixedBaseTable:
    def test_matches_builtin_pow_on_random_exponents(self, group):
        table = FixedBaseTable(group.g, group.p, group.q)
        rng = random.Random(7)
        for _ in range(25):
            e = rng.randrange(group.q)
            assert table.pow(e) == pow(group.g, e, group.p)

    @pytest.mark.parametrize("exponent_name", ["zero", "one", "q_minus_1", "q", "above_q"])
    def test_edge_exponents(self, group, exponent_name):
        exponent = {
            "zero": 0,
            "one": 1,
            "q_minus_1": group.q - 1,
            "q": group.q,
            "above_q": 3 * group.q + 17,
        }[exponent_name]
        table = FixedBaseTable(group.g1, group.p, group.q)
        assert table.pow(exponent) == pow(group.g1, exponent % group.q, group.p)

    def test_nondefault_windows(self, group):
        for window in (1, 4, 11):
            table = FixedBaseTable(group.g2, group.p, group.q, window=window)
            assert table.pow(12345) == pow(group.g2, 12345, group.p)

    def test_rejects_bad_window_and_moduli(self, group):
        with pytest.raises(ValueError):
            FixedBaseTable(group.g, group.p, group.q, window=0)
        with pytest.raises(ValueError):
            FixedBaseTable(group.g, group.p, group.q, window=17)
        with pytest.raises(ValueError):
            FixedBaseTable(group.g, 1, group.q)
        with pytest.raises(ValueError):
            FixedBaseTable(group.g, group.p, 0)


class TestRegistry:
    def test_fpow_without_registration_falls_back(self, group):
        assert fixed_base.fpow(group.g, 42, group.p, group.q) == pow(group.g, 42, group.p)
        assert fixed_base.table_count() == 0

    def test_registered_base_promotes_after_threshold(self, group):
        fixed_base.register(group.g, group.p, group.q)
        for i in range(BUILD_THRESHOLD):
            assert fixed_base.table_count() == 0, f"built too early on use {i}"
            result = fixed_base.fpow(group.g, 1000 + i, group.p, group.q)
            assert result == pow(group.g, 1000 + i, group.p)
        assert fixed_base.table_count() == 1
        assert fixed_base.table_for(group.g, group.p) is not None

    def test_touch_counts_uses_across_call_sites(self, group):
        """multi-exp style lookups promote candidates just like fpow."""
        fixed_base.register(group.g1, group.p, group.q)
        for _ in range(BUILD_THRESHOLD - 1):
            assert fixed_base.touch(group.g1, group.p) is None
        table = fixed_base.touch(group.g1, group.p)
        assert isinstance(table, FixedBaseTable)
        assert table.pow(99) == pow(group.g1, 99, group.p)

    def test_unregistered_base_never_builds(self, group):
        for _ in range(BUILD_THRESHOLD + 2):
            assert fixed_base.touch(group.g2, group.p) is None
        assert fixed_base.table_count() == 0

    def test_lru_eviction_bounds_table_count(self):
        # A toy prime keeps MAX_TABLES+ builds cheap; correctness of the
        # table math is covered above on the real group.
        p, q = 2879, 1439  # p = 2q + 1, both prime
        bases = [pow(5, 2 * k + 2, p) for k in range(MAX_TABLES + 4)]
        for base in bases:
            fixed_base.register(base, p, q)
            for _ in range(BUILD_THRESHOLD):
                fixed_base.fpow(base, 7, p, q)
        assert fixed_base.table_count() == MAX_TABLES
        # The oldest tables were evicted, the newest survive.
        assert fixed_base.table_for(bases[0], p) is None
        assert fixed_base.table_for(bases[-1], p) is not None

    def test_candidate_registry_is_bounded(self):
        p, q = 2879, 1439
        for base in range(2, 2 + fixed_base.MAX_CANDIDATES + 50):
            fixed_base.register(base, p, q)
        assert len(fixed_base._candidates) <= fixed_base.MAX_CANDIDATES
