"""The perf engine's telemetry: hit/miss counters, gauges, histogram."""

from __future__ import annotations

import pytest

from repro import obs, perf
from repro.core.params import test_params as make_test_params
from repro.perf import fixed_base


@pytest.fixture(autouse=True)
def live_obs():
    """Fresh, enabled telemetry for every test in this module."""
    obs.reset()
    obs.enable()
    yield
    obs.reset()
    obs.disable()


def test_verify_cache_hit_and_miss_counters():
    with perf.forced(True):
        perf.verify_memo("obs-test", ("k",), lambda: True)
        perf.verify_memo("obs-test", ("k",), lambda: True)
        perf.verify_memo("obs-test", ("k",), lambda: True)
    registry = obs.registry()
    assert registry.counter_value("perf_verify_cache_misses_total", cache="obs-test") == 1
    assert registry.counter_value("perf_verify_cache_hits_total", cache="obs-test") == 2


def test_fixed_base_hit_counter_counts_table_lookups():
    group = make_test_params().group
    fixed_base.register(group.g, group.p, group.q)
    for _ in range(fixed_base.BUILD_THRESHOLD - 1):
        fixed_base.fpow(group.g, 5, group.p, group.q)
    registry = obs.registry()
    # Candidate uses are not hits; the build-and-serve call and every
    # table-backed call after it are.
    assert registry.counter_value("perf_fixed_base_hits_total") == 0
    fixed_base.fpow(group.g, 5, group.p, group.q)
    fixed_base.fpow(group.g, 6, group.p, group.q)
    assert registry.counter_value("perf_fixed_base_hits_total") == 2


def test_export_metrics_publishes_cache_size_gauges():
    with perf.forced(True):
        perf.verify_memo("obs-gauge", ("a",), lambda: 1)
        perf.verify_memo("obs-gauge", ("b",), lambda: 2)
    perf.export_metrics()
    gauges = obs.registry().snapshot()["gauges"]
    assert gauges["perf_cache_size{cache=obs-gauge}"] == 2
    assert "perf_cache_size{cache=fixed-base-tables}" in gauges


def test_deposit_batch_size_histogram(system):
    system.broker.deposit_batch("alice-books", [], now=0)
    histograms = obs.registry().snapshot()["histograms"]
    assert histograms["perf_batch_deposit_size"]["count"] == 1
    assert histograms["perf_batch_deposit_size"]["max"] == 0.0
