"""The bench harness: result shape, baseline writing, regression check."""

from __future__ import annotations

import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def results(params):
    return bench.run_bench(params=params, seed=11, sizes=(1, 2, 2))


def test_run_bench_result_shape(results, params):
    assert results["group_bits"] == params.group.p.bit_length()
    for section in ("payment_verify", "withdrawal", "deposit_bulk"):
        values = results[section]
        assert values["items"] > 0
        assert values["naive_ops_per_s"] > 0
        assert values["perf_ops_per_s"] > 0
        assert values["speedup"] == pytest.approx(
            values["perf_ops_per_s"] / values["naive_ops_per_s"], rel=0.02
        )


def test_write_results_merges_modes(tmp_path, results):
    target = tmp_path / "bench.json"
    bench.write_results(results, target, mode="full")
    bench.write_results({"group_bits": 512}, target, mode="quick")
    stored = json.loads(target.read_text())
    assert stored["full"] == results
    assert stored["quick"] == {"group_bits": 512}


def test_check_regression():
    baseline = {
        "group_bits": 512,
        "payment_verify": {"speedup": 4.0},
        "deposit_bulk": {"speedup": 3.0},
    }
    healthy = {
        "payment_verify": {"speedup": 3.9},
        "deposit_bulk": {"speedup": 2.5},
    }
    assert bench.check_regression(healthy, baseline, tolerance=0.7) == []
    regressed = {
        "payment_verify": {"speedup": 1.0},
        "deposit_bulk": {"speedup": 2.5},
    }
    failures = bench.check_regression(regressed, baseline, tolerance=0.7)
    assert len(failures) == 1
    assert failures[0].startswith("payment_verify")
    failures = bench.check_regression({}, baseline, tolerance=0.7)
    assert sorted(f.split(":")[0] for f in failures) == ["deposit_bulk", "payment_verify"]
