"""The bench harness: result shape, baseline writing, regression check."""

from __future__ import annotations

import json

import pytest

from repro.perf import bench


@pytest.fixture(scope="module")
def results(params):
    return bench.run_bench(params=params, seed=11, sizes=(1, 2, 2))


def test_run_bench_result_shape(results, params):
    assert results["group_bits"] == params.group.p.bit_length()
    for section in ("payment_verify", "withdrawal", "deposit_bulk"):
        values = results[section]
        assert values["items"] > 0
        assert values["naive_ops_per_s"] > 0
        assert values["perf_ops_per_s"] > 0
        assert values["speedup"] == pytest.approx(
            values["perf_ops_per_s"] / values["naive_ops_per_s"], rel=0.02
        )


def test_write_results_merges_modes(tmp_path, results):
    target = tmp_path / "bench.json"
    bench.write_results(results, target, mode="full")
    bench.write_results({"group_bits": 512}, target, mode="quick")
    stored = json.loads(target.read_text())
    assert stored["full"] == results
    assert stored["quick"] == {"group_bits": 512}


def test_parallel_section_shape(params):
    results = bench.run_bench(params=params, seed=12, sizes=(1, 2, 2), workers=2)
    parallel = results["parallel"]
    assert parallel["host_cpus"] >= 1
    assert parallel["levels"] == [1, 2]
    for workload in ("payment_verify", "deposit_bulk"):
        values = parallel[workload]
        assert values["items"] == 16
        assert values["serial_ops_per_s"] > 0
        assert set(values["workers"]) == {"1", "2"}
        for entry in values["workers"].values():
            assert entry["ops_per_s"] > 0
            assert entry["speedup"] > 0


def _parallel_block(payment_speedups, host_cpus=4):
    return {
        "host_cpus": host_cpus,
        "payment_verify": {
            "workers": {
                level: {"speedup": value}
                for level, value in payment_speedups.items()
            }
        },
        "deposit_bulk": {"workers": {}},
    }


def test_check_regression_walks_parallel_levels():
    baseline = {"parallel": _parallel_block({"2": 1.8, "4": 3.0})}
    healthy = {"parallel": _parallel_block({"2": 1.7, "4": 2.9})}
    assert bench.check_regression(healthy, baseline, tolerance=0.7) == []
    regressed = {"parallel": _parallel_block({"2": 1.7, "4": 1.0})}
    failures = bench.check_regression(regressed, baseline, tolerance=0.7)
    assert len(failures) == 1
    assert failures[0].startswith("parallel.payment_verify[4w]")
    missing = {"parallel": _parallel_block({"2": 1.7})}
    failures = bench.check_regression(missing, baseline, tolerance=0.7)
    assert failures == ["parallel.payment_verify[4w]: missing from current results"]


def test_check_regression_skips_parallel_across_hosts():
    baseline = {"parallel": _parallel_block({"4": 3.0}, host_cpus=8)}
    current = {"parallel": _parallel_block({"4": 0.9}, host_cpus=1)}
    assert bench.check_regression(current, baseline, tolerance=0.7) == []


def test_check_regression():
    baseline = {
        "group_bits": 512,
        "payment_verify": {"speedup": 4.0},
        "deposit_bulk": {"speedup": 3.0},
    }
    healthy = {
        "payment_verify": {"speedup": 3.9},
        "deposit_bulk": {"speedup": 2.5},
    }
    assert bench.check_regression(healthy, baseline, tolerance=0.7) == []
    regressed = {
        "payment_verify": {"speedup": 1.0},
        "deposit_bulk": {"speedup": 2.5},
    }
    failures = bench.check_regression(regressed, baseline, tolerance=0.7)
    assert len(failures) == 1
    assert failures[0].startswith("payment_verify")
    failures = bench.check_regression({}, baseline, tolerance=0.7)
    assert sorted(f.split(":")[0] for f in failures) == ["deposit_bulk", "payment_verify"]
