"""Perf-suite fixtures: every test starts from a cold perf engine."""

from __future__ import annotations

import pytest

from repro import perf


@pytest.fixture(autouse=True)
def cold_perf_engine():
    """Reset tables/caches around each test so state never leaks."""
    perf.reset()
    yield
    perf.reset()
