"""The broker's batched deposit pipeline vs the per-item Algorithm 3 loop."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import perf
from repro.core.broker import DepositOutcome, DepositResult
from repro.core.exceptions import DoubleDepositError, InvalidPaymentError
from repro.core.protocols import run_payment, run_withdrawal
from repro.core.system import EcashSystem
from repro.core.transcripts import SignedTranscript
from repro.crypto.representation import RepresentationResponse

from tests.conftest import MERCHANTS

MERCHANT = "alice-books"
NOW = 5


def _fresh_system(params) -> EcashSystem:
    return EcashSystem(merchant_ids=MERCHANTS, params=params, seed=777)


def _paid_transcripts(system: EcashSystem, count: int) -> list[SignedTranscript]:
    """``count`` distinct coins spent at MERCHANT (never its own witness)."""
    client = system.new_client()
    out: list[SignedTranscript] = []
    while len(out) < count:
        stored = run_withdrawal(client, system.broker, system.standard_info(50, NOW))
        if stored.coin.witness_id == MERCHANT:
            continue
        out.append(
            run_payment(client, stored, system.merchant(MERCHANT), system.witness_of(stored), NOW)
        )
    return out


def _forge_bad_response(system: EcashSystem, signed: SignedTranscript) -> SignedTranscript:
    """A transcript whose witness signature is fine but whose proof is not.

    Models a faulty witness signing a transcript with a corrupted
    representation response — exactly the case the batched pipeline must
    pin on the right item.
    """
    q = system.params.group.q
    transcript = signed.transcript
    bad_transcript = replace(
        transcript,
        response=RepresentationResponse(
            r1=(transcript.response.r1 + 1) % q, r2=transcript.response.r2
        ),
    )
    witness_key = system.witness(transcript.coin.witness_id).keypair
    return SignedTranscript(
        transcript=bad_transcript,
        witness_signature=witness_key.sign(*bad_transcript.hash_parts()),
    )


def test_all_valid_batch_matches_per_item_loop(params):
    loop_system = _fresh_system(params)
    loop_results = [
        loop_system.broker.deposit(MERCHANT, signed, NOW)
        for signed in _paid_transcripts(loop_system, 4)
    ]
    batch_system = _fresh_system(params)
    batch_results = batch_system.broker.deposit_batch(
        MERCHANT, _paid_transcripts(batch_system, 4), NOW
    )
    assert batch_results == loop_results
    assert all(
        isinstance(r, DepositResult) and r.outcome is DepositOutcome.CREDITED
        for r in batch_results
    )
    assert (
        batch_system.broker.merchant_balance(MERCHANT)
        == loop_system.broker.merchant_balance(MERCHANT)
        == 200
    )


def test_bad_item_is_named_and_rest_settle(system):
    items = _paid_transcripts(system, 4)
    items[1] = _forge_bad_response(system, items[1])
    results = system.broker.deposit_batch(MERCHANT, items, NOW)
    assert isinstance(results[1], InvalidPaymentError)
    for index in (0, 2, 3):
        assert isinstance(results[index], DepositResult)
    assert system.broker.merchant_balance(MERCHANT) == 150


def test_in_batch_repeat_behaves_like_sequential_deposits(system):
    (signed,) = _paid_transcripts(system, 1)
    results = system.broker.deposit_batch(MERCHANT, [signed, signed], NOW)
    assert isinstance(results[0], DepositResult)
    assert isinstance(results[1], DoubleDepositError)
    assert system.broker.merchant_balance(MERCHANT) == 50


def test_perf_off_path_is_a_deposit_loop(params):
    system = _fresh_system(params)
    items = _paid_transcripts(system, 3)
    items[0] = _forge_bad_response(system, items[0])
    with perf.forced(False):
        results = system.broker.deposit_batch(MERCHANT, items, NOW)
    assert isinstance(results[0], InvalidPaymentError)
    assert all(isinstance(r, DepositResult) for r in results[1:])
    assert system.broker.merchant_balance(MERCHANT) == 100


@pytest.mark.parametrize("enabled", [True, False])
def test_logical_op_counts_match_per_item_deposits(params, enabled):
    """Table 1 accounting per item is invariant under batching and caches."""
    from repro.crypto.counters import OpCounter, counting

    loop_system = _fresh_system(params)
    loop_items = _paid_transcripts(loop_system, 3)
    batch_system = _fresh_system(params)
    batch_items = _paid_transcripts(batch_system, 3)
    with perf.forced(enabled):
        with counting(OpCounter()) as loop_counter:
            for signed in loop_items:
                loop_system.broker.deposit(MERCHANT, signed, NOW)
        with counting(OpCounter()) as batch_counter:
            batch_system.broker.deposit_batch(MERCHANT, batch_items, NOW)
    assert batch_counter.snapshot() == loop_counter.snapshot()
