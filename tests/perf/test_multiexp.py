"""Simultaneous multi-exponentiation equals the product of plain pows."""

from __future__ import annotations

import random

import pytest

from repro.core.params import test_params as make_test_params
from repro.perf import fixed_base
from repro.perf.multiexp import multi_exp


@pytest.fixture(scope="module")
def group():
    return make_test_params().group


def _naive(p, q, pairs):
    out = 1
    for base, exponent in pairs:
        out = out * pow(base, exponent % q, p) % p
    return out


def test_empty_product_raises(group):
    with pytest.raises(ValueError):
        multi_exp(group.p, group.q, ())


def test_single_pair(group):
    pairs = ((group.g, 987654321),)
    assert multi_exp(group.p, group.q, pairs) == _naive(group.p, group.q, pairs)


@pytest.mark.parametrize("n_pairs", [2, 3, 5])
def test_random_products(group, n_pairs):
    rng = random.Random(1000 + n_pairs)
    bases = (group.g, group.g1, group.g2, pow(group.g, 31337, group.p), pow(group.g1, 7, group.p))
    for _ in range(10):
        pairs = tuple(
            (bases[rng.randrange(len(bases))], rng.randrange(group.q)) for _ in range(n_pairs)
        )
        assert multi_exp(group.p, group.q, pairs) == _naive(group.p, group.q, pairs)


def test_edge_exponents(group):
    pairs = (
        (group.g, 0),
        (group.g1, group.q - 1),
        (group.g2, group.q),
        (group.g, 5 * group.q + 3),
    )
    assert multi_exp(group.p, group.q, pairs) == _naive(group.p, group.q, pairs)


def test_uses_fixed_base_tables_when_available(group):
    """Tabled and untabled evaluation must agree bit for bit."""
    pairs = ((group.g, 123456789), (group.g1, 987654321))
    cold = multi_exp(group.p, group.q, pairs)
    for base in (group.g, group.g1):
        fixed_base.register(base, group.p, group.q)
        for _ in range(fixed_base.BUILD_THRESHOLD):
            fixed_base.touch(base, group.p)
    assert fixed_base.table_count() == 2
    assert multi_exp(group.p, group.q, pairs) == cold


def test_multi_exp_promotes_candidates(group):
    """Bases seen only inside multi-exp equations still earn tables."""
    fixed_base.register(group.g2, group.p, group.q)
    for _ in range(fixed_base.BUILD_THRESHOLD):
        multi_exp(group.p, group.q, ((group.g2, 42), (group.g, 7)))
    assert fixed_base.table_for(group.g2, group.p) is not None
