"""Small-random-exponent batch verification of representation proofs."""

from __future__ import annotations

import random

import pytest

from repro.core.params import test_params as make_test_params
from repro.perf.batch import RepresentationCheck, is_subgroup_member, verify_batch


@pytest.fixture(scope="module")
def group():
    return make_test_params().group


def _valid_check(group, rng: random.Random) -> RepresentationCheck:
    """A freshly fabricated proof satisfying ``A * B^d == g1^r1 * g2^r2``."""
    a1, a2, b1, b2 = (rng.randrange(group.q) for _ in range(4))
    commitment_a = group.commit2(group.g1, a1, group.g2, a2)
    commitment_b = group.commit2(group.g1, b1, group.g2, b2)
    d = rng.randrange(group.q)
    return RepresentationCheck(
        commitment_a=commitment_a,
        commitment_b=commitment_b,
        challenge=d,
        r1=(a1 + d * b1) % group.q,
        r2=(a2 + d * b2) % group.q,
    )


def test_empty_batch_passes(group):
    assert verify_batch(group.p, group.q, group.g1, group.g2, [])


def test_valid_batch_passes(group):
    rng = random.Random(5)
    checks = [_valid_check(group, rng) for _ in range(6)]
    assert verify_batch(group.p, group.q, group.g1, group.g2, checks, rng=random.Random(1))


def test_single_bad_item_fails_whole_batch(group):
    rng = random.Random(6)
    checks = [_valid_check(group, rng) for _ in range(5)]
    bad = checks[2]
    checks[2] = RepresentationCheck(
        commitment_a=bad.commitment_a,
        commitment_b=bad.commitment_b,
        challenge=bad.challenge,
        r1=(bad.r1 + 1) % group.q,
        r2=bad.r2,
    )
    assert not verify_batch(group.p, group.q, group.g1, group.g2, checks, rng=random.Random(1))


def test_non_subgroup_commitment_rejected(group):
    """A commitment with a small-order component must not slip through.

    ``-1`` has order 2 in ``Z_p^*`` (p = 2q'·q + 1 style moduli), so it is
    never in the order-``q`` subgroup; batching without the membership
    check would accept it with probability 1/2 per random exponent.
    """
    rng = random.Random(7)
    check = _valid_check(group, rng)
    tainted = RepresentationCheck(
        commitment_a=(check.commitment_a * (group.p - 1)) % group.p,
        commitment_b=check.commitment_b,
        challenge=check.challenge,
        r1=check.r1,
        r2=check.r2,
    )
    assert not verify_batch(group.p, group.q, group.g1, group.g2, [tainted], rng=random.Random(1))


def test_subgroup_membership_predicate(group):
    assert is_subgroup_member(group.p, group.q, group.g)
    assert is_subgroup_member(group.p, group.q, pow(group.g1, 12345, group.p))
    assert not is_subgroup_member(group.p, group.q, group.p - 1)  # order 2
    assert not is_subgroup_member(group.p, group.q, 0)
    assert not is_subgroup_member(group.p, group.q, group.p)


def test_deterministic_under_seeded_rng(group):
    rng = random.Random(8)
    checks = [_valid_check(group, rng) for _ in range(3)]
    first = verify_batch(group.p, group.q, group.g1, group.g2, checks, rng=random.Random(42))
    second = verify_batch(group.p, group.q, group.g1, group.g2, checks, rng=random.Random(42))
    assert first is second is True
