"""Fixture mini-packages proving each program rule catches its bug class."""

from __future__ import annotations

import textwrap
from pathlib import Path

from repro.lint.config import LintConfig, ProgramConfig
from repro.lint.findings import Finding
from repro.lint.program import run_program


def _run(
    tmp_path: Path,
    files: dict[str, str],
    program: ProgramConfig,
    rule: str,
) -> list[Finding]:
    for relpath, text in files.items():
        file = tmp_path / relpath
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(text))
    config = LintConfig(program=program)
    return run_program([tmp_path], config=config, only=[rule], root=tmp_path).findings


# ----------------------------------------------------------------------
# wire-schema
# ----------------------------------------------------------------------
WIRE_REGISTRY = """
    SERVER_METHODS = ("do/add", "do/sub", "do/ghost")
    ABBR = {"ticket": "t"}

    def build(server):
        def do_add(payload):
            return {"sum": int(payload["a"]) + int(payload["b"]) + int(payload["t"])}

        def do_sub(payload):
            return {"diff": int(payload["a"]) - int(payload["extra"])}

        return {"do/add": do_add, "do/sub": do_sub}
"""

WIRE_FLOWS = """
    def add_flow(node, rpc):
        reply = rpc("do/add", {"a": 1, "b": 2, "junk": 3, "t": 9})
        return reply["sum"]

    def sub_flow(node, rpc):
        reply = rpc("do/sub", {"a": 5})
        return reply["diff"] + reply["missing"]
"""


def _wire_config() -> ProgramConfig:
    return ProgramConfig(abbreviation_const=("wire.registry", "ABBR"))


def test_wire_schema_catches_every_mismatch_class(tmp_path: Path) -> None:
    findings = _run(
        tmp_path,
        {"wire/registry.py": WIRE_REGISTRY, "wire/flows.py": WIRE_FLOWS},
        _wire_config(),
        "wire-schema",
    )
    messages = sorted(f.message for f in findings)
    assert len(findings) == 6, messages
    # method coverage: universe entry with neither handler nor sender
    assert any("'do/ghost'" in m and "neither handler nor sender" in m for m in messages)
    # request keys: sent but never decoded / decoded but never sent
    assert any("'junk' sent with 'do/add'" in m and "stray" in m for m in messages)
    assert any("'extra'" in m and "dead decode" in m for m in messages)
    # reply keys: read but never returned
    assert any("reply key 'missing'" in m and "'do/sub'" in m for m in messages)
    # abbreviation discipline fires on both the sender and handler sites
    abbr = [m for m in messages if "abbreviated form of 'ticket'" in m]
    assert len(abbr) == 2
    by_path = {f.path for f in findings if "abbreviated" in f.message}
    assert by_path == {"wire/flows.py", "wire/registry.py"}


def test_wire_schema_clean_twin_has_no_findings(tmp_path: Path) -> None:
    findings = _run(
        tmp_path,
        {
            "wire/registry.py": """
            SERVER_METHODS = ("do/add",)

            def build(server):
                def do_add(payload):
                    return {"sum": int(payload["a"]) + int(payload["b"])}

                return {"do/add": do_add}
            """,
            "wire/flows.py": """
            def add_flow(node, rpc):
                reply = rpc("do/add", {"a": 1, "b": 2})
                return reply["sum"]
            """,
        },
        _wire_config(),
        "wire-schema",
    )
    assert findings == []


def test_wire_schema_informational_reply_is_not_dead(tmp_path: Path) -> None:
    """A reply nobody reads at all is fire-and-forget, not a mismatch."""
    findings = _run(
        tmp_path,
        {
            "wire/registry.py": """
            SERVER_METHODS = ("do/ping",)

            def build(server):
                def do_ping(payload):
                    return {"pong": int(payload["n"])}

                return {"do/ping": do_ping}
            """,
            "wire/flows.py": """
            def ping_flow(node, rpc):
                rpc("do/ping", {"n": 1})
                return None
            """,
        },
        _wire_config(),
        "wire-schema",
    )
    assert findings == []


# ----------------------------------------------------------------------
# journal-first
# ----------------------------------------------------------------------
JOURNALED = """
    class Journal:
        def record_item(self, key, value):
            return None

    class Service:
        journal: Journal

        def __init__(self, store):
            self.store = store
            self.items = {}

        def good_hooked(self, key, value):
            self.journal.record_item(key, value)
            self.items[key] = value

        def good_scoped(self, key, value):
            with self.store.operation():
                self.items[key] = value

        def good_helper(self, key):
            del self.items[key]

        def driver(self, key):
            with self.store.operation():
                self.good_helper(key)

        def bad_set(self, key, value):
            self.items[key] = value

        def bad_pop(self, key):
            self.items.pop(key, None)

        def waived(self, key, value):
            self.items[key] = value  # lint: ignore[journal-first]
"""


def test_journal_first_flags_unjournaled_mutations_only(tmp_path: Path) -> None:
    program = ProgramConfig(
        journaled_fields={"Service": {"items": ("record_item",)}}
    )
    findings = _run(
        tmp_path, {"svc/state.py": JOURNALED}, program, "journal-first"
    )
    assert len(findings) == 2, [f.message for f in findings]
    kinds = sorted(m for f in findings for m in [f.message])
    assert any("(setitem)" in m and "Service.bad_set'" in m for m in kinds)
    assert any("(call:pop)" in m and "Service.bad_pop'" in m for m in kinds)
    # hooked, scoped, scoped-caller-only and suppressed mutations pass
    assert all("good" not in f.message and "waived" not in f.message for f in findings)


# ----------------------------------------------------------------------
# async-safety
# ----------------------------------------------------------------------
ASYNC_WORK = """
    import time

    def outer():
        return inner()

    def inner():
        time.sleep(0.01)

    def pure():
        return 1
"""

ASYNC_STORE = """
    class Store:
        def flush(self):
            return None
"""

ASYNC_DAEMON = """
    import time

    from aroot import work
    from aroot.store import Store

    async def handle_tick():
        work.outer()

    async def napper():
        time.sleep(1)

    async def saver(store: Store):
        store.flush()

    async def quiet():
        work.pure()
"""


def test_async_safety_sees_through_two_levels_of_indirection(
    tmp_path: Path,
) -> None:
    program = ProgramConfig(
        async_root_modules=("aroot",),
        blocking_qualnames=frozenset({"aroot.store.Store.flush"}),
    )
    findings = _run(
        tmp_path,
        {
            "aroot/daemon.py": ASYNC_DAEMON,
            "aroot/work.py": ASYNC_WORK,
            "aroot/store.py": ASYNC_STORE,
        },
        program,
        "async-safety",
    )
    messages = sorted(f.message for f in findings)
    assert len(findings) == 3, messages
    # transitive: coroutine -> outer -> inner -> time.sleep, with the
    # full chain spelled out in the message
    assert any(
        "'handle_tick'" in m and "outer -> inner [time.sleep]" in m
        for m in messages
    )
    # direct primitive call
    assert any("'napper'" in m and "time.sleep" in m for m in messages)
    # configured primitively-blocking qualname (store I/O surface)
    assert any(
        "'saver'" in m and "Store.flush [synchronous store I/O]" in m
        for m in messages
    )
    # a coroutine calling only non-blocking helpers stays silent
    assert not any("quiet" in m for m in messages)


# ----------------------------------------------------------------------
# exception-wire
# ----------------------------------------------------------------------
EXC_ERRORS = """
    class BaseErr(Exception):
        pass

    class ProofErr(BaseErr):
        def __init__(self, proof):
            super().__init__("double spend")
            self.proof = proof

    class OtherErr(BaseErr):
        pass
"""

EXC_WIRE = """
    PROOF_CARRYING = ("ProofErr", "GhostErr")
"""

EXC_SERVER = """
    from excwire.errors import BaseErr, OtherErr, ProofErr

    class ForeignErr(BaseErr):
        pass

    class StrayErr(Exception):
        pass

    class AllowedErr(Exception):
        pass

    def validate(payload):
        if not payload:
            raise ForeignErr("empty")

    def build(core):
        def op_run(payload):
            validate(payload)
            if payload["x"]:
                raise ProofErr("p")
            return {"ok": 1}

        def op_stray(payload):
            if payload["x"]:
                raise StrayErr()
            raise AllowedErr()

        def op_safe(payload):
            try:
                validate(payload)
                raise OtherErr()
            except BaseErr:
                return {"ok": 0}
            return {"ok": 1}

        return {"op/run": op_run, "op/stray": op_stray, "op/safe": op_safe}
"""


def _exc_config() -> ProgramConfig:
    return ProgramConfig(
        exception_module="excwire.errors",
        error_base="BaseErr",
        proof_carrying_const=("excwire.wire", "PROOF_CARRYING"),
        opaque_exceptions=frozenset({"AllowedErr"}),
    )


def test_exception_wire_classifies_every_escape(tmp_path: Path) -> None:
    findings = _run(
        tmp_path,
        {
            "excwire/errors.py": EXC_ERRORS,
            "excwire/wire.py": EXC_WIRE,
            "excwire/server.py": EXC_SERVER,
        },
        _exc_config(),
        "exception-wire",
    )
    messages = sorted(f.message for f in findings)
    assert len(findings) == 4, messages
    # proof-carrying error escaping as a generic frame
    assert any(
        "proof-carrying error 'ProofErr'" in m and "'op/run'" in m
        for m in messages
    )
    # protocol error defined outside the registry module, reached
    # interprocedurally through the unguarded validate() call
    assert any(
        "'ForeignErr'" in m
        and "defined in 'excwire.server', not 'excwire.errors'" in m
        for m in messages
    )
    # repo-defined non-protocol exception without an opaque allowance
    assert any(
        "non-protocol exception 'StrayErr'" in m and "'op/stray'" in m
        for m in messages
    )
    # registry hygiene: a proof-carrying name with no class behind it
    assert any("PROOF_CARRYING names 'GhostErr'" in m for m in messages)
    # AllowedErr is allowlisted and op_safe catches everything it raises
    assert not any("AllowedErr" in m or "OtherErr" in m for m in messages)
