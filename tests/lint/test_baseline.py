"""Baseline semantics plus the checked-in-file freshness guarantee."""

from __future__ import annotations

from pathlib import Path

from repro.lint.baseline import Baseline, diff_against_baseline
from repro.lint.engine import LintEngine
from repro.lint.findings import Finding

ROOT = Path(__file__).resolve().parent.parent.parent


def _finding(path: str = "src/mod.py", line: int = 3, snippet: str = "x = pow(a, b, p)") -> Finding:
    return Finding(
        path=path, line=line, col=1, rule="mod-arith", message="m", snippet=snippet
    )


def test_round_trip(tmp_path: Path) -> None:
    baseline = Baseline.from_findings([_finding(), _finding(line=9)])
    file = tmp_path / "baseline.json"
    baseline.save(file)
    loaded = Baseline.load(file)
    assert loaded.counts == baseline.counts
    assert loaded.context == baseline.context


def test_missing_file_loads_empty(tmp_path: Path) -> None:
    baseline = Baseline.load(tmp_path / "absent.json")
    assert not baseline.counts


def test_baselined_findings_are_suppressed() -> None:
    finding = _finding()
    baseline = Baseline.from_findings([finding])
    new, stale = diff_against_baseline([finding], baseline)
    assert new == [] and stale == []


def test_new_finding_fails() -> None:
    baseline = Baseline.from_findings([_finding()])
    fresh = _finding(snippet="y = pow(c, d, p)")
    new, stale = diff_against_baseline([_finding(), fresh], baseline)
    assert new == [fresh] and stale == []


def test_stale_entry_fails() -> None:
    gone = _finding()
    baseline = Baseline.from_findings([gone])
    new, stale = diff_against_baseline([], baseline)
    assert new == [] and stale == [gone.fingerprint()]
    assert "mod-arith" in baseline.describe(gone.fingerprint())


def test_counts_matter_per_fingerprint() -> None:
    """Baselining one occurrence does not excuse a second identical one."""
    first = _finding(line=3)
    second = _finding(line=30)  # same snippet => same fingerprint
    assert first.fingerprint() == second.fingerprint()
    baseline = Baseline.from_findings([first])
    new, stale = diff_against_baseline([first, second], baseline)
    assert new == [second] and stale == []


def test_checked_in_baseline_matches_fresh_run_over_src() -> None:
    """The repo invariant: LINT_baseline.json is exactly a fresh run.

    No new findings (src/ is lint-clean modulo the grandfathered set)
    and no stale suppressions (every baselined finding still exists).
    """
    engine = LintEngine(root=ROOT)
    findings = engine.lint([ROOT / "src"])
    baseline = Baseline.load(ROOT / "LINT_baseline.json")
    new, stale = diff_against_baseline(findings, baseline)
    assert new == [], f"non-baselined findings in src/: {[f.location() for f in new]}"
    assert stale == [], f"stale baseline entries: {stale}"
    # The grandfathered set is small and deliberate; a growing baseline
    # is a smell this assertion surfaces in review.
    assert sum(baseline.counts.values()) == len(findings) == 4
