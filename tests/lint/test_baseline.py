"""Baseline semantics plus the checked-in-file freshness guarantee."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.lint.baseline import (
    Baseline,
    BaselineError,
    BaselineFile,
    diff_against_baseline,
)
from repro.lint.engine import LintEngine
from repro.lint.findings import Finding

ROOT = Path(__file__).resolve().parent.parent.parent


def _finding(path: str = "src/mod.py", line: int = 3, snippet: str = "x = pow(a, b, p)") -> Finding:
    return Finding(
        path=path, line=line, col=1, rule="mod-arith", message="m", snippet=snippet
    )


def test_round_trip(tmp_path: Path) -> None:
    stored = BaselineFile(
        files=Baseline.from_findings([_finding(), _finding(line=9)]),
        program=Baseline.from_findings(
            [_finding(path="src/wire.py", snippet="out['x'] = 1")]
        ),
    )
    file = tmp_path / "baseline.json"
    stored.save(file)
    loaded = BaselineFile.load(file)
    assert loaded.files.counts == stored.files.counts
    assert loaded.files.context == stored.files.context
    assert loaded.program.counts == stored.program.counts
    assert loaded.program.context == stored.program.context


def test_round_trip_is_schema_v2(tmp_path: Path) -> None:
    file = tmp_path / "baseline.json"
    BaselineFile().save(file)
    data = json.loads(file.read_text())
    assert data["version"] == 2
    assert data["findings"] == [] and data["program_findings"] == []


def test_missing_file_loads_empty(tmp_path: Path) -> None:
    stored = BaselineFile.load(tmp_path / "absent.json")
    assert not stored.files.counts and not stored.program.counts


def test_v1_file_is_rejected_with_regeneration_hint(tmp_path: Path) -> None:
    file = tmp_path / "baseline.json"
    file.write_text(json.dumps({"version": 1, "findings": []}))
    with pytest.raises(BaselineError, match="write-baseline"):
        BaselineFile.load(file)


def test_corrupt_file_is_rejected(tmp_path: Path) -> None:
    file = tmp_path / "baseline.json"
    file.write_text("{not json")
    with pytest.raises(BaselineError, match="not valid JSON"):
        BaselineFile.load(file)


def test_baselined_findings_are_suppressed() -> None:
    finding = _finding()
    baseline = Baseline.from_findings([finding])
    new, stale = diff_against_baseline([finding], baseline)
    assert new == [] and stale == []


def test_new_finding_fails() -> None:
    baseline = Baseline.from_findings([_finding()])
    fresh = _finding(snippet="y = pow(c, d, p)")
    new, stale = diff_against_baseline([_finding(), fresh], baseline)
    assert new == [fresh] and stale == []


def test_stale_entry_fails() -> None:
    gone = _finding()
    baseline = Baseline.from_findings([gone])
    new, stale = diff_against_baseline([], baseline)
    assert new == [] and stale == [gone.fingerprint()]
    assert "mod-arith" in baseline.describe(gone.fingerprint())


def test_counts_matter_per_fingerprint() -> None:
    """Baselining one occurrence does not excuse a second identical one."""
    first = _finding(line=3)
    second = _finding(line=30)  # same snippet => same fingerprint
    assert first.fingerprint() == second.fingerprint()
    baseline = Baseline.from_findings([first])
    new, stale = diff_against_baseline([first, second], baseline)
    assert new == [second] and stale == []


def test_checked_in_baseline_matches_fresh_run_over_src() -> None:
    """The repo invariant: LINT_baseline.json is exactly a fresh run.

    No new findings (src/ is lint-clean modulo the grandfathered set)
    and no stale suppressions (every baselined finding still exists).
    """
    engine = LintEngine(root=ROOT)
    findings = engine.lint([ROOT / "src"])
    stored = BaselineFile.load(ROOT / "LINT_baseline.json")
    new, stale = diff_against_baseline(findings, stored.files)
    assert new == [], f"non-baselined findings in src/: {[f.location() for f in new]}"
    assert stale == [], f"stale baseline entries: {stale}"
    # The grandfathered set is small and deliberate; a growing baseline
    # is a smell this assertion surfaces in review.
    assert sum(stored.files.counts.values()) == len(findings) == 4
    # The program tier runs clean on the real tree: nothing grandfathered.
    assert stored.program.counts == {}
