"""Engine mechanics: discovery, scoping, parse errors, rule selection."""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.lint.config import RuleConfig, default_config
from repro.lint.engine import LintEngine, iter_python_files, lint_paths
from repro.lint.findings import Finding, Severity
from repro.lint.rules import all_rules, get_rule


def test_iter_python_files_skips_pycache(tmp_path: Path) -> None:
    (tmp_path / "a.py").write_text("x = 1\n")
    cache = tmp_path / "__pycache__"
    cache.mkdir()
    (cache / "a.cpython-311.py").write_text("x = 1\n")
    (tmp_path / "notes.txt").write_text("not python\n")
    files = list(iter_python_files([tmp_path]))
    assert [file.name for file in files] == ["a.py"]


def test_iter_python_files_dedupes_overlapping_paths(tmp_path: Path) -> None:
    file = tmp_path / "a.py"
    file.write_text("x = 1\n")
    files = list(iter_python_files([tmp_path, file, file]))
    assert len(files) == 1


def test_parse_error_becomes_a_finding(tmp_path: Path) -> None:
    bad = tmp_path / "broken.py"
    bad.write_text("def f(:\n")
    findings = LintEngine(root=tmp_path).lint([bad])
    assert len(findings) == 1
    assert findings[0].rule == "parse-error"
    assert findings[0].severity is Severity.ERROR


def test_rule_subset_selection(tmp_path: Path) -> None:
    file = tmp_path / "core" / "mod.py"
    file.parent.mkdir()
    file.write_text(
        "import time\n\n"
        "def f(g, x, p):\n"
        "    started = time.time()\n"
        "    return pow(g, x, p), started\n"
    )
    engine = LintEngine(root=tmp_path)
    every = engine.lint([file])
    assert {finding.rule for finding in every} == {"determinism", "mod-arith"}
    only = engine.lint([file], only=["determinism"])
    assert {finding.rule for finding in only} == {"determinism"}
    with pytest.raises(KeyError):
        engine.select_rules(["no-such-rule"])


def test_disabled_rule_is_skipped(tmp_path: Path) -> None:
    file = tmp_path / "mod.py"
    file.write_text("import time\n\nnow = time.time()\n")
    config = default_config()
    config.rules["determinism"] = RuleConfig(enabled=False)
    assert lint_paths([file], config=config, root=tmp_path) == []


def test_severity_override_applies(tmp_path: Path) -> None:
    file = tmp_path / "mod.py"
    file.write_text("import time\n\nnow = time.time()\n")
    config = default_config()
    config.rules["determinism"] = RuleConfig(severity=Severity.WARNING)
    findings = lint_paths([file], config=config, root=tmp_path)
    assert [finding.severity for finding in findings] == [Severity.WARNING]


def test_registry_has_the_six_shipped_rules() -> None:
    assert set(all_rules()) == {
        "secret-flow",
        "rng-discipline",
        "mod-arith",
        "ct-compare",
        "determinism",
        "broad-except",
    }
    assert get_rule("ct-compare").description


def test_findings_sorted_and_deduped(tmp_path: Path) -> None:
    file = tmp_path / "mod.py"
    file.write_text(
        "import time\n\n"
        "def late():\n    return time.time()\n\n"
        "def early():\n    return time.time()\n"
    )
    findings = LintEngine(root=tmp_path).lint([file])
    assert [finding.line for finding in findings] == [4, 7]
    assert len(set(findings)) == len(findings)


def test_fingerprint_survives_line_shift(tmp_path: Path) -> None:
    """Baselined findings key on content, not position."""
    file = tmp_path / "mod.py"
    file.write_text("import time\n\nnow = time.time()\n")
    before = LintEngine(root=tmp_path).lint([file])[0]
    file.write_text("import time\n\n# a new comment shifts lines\n\nnow = time.time()\n")
    after = LintEngine(root=tmp_path).lint([file])[0]
    assert before.line != after.line
    assert before.fingerprint() == after.fingerprint()


def test_finding_location_format() -> None:
    finding = Finding(path="src/x.py", line=3, col=7, rule="determinism", message="m")
    assert finding.location() == "src/x.py:3:7"
