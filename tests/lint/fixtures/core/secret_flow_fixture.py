"""secret-flow fixture: known positives (EXPECT-marked) and negatives.

Never imported — parsed by the lint engine in tests. The ``core/``
directory name puts it in the rule's default scope.
"""


def leak_into_log(x1, logger):
    logger.warning(x1)  # EXPECT[secret-flow]


def leak_into_print(session):
    print(session.blinding)  # EXPECT[secret-flow]


def leak_into_fstring(x2):
    label = f"coin secret {x2}"  # EXPECT[secret-flow]
    return label


def leak_via_repr(wallet):
    return repr(wallet.private_key)  # EXPECT[secret-flow]


def leak_into_exception(y1):
    raise ValueError(f"bad share {y1}")  # EXPECT[secret-flow]


def leak_into_metric_label(obs, account_secret):
    obs.counter_inc("withdrawals_total", owner=account_secret)  # EXPECT[secret-flow]


class LeakyMessage:
    def to_wire(self):
        out = {"value": 25}
        out["x1"] = self.x1  # EXPECT[secret-flow]
        return out


class LeakyDict:
    def to_wire(self):
        return {"y2": self.y2}  # EXPECT[secret-flow]


class DoubleSpendProof:
    """Allow-listed egress: revealing the secrets IS the proof."""

    def to_wire(self):
        out = {"coin_hash": self.coin_hash}
        out["x1"] = self.x.k1  # negative: allow-listed transcript field
        return out


def derived_values_are_fine(x1, d, q, logger):
    # Arithmetic over a secret is not a direct leak; only the raw value is.
    response = (x1 * d) % q
    logger.info("response ready")  # negative: no secret in the call
    comparison = f"matches: {response == x1}"  # negative: top level is a Compare
    return comparison


def public_names_are_fine(coin_hash, logger):
    logger.info(f"deposited {coin_hash:#x}")  # negative: not in the lexicon
