"""determinism fixture: wall-clock reads in replayable paths.

Never imported — parsed by the lint engine in tests.
"""

import time
from datetime import date, datetime


def bad_wall_clock():
    return time.time()  # EXPECT[determinism]


def bad_datetime_now():
    return datetime.now()  # EXPECT[determinism]


def bad_utcnow():
    return datetime.utcnow()  # EXPECT[determinism]


def bad_date_today():
    return date.today()  # EXPECT[determinism]


def good_duration_measurement():
    return time.perf_counter()  # negative: host-duration measurement


def good_sim_clock(sim):
    return sim.now  # negative: the simulated clock


def good_explicit_now(coin, now):
    return coin.ensure_spendable(now)  # negative: time threaded as data
