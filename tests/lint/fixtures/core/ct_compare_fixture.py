"""ct-compare fixture: variable-time equality on digest-typed values.

Never imported — parsed by the lint engine in tests.
"""

from repro.crypto.hashing import constant_time_eq


def bad_digest_call(coin, params, stored_hash):
    return stored_hash == coin.digest(params)  # EXPECT[ct-compare]


def bad_named_attribute(commitment, pending):
    return commitment.coin_hash != pending.coin_hash  # EXPECT[ct-compare]


def bad_nonce(record, expected_nonce):
    if record.nonce != expected_nonce:  # EXPECT[ct-compare]
        raise ValueError("nonce mismatch")


def bad_hexdigest(mac_calc, provided):
    return provided == mac_calc.hexdigest()  # EXPECT[ct-compare]


def good_constant_time(commitment, pending):
    return constant_time_eq(commitment.coin_hash, pending.coin_hash)


def good_literal_comparison(digest):
    return digest == 0  # negative: structural check against a constant


def good_unrelated_names(amount, balance):
    return amount == balance  # negative: nothing digest-typed
