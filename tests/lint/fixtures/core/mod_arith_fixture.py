"""mod-arith fixture: % p exponents and raw pow() outside crypto/perf.

Never imported — parsed by the lint engine in tests. Lives under a
``core/`` directory, so the raw-pow ban applies.
"""


def bad_raw_pow(g, x, p):
    return pow(g, x, p)  # EXPECT[mod-arith]


def bad_exponent_mod_p(group, base, e):
    return group.exp(base, e % group.p)  # EXPECT[mod-arith]


def bad_power_operator(g, e, p):
    return g ** (e % p)  # EXPECT[mod-arith]


def bad_multi_exp(group, a, ea, b, eb, p):
    return group.exp2(a, ea, b, eb % p)  # EXPECT[mod-arith]


def good_exponent_mod_q(group, base, e):
    return group.exp(base, e % group.q)  # negative: Z_q reduction


def good_counted_op(group, base, e):
    return group.exp(base, e)  # negative: the counted group op


def good_table_pow(table, e):
    return table.pow(e)  # negative: method call, not the builtin
