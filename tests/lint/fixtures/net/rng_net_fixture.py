"""rng-discipline fixture (net/ scope): no global-random, no unseeded Random.

Never imported — parsed by the lint engine in tests.
"""

import random


def bad_global_choice(peers):
    return random.choice(peers)  # EXPECT[rng-discipline]


def bad_global_shuffle(order):
    random.shuffle(order)  # EXPECT[rng-discipline]


def bad_unseeded():
    return random.Random()  # EXPECT[rng-discipline]


def good_seeded(seed):
    return random.Random(f"overlay:{seed}")  # negative: seeded instance


def good_instance_call(rng, peers):
    return rng.choice(peers)  # negative: seeded instance the caller threads
