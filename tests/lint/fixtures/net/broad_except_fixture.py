"""broad-except fixture (net/ scope): swallowers flag, forwarders pass.

Never imported — parsed by the lint engine in tests.
"""


def bad_swallow(deliver, message, log):
    try:
        deliver(message)
    except Exception as error:  # EXPECT[broad-except]
        log.warning(f"dropped: {error}")


def bad_bare(deliver, message):
    try:
        deliver(message)
    except:  # EXPECT[broad-except]
        pass


def bad_tuple(deliver, message):
    try:
        deliver(message)
    except (ValueError, Exception):  # EXPECT[broad-except]
        return None


def good_typed(deliver, message, EcashError):
    try:
        deliver(message)
    except EcashError:  # negative: typed protocol exception
        return None


def good_reraise(release, deliver, message):
    try:
        deliver(message)
    except BaseException:  # negative: forwarder (re-raises)
        release()
        raise


def good_future_forward(outer, done):
    try:
        outer.set_result(done.result())
    except BaseException as error:  # negative: forwarder (set_exception)
        outer.set_exception(error)


def good_trampoline(generator):
    try:
        send_value = yield
    except BaseException as error:  # negative: forwarder (rebinds for throw)
        throw = error
        send_value = None
    return generator.send(send_value) if throw is None else generator.throw(throw)
