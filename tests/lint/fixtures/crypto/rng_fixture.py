"""rng-discipline fixture (crypto/ scope): direct RNG calls are banned.

Never imported — parsed by the lint engine in tests.
"""

import os
import random
import secrets

from repro.crypto.numbers import random_scalar


def bad_direct_random(q):
    return random.randrange(1, q)  # EXPECT[rng-discipline]


def bad_secrets(q):
    return secrets.randbelow(q)  # EXPECT[rng-discipline]


def bad_urandom():
    return os.urandom(32)  # EXPECT[rng-discipline]


def bad_unseeded_instance():
    return random.Random()  # EXPECT[rng-discipline]


def good_helper(q):
    return random_scalar(q)  # negative: the sanctioned helper


def good_passed_rng(q, rng):
    return rng.randrange(1, q)  # negative: explicit instance, caller seeds it


def good_seeded_instance(seed):
    return random.Random(seed)  # EXPECT[rng-discipline]
