"""Summary extraction and call-graph resolution unit tests."""

from __future__ import annotations

import json
import textwrap

import pytest

from repro.lint.program import (
    CallGraph,
    ModuleSummary,
    ProgramIndex,
    module_name,
    patterns_compatible,
    summarize_source,
)


def _index(sources: dict[str, str]) -> tuple[ProgramIndex, CallGraph]:
    summaries = [
        summarize_source(
            textwrap.dedent(text), module, module.replace(".", "/") + ".py"
        )
        for module, text in sources.items()
    ]
    index = ProgramIndex(summaries)
    return index, CallGraph(index)


# ----------------------------------------------------------------------
# module naming
# ----------------------------------------------------------------------
def test_module_name_strips_src_prefix_and_init() -> None:
    assert module_name("src/repro/net/registry.py") == "repro.net.registry"
    assert module_name("src/repro/lint/__init__.py") == "repro.lint"
    assert module_name("tools/gen_api_docs.py") == "tools.gen_api_docs"
    assert module_name("fixture/pkg/mod.py") == "fixture.pkg.mod"


# ----------------------------------------------------------------------
# summary serialization
# ----------------------------------------------------------------------
RICH = """
    from functools import partial

    METHODS = ("a/b",)
    ABBR = {"transcript": "t"}

    class Base:
        def ping(self):
            return 1

    class Child(Base):
        count: int

        def act(self, payload):
            try:
                raise ValueError("x")
            except ValueError:
                pass
            self.items.append(payload["k"])  # lint: ignore[journal-first]
            return {"ok": 1}
"""


def test_summary_round_trips_through_json() -> None:
    summary = summarize_source(textwrap.dedent(RICH), "m", "m.py")
    wire = json.loads(json.dumps(summary.to_dict(), sort_keys=True))
    rebuilt = ModuleSummary.from_dict(wire)
    assert rebuilt.to_dict() == summary.to_dict()
    assert rebuilt.str_tuples["METHODS"] == ("a/b",)
    assert rebuilt.str_dicts["ABBR"] == {"transcript": "t"}
    assert rebuilt.classes["Child"].bases == ("Base",)
    assert any(r for r in rebuilt.ignores.values() if "journal-first" in r)


def test_summary_rejects_other_versions() -> None:
    with pytest.raises(ValueError, match="summary version"):
        ModuleSummary.from_dict({"version": 99, "module": "m", "path": "m.py"})


# ----------------------------------------------------------------------
# key-pattern matching
# ----------------------------------------------------------------------
def test_patterns_compatible() -> None:
    assert patterns_compatible("a.b", "a.b")
    assert patterns_compatible("a.*", "a.b.c")
    assert patterns_compatible("batch.t*", "batch.t*.coin.*")
    assert patterns_compatible("*", "anything.at.all")
    assert patterns_compatible("es.*", "es.e*")
    assert not patterns_compatible("a.b", "a.c")
    assert not patterns_compatible("es", "es.e*")


# ----------------------------------------------------------------------
# method resolution
# ----------------------------------------------------------------------
def test_resolves_method_through_attribute_annotation() -> None:
    _, graph = _index(
        {
            "m": """
            class Journal:
                def record(self):
                    return None

            class Service:
                journal: Journal

                def act(self):
                    self.journal.record()
            """
        }
    )
    assert graph.callees("m.Service.act") == ("m.Journal.record",)


def test_resolves_inherited_method_through_base_class() -> None:
    _, graph = _index(
        {
            "m": """
            class Base:
                def ping(self):
                    return 1

            class Child(Base):
                def act(self):
                    self.ping()
            """
        }
    )
    assert graph.callees("m.Child.act") == ("m.Base.ping",)


def test_resolves_cross_module_import_alias() -> None:
    _, graph = _index(
        {
            "pkg.work": """
            def outer():
                return 1
            """,
            "pkg.daemon": """
            from pkg import work

            def drive():
                work.outer()
            """,
        }
    )
    assert graph.callees("pkg.daemon.drive") == ("pkg.work.outer",)


def test_classmethod_cls_call_resolves_to_own_class() -> None:
    _, graph = _index(
        {
            "m": """
            class Conn:
                def __init__(self):
                    self.ready = True

                @classmethod
                def open(cls):
                    return cls()
            """
        }
    )
    assert graph.callees("m.Conn.open") == ("m.Conn.__init__",)


def test_functools_partial_creates_edge_to_wrapped_function() -> None:
    _, graph = _index(
        {
            "m": """
            from functools import partial

            def worker(x):
                return x

            def sched():
                job = partial(worker, 1)
                return job
            """
        }
    )
    assert "m.worker" in graph.callees("m.sched")


# ----------------------------------------------------------------------
# dynamic dispatch
# ----------------------------------------------------------------------
DISPATCH = textwrap.dedent(
    """
    SRV_METHODS = ("x/go",)

    def run(payload):
        return {"ok": 1}

    def helper():
        return None

    TABLE = {"x/go": run}
    OTHER = {"not-a-method": helper}

    def dispatch(m, payload):
        h = TABLE[m]
        return h(payload)
    """
)


def test_table_valued_call_resolves_to_protocol_handlers_only() -> None:
    """``h = TABLE[m]; h(payload)`` reaches handlers, not other tables."""
    _, graph = _index({"m": DISPATCH})
    callees = graph.callees("m.dispatch")
    assert "m.run" in callees
    # The non-protocol dict ("not-a-method" has no slash and is not in a
    # *_METHODS constant) must not be wired into dynamic dispatch.
    assert "m.helper" not in callees
    assert set(graph.dispatch) == {"x/go"}


def test_handler_annotated_param_is_dynamic_dispatch() -> None:
    _, graph = _index(
        {
            "m": DISPATCH
            + textwrap.dedent(
                """
                def invoke(handler: Handler, payload):
                    return handler(payload)
                """
            )
        }
    )
    assert "m.run" in graph.callees("m.invoke")


def test_plain_callable_param_gets_no_edge() -> None:
    """``memoized(pool, compute)``-style callbacks are not dispatch."""
    _, graph = _index(
        {
            "m": DISPATCH
            + textwrap.dedent(
                """
                def memoized(pool, compute):
                    return compute()
                """
            )
        }
    )
    assert graph.callees("m.memoized") == ()


# ----------------------------------------------------------------------
# exception hierarchy helpers
# ----------------------------------------------------------------------
def test_exception_ancestors_walk_transitive_bases() -> None:
    index, _ = _index(
        {
            "m": """
            class BaseErr(Exception):
                pass

            class MidErr(BaseErr):
                pass

            class LeafErr(MidErr):
                pass
            """
        }
    )
    assert set(index.exception_ancestors("LeafErr")) == {
        "MidErr",
        "BaseErr",
        "Exception",
    }
    assert index.defining_module("LeafErr") == "m"
