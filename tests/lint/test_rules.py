"""Every shipped rule against its fixture module.

Each fixture is a real (never-imported) Python file whose known-positive
lines carry ``# EXPECT[rule-id]`` markers; the test asserts the engine
reports exactly the marked (line, rule) pairs — every positive is
caught, every negative stays silent.
"""

from __future__ import annotations

import re
from collections import Counter
from pathlib import Path

import pytest

from repro.lint.engine import LintEngine

FIXTURES = Path(__file__).parent / "fixtures"
_EXPECT_RE = re.compile(r"#\s*EXPECT\[([a-z-]+)\]")

#: rule id -> fixture module exercising it.
RULE_FIXTURES = {
    "secret-flow": FIXTURES / "core" / "secret_flow_fixture.py",
    "rng-discipline-crypto": FIXTURES / "crypto" / "rng_fixture.py",
    "rng-discipline-net": FIXTURES / "net" / "rng_net_fixture.py",
    "mod-arith": FIXTURES / "core" / "mod_arith_fixture.py",
    "ct-compare": FIXTURES / "core" / "ct_compare_fixture.py",
    "determinism": FIXTURES / "core" / "determinism_fixture.py",
    "broad-except": FIXTURES / "net" / "broad_except_fixture.py",
}


def expected_markers(path: Path) -> Counter[tuple[int, str]]:
    """The (line, rule) pairs the fixture's EXPECT comments declare."""
    expected: Counter[tuple[int, str]] = Counter()
    for number, text in enumerate(path.read_text().splitlines(), start=1):
        for match in _EXPECT_RE.finditer(text):
            expected[(number, match.group(1))] += 1
    return expected


@pytest.mark.parametrize("fixture", sorted(RULE_FIXTURES), ids=sorted(RULE_FIXTURES))
def test_fixture_findings_match_markers_exactly(fixture: str) -> None:
    path = RULE_FIXTURES[fixture]
    engine = LintEngine(root=path.parent.parent)  # paths relative to fixtures/
    findings = engine.lint([path])
    reported = Counter((finding.line, finding.rule) for finding in findings)
    expected = expected_markers(path)
    missed = expected - reported
    extra = reported - expected
    assert not missed, f"rule missed known positives: {sorted(missed)}"
    assert not extra, f"rule flagged known negatives: {sorted(extra)}"
    assert expected, f"fixture {path.name} declares no positives"


def test_every_shipped_rule_has_a_true_positive_fixture() -> None:
    """Each of the six rules demonstrably catches something."""
    from repro.lint.rules import all_rules

    covered: set[str] = set()
    for path in RULE_FIXTURES.values():
        covered.update(rule for _, rule in expected_markers(path))
    assert covered == set(all_rules())


def test_inline_ignore_suppresses(tmp_path: Path) -> None:
    source = "import time\n\ndef f():\n    return time.time()  # lint: ignore[determinism]\n"
    file = tmp_path / "core" / "mod.py"
    file.parent.mkdir()
    file.write_text(source)
    findings = LintEngine(root=tmp_path).lint([file])
    assert findings == []


def test_ignore_star_suppresses_all_rules(tmp_path: Path) -> None:
    source = "import time\n\ndef f():\n    return time.time()  # lint: ignore[*]\n"
    file = tmp_path / "mod.py"
    file.write_text(source)
    assert LintEngine(root=tmp_path).lint([file]) == []
