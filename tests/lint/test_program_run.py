"""Runner behavior: determinism, the summary cache, and real-tree health."""

from __future__ import annotations

import textwrap
from pathlib import Path

import pytest

from repro.lint.program import run_program, select_program_rules
from repro.lint.report import render_json

ROOT = Path(__file__).resolve().parent.parent.parent

FIXTURE = {
    "pkg/registry.py": """
    SERVER_METHODS = ("do/add", "do/ghost")

    def build(server):
        def do_add(payload):
            return {"sum": int(payload["a"]) + int(payload["b"])}

        return {"do/add": do_add}
    """,
    "pkg/flows.py": """
    def add_flow(node, rpc):
        reply = rpc("do/add", {"a": 1, "b": 2, "junk": 3})
        return reply["sum"]
    """,
}


def _write(tmp_path: Path, files: dict[str, str] | None = None) -> Path:
    for relpath, text in (files or FIXTURE).items():
        file = tmp_path / relpath
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(textwrap.dedent(text))
    return tmp_path


def test_rule_registry_is_complete() -> None:
    assert sorted(select_program_rules()) == [
        "async-safety",
        "exception-wire",
        "journal-first",
        "wire-schema",
    ]
    with pytest.raises(KeyError):
        select_program_rules(["no-such-rule"])


def test_two_runs_render_byte_identical_json(tmp_path: Path) -> None:
    """CI artifact stability: same tree, same bytes, run to run."""
    root = _write(tmp_path)
    renders = []
    for _ in range(2):
        run = run_program([root], root=root)
        renders.append(
            render_json(run.findings, checked_files=run.checked_files).encode()
        )
    assert renders[0] == renders[1]
    assert b"junk" in renders[0] and b"do/ghost" in renders[0]


def test_syntax_error_becomes_parse_error_finding(tmp_path: Path) -> None:
    root = _write(tmp_path, {"pkg/broken.py": "def broken(:\n    pass\n"})
    run = run_program([root], root=root)
    assert [f.rule for f in run.findings] == ["parse-error"]
    assert run.findings[0].path == "pkg/broken.py"


def test_inline_ignore_star_suppresses_all_program_rules(tmp_path: Path) -> None:
    files = dict(FIXTURE)
    files["pkg/flows.py"] = """
    def add_flow(node, rpc):
        reply = rpc("do/add", {"a": 1, "b": 2, "junk": 3})  # lint: ignore[*]
        return reply["sum"]
    """
    root = _write(tmp_path, files)
    run = run_program([root], root=root)
    assert not any("junk" in f.message for f in run.findings)


def test_summary_cache_hits_on_second_run_and_invalidates_on_edit(
    tmp_path: Path,
) -> None:
    root = _write(tmp_path)
    cache_dir = tmp_path / ".lint_cache"

    first = run_program([root], root=root, cache_dir=cache_dir)
    assert (first.cache_hits, first.cache_misses) == (0, 2)

    second = run_program([root], root=root, cache_dir=cache_dir)
    assert (second.cache_hits, second.cache_misses) == (2, 0)
    assert [f.message for f in second.findings] == [
        f.message for f in first.findings
    ]

    # Editing one file invalidates exactly that file's entry.
    flows = root / "pkg" / "flows.py"
    flows.write_text(flows.read_text() + "\n# trailing comment\n")
    third = run_program([root], root=root, cache_dir=cache_dir)
    assert (third.cache_hits, third.cache_misses) == (1, 1)


def test_corrupt_cache_entry_degrades_to_a_miss(tmp_path: Path) -> None:
    root = _write(tmp_path)
    cache_dir = tmp_path / ".lint_cache"
    baseline_run = run_program([root], root=root, cache_dir=cache_dir)
    for entry in (cache_dir / "summaries").iterdir():
        entry.write_text("{corrupt")
    again = run_program([root], root=root, cache_dir=cache_dir)
    assert again.cache_misses == 2
    assert [f.message for f in again.findings] == [
        f.message for f in baseline_run.findings
    ]


def test_real_tree_runs_clean() -> None:
    """The acceptance gate: zero program findings over src/, no baseline."""
    run = run_program([ROOT / "src"], root=ROOT)
    assert run.findings == [], [
        f"{f.location()}: {f.message}" for f in run.findings
    ]
    assert run.checked_files > 100
