"""The ``python -m repro lint`` subcommand: formats, baseline, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

CLEAN = "VALUE = 42\n"
DIRTY = "import time\n\ndef f(g, x, p):\n    return pow(g, x, p), time.time()\n"


def _write(tmp_path: Path, source: str) -> Path:
    file = tmp_path / "core" / "mod.py"
    file.parent.mkdir(exist_ok=True)
    file.write_text(source)
    return file


def test_clean_file_exits_zero(tmp_path, capsys) -> None:
    file = _write(tmp_path, CLEAN)
    assert main(["lint", str(file)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_findings_exit_one_and_name_rule_and_location(tmp_path, capsys) -> None:
    file = _write(tmp_path, DIRTY)
    assert main(["lint", str(file)]) == 1
    out = capsys.readouterr().out
    assert "mod-arith" in out and "determinism" in out
    assert "mod.py:4:" in out  # rule + file:line for CI logs


def test_json_format(tmp_path, capsys) -> None:
    file = _write(tmp_path, DIRTY)
    assert main(["lint", str(file), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {finding["rule"] for finding in payload["findings"]}
    assert rules == {"mod-arith", "determinism"}
    assert payload["ok"] is False
    assert payload["checked_files"] == 1
    assert all(
        {"path", "line", "col", "fingerprint"} <= set(f) for f in payload["findings"]
    )


def test_rule_filter_and_unknown_rule(tmp_path, capsys) -> None:
    file = _write(tmp_path, DIRTY)
    assert main(["lint", str(file), "--rule", "determinism"]) == 1
    out = capsys.readouterr().out
    assert "determinism" in out and "mod-arith" not in out
    assert main(["lint", str(file), "--rule", "bogus"]) == 2


def test_list_rules(capsys) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "secret-flow",
        "rng-discipline",
        "mod-arith",
        "ct-compare",
        "determinism",
        "broad-except",
    ):
        assert rule_id in out


def test_baseline_workflow(tmp_path, capsys, monkeypatch) -> None:
    """write-baseline grandfathers; later runs stay green until drift."""
    monkeypatch.chdir(tmp_path)
    file = _write(tmp_path, DIRTY)
    baseline = tmp_path / "LINT_baseline.json"

    assert main(["lint", str(file), "--write-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()

    # Grandfathered: clean against the baseline.
    assert main(["lint", str(file), "--baseline", str(baseline)]) == 0
    capsys.readouterr()

    # A fresh violation is NOT covered.
    file.write_text(DIRTY + "\nstamp = time.time()\n")
    assert main(["lint", str(file), "--baseline", str(baseline)]) == 1
    assert "determinism" in capsys.readouterr().out

    # Fixing everything leaves stale suppressions -> still a failure.
    file.write_text(CLEAN)
    assert main(["lint", str(file), "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out
