"""The ``python -m repro lint`` subcommand: formats, baseline, exit codes."""

from __future__ import annotations

import json
from pathlib import Path

from repro.cli import main

CLEAN = "VALUE = 42\n"
DIRTY = "import time\n\ndef f(g, x, p):\n    return pow(g, x, p), time.time()\n"


def _write(tmp_path: Path, source: str) -> Path:
    file = tmp_path / "core" / "mod.py"
    file.parent.mkdir(exist_ok=True)
    file.write_text(source)
    return file


def test_clean_file_exits_zero(tmp_path, capsys) -> None:
    file = _write(tmp_path, CLEAN)
    assert main(["lint", str(file)]) == 0
    assert "clean: 0 findings" in capsys.readouterr().out


def test_findings_exit_one_and_name_rule_and_location(tmp_path, capsys) -> None:
    file = _write(tmp_path, DIRTY)
    assert main(["lint", str(file)]) == 1
    out = capsys.readouterr().out
    assert "mod-arith" in out and "determinism" in out
    assert "mod.py:4:" in out  # rule + file:line for CI logs


def test_json_format(tmp_path, capsys) -> None:
    file = _write(tmp_path, DIRTY)
    assert main(["lint", str(file), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    rules = {finding["rule"] for finding in payload["findings"]}
    assert rules == {"mod-arith", "determinism"}
    assert payload["ok"] is False
    assert payload["checked_files"] == 1
    assert all(
        {"path", "line", "col", "fingerprint"} <= set(f) for f in payload["findings"]
    )


def test_rule_filter_and_unknown_rule(tmp_path, capsys) -> None:
    file = _write(tmp_path, DIRTY)
    assert main(["lint", str(file), "--rule", "determinism"]) == 1
    out = capsys.readouterr().out
    assert "determinism" in out and "mod-arith" not in out
    assert main(["lint", str(file), "--rule", "bogus"]) == 2


def test_list_rules(capsys) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule_id in (
        "secret-flow",
        "rng-discipline",
        "mod-arith",
        "ct-compare",
        "determinism",
        "broad-except",
    ):
        assert rule_id in out


def test_baseline_workflow(tmp_path, capsys, monkeypatch) -> None:
    """write-baseline grandfathers; later runs stay green until drift."""
    monkeypatch.chdir(tmp_path)
    file = _write(tmp_path, DIRTY)
    baseline = tmp_path / "LINT_baseline.json"

    assert main(["lint", str(file), "--write-baseline"]) == 0
    assert baseline.exists()
    capsys.readouterr()

    # Grandfathered: clean against the baseline.
    assert main(["lint", str(file), "--baseline", str(baseline)]) == 0
    capsys.readouterr()

    # A fresh violation is NOT covered.
    file.write_text(DIRTY + "\nstamp = time.time()\n")
    assert main(["lint", str(file), "--baseline", str(baseline)]) == 1
    assert "determinism" in capsys.readouterr().out

    # Fixing everything leaves stale suppressions -> still a failure.
    file.write_text(CLEAN)
    assert main(["lint", str(file), "--baseline", str(baseline)]) == 1
    assert "stale baseline entry" in capsys.readouterr().out


# ----------------------------------------------------------------------
# program tier (--program / --changed / baseline v2)
# ----------------------------------------------------------------------
PROGRAM_FIXTURE = {
    "pkg/registry.py": (
        'SERVER_METHODS = ("do/add", "do/ghost")\n'
        "\n"
        "def build(server):\n"
        "    def do_add(payload):\n"
        '        return {"sum": int(payload["a"]) + int(payload["b"])}\n'
        "\n"
        '    return {"do/add": do_add}\n'
    ),
    "pkg/flows.py": (
        "def add_flow(node, rpc):\n"
        '    reply = rpc("do/add", {"a": 1, "b": 2, "junk": 3})\n'
        '    return reply["sum"]\n'
    ),
}


def _write_fixture(tmp_path: Path) -> None:
    for relpath, text in PROGRAM_FIXTURE.items():
        file = tmp_path / relpath
        file.parent.mkdir(parents=True, exist_ok=True)
        file.write_text(text)


def test_list_rules_has_program_section(capsys) -> None:
    assert main(["lint", "--list-rules"]) == 0
    out = capsys.readouterr().out
    assert "program rules (--program):" in out
    for rule_id in ("wire-schema", "journal-first", "async-safety", "exception-wire"):
        assert rule_id in out


def test_program_flag_reports_cross_module_findings(
    tmp_path, capsys, monkeypatch
) -> None:
    monkeypatch.chdir(tmp_path)
    _write_fixture(tmp_path)
    assert main(["lint", "--program", "pkg"]) == 1
    out = capsys.readouterr().out
    assert "wire-schema" in out and "junk" in out and "do/ghost" in out


def test_program_rule_filter_and_unknown_rule(tmp_path, capsys, monkeypatch) -> None:
    monkeypatch.chdir(tmp_path)
    _write_fixture(tmp_path)
    assert main(["lint", "--program", "pkg", "--rule", "async-safety"]) == 0
    assert main(["lint", "--program", "pkg", "--rule", "bogus"]) == 2


def test_program_write_baseline_then_green(tmp_path, capsys, monkeypatch) -> None:
    monkeypatch.chdir(tmp_path)
    _write_fixture(tmp_path)
    baseline = tmp_path / "LINT_baseline.json"
    assert main(["lint", "pkg", "--write-baseline"]) == 0
    assert json.loads(baseline.read_text())["version"] == 2
    capsys.readouterr()
    assert main(["lint", "--program", "pkg", "--baseline", str(baseline)]) == 0


def test_v1_baseline_is_rejected_with_exit_2(tmp_path, capsys, monkeypatch) -> None:
    monkeypatch.chdir(tmp_path)
    file = _write(tmp_path, CLEAN)
    baseline = tmp_path / "old.json"
    baseline.write_text(json.dumps({"version": 1, "findings": []}))
    assert main(["lint", str(file), "--baseline", str(baseline)]) == 2
    err = capsys.readouterr().err
    assert "schema v1" in err and "write-baseline" in err


def _git(tmp_path: Path, *argv: str) -> None:
    import subprocess

    subprocess.run(
        ["git", "-c", "user.email=t@e.st", "-c", "user.name=t", *argv],
        cwd=tmp_path,
        check=True,
        capture_output=True,
    )


def test_changed_narrows_per_file_tier_to_touched_files(
    tmp_path, capsys, monkeypatch
) -> None:
    monkeypatch.chdir(tmp_path)
    clean = _write(tmp_path, CLEAN)
    other = tmp_path / "core" / "other.py"
    other.write_text(CLEAN)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")
    clean.write_text(DIRTY)

    assert main(["lint", "--changed", "HEAD", "core"]) == 1
    out = capsys.readouterr().out
    assert "across 1 file(s)" in out  # other.py was not rescanned
    assert main(["lint", "--changed", "no-such-ref", "core"]) == 2


def test_changed_program_run_uses_summary_cache(
    tmp_path, capsys, monkeypatch
) -> None:
    monkeypatch.chdir(tmp_path)
    _write_fixture(tmp_path)
    _git(tmp_path, "init", "-q")
    _git(tmp_path, "add", ".")
    _git(tmp_path, "commit", "-qm", "seed")

    assert main(["lint", "--program", "--changed", "HEAD", "pkg"]) == 1
    first = capsys.readouterr().err
    assert "summary cache: 0 hit(s), 2 miss(es)" in first
    assert (tmp_path / ".lint_cache" / "summaries").is_dir()

    assert main(["lint", "--program", "--changed", "HEAD", "pkg"]) == 1
    second = capsys.readouterr().err
    assert "summary cache: 2 hit(s), 0 miss(es)" in second
