"""Prometheus output declares each metric name's TYPE exactly once."""

from __future__ import annotations

from repro.obs.export import to_prometheus
from repro.obs.registry import MetricsRegistry


def test_type_line_once_per_name_across_label_sets():
    registry = MetricsRegistry()
    registry.counter("ops_total", op="exp").inc()
    registry.counter("ops_total", op="hash").inc()
    registry.histogram("dur", span="a").observe(1.0)
    registry.histogram("dur", span="b").observe(2.0)
    text = to_prometheus(registry)
    assert text.count("# TYPE ops_total counter") == 1
    assert text.count("# TYPE dur summary") == 1
    assert 'ops_total{op="exp"} 1' in text
    assert 'ops_total{op="hash"} 1' in text
    assert 'dur_count{span="a"} 1' in text
    assert 'dur_count{span="b"} 1' in text
