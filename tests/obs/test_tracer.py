"""Tests for the tracer: nesting, clocks, error capture, retention cap."""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


class FakeClock:
    """A manually advanced clock for deterministic durations."""

    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def test_span_records_duration_from_injected_clock():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    with tracer.span("work"):
        clock.advance(2.5)
    (record,) = tracer.finished
    assert record.name == "work"
    assert record.duration == 2.5


def test_nested_spans_link_parent_and_trace():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("outer") as outer:
        with tracer.span("inner") as inner:
            pass
    inner_rec, outer_rec = tracer.finished  # children finish first
    assert inner_rec.name == "inner" and outer_rec.name == "outer"
    assert outer_rec.parent_id is None
    assert inner_rec.parent_id == outer_rec.span_id
    assert inner_rec.trace_id == outer_rec.trace_id
    assert tracer.children_of(outer.span_id) == [inner_rec]
    assert inner.span_id != outer.span_id


def test_sibling_spans_share_parent_not_each_other():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("parent") as parent:
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
    by_name = {record.name: record for record in tracer.finished}
    assert by_name["first"].parent_id == parent.span_id
    assert by_name["second"].parent_id == parent.span_id
    assert len(tracer.children_of(parent.span_id)) == 2


def test_new_root_after_exit_starts_fresh_trace():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a"):
        pass
    with tracer.span("b"):
        pass
    a_rec, b_rec = tracer.finished
    assert a_rec.parent_id is None and b_rec.parent_id is None
    assert a_rec.trace_id != b_rec.trace_id


def test_span_attributes_and_error_capture():
    tracer = Tracer(clock=FakeClock())
    try:
        with tracer.span("fails", kind="demo") as span:
            span.set("detail", 42)
            raise KeyError("boom")
    except KeyError:
        pass
    (record,) = tracer.finished
    assert record.attributes == {"kind": "demo", "detail": 42}
    assert record.error == "KeyError"


def test_finished_spans_feed_registry_histogram():
    registry = MetricsRegistry()
    clock = FakeClock()
    tracer = Tracer(clock=clock, registry=registry)
    with tracer.span("step"):
        clock.advance(1.0)
    digest = registry.histogram("span_duration_seconds", span="step").summary()
    assert digest["count"] == 1
    assert digest["max"] == 1.0


def test_retention_cap_counts_dropped():
    tracer = Tracer(clock=FakeClock(), max_spans=3)
    for _ in range(5):
        with tracer.span("tick"):
            pass
    assert len(tracer.finished) == 3
    assert tracer.dropped == 2
    digest = tracer.summary()
    assert digest["span_count"] == 3 and digest["dropped"] == 2


def test_summary_aggregates_by_name():
    clock = FakeClock()
    tracer = Tracer(clock=clock)
    for duration in (1.0, 3.0):
        with tracer.span("op"):
            clock.advance(duration)
    stats = tracer.summary()["by_name"]["op"]
    assert stats["count"] == 2
    assert stats["total"] == 4.0
    assert stats["mean"] == 2.0
    assert stats["min"] == 1.0 and stats["max"] == 3.0


def test_reset_clears_records():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("gone"):
        pass
    tracer.reset()
    assert tracer.finished == [] and tracer.dropped == 0
