"""End-to-end telemetry: facade behaviour, instrumented protocols, CLI."""

from __future__ import annotations

import json

import pytest

from repro import obs
from repro.cli import main
from repro.core.exceptions import DoubleSpendError
from repro.core.protocols import run_deposit, run_payment, run_withdrawal


def lifecycle(system):
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    run_payment(client, stored, system.merchant(merchant_id), system.witness_of(stored), now=10)
    run_deposit(system.merchant(merchant_id), system.broker, now=100)
    return stored


def test_disabled_by_default_records_nothing(system):
    assert not obs.is_enabled()
    lifecycle(system)
    assert obs.registry().snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}
    assert obs.tracer().finished == []


def test_null_span_is_shared_and_inert():
    first = obs.span("anything")
    second = obs.span("else")
    assert first is second
    with first as active:
        assert active.set("key", "value") is active


def test_enabled_context_restores_prior_state():
    assert not obs.is_enabled()
    with obs.enabled():
        assert obs.is_enabled()
        obs.counter_inc("inside")
    assert not obs.is_enabled()
    assert obs.registry().counter_value("inside") == 1.0


def test_lifecycle_records_protocol_spans_and_counters(system):
    with obs.enabled():
        lifecycle(system)
    registry = obs.registry()
    for protocol in ("withdrawal", "payment", "deposit"):
        assert registry.counter_value("protocol_runs_total", protocol=protocol) == 1.0
    durations = obs.tracer().durations_by_name()
    assert {"protocol.withdrawal", "protocol.payment", "protocol.deposit"} <= set(durations)
    # The witness-sign leg nests inside the payment span.
    payment = next(r for r in obs.tracer().finished if r.name == "protocol.payment")
    child_names = {r.name for r in obs.tracer().children_of(payment.span_id)}
    assert "protocol.payment.witness_sign" in child_names
    # Crypto op counters track raw operations.
    assert registry.counter_value("crypto_ops_total", op="exp") > 0


def test_double_spend_increments_detection_counter(system):
    with obs.enabled():
        attacker = system.new_client()
        stored = run_withdrawal(attacker, system.broker, system.standard_info(25, now=0))
        shops = [m for m in system.merchant_ids if m != stored.coin.witness_id]
        witness = system.witness_of(stored)
        run_payment(attacker, stored, system.merchant(shops[0]), witness, now=10)
        attacker.wallet.add(stored)
        with pytest.raises(DoubleSpendError):
            run_payment(attacker, stored, system.merchant(shops[1]), witness, now=500)
    assert obs.registry().counter_value("double_spend_detected") == 1.0


def run_cli(capsys, *argv: str) -> tuple[int, str]:
    code = main(list(argv))
    return code, capsys.readouterr().out


def test_cli_demo_metrics_flag(capsys):
    code, out = run_cli(capsys, "demo", "--metrics")
    assert code == 0
    assert "== Observability snapshot ==" in out
    assert "protocol.payment" in out
    assert "crypto_ops_total{op=exp}" in out
    assert "overlay_messages_total{kind=version}" in out
    assert "chord_lookup_hops" in out


def test_cli_attack_metrics_flag(capsys):
    code, out = run_cli(capsys, "attack", "--metrics")
    assert code == 0
    assert "refused in real time" in out
    assert "double_spend_detected" in out


def test_cli_metrics_subcommand_json(capsys):
    code, out = run_cli(capsys, "metrics", "--format", "json")
    assert code == 0
    document = json.loads(out)
    counters = document["metrics"]["counters"]
    assert counters["double_spend_detected"] == 1.0
    assert counters["chord_lookups_total"] > 0
    assert "protocol.payment" in document["spans"]["by_name"]


def test_cli_metrics_subcommand_prometheus(capsys):
    code, out = run_cli(capsys, "metrics", "--format", "prom")
    assert code == 0
    assert "# TYPE double_spend_detected counter" in out
    assert "double_spend_detected 1" in out
