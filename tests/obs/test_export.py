"""Tests for the JSON, Prometheus and console exporters."""

from __future__ import annotations

import json

from repro.obs.export import combined_snapshot, render_console, to_json, to_prometheus
from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer


def populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("deposits_total", outcome="credited").inc(3)
    registry.counter("events_total").inc(10)
    registry.gauge("queue_depth").set(4)
    for value in (0.1, 0.2, 0.3):
        registry.histogram("latency_seconds").observe(value)
    return registry


def test_json_round_trips():
    registry = populated_registry()
    tracer = Tracer(clock=lambda: 0.0)
    with tracer.span("step"):
        pass
    document = json.loads(to_json(registry, tracer))
    assert document["metrics"]["counters"]["deposits_total{outcome=credited}"] == 3.0
    assert document["metrics"]["gauges"]["queue_depth"] == 4.0
    assert document["metrics"]["histograms"]["latency_seconds"]["count"] == 3
    assert document["spans"]["by_name"]["step"]["count"] == 1


def test_combined_snapshot_without_tracer():
    snapshot = combined_snapshot(populated_registry())
    assert "spans" not in snapshot
    assert snapshot["metrics"]["counters"]["events_total"] == 10.0


def test_prometheus_format():
    text = to_prometheus(populated_registry())
    assert "# TYPE deposits_total counter" in text
    assert 'deposits_total{outcome="credited"} 3' in text
    assert "# TYPE queue_depth gauge" in text
    assert "queue_depth 4" in text
    assert "# TYPE latency_seconds summary" in text
    assert 'latency_seconds{quantile="0.5"}' in text
    assert "latency_seconds_sum" in text
    assert "latency_seconds_count 3" in text
    assert text.endswith("\n")


def test_prometheus_merges_quantile_into_existing_labels():
    registry = MetricsRegistry()
    registry.histogram("hops", ring="main").observe(2.0)
    text = to_prometheus(registry)
    assert 'hops{ring="main",quantile="0.5"}' in text
    assert 'hops_count{ring="main"} 1' in text


def test_console_sections():
    registry = populated_registry()
    tracer = Tracer(clock=lambda: 0.0)
    with tracer.span("step"):
        pass
    text = render_console(registry, tracer)
    assert text.startswith("== Observability snapshot ==")
    assert "-- Spans (1 recorded) --" in text
    assert "-- Counters --" in text
    assert "-- Gauges --" in text
    assert "-- Histograms --" in text
    assert "deposits_total{outcome=credited}" in text


def test_console_renders_empty_histogram():
    registry = MetricsRegistry()
    registry.histogram("untouched")
    assert "(empty)" in render_console(registry)
