"""Tests for the metrics registry: counters, gauges, label identity."""

from __future__ import annotations

import threading

import pytest

from repro.obs.registry import Counter, Gauge, MetricsRegistry, label_key


def test_label_key_sorted_and_bare():
    assert label_key("hits", {}) == "hits"
    assert label_key("hits", {"b": 2, "a": 1}) == "hits{a=1,b=2}"


def test_counter_identity_by_name_and_labels():
    registry = MetricsRegistry()
    first = registry.counter("deposits", outcome="credited")
    again = registry.counter("deposits", outcome="credited")
    other = registry.counter("deposits", outcome="refused")
    assert first is again
    assert first is not other


def test_counter_inc_and_read_back():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.counter("hits").inc(2.5)
    assert registry.counter_value("hits") == pytest.approx(3.5)
    assert registry.counter_value("never-touched") == 0.0


def test_counter_rejects_negative():
    with pytest.raises(ValueError):
        Counter().inc(-1)


def test_gauge_set_inc_dec():
    gauge = Gauge()
    gauge.set(10)
    gauge.inc(5)
    gauge.dec(2)
    assert gauge.value == pytest.approx(13.0)


def test_snapshot_shape_and_sorting():
    registry = MetricsRegistry()
    registry.counter("zeta").inc()
    registry.counter("alpha").inc()
    registry.gauge("depth").set(7)
    registry.histogram("lat").observe(1.0)
    snap = registry.snapshot()
    assert list(snap["counters"]) == ["alpha", "zeta"]
    assert snap["gauges"]["depth"] == 7.0
    assert snap["histograms"]["lat"]["count"] == 1


def test_reset_drops_everything():
    registry = MetricsRegistry()
    registry.counter("hits").inc()
    registry.reset()
    assert registry.counter_value("hits") == 0.0
    assert registry.snapshot() == {"counters": {}, "gauges": {}, "histograms": {}}


def test_concurrent_increments_do_not_lose_updates():
    registry = MetricsRegistry()

    def worker():
        for _ in range(1000):
            registry.counter("shared").inc()

    threads = [threading.Thread(target=worker) for _ in range(8)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    assert registry.counter_value("shared") == 8000.0
