"""Shared fixtures: keep the global telemetry facade clean between tests."""

from __future__ import annotations

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def clean_obs():
    """Reset the process-wide registry/tracer and restore the enabled flag."""
    was_enabled = obs.is_enabled()
    obs.reset()
    obs.disable()
    yield
    obs.reset()
    if was_enabled:
        obs.enable()
    else:
        obs.disable()
