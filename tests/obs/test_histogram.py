"""Tests for the streaming histogram: quantile accuracy, edge samples."""

from __future__ import annotations

import random

import pytest

from repro.obs.histogram import StreamingHistogram, bucket_index


def test_bucket_index_monotone():
    values = [0.001, 0.01, 0.5, 1.0, 7.3, 100.0, 1e6]
    indices = [bucket_index(value) for value in values]
    assert indices == sorted(indices)


def test_empty_summary():
    digest = StreamingHistogram().summary()
    assert digest["count"] == 0
    assert digest["sum"] == 0.0


def test_exact_count_sum_min_max():
    histogram = StreamingHistogram()
    for value in (3.0, 1.0, 4.0, 1.5):
        histogram.observe(value)
    digest = histogram.summary()
    assert digest["count"] == 4
    assert digest["sum"] == pytest.approx(9.5)
    assert digest["min"] == 1.0
    assert digest["max"] == 4.0
    assert histogram.mean == pytest.approx(9.5 / 4)


def test_quantiles_within_bucket_error():
    histogram = StreamingHistogram()
    for value in range(1, 1001):
        histogram.observe(float(value))
    # Exponential buckets with growth 2**0.25 keep relative error < 10%.
    assert histogram.quantile(0.5) == pytest.approx(500, rel=0.10)
    assert histogram.quantile(0.95) == pytest.approx(950, rel=0.10)
    assert histogram.quantile(0.99) == pytest.approx(990, rel=0.10)


def test_quantiles_clamped_to_observed_range():
    histogram = StreamingHistogram()
    histogram.observe(42.0)
    assert histogram.quantile(0.0) == 42.0
    assert histogram.quantile(1.0) == 42.0


def test_shuffled_input_gives_same_quantiles():
    ordered = StreamingHistogram()
    shuffled = StreamingHistogram()
    values = [float(value) for value in range(1, 501)]
    for value in values:
        ordered.observe(value)
    random.Random(7).shuffle(values)
    for value in values:
        shuffled.observe(value)
    assert ordered.quantile(0.5) == shuffled.quantile(0.5)
    assert ordered.quantile(0.99) == shuffled.quantile(0.99)


def test_nonpositive_samples_use_underflow_bucket():
    histogram = StreamingHistogram()
    histogram.observe(0.0)
    histogram.observe(-5.0)
    digest = histogram.summary()
    assert digest["count"] == 2
    assert digest["min"] == -5.0
    assert digest["max"] == 0.0


def test_summary_carries_requested_quantiles():
    histogram = StreamingHistogram()
    for value in range(100):
        histogram.observe(float(value) + 1)
    digest = histogram.summary()
    assert set(digest) >= {"count", "sum", "mean", "min", "max", "p50", "p95", "p99"}
    assert digest["p50"] <= digest["p95"] <= digest["p99"]
