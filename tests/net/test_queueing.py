"""Tests for server-side queueing (bounded handler concurrency)."""

import random

import pytest

from repro.crypto import counters
from repro.net.costmodel import ComputeCostModel
from repro.net.latency import LatencyModel, Region
from repro.net.node import Network, Node, metered
from repro.net.sim import Future, Simulator


def instant_latency():
    means = {frozenset({a, b}): 0.0 for a in Region for b in Region}
    means.update({frozenset({a}): 0.0 for a in Region})
    return LatencyModel(
        one_way_means=means,
        jitter=0.0,
        bandwidth_bytes_per_s=float("inf"),
        rng=random.Random(0),
    )


def one_second_per_request():
    return ComputeCostModel(exp_ms=1000.0, hash_ms=0, sig_ms=0, ver_ms=0, noise=0)


def build(concurrency):
    sim = Simulator()
    net = Network(sim, instant_latency(), one_second_per_request(), seed=0)
    client = net.register(Node("client", Region.LOCAL))
    server = net.register(Node("server", Region.LOCAL, concurrency=concurrency))

    def work(payload):
        counters.record_exp()  # one simulated second of compute
        return {"done": 1}

    server.on("work", work)
    return sim, net, client, server


def launch_requests(sim, net, count):
    futures = []
    for _ in range(count):
        lazy = net.rpc("client", "server", "work", {}, timeout=60.0)
        lazy.dispatch()
        futures.append(lazy)
    done = Future()
    remaining = len(futures)

    def on_done(_):
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not done.done:
            done.set_result(None)

    for future in futures:
        future.add_callback(on_done)
    sim.run_until(done)
    return futures


def test_unlimited_concurrency_fully_parallel():
    sim, net, client, server = build(concurrency=None)
    launch_requests(sim, net, 5)
    assert sim.now == pytest.approx(1.0)  # all five overlapped
    assert server.peak_queue_depth == 0


def test_single_threaded_server_serializes():
    sim, net, client, server = build(concurrency=1)
    launch_requests(sim, net, 5)
    assert sim.now == pytest.approx(5.0)  # strictly one at a time
    assert server.peak_queue_depth == 4
    assert server.active_handlers == 0  # all slots released


def test_bounded_concurrency_pipeline():
    sim, net, client, server = build(concurrency=2)
    launch_requests(sim, net, 6)
    assert sim.now == pytest.approx(3.0)  # 6 requests / 2 lanes
    assert server.peak_queue_depth == 4


def test_queue_preserves_fifo_order():
    sim = Simulator()
    net = Network(sim, instant_latency(), one_second_per_request(), seed=0)
    net.register(Node("client", Region.LOCAL))
    server = net.register(Node("server", Region.LOCAL, concurrency=1))
    order = []

    def work(payload):
        counters.record_exp()
        order.append(payload["index"])
        return {}

    server.on("work", work)
    futures = []
    for index in range(4):
        lazy = net.rpc("client", "server", "work", {"index": index}, timeout=60.0)
        lazy.dispatch()
        futures.append(lazy)
    done = Future()
    remaining = len(futures)

    def on_done(_):
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not done.done:
            done.set_result(None)

    for future in futures:
        future.add_callback(on_done)
    sim.run_until(done)
    assert order == [0, 1, 2, 3]


def test_invalid_concurrency_rejected():
    with pytest.raises(ValueError):
        Node("x", Region.LOCAL, concurrency=0)
