"""Concurrency races over the simulated network.

The serialization point of the whole design is the witness: whatever two
merchants, two clients or two in-flight protocol runs do concurrently, at
most one transcript per coin ever gets a witness signature (unless the
witness is faulty — and then the deposit protocol settles it). These tests
launch genuinely concurrent protocol runs on the event loop and check the
serialization holds at every interleaving the seeds produce.
"""

import pytest

from repro.core.exceptions import (
    CommitmentError,
    CommitmentOutstandingError,
    DoubleSpendError,
    EcashError,
)
from repro.core.system import EcashSystem
from repro.net.costmodel import instant_profile
from repro.net.node import metered
from repro.net.services import NetworkDeployment
from repro.net.sim import Future


def gather(sim, futures):
    """Run until all futures resolve; return (value_or_exception, ...)."""
    done = Future()
    remaining = len(futures)

    def on_done(_):
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not done.done:
            done.set_result(None)

    for future in futures:
        future.add_callback(on_done)
    sim.run_until(done)
    results = []
    for future in futures:
        try:
            results.append(("ok", future.result()))
        except EcashError as error:
            results.append(("refused", error))
    return results


@pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
def test_concurrent_double_spend_race(params, seed):
    """The same coin is spent at two merchants at the same instant.

    Exactly one payment may succeed; the other must be refused by the
    witness's commitment discipline (one outstanding commitment per coin)
    or by double-spend detection — never by silently succeeding twice.
    """
    system = EcashSystem(params=params, seed=seed)
    deployment = NetworkDeployment(system, cost_model=instant_profile(), seed=seed)
    deployment.add_client("racer")
    stored = deployment.run(
        deployment.withdrawal_process("racer", system.standard_info(25, now=0))
    )
    witness_id = stored.coin.witness_id
    targets = [m for m in system.merchant_ids if m != witness_id][:2]

    futures = [
        deployment.sim.spawn(
            metered(
                deployment.payment_process("racer", stored, merchant_id),
                deployment.network.cost_model,
                deployment.network.rng,
            )
        )
        for merchant_id in targets
    ]
    results = gather(deployment.sim, futures)

    successes = [r for status, r in results if status == "ok"]
    refusals = [r for status, r in results if status == "refused"]
    assert len(successes) == 1, f"expected exactly one success, got {results}"
    assert len(refusals) == 1
    assert isinstance(
        refusals[0], (CommitmentOutstandingError, CommitmentError, DoubleSpendError)
    )
    # Settlement stays sound: only one merchant can deposit the coin.
    paid = successes[0].merchant_id
    deployment.run(deployment.deposit_process(paid))
    assert system.broker.merchant_balance(paid) == 25
    assert system.ledger.conserved()


def test_concurrent_distinct_coins_no_interference(params):
    """Races only exist per coin: distinct coins in flight never clash."""
    system = EcashSystem(params=params, seed=9)
    deployment = NetworkDeployment(system, cost_model=instant_profile(), seed=9)
    launches = []
    for index in range(4):
        client_name = f"client-{index}"
        deployment.add_client(client_name)
        stored = deployment.run(
            deployment.withdrawal_process(client_name, system.standard_info(10, now=0))
        )
        merchant_id = [m for m in system.merchant_ids if m != stored.coin.witness_id][
            index % (len(system.merchant_ids) - 1)
        ]
        launches.append((client_name, stored, merchant_id))

    futures = [
        deployment.sim.spawn(
            metered(
                deployment.payment_process(client_name, stored, merchant_id),
                deployment.network.cost_model,
                deployment.network.rng,
            )
        )
        for client_name, stored, merchant_id in launches
    ]
    results = gather(deployment.sim, futures)
    assert all(status == "ok" for status, _ in results)


def test_commitment_discipline_prevents_parallel_commitments(params):
    """Step 2's rule in action: while one commitment is outstanding, a
    second client presenting the same (stolen) coin cannot obtain one."""
    system = EcashSystem(params=params, seed=12)
    client = system.new_client()
    from repro.core.protocols import run_withdrawal

    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    witness = system.witness_of(stored)
    shops = [m for m in system.merchant_ids if m != stored.coin.witness_id]

    request_a, _ = client.prepare_commitment_request(stored, shops[0], now=10)
    witness.request_commitment(request_a, now=10)

    # A second spend attempt (same coin, other merchant) inside the window.
    thief = system.new_client()
    from repro.core.client import StoredCoin

    stolen = StoredCoin(coin=stored.coin, secrets=stored.secrets)
    request_b, _ = thief.prepare_commitment_request(stolen, shops[1], now=30)
    with pytest.raises(CommitmentOutstandingError):
        witness.request_commitment(request_b, now=30)
