"""Tests for the churn model and the Chord DHT."""

import math
import random

import pytest

from repro.core.exceptions import EcashError, ServiceUnavailableError
from repro.net.chord import ChordLookupError, ChordRing, LookupResult, chord_id, in_interval
from repro.net.churn import ChurnModel, k_of_n_availability


class TestChurn:
    def test_availability_formula(self):
        model = ChurnModel(mean_uptime=90, mean_downtime=10, rng=random.Random(0))
        assert model.availability == pytest.approx(0.9)

    def test_timeline_matches_availability(self):
        model = ChurnModel(mean_uptime=80, mean_downtime=20, rng=random.Random(1))
        horizon = 200_000.0
        timeline = model.timeline(horizon)
        samples = 4000
        up = sum(timeline.is_up(i * horizon / samples) for i in range(samples))
        assert abs(up / samples - 0.8) < 0.05

    def test_always_up(self):
        model = ChurnModel(mean_uptime=100, mean_downtime=0)
        timeline = model.timeline(1000)
        assert timeline.is_up(0) and timeline.is_up(999)

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            ChurnModel(mean_uptime=0, mean_downtime=1)

    def test_k_of_n_formula(self):
        p = 0.9
        assert k_of_n_availability(p, 1, 1) == pytest.approx(p)
        expected = p**3 + 3 * p**2 * (1 - p)  # the paper's 2-of-3
        assert k_of_n_availability(p, 3, 2) == pytest.approx(expected)
        assert k_of_n_availability(p, 3, 2) > p  # the extension helps
        assert k_of_n_availability(1.0, 5, 5) == 1.0
        assert k_of_n_availability(0.0, 3, 1) == 0.0

    def test_k_of_n_validation(self):
        with pytest.raises(ValueError):
            k_of_n_availability(1.5, 3, 2)
        with pytest.raises(ValueError):
            k_of_n_availability(0.9, 3, 0)
        with pytest.raises(ValueError):
            k_of_n_availability(0.9, 2, 3)


class TestChordInterval:
    def test_plain_interval(self):
        assert in_interval(5, 3, 8)
        assert not in_interval(3, 3, 8)
        assert not in_interval(8, 3, 8)
        assert in_interval(8, 3, 8, inclusive_high=True)

    def test_wrapping_interval(self):
        space = 1 << 64
        assert in_interval(2, space - 5, 10)
        assert in_interval(space - 1, space - 5, 10)
        assert not in_interval(100, space - 5, 10)

    def test_degenerate_interval(self):
        assert in_interval(7, 3, 3)
        assert not in_interval(3, 3, 3)
        assert in_interval(3, 3, 3, inclusive_high=True)


class TestChordRing:
    @pytest.fixture(scope="class")
    def ring(self):
        return ChordRing([f"node-{i}" for i in range(64)], successor_list_size=3)

    def test_lookup_finds_true_owner(self, ring):
        rng = random.Random(3)
        ordered = ring.nodes
        for _ in range(200):
            key = rng.getrandbits(64)
            result = ring.lookup(key, start=rng.choice(ordered))
            # Brute-force owner: first node id >= key (wrapping).
            ids = [node.node_id for node in ordered]
            import bisect

            index = bisect.bisect_left(ids, key % (1 << 64))
            expected = ordered[index % len(ordered)]
            assert result.owner is expected

    def test_logarithmic_hops(self, ring):
        rng = random.Random(4)
        hops = [
            ring.lookup(rng.getrandbits(64), start=rng.choice(ring.nodes)).hops
            for _ in range(300)
        ]
        assert sum(hops) / len(hops) <= math.log2(len(ring.nodes)) + 1
        assert max(hops) <= 2 * math.log2(len(ring.nodes))

    def test_put_get(self, ring):
        key = chord_id("some-coin")
        assert ring.put(key, "record") == 3
        assert ring.get(key) == ["record"]

    def test_replicas_survive_owner_failure(self, ring):
        key = chord_id("resilient-coin")
        ring.put(key, "precious")
        owner = ring.lookup(key).owner
        owner.up = False
        try:
            assert "precious" in ring.get(key)
        finally:
            owner.up = True

    def test_routing_skips_down_nodes(self, ring):
        rng = random.Random(5)
        downed = rng.sample(ring.nodes, 8)
        for node in downed:
            node.up = False
        try:
            for _ in range(50):
                key = rng.getrandbits(64)
                start = rng.choice([n for n in ring.nodes if n.up])
                result = ring.lookup(key, start=start)
                assert result.owner.up
        finally:
            for node in downed:
                node.up = True

    def test_malicious_nodes_suppress(self):
        ring = ChordRing([f"m{i}" for i in range(10)], successor_list_size=1)
        for node in ring.nodes:
            node.malicious = True
        key = chord_id("censored")
        ring.put(key, "never-stored")
        assert ring.get(key) == []

    def test_compromise_fraction(self):
        ring = ChordRing([f"m{i}" for i in range(40)])
        chosen = ring.compromise_fraction(0.25, random.Random(6))
        assert len(chosen) == 10
        assert all(node.malicious for node in chosen)
        with pytest.raises(ValueError):
            ring.compromise_fraction(1.5, random.Random(6))

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ChordRing(["a", "a"])
        with pytest.raises(ValueError):
            ChordRing([])

    def test_node_by_name(self, ring):
        assert ring.node_by_name("node-7").name == "node-7"
        with pytest.raises(KeyError):
            ring.node_by_name("ghost")

    def test_single_node_ring(self):
        ring = ChordRing(["solo"])
        result = ring.lookup(12345)
        assert result.owner.name == "solo"
        ring.put(1, "x")
        assert ring.get(1) == ["x"]


class TestChordLookupFailure:
    def test_all_nodes_dead_raises_typed_error(self):
        ring = ChordRing([f"d{i}" for i in range(8)])
        for node in ring.nodes:
            node.up = False
        with pytest.raises(ChordLookupError):
            ring.lookup(chord_id("orphan-key"))

    def test_lookup_survives_dead_successor_lists(self):
        """Every listed successor of the start node down: the ring-scan
        fallback still finds a live owner instead of raising."""
        ring = ChordRing([f"s{i}" for i in range(12)], successor_list_size=2)
        start = ring.nodes[0]
        for successor in start.successors:
            successor.up = False
        result = ring.lookup(chord_id("resilient-key"), start=start)
        assert result.owner.up

    def test_typed_error_is_service_unavailable(self):
        """ChordLookupError slots into the repo's error hierarchy, so
        callers already handling availability failures catch it."""
        assert issubclass(ChordLookupError, ServiceUnavailableError)
        assert issubclass(ChordLookupError, EcashError)
