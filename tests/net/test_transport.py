"""Unit tests for the wire message/trace/meter layer."""

import pytest

from repro.core.exceptions import InvalidPaymentError
from repro.net.transport import (
    HTTP_FRAMING_BYTES,
    Message,
    Trace,
    TraceEntry,
    TrafficMeter,
    error_size_bytes,
)


class TestMessage:
    def test_encoding_includes_method(self):
        message = Message(method="pay", payload={"x": 1})
        assert "_method=pay" in message.encoded()

    def test_size_includes_framing(self):
        message = Message(method="pay", payload={})
        assert message.size_bytes == message.body_bytes + HTTP_FRAMING_BYTES

    def test_size_grows_with_payload(self):
        small = Message(method="m", payload={"a": 1})
        large = Message(method="m", payload={"a": 1, "blob": "x" * 500})
        assert large.size_bytes > small.size_bytes + 400

    def test_deterministic_encoding(self):
        first = Message(method="m", payload={"b": 2, "a": 1})
        second = Message(method="m", payload={"a": 1, "b": 2})
        assert first.encoded() == second.encoded()

    def test_reserved_method_key_rejected(self):
        with pytest.raises(ValueError, match="_method"):
            Message(method="pay", payload={"_method": "withdraw/begin"})

    def test_reserved_error_key_rejected(self):
        with pytest.raises(ValueError, match="_error"):
            Message(method="pay", payload={"_error": "InvalidPaymentError"})


class TestErrorSize:
    def test_error_size_positive_and_framed(self):
        size = error_size_bytes(InvalidPaymentError("nonce mismatch"))
        assert size > HTTP_FRAMING_BYTES
        # Longer messages cost more bytes.
        assert error_size_bytes(InvalidPaymentError("x" * 200)) > size


class TestTrafficMeter:
    def test_accounting(self):
        meter = TrafficMeter()
        meter.record_sent(100)
        meter.record_sent(50)
        meter.record_received(70)
        assert meter.snapshot() == (150, 70)
        assert meter.messages_sent == 2
        assert meter.messages_received == 1


class TestTrace:
    def entry(self, src, dst, method, kind="request"):
        return TraceEntry(
            time=0.0, source=src, destination=dst, method=method, size_bytes=1, kind=kind
        )

    def test_methods_filters_requests(self):
        trace = Trace()
        trace.record(self.entry("a", "b", "pay"))
        trace.record(self.entry("b", "a", "pay", kind="response"))
        trace.record(self.entry("a", "c", "deposit"))
        assert trace.methods() == ["pay", "deposit"]

    def test_between(self):
        trace = Trace()
        trace.record(self.entry("a", "b", "pay"))
        trace.record(self.entry("b", "a", "pay", kind="response"))
        assert len(trace.between("a", "b")) == 1
        assert len(trace.between("b", "a")) == 1
        assert trace.between("a", "c") == []
