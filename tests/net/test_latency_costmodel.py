"""Tests for the latency and compute-cost models."""

import random

import pytest

from repro.analysis.stats import mean, stdev
from repro.crypto.counters import OpCounter
from repro.net.costmodel import (
    ComputeCostModel,
    instant_profile,
    openssl_profile,
    python2006_profile,
)
from repro.net.latency import LatencyModel, Region, planetlab_us, uniform_mesh


class TestLatency:
    def test_planetlab_rtts_in_paper_band(self):
        model = planetlab_us(seed=1)
        pairs = [
            (Region.WISCONSIN, Region.CALIFORNIA),
            (Region.WISCONSIN, Region.MASSACHUSETTS),
            (Region.CALIFORNIA, Region.MASSACHUSETTS),
        ]
        for src, dst in pairs:
            rtt_ms = model.mean_rtt(src, dst) * 1000
            assert 50 <= rtt_ms <= 100, f"{src}-{dst} RTT {rtt_ms}ms outside 50-100ms"

    def test_symmetry(self):
        model = planetlab_us(seed=1)
        assert model.mean_one_way(Region.WISCONSIN, Region.CALIFORNIA) == model.mean_one_way(
            Region.CALIFORNIA, Region.WISCONSIN
        )

    def test_jitter_mean_preserving(self):
        model = planetlab_us(seed=2, jitter=0.3)
        samples = [
            model.sample_one_way(Region.WISCONSIN, Region.CALIFORNIA) for _ in range(4000)
        ]
        expected = model.mean_one_way(Region.WISCONSIN, Region.CALIFORNIA)
        assert abs(mean(samples) - expected) / expected < 0.05
        assert stdev(samples) > 0

    def test_zero_jitter_deterministic(self):
        model = planetlab_us(seed=3, jitter=0.0)
        a = model.sample_one_way(Region.WISCONSIN, Region.CALIFORNIA)
        b = model.sample_one_way(Region.WISCONSIN, Region.CALIFORNIA)
        assert a == b == model.mean_one_way(Region.WISCONSIN, Region.CALIFORNIA)

    def test_size_term(self):
        model = planetlab_us(seed=4, jitter=0.0)
        small = model.sample_one_way(Region.WISCONSIN, Region.CALIFORNIA, size_bytes=0)
        large = model.sample_one_way(Region.WISCONSIN, Region.CALIFORNIA, size_bytes=1_000_000)
        assert large == pytest.approx(small + 1.0)

    def test_uniform_mesh(self):
        model = uniform_mesh([Region.LOCAL, Region.WISCONSIN], one_way=0.05, seed=5)
        assert model.mean_one_way(Region.LOCAL, Region.WISCONSIN) == 0.05

    def test_unknown_pair_raises(self):
        model = LatencyModel(one_way_means={}, rng=random.Random(0))
        with pytest.raises(KeyError):
            model.mean_one_way(Region.LOCAL, Region.LOCAL)


class TestCostModel:
    def test_mean_seconds(self):
        model = ComputeCostModel(exp_ms=10, hash_ms=1, sig_ms=100, ver_ms=50)
        counter = OpCounter(exp=2, hash=3, sig=1, ver=2)
        assert model.mean_seconds(counter) == pytest.approx(0.223)

    def test_noise_mean_preserving(self):
        model = ComputeCostModel(exp_ms=10, hash_ms=0, sig_ms=0, ver_ms=0, noise=0.4)
        counter = OpCounter(exp=10)
        rng = random.Random(0)
        samples = [model.sample_seconds(counter, rng) for _ in range(4000)]
        assert abs(mean(samples) - 0.1) / 0.1 < 0.05

    def test_zero_ops_zero_time(self):
        model = python2006_profile()
        assert model.sample_seconds(OpCounter(), random.Random(0)) == 0.0

    def test_python2006_anchor(self):
        """The paper's footnote 7 anchor: one signature ~ 250 ms."""
        model = python2006_profile(noise=0)
        assert model.sample_seconds(OpCounter(sig=1), random.Random(0)) == pytest.approx(0.25)

    def test_openssl_anchor(self):
        """Aggregate payment compute under OpenSSL ~ 30 ms (Section 7)."""
        model = openssl_profile(noise=0)
        # Total ops of one payment across parties (client+witness+merchant).
        total = OpCounter(exp=14, hash=15, sig=2, ver=5)
        compute_ms = model.mean_seconds(total) * 1000
        assert compute_ms <= 30.0
        assert compute_ms >= 15.0  # nonzero, same order as the paper's claim

    def test_instant_profile(self):
        model = instant_profile()
        assert model.mean_seconds(OpCounter(exp=100, sig=100)) == 0.0
