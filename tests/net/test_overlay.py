"""Tests for the gossip overlay distributing signed witness directories."""

import random

import pytest

from repro.core.system import EcashSystem
from repro.core.witness_ranges import build_table
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature
from repro.net.costmodel import instant_profile
from repro.net.latency import Region, uniform_mesh
from repro.net.node import Network, Node
from repro.net.overlay import Directory, GossipOverlay, publish_directory
from repro.net.sim import Simulator

MEMBERS = [f"shop-{i}" for i in range(12)]


@pytest.fixture()
def overlay_setup(params):
    sim = Simulator()
    network = Network(
        sim,
        uniform_mesh([Region.LOCAL], one_way=0.01, seed=5),
        instant_profile(),
        seed=5,
    )
    for member in MEMBERS:
        network.register(Node(member, Region.LOCAL))
    broker_key = SchnorrKeyPair.generate(params.group, random.Random(6))
    table = build_table(
        params, broker_key, 1, {m: 1.0 for m in MEMBERS}, rng=random.Random(7)
    )
    keys = {
        m: SchnorrKeyPair.generate(params.group, random.Random(10 + i)).public
        for i, m in enumerate(MEMBERS)
    }
    directory = publish_directory(params, broker_key, 1, table, keys, random.Random(8))
    overlay = GossipOverlay(
        params, network, broker_key.public, MEMBERS, interval=1.0, fanout=1, seed=9
    )
    return sim, network, broker_key, table, keys, directory, overlay


def test_directory_signature(params, overlay_setup):
    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    assert directory.verify(params, broker_key.public)
    impostor = SchnorrKeyPair.generate(params.group, random.Random(99))
    assert not directory.verify(params, impostor.public)


def test_gossip_converges(params, overlay_setup):
    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    overlay.seed(directory, seed_members=MEMBERS[:2])
    overlay.start()
    sim.run(until=60.0)
    assert overlay.converged_to(1)
    for member in MEMBERS:
        state = overlay.states[member]
        assert state.directory is not None
        assert state.directory.table.version == table.version


def test_convergence_is_epidemic_fast(params, overlay_setup):
    """12 members, fanout 1, 1s rounds: convergence within ~O(log N) * a
    small constant of rounds, far below linear flooding."""
    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    overlay.seed(directory, seed_members=[MEMBERS[0]])
    overlay.start()
    deadline = 25.0  # 25 rounds >> log2(12) ~ 3.6, << any linear schedule
    sim.run(until=deadline)
    assert overlay.converged_to(1)


def test_newer_version_replaces_older(params, overlay_setup):
    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    overlay.seed(directory, seed_members=MEMBERS[:3])
    overlay.start()
    sim.run(until=30.0)
    table2 = build_table(
        params, broker_key, 2, {m: 2.0 for m in MEMBERS}, rng=random.Random(17)
    )
    directory2 = publish_directory(params, broker_key, 2, table2, keys, random.Random(18))
    overlay.seed(directory2, seed_members=[MEMBERS[-1]])
    sim.run(until=90.0)
    assert overlay.converged_to(2)
    assert all(state.version == 2 for state in overlay.states.values())


def test_forged_directory_rejected(params, overlay_setup):
    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    overlay.seed(directory, seed_members=MEMBERS[:2])
    # A Byzantine member fabricates a "version 99" with its own signature.
    forged = Directory(
        version=99,
        table=table,
        merchant_keys=keys,
        signature=SchnorrSignature(e=1, s=1),
    )
    state = overlay.states[MEMBERS[5]]
    overlay._consider(state, forged)
    assert state.version == 0
    assert state.rejected == 1
    with pytest.raises(ValueError):
        overlay.seed(forged, seed_members=[MEMBERS[5]])


def test_stale_version_ignored(params, overlay_setup):
    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    table2 = build_table(
        params, broker_key, 2, {m: 1.0 for m in MEMBERS}, rng=random.Random(21)
    )
    directory2 = publish_directory(params, broker_key, 2, table2, keys, random.Random(22))
    state = overlay.states[MEMBERS[0]]
    overlay.seed(directory2, seed_members=[MEMBERS[0]])
    installs_before = state.installs
    overlay._consider(state, directory)  # replaying v1 after v2
    assert state.version == 2
    assert state.installs == installs_before


def test_gossip_heals_around_downtime(params, overlay_setup):
    """Members that were down during the rollout catch up on reboot."""
    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    for member in MEMBERS[6:]:
        network.node(member).set_up(False)
    overlay.seed(directory, seed_members=[MEMBERS[0]])
    overlay.start()
    sim.run(until=40.0)
    assert overlay.converged_to(1)  # converged among the online members
    assert overlay.states[MEMBERS[7]].version == 0
    for member in MEMBERS[6:]:
        network.node(member).set_up(True)
    sim.run(until=120.0)
    assert all(state.version == 1 for state in overlay.states.values())


def test_payload_roundtrip(params, overlay_setup):
    from repro.net.overlay import _directory_from_payload, _directory_to_payload

    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    restored = _directory_from_payload(params, _directory_to_payload(directory))
    assert restored is not None
    assert restored.version == directory.version
    assert restored.merchant_keys == directory.merchant_keys
    assert restored.verify(params, broker_key.public)


def test_malformed_payload_returns_none(params, overlay_setup):
    from repro.net.overlay import _directory_from_payload

    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    assert _directory_from_payload(params, {"version": 0}) is None
    assert _directory_from_payload(params, {"garbage": "x"}) is None


def test_gossip_counts_peer_failures_and_backs_off(params, overlay_setup):
    """A member whose peer is down records the failure (state counter and
    obs metric) instead of crashing its anti-entropy loop."""
    from repro import obs

    sim, network, broker_key, table, keys, directory, overlay = overlay_setup
    overlay.seed(directory, seed_members=MEMBERS[:2])
    network.node(MEMBERS[-1]).set_up(False)
    obs.reset()
    with obs.enabled():
        overlay.start()
        sim.run(until=60.0)
        failures = obs.registry().counter_value("gossip_peer_failures_total")
    obs.reset()
    total = sum(overlay.states[m].peer_failures for m in MEMBERS)
    assert total > 0  # somebody gossiped at the dead member and timed out
    assert failures == total
    # The live membership still converged around the outage.
    assert overlay.converged_to(1)
