"""Scale-engine tests for the Chord overlay: incremental repair vs the
naive full-rebuild path, the ring-order invariant, and the lookup memo."""

import math
import random

import pytest

from repro import perf
from repro.net.chord import ID_BITS, ChordRing, chord_id


def _tables_of(ring: ChordRing) -> list[tuple[str, tuple[str, ...], tuple[str, ...]]]:
    """Canonical (name, fingers, successors) rows for equality checks."""
    return [
        (
            node.name,
            tuple(finger.name for finger in node.finger),
            tuple(successor.name for successor in node.successors),
        )
        for node in ring.nodes
    ]


def _naive_twin(ring: ChordRing) -> ChordRing:
    """A freshly built ring with the same membership (ground truth)."""
    with perf.disabled():
        return ChordRing(
            [node.name for node in ring.nodes], successor_list_size=ring.r
        )


class TestRingOrderInvariant:
    def test_ids_mirror_nodes_through_churn(self):
        ring = ChordRing([f"inv-{i}" for i in range(24)])
        with perf.forced(True):
            ring.join("inv-join-a")
            ring.leave("inv-3")
            ring.join("inv-join-b")
        assert ring._ids == [node.node_id for node in ring.nodes]
        assert ring._ids == sorted(ring._ids)
        assert set(ring._by_name) == {node.name for node in ring.nodes}

    def test_successor_of_matches_brute_force(self):
        ring = ChordRing([f"sb-{i}" for i in range(40)])
        rng = random.Random(7)
        for _ in range(200):
            point = rng.getrandbits(64)
            owner = ring._successor_of(point)
            expected = min(
                ring.nodes,
                key=lambda node: (node.node_id - point) % (1 << 64),
            )
            assert owner is expected


class TestIncrementalRepair:
    @pytest.mark.parametrize("r", [1, 3, 5])
    def test_random_churn_matches_full_rebuild(self, r):
        """Tables after any join/leave sequence equal a fresh naive build."""
        ring = ChordRing([f"rc{r}-{i}" for i in range(16)], successor_list_size=r)
        rng = random.Random(100 + r)
        joined = 0
        with perf.forced(True):
            for step in range(60):
                if len(ring.nodes) > 3 and rng.random() < 0.5:
                    ring.leave(rng.choice(ring.nodes).name)
                else:
                    ring.join(f"rc{r}-extra-{joined}")
                    joined += 1
                if step % 10 == 9:  # full check every few events
                    assert _tables_of(ring) == _tables_of(_naive_twin(ring))
        assert _tables_of(ring) == _tables_of(_naive_twin(ring))

    def test_no_full_rebuilds_after_bootstrap(self):
        ring = ChordRing([f"nb-{i}" for i in range(32)])
        assert ring.table_builds == 1
        with perf.forced(True):
            for i in range(10):
                ring.join(f"nb-new-{i}")
            for i in range(10):
                ring.leave(f"nb-new-{i}")
        assert ring.table_builds == 1
        assert ring.repair_ops > 0

    def test_naive_path_rebuilds(self):
        ring = ChordRing([f"np-{i}" for i in range(8)])
        with perf.disabled():
            ring.join("np-new")
            ring.leave("np-new")
        assert ring.table_builds == 3

    def test_repair_cost_logarithmic(self):
        """Pointer updates per churn event stay O(log n): bounded by a
        small multiple of ID_BITS regardless of ring size, and far below
        the O(n·ID_BITS) a full rebuild touches."""
        ring = ChordRing([f"rl-{i}" for i in range(512)], successor_list_size=4)
        rng = random.Random(9)
        costs = []
        with perf.forced(True):
            for i in range(30):
                costs.append(ring.join(f"rl-new-{i}"))
            for i in range(30):
                ops, _ = ring.leave(f"rl-new-{i}")
                costs.append(ops)
        full_rebuild_cost = len(ring.nodes) * (ID_BITS + ring.r)
        assert max(costs) < 8 * (ID_BITS + ring.r * ring.r)
        assert max(costs) < full_rebuild_cost / 10
        assert sum(costs) / len(costs) < 4 * (ID_BITS + ring.r * ring.r)

    def test_leave_hands_records_to_heir(self):
        ring = ChordRing([f"ho-{i}" for i in range(12)])
        key = chord_id("handoff-coin")
        with perf.forced(True):
            owner = ring.lookup(key).owner
            owner.put_local(key, "precious")
            ops, moved = ring.leave(owner.name)
        assert moved == 1
        assert "precious" in ring.lookup(key).owner.get_local(key)

    def test_join_duplicate_name_rejected(self):
        ring = ChordRing(["dup-a", "dup-b"])
        with pytest.raises(ValueError):
            ring.join("dup-a")

    def test_leave_last_node_rejected(self):
        ring = ChordRing(["lonely"])
        with pytest.raises(ValueError):
            ring.leave("lonely")

    def test_shrink_to_one_node(self):
        ring = ChordRing(["pair-a", "pair-b"])
        with perf.forced(True):
            ring.leave("pair-a")
        solo = ring.nodes[0]
        assert all(finger is solo for finger in solo.finger)
        assert all(successor is solo for successor in solo.successors)
        assert ring.lookup(chord_id("anything")).owner is solo


class TestLookupEquivalence:
    def test_owner_and_hops_identical_across_paths(self):
        """The perf path (incremental repair + memo) returns byte-identical
        lookups to the naive path after the same churn sequence."""

        def drive(enabled: bool) -> list[tuple[str, int]]:
            with perf.forced(enabled):
                ring = ChordRing([f"eq-{i}" for i in range(32)], successor_list_size=3)
                rng = random.Random(42)
                out = []
                for step in range(12):
                    ring.join(f"eq-new-{step}")
                    if step % 3 == 2:
                        ring.leave(f"eq-new-{step - 1}")
                    ring.set_up(rng.choice(ring.nodes).name, False)
                    for _ in range(20):
                        key = rng.getrandbits(64)
                        start = rng.choice(ring.nodes)
                        if not start.up:
                            continue
                        result = ring.lookup(key, start=start)
                        out.append((result.owner.name, result.hops))
                return out

        assert drive(True) == drive(False)

    def test_memo_replays_identical_result(self):
        ring = ChordRing([f"mm-{i}" for i in range(24)])
        key = chord_id("hot-key")
        with perf.forced(True):
            first = ring.lookup(key)
            again = ring.lookup(key)
            assert again is first  # served from the memo
            ring.join("mm-invalidator")
            fresh = ring.lookup(key)
            assert fresh is not first
            assert fresh.owner.name == ring.lookup(key).owner.name

    def test_memo_invalidated_by_direct_up_flip(self):
        """Chaos-style direct ``node.up`` mutation must invalidate the memo."""
        ring = ChordRing([f"lf-{i}" for i in range(16)])
        key = chord_id("flip-key")
        with perf.forced(True):
            first = ring.lookup(key)
            first.owner.up = False  # direct attribute write, no ring API
            second = ring.lookup(key)
            assert second is not first
            assert second.owner.up

    def test_live_count_tracks_flips(self):
        ring = ChordRing([f"lc-{i}" for i in range(8)])
        assert ring.live_count == 8
        ring.set_up("lc-0", False)
        ring.set_up("lc-0", False)  # idempotent
        assert ring.live_count == 7
        other = next(node for node in ring.nodes if node.up)
        other.up = False  # direct attribute write, no ring API
        assert ring.live_count == 6
        ring.set_up("lc-0", True)
        assert ring.live_count == 7


class TestScaleSmoke:
    def test_thousand_node_ring_hops_logarithmic(self):
        ring = ChordRing([f"big-{i}" for i in range(1000)], successor_list_size=4)
        rng = random.Random(11)
        hops = []
        with perf.forced(True):
            for _ in range(150):
                result = ring.lookup(rng.getrandbits(64), start=rng.choice(ring.nodes))
                hops.append(result.hops)
        mean = sum(hops) / len(hops)
        assert mean <= 0.5 * math.log2(len(ring.nodes)) + 2
