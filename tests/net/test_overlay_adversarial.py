"""Gossip overlay under an active network adversary (MITM on directories)."""

import random

import pytest

from repro.core.params import test_params as make_test_params
from repro.core.witness_ranges import build_table
from repro.crypto.schnorr import SchnorrKeyPair
from repro.net.costmodel import instant_profile
from repro.net.latency import Region, uniform_mesh
from repro.net.node import Network, Node
from repro.net.overlay import GossipOverlay, publish_directory
from repro.net.sim import Simulator
from repro.net.transport import Message

MEMBERS = [f"peer-{i}" for i in range(10)]


@pytest.fixture()
def adversarial_overlay():
    params = make_test_params()
    sim = Simulator()
    network = Network(
        sim,
        uniform_mesh([Region.LOCAL], one_way=0.01, seed=61),
        instant_profile(),
        seed=61,
    )
    for member in MEMBERS:
        network.register(Node(member, Region.LOCAL))
    broker_key = SchnorrKeyPair.generate(params.group, random.Random(62))
    table = build_table(
        params, broker_key, 1, {m: 1.0 for m in MEMBERS}, rng=random.Random(63)
    )
    keys = {m: 1 + i for i, m in enumerate(MEMBERS)}
    directory = publish_directory(params, broker_key, 1, table, keys, random.Random(64))
    overlay = GossipOverlay(
        params, network, broker_key.public, MEMBERS, interval=1.0, fanout=1, seed=65
    )
    return params, sim, network, overlay, directory


def test_tampered_directories_never_install(adversarial_overlay):
    """A MITM corrupting every directory transfer in flight stalls the
    rollout but never poisons any member's state."""
    params, sim, network, overlay, directory = adversarial_overlay

    def corrupt(source, destination, message: Message):
        if message.method == "overlay/push":
            payload = dict(message.payload)
            payload["version"] = 99  # claim a newer version than signed
            return Message(method=message.method, payload=payload)
        return message

    network.tamper_hook = corrupt
    overlay.seed(directory, seed_members=[MEMBERS[0]])
    overlay.start()
    sim.run(until=20.0)
    # Members either hold nothing or the authentic version 1 (obtained via
    # untampered pull replies) — never the forged version 99.
    for member in MEMBERS:
        assert overlay.version_of(member) in (0, 1)
    # And rejections were actually recorded somewhere.
    assert sum(state.rejected for state in overlay.states.values()) > 0


def test_rollout_completes_once_adversary_leaves(adversarial_overlay):
    params, sim, network, overlay, directory = adversarial_overlay
    network.tamper_hook = lambda s, d, m: (
        None if m.method.startswith("overlay/") else m
    )  # adversary blackholes all gossip
    overlay.seed(directory, seed_members=[MEMBERS[0]])
    overlay.start()
    sim.run(until=10.0)
    assert not overlay.converged_to(1)
    network.tamper_hook = None  # adversary gives up
    sim.run(until=60.0)
    assert overlay.converged_to(1)
