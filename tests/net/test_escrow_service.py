"""Tests for the networked escrowed-withdrawal service."""

import random

import pytest

from repro.core.escrow import TrusteeService
from repro.core.exceptions import ProtocolViolationError
from repro.core.system import EcashSystem
from repro.crypto import counters
from repro.net.costmodel import instant_profile
from repro.net.escrow_service import EscrowIssuingService
from repro.net.services import NetworkDeployment


@pytest.fixture()
def escrow_deployment(params):
    system = EcashSystem(params=params, seed=71)
    deployment = NetworkDeployment(system, cost_model=instant_profile(), seed=71)
    deployment.add_client("alice")
    trustee = TrusteeService(params=params, rng=random.Random(72))
    with counters.suppressed():
        identity = pow(params.group.g, 424243, params.group.p)
    service = EscrowIssuingService(
        network=deployment.network,
        signer=system.broker._signer,
        trustee_public=trustee.public_key,
        registry={"alice": identity},
        params=params,
        cut_and_choose=4,
        rng=random.Random(73),
    )
    return system, deployment, trustee, service, identity


def test_networked_escrowed_withdrawal(escrow_deployment):
    system, deployment, trustee, service, identity = escrow_deployment
    info = system.standard_info(100, now=0)
    result = deployment.run(service.withdrawal_process("alice", identity, info))
    assert result.coin.verify_signature(system.params, system.broker.blind_public)
    assert trustee.trace(result.coin) == identity


def test_three_rounds(escrow_deployment):
    system, deployment, trustee, service, identity = escrow_deployment
    info = system.standard_info(100, now=0)
    before = len(deployment.network.trace.methods())
    deployment.run(service.withdrawal_process("alice", identity, info))
    methods = deployment.network.trace.methods()[before:]
    assert methods == ["escrow/begin", "escrow/submit", "escrow/open"]


def test_unregistered_client_refused(escrow_deployment):
    system, deployment, trustee, service, identity = escrow_deployment
    deployment.add_client("mallory")
    info = system.standard_info(100, now=0)
    with pytest.raises(ProtocolViolationError):
        deployment.run(service.withdrawal_process("mallory", identity, info))


def test_wrong_identity_caught_in_audit(escrow_deployment):
    """A client whose candidates encrypt a different identity than its
    registration fails the broker's audit (unless all bad candidates land
    on the unopened slot, prob 1/K per run — retried out here)."""
    system, deployment, trustee, service, identity = escrow_deployment
    with counters.suppressed():
        other = pow(system.params.group.g, 999, system.params.group.p)
    info = system.standard_info(100, now=0)
    caught = 0
    for attempt in range(4):
        try:
            # The client *claims* to be alice but encrypts `other` in all
            # candidates: every audited opening mismatches.
            deployment.run(service.withdrawal_process("alice", other, info))
        except ProtocolViolationError:
            caught += 1
    assert caught == 4  # with ALL candidates bad, the audit always fires


def test_escrowed_coin_spendable(escrow_deployment):
    system, deployment, trustee, service, identity = escrow_deployment
    info = system.standard_info(100, now=0)
    result = deployment.run(service.withdrawal_process("alice", identity, info))
    from repro.crypto.representation import respond, verify_response

    d = system.params.hashes.H0(*result.coin.message_parts(), "pay", "shop", 5)
    response = respond(result.secrets, d, system.params.group.q)
    assert verify_response(
        system.params.group,
        result.coin.commitment_a,
        result.coin.commitment_b,
        d,
        response,
    )
