"""Tests for the discrete-event simulator."""

import pytest

from repro.net.sim import Future, LazyFuture, Simulator, SimTimeoutError, Sleep


def test_events_run_in_time_order():
    sim = Simulator()
    log = []
    sim.schedule(2.0, lambda: log.append("late"))
    sim.schedule(1.0, lambda: log.append("early"))
    sim.schedule(1.0, lambda: log.append("early-second"))  # FIFO within a tick
    sim.run()
    assert log == ["early", "early-second", "late"]
    assert sim.now == 2.0


def test_schedule_with_args():
    sim = Simulator()
    log = []
    sim.schedule(0.5, log.append, "value")
    sim.run()
    assert log == ["value"]


def test_negative_delay_rejected():
    with pytest.raises(ValueError):
        Simulator().schedule(-1, lambda: None)
    with pytest.raises(ValueError):
        Sleep(-0.1)


def test_process_sleep():
    sim = Simulator()

    def process():
        yield Sleep(1.5)
        yield Sleep(0.5)
        return sim.now

    assert sim.run_process(process()) == 2.0


def test_process_waits_on_future():
    sim = Simulator()
    future = Future()
    sim.schedule(3.0, future.set_result, "payload")

    def process():
        value = yield future
        return (sim.now, value)

    assert sim.run_process(process()) == (3.0, "payload")


def test_future_exception_raises_in_process():
    sim = Simulator()
    future = Future()
    sim.schedule(1.0, future.set_exception, RuntimeError("boom"))

    def process():
        try:
            yield future
        except RuntimeError as error:
            return f"caught {error}"

    assert sim.run_process(process()) == "caught boom"


def test_nested_generators():
    sim = Simulator()

    def inner(duration):
        yield Sleep(duration)
        return duration * 2

    def outer():
        first = yield inner(1.0)
        second = yield inner(2.0)
        return first + second

    assert sim.run_process(outer()) == 6.0
    assert sim.now == 3.0


def test_nested_generator_exception_propagates():
    sim = Simulator()

    def inner():
        yield Sleep(1.0)
        raise ValueError("inner failure")

    def outer():
        try:
            yield inner()
        except ValueError:
            return "recovered"

    assert sim.run_process(outer()) == "recovered"


def test_process_failure_surfaces():
    sim = Simulator()

    def process():
        yield Sleep(0.1)
        raise KeyError("missing")

    with pytest.raises(KeyError):
        sim.run_process(process())


def test_run_process_stops_at_completion():
    """Pending unrelated events must not advance the clock past completion."""
    sim = Simulator()
    sim.schedule(100.0, lambda: None)

    def process():
        yield Sleep(1.0)
        return "done"

    assert sim.run_process(process()) == "done"
    assert sim.now == 1.0


def test_deadlock_detected():
    sim = Simulator()

    def process():
        yield Future()  # nobody ever resolves this

    with pytest.raises(RuntimeError):
        sim.run_process(process())


def test_timeout_fires():
    sim = Simulator()
    slow = Future()
    guarded = sim.timeout(slow, deadline=2.0)

    def process():
        value = yield guarded
        return value

    with pytest.raises(SimTimeoutError):
        sim.run_process(process())


def test_timeout_passes_through_fast_result():
    sim = Simulator()
    fast = Future()
    sim.schedule(0.5, fast.set_result, 42)
    guarded = sim.timeout(fast, deadline=2.0)

    def process():
        return (yield guarded)

    assert sim.run_process(process()) == 42


def test_future_single_resolution():
    future = Future()
    future.set_result(1)
    with pytest.raises(RuntimeError):
        future.set_result(2)
    with pytest.raises(RuntimeError):
        future.set_exception(ValueError())
    assert future.result() == 1


def test_future_result_before_resolution():
    with pytest.raises(RuntimeError):
        Future().result()


def test_lazy_future_dispatches_on_yield():
    sim = Simulator()
    log = []
    lazy = LazyFuture()
    lazy.on_dispatch(lambda: log.append(sim.now))
    sim.schedule(0.0, lambda: None)

    def process():
        yield Sleep(5.0)
        sim.schedule(1.0, lazy.set_result, "ok")
        value = yield lazy
        return value

    assert sim.run_process(process()) == "ok"
    assert log == [5.0]  # dispatched at yield time, after the sleep


def test_lazy_dispatch_idempotent():
    count = []
    lazy = LazyFuture()
    lazy.on_dispatch(lambda: count.append(1))
    lazy.dispatch()
    lazy.dispatch()
    assert count == [1]


def test_until_bound():
    sim = Simulator()
    log = []
    sim.schedule(1.0, lambda: log.append(1))
    sim.schedule(5.0, lambda: log.append(2))
    sim.run(until=2.0)
    assert log == [1]
    assert sim.now == 2.0
    sim.run()
    assert log == [1, 2]


def test_unsupported_yield_type():
    sim = Simulator()

    def process():
        yield 42

    with pytest.raises(TypeError):
        sim.run_process(process())
