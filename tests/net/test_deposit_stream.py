"""The pipelined deposit stream: size/age watermarks over simulated time."""

import pytest

from repro.core.system import EcashSystem
from repro.net.costmodel import instant_profile
from repro.net.services import NetworkDeployment
from repro.perf.pipeline import PipelineFullError


@pytest.fixture()
def deployment(params):
    system = EcashSystem(params=params, seed=23)
    dep = NetworkDeployment(system, cost_model=instant_profile(), seed=23)
    dep.add_client("client-0")
    return system, dep


def _accepted_transcripts(system, dep, merchant_id, count):
    signed = []
    client = dep.clients["client-0"]
    while len(signed) < count:
        info = system.standard_info(25, now=dep.now())
        stored = dep.run(dep.withdrawal_process("client-0", info))
        if stored.coin.witness_id == merchant_id:
            # Spend it elsewhere; we only stream deposits for merchant_id.
            client.wallet.coins.remove(stored)
            continue
        dep.run(dep.payment_process("client-0", stored, merchant_id))
        signed = system.merchant(merchant_id).pending_deposits()
    return signed


def test_size_watermark_flushes_full_batches(deployment):
    system, dep = deployment
    merchant_id = system.merchant_ids[0]
    signed = _accepted_transcripts(system, dep, merchant_id, 3)
    dep.start_deposit_stream(merchant_id, max_batch=3, max_age=50.0)
    for item in signed:
        dep.stream_deposit(merchant_id, item)
    dep.sim.run()
    results = dep.deposit_stream_results[merchant_id]
    assert [r["outcome"] for r in results] == ["credited"] * 3
    assert system.broker.merchant_balance(merchant_id) == 75
    assert not system.merchant(merchant_id).pending_deposits()
    assert len(dep.deposit_streams[merchant_id]) == 0


def test_age_watermark_flushes_partial_batch(deployment):
    system, dep = deployment
    merchant_id = system.merchant_ids[0]
    signed = _accepted_transcripts(system, dep, merchant_id, 2)
    dep.start_deposit_stream(merchant_id, max_batch=10, max_age=2.0)
    for item in signed:
        dep.stream_deposit(merchant_id, item)
    before = dep.sim.now
    dep.sim.run()
    # Nothing reached the size watermark; the age timer (simulated clock,
    # never wall time) flushed the partial batch.
    assert dep.sim.now >= before + 2.0
    results = dep.deposit_stream_results[merchant_id]
    assert [r["outcome"] for r in results] == ["credited"] * 2
    assert system.broker.merchant_balance(merchant_id) == 50


def test_explicit_flush_drains_everything(deployment):
    system, dep = deployment
    merchant_id = system.merchant_ids[0]
    signed = _accepted_transcripts(system, dep, merchant_id, 2)
    dep.start_deposit_stream(merchant_id, max_batch=10, max_age=None)
    for item in signed:
        dep.stream_deposit(merchant_id, item)
    results = dep.run(dep.flush_deposit_stream(merchant_id))
    assert [r["outcome"] for r in results] == ["credited"] * 2
    assert not system.merchant(merchant_id).pending_deposits()


def test_stream_capacity_is_bounded(deployment):
    system, dep = deployment
    merchant_id = system.merchant_ids[0]
    signed = _accepted_transcripts(system, dep, merchant_id, 3)
    dep.start_deposit_stream(merchant_id, max_batch=2, max_age=None, capacity=2)
    dep.stream_deposit(merchant_id, signed[0])
    dep.stream_deposit(merchant_id, signed[1])  # spawns a flush, not yet run
    with pytest.raises(PipelineFullError):
        dep.stream_deposit(merchant_id, signed[2])


def test_start_is_idempotent_per_merchant(deployment):
    system, dep = deployment
    merchant_id = system.merchant_ids[0]
    first = dep.start_deposit_stream(merchant_id, max_batch=4)
    again = dep.start_deposit_stream(merchant_id, max_batch=9)
    assert first is again
    assert first.max_batch == 4
