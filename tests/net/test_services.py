"""Integration tests: the four protocols over the simulated network."""

import pytest

from repro.core.exceptions import DoubleSpendError, RenewalRefusedError, ServiceUnavailableError
from repro.core.system import EcashSystem
from repro.net.costmodel import instant_profile
from repro.net.services import NetworkDeployment
from repro.net.sim import SimTimeoutError


@pytest.fixture()
def deployment(params):
    system = EcashSystem(params=params, seed=17)
    dep = NetworkDeployment(system, cost_model=instant_profile(), seed=17)
    dep.add_client("client-0")
    return system, dep


def withdraw(system, dep, denomination=25):
    info = system.standard_info(denomination, now=dep.now())
    return dep.run(dep.withdrawal_process("client-0", info))


def test_networked_withdrawal(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    assert stored.coin.denomination == 25
    assert stored in dep.clients["client-0"].wallet.coins


def test_networked_payment_and_deposit(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    receipt = dep.run(dep.payment_process("client-0", stored, merchant_id))
    assert receipt.amount == 25
    assert receipt.elapsed > 0
    assert receipt.client_bytes_sent > 0
    results = dep.run(dep.deposit_process(merchant_id))
    assert results[0]["outcome"] == "credited"
    assert system.broker.merchant_balance(merchant_id) == 25
    assert system.ledger.conserved()


def test_networked_double_spend_detected(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    others = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    dep.run(dep.payment_process("client-0", stored, others[0]))
    dep.clients["client-0"].wallet.add(stored)
    # Wait out the first commitment's lifetime so the witness reopens.
    dep.sim.schedule(200.0, lambda: None)
    dep.sim.run()
    with pytest.raises(DoubleSpendError) as refusal:
        dep.run(dep.payment_process("client-0", stored, others[1]))
    assert refusal.value.proof.verify(system.params, stored.coin)


def test_networked_renewal(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    new_info = system.standard_info(25, now=dep.now())
    fresh = dep.run(dep.renewal_process("client-0", stored, new_info))
    assert fresh.coin.info == new_info
    with pytest.raises(RenewalRefusedError):
        dep.clients["client-0"].wallet.add(stored)
        dep.run(dep.renewal_process("client-0", stored, system.standard_info(25, now=dep.now())))


def test_trace_shows_figure1_flow(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    dep.run(dep.payment_process("client-0", stored, merchant_id))
    dep.run(dep.deposit_process(merchant_id))
    assert dep.network.trace.methods() == [
        "withdraw/begin",
        "withdraw/complete",
        "witness/commit",
        "pay",
        "witness/sign",
        "deposit",
    ]


def test_witness_down_payment_times_out(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    dep.network.node(stored.coin.witness_id).set_up(False)
    with pytest.raises(SimTimeoutError):
        dep.run(dep.payment_process("client-0", stored, merchant_id))
    # The coin is still in the wallet: the client can renew it instead.
    assert stored in dep.clients["client-0"].wallet.coins
    fresh = dep.run(
        dep.renewal_process("client-0", stored, system.standard_info(25, now=dep.now()))
    )
    assert fresh.coin.witness_id in system.merchant_ids


def test_broker_down_blocks_withdrawal_not_payment(deployment):
    """The decentralization claim: with the broker offline, spending
    previously withdrawn coins still works."""
    system, dep = deployment
    stored = withdraw(system, dep)
    dep.network.node("broker").set_up(False)
    info = system.standard_info(25, now=dep.now())
    with pytest.raises(SimTimeoutError):
        dep.run(dep.withdrawal_process("client-0", info))
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    receipt = dep.run(dep.payment_process("client-0", stored, merchant_id))
    assert receipt.amount == 25


def test_offline_client_fails_fast(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    dep.network.node("client-0").set_up(False)
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    with pytest.raises(ServiceUnavailableError):
        dep.run(dep.payment_process("client-0", stored, merchant_id))


def test_client_bytes_accounting(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    node = dep.network.node("client-0")
    before = node.meter.sent_bytes
    receipt = dep.run(dep.payment_process("client-0", stored, merchant_id))
    assert receipt.client_bytes_sent == node.meter.sent_bytes - before
    # Two client-sent messages: commitment request + payment.
    assert node.meter.messages_sent >= 4  # 2 withdrawal + 2 payment
