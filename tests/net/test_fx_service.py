"""Tests for the networked fair-exchange service."""

import pytest

from repro.core.fair_exchange import FxResolution
from repro.core.system import EcashSystem
from repro.net.costmodel import instant_profile
from repro.net.fx_service import ARBITER_NODE, FairExchangeService
from repro.net.services import NetworkDeployment

GOOD = b"FLAC: 4'33\" (complete), 44.1kHz" * 8
PRICE = 25


@pytest.fixture()
def fx_setup(params):
    system = EcashSystem(params=params, seed=81)
    deployment = NetworkDeployment(system, cost_model=instant_profile(), seed=81)
    deployment.add_client("buyer")
    service = FairExchangeService(deployment=deployment, seed=82)
    stored = deployment.run(
        deployment.withdrawal_process("buyer", system.standard_info(PRICE, now=0))
    )
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    return system, deployment, service, stored, merchant_id


def test_happy_path_delivers_good(fx_setup):
    system, deployment, service, stored, merchant_id = fx_setup
    service.list_good(merchant_id, "single-001", PRICE, GOOD, now=0)
    outcome = deployment.run(
        service.purchase_process("buyer", stored, merchant_id, "single-001")
    )
    assert outcome.good == GOOD
    assert outcome.resolution is None  # the arbiter never woke up
    assert outcome.refunded == 0
    # The merchant got a perfectly ordinary cashable payment.
    deployment.run(deployment.deposit_process(merchant_id))
    assert system.broker.merchant_balance(merchant_id) == PRICE


def test_withholding_merchant_forced_by_arbiter_or_refund(fx_setup):
    system, deployment, service, stored, merchant_id = fx_setup
    service.list_good(merchant_id, "single-002", PRICE, GOOD, now=0, withhold_key=True)
    outcome = deployment.run(
        service.purchase_process("buyer", stored, merchant_id, "single-002")
    )
    # The merchant stonewalls even the arbiter, so the client is refunded
    # out of the merchant's funds at the broker.
    assert outcome.resolution is FxResolution.CLIENT_REFUNDED
    assert outcome.refunded == PRICE
    assert system.ledger.balance("refund:buyer") == PRICE
    assert system.ledger.conserved()


def test_dispute_travels_through_arbiter_node(fx_setup):
    system, deployment, service, stored, merchant_id = fx_setup
    service.list_good(merchant_id, "single-003", PRICE, GOOD, now=0, withhold_key=True)
    deployment.run(service.purchase_process("buyer", stored, merchant_id, "single-003"))
    dispute_requests = [
        entry
        for entry in deployment.network.trace.entries
        if entry.destination == ARBITER_NODE and entry.kind == "request"
    ]
    assert len(dispute_requests) == 1
    assert service.arbiter.disputes_resolved == 1


def test_unknown_good_rejected(fx_setup):
    from repro.core.exceptions import InvalidPaymentError

    system, deployment, service, stored, merchant_id = fx_setup
    with pytest.raises(InvalidPaymentError):
        deployment.run(
            service.purchase_process("buyer", stored, merchant_id, "no-such-good")
        )
    # The coin was not burned by the failed purchase.
    assert stored in deployment.clients["buyer"].wallet.coins
