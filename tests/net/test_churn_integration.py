"""Churned-network integration: outages, fallbacks, recovery."""

import pytest

from repro.core.exceptions import ServiceUnavailableError
from repro.core.system import EcashSystem
from repro.net.churn import ChurnModel
from repro.net.costmodel import instant_profile
from repro.net.services import NetworkDeployment

MERCHANTS = tuple(f"shop-{i}" for i in range(6))


@pytest.fixture()
def deployment(params):
    system = EcashSystem(merchant_ids=MERCHANTS, params=params, seed=23)
    dep = NetworkDeployment(system, cost_model=instant_profile(), seed=23)
    dep.add_client("c")
    return system, dep


def test_apply_churn_schedules_transitions(deployment):
    import random

    system, dep = deployment
    model = ChurnModel(mean_uptime=50, mean_downtime=50, rng=random.Random(4))
    timelines = dep.apply_churn(model, horizon=500.0)
    assert set(timelines) == set(MERCHANTS)
    # Drive the clock forward and check node states follow the timelines.
    for probe in (100.0, 250.0, 400.0):
        dep.sim.run(until=probe)
        for name, timeline in timelines.items():
            assert dep.network.node(name).up == timeline.is_up(probe)


def test_robust_payment_renews_around_dead_witness(deployment):
    system, dep = deployment
    stored = dep.run(dep.withdrawal_process("c", system.standard_info(25, now=0)))
    first_witness = stored.coin.witness_id
    dep.network.node(first_witness).set_up(False)  # permanent outage
    merchant_id = next(m for m in MERCHANTS if m != first_witness)
    receipt = dep.run(
        dep.robust_payment_process("c", stored, merchant_id, max_attempts=4)
    )
    assert receipt.amount == 25
    assert receipt.merchant_id == merchant_id
    # The payment ultimately used a coin with a live witness.
    assert system.ledger.conserved()


def test_robust_payment_gives_up_when_everything_is_down(deployment):
    system, dep = deployment
    stored = dep.run(dep.withdrawal_process("c", system.standard_info(25, now=0)))
    merchant_id = next(m for m in MERCHANTS if m != stored.coin.witness_id)
    for name in MERCHANTS:
        dep.network.node(name).set_up(False)
    dep.network.node("broker").set_up(False)
    with pytest.raises((ServiceUnavailableError, Exception)):
        dep.run(dep.robust_payment_process("c", stored, merchant_id, max_attempts=2))


def test_robust_payment_does_not_retry_protocol_refusals(deployment):
    """Retrying cannot fix a double-spend refusal — and must not mask it."""
    from repro.core.exceptions import DoubleSpendError

    system, dep = deployment
    stored = dep.run(dep.withdrawal_process("c", system.standard_info(25, now=0)))
    shops = [m for m in MERCHANTS if m != stored.coin.witness_id]
    dep.run(dep.payment_process("c", stored, shops[0]))
    dep.clients["c"].wallet.add(stored)
    dep.sim.schedule(200.0, lambda: None)
    dep.sim.run()
    with pytest.raises(DoubleSpendError):
        dep.run(dep.robust_payment_process("c", stored, shops[1], max_attempts=3))


def test_economy_survives_heavy_churn(deployment):
    """Many payments under 70%-availability merchant churn: every attempt
    either completes exactly once or fails cleanly; money stays conserved."""
    import random

    system, dep = deployment
    model = ChurnModel(mean_uptime=70, mean_downtime=30, rng=random.Random(8))
    dep.apply_churn(model, horizon=10_000.0)
    completed = 0
    failures = 0
    for index in range(10):
        try:
            stored = dep.run(
                dep.withdrawal_process("c", system.standard_info(5, now=dep.now()))
            )
        except Exception:
            failures += 1
            continue
        merchant_id = [m for m in MERCHANTS if m != stored.coin.witness_id][
            index % (len(MERCHANTS) - 1)
        ]
        try:
            dep.run(dep.robust_payment_process("c", stored, merchant_id, max_attempts=3))
            completed += 1
        except Exception:
            failures += 1
    assert completed + failures == 10
    assert completed >= 5  # 70% availability with renewal fallback does well
    # Settle everything that can settle.
    for merchant_id in MERCHANTS:
        dep.network.node(merchant_id).set_up(True)
        try:
            dep.run(dep.deposit_process(merchant_id))
        except Exception:
            pass
    assert system.ledger.conserved()
