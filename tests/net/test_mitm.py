"""Man-in-the-middle tests: a network adversary gains nothing.

The paper's security analysis assumes authenticated-but-public channels:
transcripts are "publicly verifiable and should not reveal secrets", and
"seeing a payment transcript does not allow one to generate another
payment transcript". These tests inject an active adversary into the RPC
fabric (tampering, dropping and redirecting in-flight messages) and
verify every manipulation is caught by the protocol's own signatures and
bindings — no TLS needed, exactly as designed.
"""

import pytest

from repro.core.exceptions import EcashError
from repro.core.system import EcashSystem
from repro.net.costmodel import instant_profile
from repro.net.services import NetworkDeployment
from repro.net.sim import SimTimeoutError
from repro.net.transport import Message


@pytest.fixture()
def deployment(params):
    system = EcashSystem(params=params, seed=321)
    dep = NetworkDeployment(system, cost_model=instant_profile(), seed=321)
    dep.add_client("c")
    return system, dep


def withdraw(system, dep):
    return dep.run(dep.withdrawal_process("c", system.standard_info(25, now=0)))


def merchant_for(system, stored):
    return next(m for m in system.merchant_ids if m != stored.coin.witness_id)


def _tamper_field(payload: dict, dotted: str) -> dict:
    """Return a deep-copied payload with one nested int field bumped."""
    import copy

    out = copy.deepcopy(payload)
    node = out
    parts = dotted.split(".")
    for part in parts[:-1]:
        node = node[part]
    node[parts[-1]] = node[parts[-1]] + 1
    return out


def test_tampered_payment_response_rejected(deployment):
    """Flipping r1 in the in-flight payment breaks the NIZK at the merchant."""
    system, dep = deployment
    stored = withdraw(system, dep)
    target = merchant_for(system, stored)

    def tamper(source, destination, message: Message):
        if message.method == "pay":
            return Message(
                method="pay", payload=_tamper_field(message.payload, "transcript.r1")
            )
        return message

    dep.network.tamper_hook = tamper
    with pytest.raises(EcashError):
        dep.run(dep.payment_process("c", stored, target))
    # Nothing was accepted anywhere; the coin is still spendable.
    dep.network.tamper_hook = None
    dep.sim.schedule(200.0, lambda: None)
    dep.sim.run()
    receipt = dep.run(dep.payment_process("c", stored, target))
    assert receipt.amount == 25


def test_tampered_coin_denomination_rejected(deployment):
    """Inflating the coin's denomination in flight breaks the broker's
    signature over info."""
    system, dep = deployment
    stored = withdraw(system, dep)
    target = merchant_for(system, stored)

    def tamper(source, destination, message: Message):
        if message.method == "pay":
            return Message(
                method="pay",
                payload=_tamper_field(
                    message.payload, "transcript.coin.bare.info.denomination"
                ),
            )
        return message

    dep.network.tamper_hook = tamper
    with pytest.raises(EcashError):
        dep.run(dep.payment_process("c", stored, target))


def test_tampered_witness_commitment_rejected(deployment):
    """Extending a commitment's lifetime in flight breaks its signature.

    The client catches it (CommitmentError) — the commitment reply is the
    one message a MITM could usefully stall-extend."""
    system, dep = deployment
    stored = withdraw(system, dep)
    target = merchant_for(system, stored)

    # Tamper the commitment REQUEST's nonce: the witness then signs a
    # commitment for a nonce the client never chose, and the client's
    # commitment check fails.
    def tamper_request(source, destination, message: Message):
        if message.method == "witness/commit":
            return Message(
                method="witness/commit",
                payload=_tamper_field(message.payload, "nonce"),
            )
        return message

    dep.network.tamper_hook = tamper_request
    with pytest.raises(EcashError):
        dep.run(dep.payment_process("c", stored, target))


def test_redirected_deposit_rejected(deployment):
    """An adversary re-labels a deposit as coming from itself; the broker
    rejects it because the transcript names the real merchant."""
    system, dep = deployment
    stored = withdraw(system, dep)
    target = merchant_for(system, stored)
    other = next(
        m for m in system.merchant_ids if m not in (target, stored.coin.witness_id)
    )
    dep.run(dep.payment_process("c", stored, target))

    def tamper(source, destination, message: Message):
        if message.method == "deposit":
            payload = dict(message.payload)
            payload["merchant_id"] = other  # claim the money for `other`
            return Message(method="deposit", payload=payload)
        return message

    dep.network.tamper_hook = tamper
    with pytest.raises(EcashError):
        dep.run(dep.deposit_process(target))
    assert system.broker.merchant_balance(other) == 0
    assert system.broker.merchant_balance(target) == 0  # not credited either way
    # With the adversary gone, the genuine deposit clears.
    dep.network.tamper_hook = None
    system.merchant(target).deposited.clear()
    dep.run(dep.deposit_process(target))
    assert system.broker.merchant_balance(target) == 25


def test_dropped_messages_time_out_cleanly(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    target = merchant_for(system, stored)
    dep.network.tamper_hook = lambda source, destination, message: (
        None if message.method == "witness/sign" else message
    )
    with pytest.raises(SimTimeoutError):
        dep.run(dep.payment_process("c", stored, target))
    assert system.ledger.conserved()


def test_eavesdropper_cannot_replay_transcript(deployment):
    """A passive adversary that captured a full payment transcript cannot
    cash or respend it: the transcript binds merchant identity, and the
    NIZK cannot be re-bound without the coin secrets."""
    system, dep = deployment
    stored = withdraw(system, dep)
    target = merchant_for(system, stored)
    captured = {}

    def capture(source, destination, message: Message):
        if message.method == "pay":
            captured.update(message.payload)
        return message

    dep.network.tamper_hook = capture
    dep.run(dep.payment_process("c", stored, target))
    dep.network.tamper_hook = None
    assert captured

    from repro.core.transcripts import PaymentTranscript
    from repro.crypto.serialize import decode, encode

    transcript = PaymentTranscript.from_wire(
        {
            key.removeprefix("transcript."): value
            for key, value in decode(encode(captured)).items()
            if key.startswith("transcript.")
        }
    )
    # Replay at another merchant: the challenge changes, the response no
    # longer verifies.
    evil = next(
        m for m in system.merchant_ids if m not in (target, stored.coin.witness_id)
    )
    from dataclasses import replace

    from repro.core.exceptions import InvalidPaymentError
    from repro.core.transcripts import verify_payment_response

    rebound = replace(transcript, merchant_id=evil)
    with pytest.raises(InvalidPaymentError):
        verify_payment_response(system.params, rebound)
