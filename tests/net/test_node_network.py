"""Tests for the RPC fabric: metering, errors, downtime, compute charging."""

import random

import pytest

from repro.core.exceptions import InvalidPaymentError, ServiceUnavailableError
from repro.crypto import counters
from repro.net.costmodel import ComputeCostModel, instant_profile
from repro.net.latency import LatencyModel, Region
from repro.net.node import Network, Node, metered
from repro.net.sim import Simulator, SimTimeoutError, Sleep
from repro.net.transport import HTTP_FRAMING_BYTES, Message


def flat_latency(one_way=0.01):
    means = {frozenset({a, b}): one_way for a in Region for b in Region}
    means.update({frozenset({a}): one_way for a in Region})
    return LatencyModel(
        one_way_means=means,
        jitter=0.0,
        bandwidth_bytes_per_s=float("inf"),  # isolate propagation delay
        rng=random.Random(0),
    )


@pytest.fixture()
def network():
    sim = Simulator()
    net = Network(sim, flat_latency(), instant_profile(), seed=0)
    alpha = net.register(Node("alpha", Region.WISCONSIN))
    beta = net.register(Node("beta", Region.CALIFORNIA))
    return sim, net, alpha, beta


def test_rpc_roundtrip(network):
    sim, net, alpha, beta = network
    beta.on("echo", lambda payload: {"echo": payload["value"]})

    def process():
        reply = yield net.rpc("alpha", "beta", "echo", {"value": "hi"})
        return reply

    assert sim.run_process(process()) == {"echo": "hi"}
    assert sim.now == pytest.approx(0.02, rel=0.01)  # two one-way hops


def test_protocol_error_travels_back(network):
    sim, net, alpha, beta = network

    def handler(payload):
        raise InvalidPaymentError("nope")

    beta.on("fail", handler)

    def process():
        yield net.rpc("alpha", "beta", "fail", {})

    with pytest.raises(InvalidPaymentError):
        sim.run_process(process())
    # The error consumed network time in both directions.
    assert sim.now >= 0.02


def test_generator_handler_with_nested_rpc(network):
    sim, net, alpha, beta = network
    gamma = net.register(Node("gamma", Region.MASSACHUSETTS))
    gamma.on("inner", lambda payload: {"from": "gamma"})

    def beta_handler(payload):
        reply = yield net.rpc("beta", "gamma", "inner", {})
        return {"via": "beta", "inner": reply["from"]}

    beta.on("outer", beta_handler)

    def process():
        return (yield net.rpc("alpha", "beta", "outer", {}))

    assert sim.run_process(process()) == {"via": "beta", "inner": "gamma"}
    assert sim.now == pytest.approx(0.04, rel=0.01)  # four one-way hops


def test_down_node_times_out(network):
    sim, net, alpha, beta = network
    beta.on("echo", lambda payload: payload)
    beta.set_up(False)

    def process():
        yield net.rpc("alpha", "beta", "echo", {}, timeout=1.0)

    with pytest.raises(SimTimeoutError):
        sim.run_process(process())
    assert sim.now == pytest.approx(1.0)


def test_down_source_fails_fast(network):
    sim, net, alpha, beta = network
    alpha.set_up(False)
    beta.on("echo", lambda payload: payload)

    def process():
        yield net.rpc("alpha", "beta", "echo", {})

    with pytest.raises(ServiceUnavailableError):
        sim.run_process(process())


def test_unknown_method_raises(network):
    sim, net, alpha, beta = network

    def process():
        yield net.rpc("alpha", "beta", "nonexistent", {})

    with pytest.raises(KeyError):
        sim.run_process(process())


def test_traffic_metering(network):
    sim, net, alpha, beta = network
    beta.on("echo", lambda payload: {"ok": 1})

    def process():
        yield net.rpc("alpha", "beta", "echo", {"data": "x" * 100})

    sim.run_process(process())
    request_size = Message(method="echo", payload={"data": "x" * 100}).size_bytes
    assert alpha.meter.sent_bytes == request_size
    assert beta.meter.received_bytes == request_size
    assert alpha.meter.received_bytes > 0  # the response
    assert alpha.meter.messages_sent == 1
    assert request_size > HTTP_FRAMING_BYTES


def test_trace_records_requests_and_responses(network):
    sim, net, alpha, beta = network
    beta.on("echo", lambda payload: {})

    def process():
        yield net.rpc("alpha", "beta", "echo", {})

    sim.run_process(process())
    kinds = [entry.kind for entry in net.trace.entries]
    assert kinds == ["request", "response"]
    assert net.trace.methods() == ["echo"]
    assert net.trace.between("alpha", "beta")[0].method == "echo"


def test_compute_charged_before_send():
    """A handler's counted crypto delays its outgoing messages."""
    sim = Simulator()
    cost = ComputeCostModel(exp_ms=1000.0, hash_ms=0, sig_ms=0, ver_ms=0, noise=0)
    net = Network(sim, flat_latency(0.0), cost, seed=0)
    alpha = net.register(Node("alpha", Region.LOCAL))
    beta = net.register(Node("beta", Region.LOCAL))

    def handler(payload):
        counters.record_exp(2)  # 2 seconds of simulated compute
        return {"done": 1}

    beta.on("work", handler)

    def process():
        reply = yield net.rpc("alpha", "beta", "work", {})
        return sim.now

    assert sim.run_process(metered(process(), cost, random.Random(0))) == pytest.approx(2.0)


def test_metered_charges_client_side_ops():
    sim = Simulator()
    cost = ComputeCostModel(exp_ms=500.0, hash_ms=0, sig_ms=0, ver_ms=0, noise=0)

    def process():
        counters.record_exp()  # 0.5 s before first yield
        yield Sleep(0.0)
        counters.record_exp(3)  # 1.5 s before finishing
        return sim.now

    result = sim.run_process(metered(process(), cost, random.Random(0)))
    assert result == pytest.approx(0.5)  # time observed before the final charge
    assert sim.now == pytest.approx(2.0)


def test_duplicate_registration_rejected(network):
    sim, net, alpha, beta = network
    with pytest.raises(ValueError):
        net.register(Node("alpha", Region.LOCAL))
    with pytest.raises(ValueError):
        alpha.on("x", lambda p: p)
        alpha.on("x", lambda p: p)
