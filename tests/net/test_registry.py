"""The shared method registry: tables, flows, and sim equivalence."""

import pytest

from repro.core.exceptions import DoubleSpendError
from repro.core.system import EcashSystem
from repro.crypto.serialize import KEY_ABBREVIATIONS, decode, encode, flatten
from repro.net import registry
from repro.net.costmodel import instant_profile
from repro.net.services import NetworkDeployment


@pytest.fixture()
def deployment(params):
    system = EcashSystem(params=params, seed=17)
    dep = NetworkDeployment(system, cost_model=instant_profile(), seed=17)
    dep.add_client("client-0")
    return system, dep


class TestDispatchTables:
    def test_broker_table_matches_method_namespace(self, system):
        table = registry.broker_dispatch(system.broker, lambda: 0)
        assert tuple(table) == registry.BROKER_METHODS

    def test_witness_table_matches_method_namespace(self, system):
        table = registry.witness_dispatch(system.witness("alice-books"), lambda: 0)
        assert tuple(table) == registry.WITNESS_METHODS

    def test_merchant_table_matches_method_namespace(self, system):
        table = registry.merchant_dispatch(
            system.merchant("alice-books"), "alice-books", lambda: 0, rpc=None
        )
        assert tuple(table) == registry.MERCHANT_METHODS


class TestFlowsOverSim:
    """The transport-neutral flows, driven by the sim's run_flow."""

    def withdraw(self, system, dep):
        info = system.standard_info(25, now=dep.now())
        client = dep.clients["client-0"]
        return dep.run(
            dep.run_flow(
                "client-0",
                registry.withdrawal_flow(client, "broker", system.broker.tables, info),
            )
        )

    def test_withdrawal_flow(self, deployment):
        system, dep = deployment
        stored = self.withdraw(system, dep)
        assert stored.coin.denomination == 25
        assert stored in dep.clients["client-0"].wallet.coins

    def test_payment_and_deposit_flows(self, deployment):
        system, dep = deployment
        stored = self.withdraw(system, dep)
        client = dep.clients["client-0"]
        merchant_id = next(
            m for m in system.merchant_ids if m != stored.coin.witness_id
        )
        witness_public = system.merchant(merchant_id).witness_keys[
            stored.coin.witness_id
        ]
        amount = dep.run(
            dep.run_flow(
                "client-0",
                registry.payment_flow(
                    client, stored, merchant_id, witness_public, dep.now
                ),
            )
        )
        assert amount == 25
        results = dep.run(
            dep.run_flow(
                merchant_id,
                registry.deposit_flow(
                    system.merchant(merchant_id), merchant_id, "broker"
                ),
            )
        )
        assert results == [{"outcome": "credited", "amount": 25}]
        assert system.broker.merchant_balance(merchant_id) == 25

    def test_direct_spend_flow_refused_on_double_spend(self, deployment):
        system, dep = deployment
        stored = self.withdraw(system, dep)
        client = dep.clients["client-0"]
        others = [m for m in system.merchant_ids if m != stored.coin.witness_id]
        witness_public = system.merchant(others[0]).witness_keys[
            stored.coin.witness_id
        ]
        dep.run(dep.payment_process("client-0", stored, others[0]))
        dep.sim.schedule(200.0, lambda: None)
        dep.sim.run()
        client.wallet.add(stored)
        with pytest.raises(DoubleSpendError) as refusal:
            dep.run(
                dep.run_flow(
                    "client-0",
                    registry.direct_spend_flow(
                        client, stored, others[1], witness_public, dep.now
                    ),
                )
            )
        assert refusal.value.proof.verify(system.params, stored.coin)


class TestWireKeyHygiene:
    """Payload keys must survive an encode/decode round-trip.

    The sim hands payload dicts to handlers directly, but the daemons
    URL-encode them — a key that is an abbreviation *short form* without
    being a long form (``"e"``, ``"s"``, ``"b"``, ...) would be expanded
    to something else on the far side.
    """

    def roundtrips(self, payload):
        # Values are coerced (ints travel base64); the keys must survive.
        return sorted(decode(encode(payload))) == sorted(flatten(payload))

    def test_short_form_keys_do_not_roundtrip(self):
        # The hazard this class guards against, demonstrated.
        assert KEY_ABBREVIATIONS["sig_e"] == "e"
        assert not self.roundtrips({"e": 1})

    def test_registry_adhoc_keys_roundtrip(self):
        samples = [
            {"ticket": {"id": 1, "a": 2, "bare": 3}},
            {"ticket": 1, "sig_e": 2},
            {"rho": 1, "commitment": 2, "sig_s": 3},
            {"status": "ok", "amount": 25},
            {"outcome": "credited", "amount": 25},
            {"merchant_id": "alice-books"},
            {"proof_ts": 1, "proof_salt": 2, "r1": 3, "r2": 4},
            {"count": 2, "r0": {"outcome": "credited", "amount": 25}},
        ]
        for payload in samples:
            assert self.roundtrips(payload), payload
