"""Tests for backoff and circuit-breaker recovery primitives."""

import random

import pytest

from repro.faults.recovery import BackoffPolicy, CircuitBreaker


class TestBackoffPolicy:
    def test_exponential_growth_with_cap(self):
        policy = BackoffPolicy(base=1.0, factor=2.0, max_delay=5.0, jitter=0.0)
        assert [policy.delay(n) for n in range(4)] == [1.0, 2.0, 4.0, 5.0]

    def test_no_rng_means_no_jitter(self):
        policy = BackoffPolicy(base=1.0, jitter=0.5)
        assert policy.delay(0) == 1.0

    def test_jitter_is_bounded_and_deterministic(self):
        policy = BackoffPolicy(base=1.0, factor=1.0, jitter=0.2)
        delays = [policy.delay(0, random.Random(42)) for _ in range(5)]
        assert delays == [policy.delay(0, random.Random(42)) for _ in range(5)]
        for delay in delays:
            assert 0.8 <= delay <= 1.2

    def test_validation(self):
        with pytest.raises(ValueError):
            BackoffPolicy(base=-1.0)
        with pytest.raises(ValueError):
            BackoffPolicy(factor=0.5)
        with pytest.raises(ValueError):
            BackoffPolicy(jitter=1.0)


class TestCircuitBreaker:
    def test_opens_after_threshold(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=10.0)
        for _ in range(2):
            breaker.record_failure(0.0)
        assert not breaker.open and breaker.allows(0.0)
        breaker.record_failure(0.0)
        assert breaker.open and not breaker.allows(1.0)

    def test_half_open_probe_then_close(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allows(9.9)
        assert breaker.allows(10.0)  # the half-open probe
        breaker.record_success()
        assert not breaker.open and breaker.allows(10.1)

    def test_failed_probe_reopens_for_fresh_timeout(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=10.0)
        breaker.record_failure(0.0)
        assert breaker.allows(10.0)
        breaker.record_failure(10.0)  # the probe failed
        assert not breaker.allows(19.9)
        assert breaker.allows(20.0)

    def test_success_resets_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert not breaker.open

    def test_validation(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(reset_timeout=-1.0)
