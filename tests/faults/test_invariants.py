"""Tests for the safety-invariant checker (and broker crash recovery)."""

import pytest

from repro.core.exceptions import DoubleDepositError, DoubleSpendError
from repro.core.persistence import load_broker, save_broker
from repro.core.protocols import run_deposit, run_payment, run_withdrawal
from repro.faults.invariants import InvariantChecker


def other_shops(system, stored):
    return [m for m in system.merchant_ids if m != stored.coin.witness_id]


def test_honest_lifecycle_passes_all_invariants(system):
    checker = InvariantChecker(system)
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    shop = other_shops(system, stored)[0]
    run_payment(client, stored, system.merchant(shop), system.witness_of(stored), now=10)
    run_deposit(system.merchant(shop), system.broker, now=100)
    results = checker.check_all()
    assert [result.name for result in results] == [
        "ledger-conserved",
        "single-credit-per-coin",
        "witness-faults-slashed",
    ]
    assert all(result.ok for result in results)


def test_double_spend_proof_invariant(system):
    checker = InvariantChecker(system)
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    shops = other_shops(system, stored)
    witness = system.witness_of(stored)
    run_payment(client, stored, system.merchant(shops[0]), witness, now=10)
    client.wallet.add(stored)
    with pytest.raises(DoubleSpendError) as refusal:
        run_payment(client, stored, system.merchant(shops[1]), witness, now=500)
    good = checker.double_spend_proofs_verify([(refusal.value.proof, stored.coin)])
    assert good.ok
    # The same proof against a different coin must not verify.
    decoy = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    bad = checker.double_spend_proofs_verify([(refusal.value.proof, decoy.coin)])
    assert not bad.ok


def test_equivocating_witness_is_slashed_and_checker_verifies_it(system):
    checker = InvariantChecker(system)
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    system.witness_of(stored).faulty = True
    shops = other_shops(system, stored)
    run_payment(client, stored, system.merchant(shops[0]), system.witness_of(stored), now=10)
    client.wallet.add(stored)
    run_payment(client, stored, system.merchant(shops[1]), system.witness_of(stored), now=500)
    run_deposit(system.merchant(shops[0]), system.broker, now=600)
    run_deposit(system.merchant(shops[1]), system.broker, now=601)
    assert len(system.broker.witness_fault_log) == 1
    results = checker.check_all()
    assert all(result.ok for result in results), [r.render() for r in results]
    slash = checker.witness_faults_slashed()
    assert "faults=1" in slash.detail


def test_tampered_fault_evidence_is_rejected(system):
    checker = InvariantChecker(system)
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    shop = other_shops(system, stored)[0]
    signed = run_payment(
        client, stored, system.merchant(shop), system.witness_of(stored), now=10
    )
    # Fabricate a fault-log entry whose transcripts are NOT from two
    # distinct merchants: the checker must flag it.
    system.broker.witness_fault_log.append((stored.coin.witness_id, signed, signed))
    result = checker.witness_faults_slashed()
    assert not result.ok
    assert "distinct=False" in result.detail


def test_invariant_result_render_is_fixed_format(system):
    checker = InvariantChecker(system)
    line = checker.ledger_conserved().render()
    assert line.startswith("PASS ledger-conserved: minted=")


def test_broker_crash_restart_still_refuses_double_deposit(system, tmp_path):
    """Satellite: a coin deposited before a broker crash is still rejected
    as a double-deposit after the broker restarts from its saved state."""
    client = system.new_client()
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    shop = other_shops(system, stored)[0]
    run_payment(client, stored, system.merchant(shop), system.witness_of(stored), now=10)
    signed = system.merchant(shop).pending_deposits()[0]
    run_deposit(system.merchant(shop), system.broker, now=100)

    path = tmp_path / "broker.json"
    save_broker(system.broker, path)
    restarted = load_broker(path, system.params)

    assert restarted.ledger.conserved()
    with pytest.raises(DoubleDepositError):
        restarted.deposit(shop, signed, 200)
    # And the restarted broker still serves honest traffic.
    fresh = run_withdrawal(client, restarted, system.standard_info(25, now=200))
    assert fresh.coin.denomination == 25
