"""Tests for fault plans: rule matching, validation, fluent builders."""

import pytest

from repro.faults.plan import CrashWindow, FaultKind, FaultPlan, FaultRule


class TestFaultRule:
    def test_wildcard_rule_matches_everything(self):
        rule = FaultRule(kind=FaultKind.DROP)
        assert rule.matches("a", "b", "any/method", 0.0)
        assert rule.matches("x", "y", "other", 1e9)

    def test_exact_scoping(self):
        rule = FaultRule(
            kind=FaultKind.DELAY, source="a", destination="b", method="pay"
        )
        assert rule.matches("a", "b", "pay", 0.0)
        assert not rule.matches("c", "b", "pay", 0.0)
        assert not rule.matches("a", "c", "pay", 0.0)
        assert not rule.matches("a", "b", "deposit", 0.0)

    def test_method_prefix_match(self):
        rule = FaultRule(kind=FaultKind.DROP, method="witness/*")
        assert rule.matches("a", "b", "witness/commit", 0.0)
        assert rule.matches("a", "b", "witness/sign", 0.0)
        assert not rule.matches("a", "b", "pay", 0.0)

    def test_time_window(self):
        rule = FaultRule(kind=FaultKind.DROP, start=10.0, stop=20.0)
        assert not rule.matches("a", "b", "m", 9.9)
        assert rule.matches("a", "b", "m", 10.0)
        assert rule.matches("a", "b", "m", 19.9)
        assert not rule.matches("a", "b", "m", 20.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            FaultRule(kind=FaultKind.DROP, probability=1.5)
        with pytest.raises(ValueError):
            FaultRule(kind=FaultKind.DELAY, delay=-1.0)
        with pytest.raises(ValueError):
            FaultRule(kind=FaultKind.DELAY, jitter=-0.1)
        with pytest.raises(ValueError):
            FaultRule(kind=FaultKind.DROP, max_injections=0)


class TestCrashWindow:
    def test_validation(self):
        with pytest.raises(ValueError):
            CrashWindow(node="n", at=-1.0, duration=1.0)
        with pytest.raises(ValueError):
            CrashWindow(node="n", at=0.0, duration=0.0)
        assert CrashWindow(node="n", at=0.0, duration=None).duration is None


class TestFaultPlan:
    def test_fluent_builders_accumulate(self):
        plan = (
            FaultPlan(seed=7)
            .drop(method="witness/*", probability=0.5)
            .delay(delay=2.0, jitter=0.5)
            .duplicate(method="deposit")
            .reorder(method="deposit")
            .corrupt(method="pay", max_injections=1)
            .crash("bob-news", at=10.0, duration=30.0)
        )
        assert [rule.kind for rule in plan.rules] == [
            FaultKind.DROP,
            FaultKind.DELAY,
            FaultKind.DUPLICATE,
            FaultKind.REORDER,
            FaultKind.CORRUPT,
        ]
        assert plan.crashes == [CrashWindow(node="bob-news", at=10.0, duration=30.0)]
        assert plan.seed == 7
