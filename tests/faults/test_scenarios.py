"""Tests for the chaos scenario suite: coverage and byte-determinism."""

import pytest

from repro.faults.scenarios import (
    SCENARIOS,
    render_report,
    run_scenario,
    run_suite,
)


def test_registry_covers_the_issue_scenarios():
    for required in (
        "drop-witness-requests",
        "delay-storm",
        "witness-crash-restart",
        "byzantine-witness-slash",
        "double-spend-extraction",
        "double-deposit-merchant",
        "stale-table-broker",
        "broker-crash-restart",
    ):
        assert required in SCENARIOS


@pytest.mark.parametrize("name", sorted(SCENARIOS))
def test_every_scenario_holds_invariants(name):
    result = run_scenario(name, seed=1)
    assert result.ok, result.render()
    assert result.invariants  # something was actually checked


def test_same_seed_renders_byte_identical():
    first = run_scenario("drop-witness-requests", seed=4).render()
    second = run_scenario("drop-witness-requests", seed=4).render()
    assert first == second


def test_suite_report_is_deterministic():
    names = ["byzantine-witness-slash", "double-deposit-merchant"]
    first = render_report(run_suite(names, seeds=range(2)))
    second = render_report(run_suite(names, seeds=range(2)))
    assert first == second
    assert "ALL INVARIANTS HELD" in first
    assert "runs=4 violations=0" in first


def test_byzantine_witness_is_caught_and_slashed():
    result = run_scenario("byzantine-witness-slash", seed=0)
    assert result.ok, result.render()
    assert "witness-faults-logged: 1" in result.outcomes
    assert any("credited-from-witness-deposit" in line for line in result.outcomes)
    slash = next(r for r in result.invariants if r.name == "witness-faults-slashed")
    assert "faults=1" in slash.detail


def test_double_spend_scenario_produces_verifiable_extraction():
    result = run_scenario("double-spend-extraction", seed=2)
    assert result.ok, result.render()
    assert "extraction-proof: present" in result.outcomes
    proof_check = next(
        r for r in result.invariants if r.name == "double-spend-proofs-verify"
    )
    assert proof_check.ok and "proofs=1" in proof_check.detail


def test_unknown_scenario_raises():
    with pytest.raises(KeyError):
        run_scenario("no-such-scenario", seed=0)


def test_broker_crash_campaign_recovers_identically_on_both_backends():
    """Same seed, either backend: deterministic zero-loss recovery, and
    the recovered stores materialize the identical logical state."""
    results = {
        backend: run_scenario(f"broker-crash-campaign-{backend}", seed=3)
        for backend in ("memory", "sqlite")
    }
    for backend, result in results.items():
        assert result.ok, result.render()
        assert "state preserved across crash: True" in result.outcomes
        assert "ledger conserved: True" in result.outcomes
        assert any(
            line == "re-deposit after restart: refused-DoubleDepositError"
            for line in result.outcomes
        ), result.outcomes
        assert not any("ACCEPTED" in line for line in result.outcomes)
        # Deterministic across runs: a second run renders byte-identically.
        again = run_scenario(f"broker-crash-campaign-{backend}", seed=3)
        assert again.render() == result.render()

    digest = lambda r: next(  # noqa: E731
        line for line in r.outcomes if line.startswith("store digest:")
    )
    assert digest(results["memory"]) == digest(results["sqlite"])
