"""Chaos scenarios under the parallel engine: same verdicts, green runs.

The fault scenarios must not care whether bulk verification fans out to
worker processes: chunk partitioning and batch seeds are independent of
worker count, deposits settle sequentially in input order, and the
deposit stream flushes on the simulator clock (never a wall-time timer a
process pool could race). These tests force the shared pool on — even on
a single-core host — and require byte-identical scenario reports.
"""

from __future__ import annotations

import pytest

from repro.faults.scenarios import run_scenario
from repro.perf import parallel

#: Scenarios touching the deposit/verification bulk paths the pool serves.
SCENARIOS = [
    "reorder-deposits",
    "duplicate-deposit-replay",
    "double-deposit-merchant",
    "byzantine-witness-slash",
]


@pytest.fixture()
def forced_shared_pool(monkeypatch):
    """Make ``perf.shared_pool()`` active regardless of the host's cores."""
    monkeypatch.setenv("REPRO_WORKERS", "2")
    parallel.set_parallel_enabled(True)
    parallel.shutdown_shared_pool()
    yield
    parallel.shutdown_shared_pool()


@pytest.mark.parametrize("name", SCENARIOS)
def test_scenario_is_green_and_identical_with_parallel_engine(
    name, forced_shared_pool
):
    with parallel.parallel_disabled():
        serial = run_scenario(name, seed=11)
    assert serial.ok, serial.render()
    assert parallel.shared_pool() is not None  # the engine really is on
    pooled = run_scenario(name, seed=11)
    assert pooled.ok, pooled.render()
    assert pooled.render() == serial.render()


def test_streamed_deposits_flush_on_simulated_clock(forced_shared_pool, params):
    """A stream + pool run settles everything without touching wall time."""
    from repro.core.system import EcashSystem
    from repro.net.costmodel import instant_profile
    from repro.net.services import NetworkDeployment

    system = EcashSystem(params=params, seed=77)
    dep = NetworkDeployment(system, cost_model=instant_profile(), seed=77)
    dep.add_client("client-0")
    merchant_id = system.merchant_ids[0]
    dep.start_deposit_stream(merchant_id, max_batch=2, max_age=3.0)
    streamed = 0
    while streamed < 3:
        info = system.standard_info(25, now=dep.now())
        stored = dep.run(dep.withdrawal_process("client-0", info))
        if stored.coin.witness_id == merchant_id:
            dep.clients["client-0"].wallet.coins.remove(stored)
            continue
        dep.run(dep.payment_process("client-0", stored, merchant_id))
        signed = system.merchant(merchant_id).pending_deposits()[-1]
        dep.stream_deposit(merchant_id, signed)
        streamed += 1
    dep.sim.run()  # size watermark flushed 2, age watermark the last one
    results = dep.deposit_stream_results[merchant_id]
    assert [r["outcome"] for r in results] == ["credited"] * 3
    assert system.broker.merchant_balance(merchant_id) == 75
    assert system.ledger.conserved()
