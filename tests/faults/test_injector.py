"""Tests for the fault injector over the RPC fabric."""

import random

import pytest

from repro import obs
from repro.faults.injector import FaultInjector, corrupt_message
from repro.faults.plan import FaultPlan
from repro.net.costmodel import instant_profile
from repro.net.latency import LatencyModel, Region
from repro.net.node import Network, Node
from repro.net.sim import SimTimeoutError, Simulator
from repro.net.transport import Message


def flat_latency(one_way=0.01):
    means = {frozenset({a, b}): one_way for a in Region for b in Region}
    means.update({frozenset({a}): one_way for a in Region})
    return LatencyModel(
        one_way_means=means,
        jitter=0.0,
        bandwidth_bytes_per_s=float("inf"),
        rng=random.Random(0),
    )


@pytest.fixture()
def network():
    sim = Simulator()
    net = Network(sim, flat_latency(), instant_profile(), seed=0)
    net.register(Node("alpha", Region.WISCONSIN))
    beta = net.register(Node("beta", Region.CALIFORNIA))
    calls = []
    beta.on("echo", lambda payload: calls.append(dict(payload)) or {"ok": 1})
    return sim, net, calls


def send(sim, net, payload=None, timeout=15.0):
    def process():
        reply = yield net.rpc("alpha", "beta", "echo", payload or {"v": 1}, timeout=timeout)
        return reply

    return sim.run_process(process())


def test_drop_rule_causes_timeout(network):
    sim, net, calls = network
    injector = FaultInjector(FaultPlan(seed=1).drop(method="echo")).install(net)
    with pytest.raises(SimTimeoutError):
        send(sim, net)
    assert calls == []
    assert [event.kind for event in injector.events] == ["drop"]


def test_delay_rule_postpones_delivery(network):
    sim, net, calls = network
    FaultInjector(FaultPlan(seed=1).delay(method="echo", delay=5.0)).install(net)
    assert send(sim, net) == {"ok": 1}
    assert sim.now == pytest.approx(5.02, rel=0.01)  # 2 hops + 5s injected
    assert len(calls) == 1


def test_duplicate_rule_runs_handler_twice(network):
    sim, net, calls = network
    FaultInjector(FaultPlan(seed=1).duplicate(method="echo")).install(net)
    assert send(sim, net) == {"ok": 1}
    assert len(calls) == 2  # replay reached the handler too


def test_corrupt_rule_changes_payload_in_flight(network):
    sim, net, calls = network
    FaultInjector(FaultPlan(seed=1).corrupt(method="echo")).install(net)
    send(sim, net, payload={"v": 1})
    assert calls == [{"v": 2}]  # the single int leaf was bumped


def test_reorder_rule_lets_next_message_overtake(network):
    sim, net, calls = network
    FaultInjector(FaultPlan(seed=1).reorder(method="echo", max_injections=1)).install(net)

    def sender(value):
        yield net.rpc("alpha", "beta", "echo", {"v": value})

    sim.spawn(sender(1))
    sim.spawn(sender(2))
    sim.run()
    assert calls == [{"v": 2}, {"v": 1}]  # the held first message arrived second


def test_probability_and_budget_are_respected(network):
    sim, net, calls = network
    injector = FaultInjector(
        FaultPlan(seed=3).drop(method="echo", probability=0.5, max_injections=2)
    ).install(net)
    outcomes = []
    for _ in range(12):
        try:
            send(sim, net)
            outcomes.append("ok")
        except SimTimeoutError:
            outcomes.append("dropped")
    assert outcomes.count("dropped") == 2  # budget cap, despite p=0.5 over 12 sends
    assert len(injector.events) == 2


def test_crash_window_takes_node_down_and_back(network):
    sim, net, calls = network
    injector = FaultInjector(
        FaultPlan(seed=1).crash("beta", at=1.0, duration=2.0)
    ).install(net)
    assert send(sim, net) == {"ok": 1}  # before the crash
    sim.run(until=1.5)
    with pytest.raises(SimTimeoutError):
        send(sim, net)  # mid-outage: the request is lost
    assert send(sim, net) == {"ok": 1}  # after the restart
    assert [event.kind for event in injector.events] == ["crash", "restart"]


def test_single_injector_per_network(network):
    sim, net, calls = network
    FaultInjector(FaultPlan(seed=1)).install(net)
    with pytest.raises(RuntimeError):
        FaultInjector(FaultPlan(seed=2)).install(net)


def test_uninstall_detaches_filter(network):
    sim, net, calls = network
    injector = FaultInjector(FaultPlan(seed=1).drop(method="echo")).install(net)
    injector.uninstall()
    assert net.fault_filter is None
    assert send(sim, net) == {"ok": 1}


def test_injections_counted_in_obs(network):
    sim, net, calls = network
    obs.reset()
    with obs.enabled():
        FaultInjector(FaultPlan(seed=1).drop(method="echo")).install(net)
        with pytest.raises(SimTimeoutError):
            send(sim, net)
    assert obs.registry().counter_value("fault_injected_total", kind="drop") == 1.0
    obs.reset()


def test_corrupt_message_is_seed_deterministic():
    message = Message(method="m", payload={"a": 5, "b": {"c": 7}, "s": "text"})
    first = corrupt_message(message, random.Random("x"))
    second = corrupt_message(message, random.Random("x"))
    assert first.payload == second.payload
    assert first.payload != message.payload
    # Exactly one int leaf was bumped by one.
    flat_before = {"a": 5, "c": 7}
    flat_after = {"a": first.payload["a"], "c": first.payload["b"]["c"]}
    changed = [k for k in flat_before if flat_before[k] != flat_after[k]]
    assert len(changed) == 1
    assert flat_after[changed[0]] == flat_before[changed[0]] + 1


def test_corrupt_message_falls_back_to_strings():
    message = Message(method="m", payload={"only": "strings"})
    corrupted = corrupt_message(message, random.Random(1))
    assert corrupted.payload["only"] != "strings"
