"""Tests for the scripted Byzantine actors over the simulated network."""

import random

import pytest

from repro.core.system import EcashSystem
from repro.faults.byzantine import (
    double_deposit_process,
    double_spend_process,
    equivocating_witness,
    forged_directory,
)
from repro.net.costmodel import instant_profile
from repro.net.services import NetworkDeployment


@pytest.fixture()
def deployment(params):
    system = EcashSystem(params=params, seed=23)
    dep = NetworkDeployment(system, cost_model=instant_profile(), seed=23)
    dep.add_client("client-0")
    return system, dep


def withdraw(system, dep):
    info = system.standard_info(25, now=dep.now())
    return dep.run(dep.withdrawal_process("client-0", info))


def test_equivocating_witness_flips_flag(deployment):
    system, dep = deployment
    witness = equivocating_witness(system, system.merchant_ids[0])
    assert witness.faulty
    assert system.witness(system.merchant_ids[0]) is witness


def test_double_spend_refused_by_honest_witness(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    others = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    outcomes, proof = dep.run(
        double_spend_process(dep, "client-0", stored, (others[0], others[1]))
    )
    assert outcomes == ["accepted", "refused-double-spend"]
    assert proof is not None
    assert proof.verify(system.params, stored.coin)


def test_double_spend_accepted_by_faulty_witness(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    equivocating_witness(system, stored.coin.witness_id)
    others = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    outcomes, proof = dep.run(
        double_spend_process(dep, "client-0", stored, (others[0], others[1]))
    )
    assert outcomes == ["accepted", "accepted"]
    assert proof is None  # nothing refused in real time: deposit must catch it


def test_double_deposit_refused(deployment):
    system, dep = deployment
    stored = withdraw(system, dep)
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    dep.run(dep.payment_process("client-0", stored, merchant_id))
    signed = system.merchant(merchant_id).pending_deposits()[0]
    outcomes = dep.run(double_deposit_process(dep, merchant_id, signed))
    assert outcomes == ["credited", "refused-DoubleDepositError"]


def test_forged_directory_does_not_verify(deployment, params):
    system, dep = deployment
    keys = {mid: system.merchant(mid).public_key for mid in system.merchant_ids}
    forged = forged_directory(
        params, 9, system.broker.current_table, keys, random.Random(5)
    )
    assert not forged.verify(params, system.broker.sign_public)
