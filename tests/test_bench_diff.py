"""Tests for the bench comparison tool (tools/bench_diff.py)."""

import json
import subprocess
import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
TOOL = ROOT / "tools" / "bench_diff.py"


def _bench_file(
    tmp_path, name, payment_speedup, pool_speedup, host_cpus=4, backend="python"
):
    data = {
        "full": {
            "group_bits": 1024,
            "backend": backend,
            "payment_verify": {
                "items": 16,
                "naive_ops_per_s": 10.0,
                "perf_ops_per_s": 10.0 * payment_speedup,
                "speedup": payment_speedup,
            },
            "parallel": {
                "host_cpus": host_cpus,
                "levels": [1, 4],
                "deposit_bulk": {
                    "items": 32,
                    "serial_ops_per_s": 50.0,
                    "workers": {
                        "4": {"ops_per_s": 50.0 * pool_speedup, "speedup": pool_speedup}
                    },
                },
            },
        }
    }
    path = tmp_path / name
    path.write_text(json.dumps(data))
    return path


def _run(*argv):
    return subprocess.run(
        [sys.executable, str(TOOL), *map(str, argv)], capture_output=True, text=True
    )


def test_healthy_diff_exits_zero(tmp_path):
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0)
    current = _bench_file(tmp_path, "cur.json", 3.8, 2.8)
    result = _run(baseline, current)
    assert result.returncode == 0, result.stderr
    assert "payment_verify" in result.stdout
    assert "parallel.deposit_bulk[4w]" in result.stdout
    assert "REGRESSION" not in result.stderr


def test_regression_is_flagged_and_exits_nonzero(tmp_path):
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0)
    current = _bench_file(tmp_path, "cur.json", 4.0, 1.0)
    result = _run(baseline, current)
    assert result.returncode == 1
    assert "REGRESSION full: parallel.deposit_bulk[4w]" in result.stderr


def test_cross_host_parallel_sections_are_skipped(tmp_path):
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0, host_cpus=8)
    current = _bench_file(tmp_path, "cur.json", 4.0, 0.7, host_cpus=1)
    result = _run(baseline, current)
    assert result.returncode == 0, result.stderr
    assert "parallel sections skipped" in result.stdout


def test_cross_backend_comparison_is_refused(tmp_path):
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0, backend="python")
    current = _bench_file(tmp_path, "cur.json", 4.0, 3.0, backend="gmpy2")
    result = _run(baseline, current)
    assert result.returncode == 2
    assert "not comparable across bigint backends" in result.stderr


def test_allow_backend_change_overrides_refusal(tmp_path):
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0, backend="python")
    current = _bench_file(tmp_path, "cur.json", 4.0, 3.0, backend="gmpy2")
    result = _run(baseline, current, "--allow-backend-change")
    assert result.returncode == 0, result.stderr
    assert "payment_verify" in result.stdout


def test_missing_backend_field_defaults_to_python(tmp_path):
    # Pre-backend-stamp baselines must stay comparable to python runs.
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0)
    data = json.loads(baseline.read_text())
    del data["full"]["backend"]
    legacy = tmp_path / "legacy.json"
    legacy.write_text(json.dumps(data))
    current = _bench_file(tmp_path, "cur.json", 4.0, 3.0, backend="python")
    result = _run(legacy, current)
    assert result.returncode == 0, result.stderr


def test_disjoint_modes_exit_two(tmp_path):
    a = tmp_path / "a.json"
    a.write_text(json.dumps({"full": {}}))
    b = tmp_path / "b.json"
    b.write_text(json.dumps({"quick": {}}))
    result = _run(a, b)
    assert result.returncode == 2


def test_section_missing_from_current_is_tolerated(tmp_path):
    # A baseline-only workload (e.g. recorded before a section was
    # retired) is reported but must not flag a regression.
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0)
    data = json.loads(baseline.read_text())
    data["full"]["withdrawal"] = {"items": 8, "speedup": 6.0}
    grown = tmp_path / "grown.json"
    grown.write_text(json.dumps(data))
    current = _bench_file(tmp_path, "cur.json", 4.0, 3.0)
    result = _run(grown, current)
    assert result.returncode == 0, result.stderr
    assert "baseline only" in result.stdout
    assert "REGRESSION" not in result.stderr


def test_section_new_in_current_is_tolerated(tmp_path):
    # The symmetric case: a current-only section (a freshly added
    # campaign/bench workload) diffs cleanly against an old baseline.
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0)
    current = _bench_file(tmp_path, "cur.json", 4.0, 3.0)
    data = json.loads(current.read_text())
    data["full"]["witness_sig_batch"] = {"items": 64, "speedup": 7.9}
    grown = tmp_path / "grown.json"
    grown.write_text(json.dumps(data))
    result = _run(baseline, grown)
    assert result.returncode == 0, result.stderr
    assert "(new, 7.90x)" in result.stdout


def test_section_filter_limits_comparison(tmp_path):
    # With --section payment_verify the regressed deposit pool row is
    # excluded from the comparison entirely.
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0)
    current = _bench_file(tmp_path, "cur.json", 4.0, 0.5)
    flagged = _run(baseline, current)
    assert flagged.returncode == 1
    filtered = _run(baseline, current, "--section", "payment_verify")
    assert filtered.returncode == 0, filtered.stderr
    assert "payment_verify" in filtered.stdout
    assert "deposit_bulk" not in filtered.stdout


def test_section_filter_matches_parallel_rows(tmp_path):
    baseline = _bench_file(tmp_path, "base.json", 4.0, 3.0)
    current = _bench_file(tmp_path, "cur.json", 0.5, 3.0)
    filtered = _run(baseline, current, "--section", "deposit_bulk")
    assert filtered.returncode == 0, filtered.stderr
    assert "parallel.deposit_bulk[4w]" in filtered.stdout
    assert "payment_verify" not in filtered.stdout
