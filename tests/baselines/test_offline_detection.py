"""Tests for the offline detect-at-deposit baseline."""

import random

import pytest

from repro.baselines.offline_detection import OfflineBank, OfflineSpender
from repro.core.exceptions import InvalidPaymentError


@pytest.fixture()
def bank(params):
    return OfflineBank(params=params)


@pytest.fixture()
def spender(params, bank):
    spender = OfflineSpender(params=params, account_secret=123456789, rng=random.Random(8))
    bank.register("mallory", spender.identity)
    return spender


def test_honest_flow_no_detection(params, bank, spender):
    coin, secrets = spender.mint_coin()
    payment = spender.pay(coin, secrets, "shop-a", timestamp=10)
    assert payment.verify(params)
    assert bank.deposit(payment) is None
    assert bank.frauds_detected == []


def test_double_spend_succeeds_at_merchants(params, spender):
    """The baseline's weakness: both merchants accept in real time."""
    coin, secrets = spender.mint_coin()
    first = spender.pay(coin, secrets, "shop-a", timestamp=10)
    second = spender.pay(coin, secrets, "shop-b", timestamp=20)
    assert first.verify(params)
    assert second.verify(params)  # nothing stops the second spend


def test_fraud_detected_only_at_deposit(params, bank, spender):
    coin, secrets = spender.mint_coin()
    first = spender.pay(coin, secrets, "shop-a", timestamp=10)
    second = spender.pay(coin, secrets, "shop-b", timestamp=20)
    assert bank.deposit(first) is None  # merchant A deposits: nothing known yet
    cheater = bank.deposit(second)  # merchant B deposits: identity extracted
    assert cheater == "mallory"
    assert len(bank.frauds_detected) == 1


def test_single_spend_reveals_no_identity(params, bank, spender):
    """Untraceability of honest spending: one response is consistent with
    every registered identity, so the bank cannot attribute it."""
    coin, secrets = spender.mint_coin()
    payment = spender.pay(coin, secrets, "shop-a", timestamp=10)
    # The bank only extracts from TWO transcripts; with one, the linear
    # system is underdetermined (see the crypto-layer ZK test). Here we
    # check the bank's API surfaces nothing.
    assert bank.deposit(payment) is None


def test_redeposit_same_transcript_no_fraud(params, bank, spender):
    coin, secrets = spender.mint_coin()
    payment = spender.pay(coin, secrets, "shop-a", timestamp=10)
    bank.deposit(payment)
    assert bank.deposit(payment) is None
    assert bank.frauds_detected == []


def test_invalid_payment_rejected(params, bank, spender):
    from repro.baselines.offline_detection import OfflinePayment
    from repro.crypto.representation import RepresentationResponse

    coin, secrets = spender.mint_coin()
    payment = spender.pay(coin, secrets, "shop-a", timestamp=10)
    forged = OfflinePayment(
        coin=payment.coin,
        merchant_id=payment.merchant_id,
        timestamp=payment.timestamp,
        response=RepresentationResponse(r1=1, r2=2),
    )
    with pytest.raises(InvalidPaymentError):
        bank.deposit(forged)


def test_duplicate_identity_registration_rejected(params, bank, spender):
    with pytest.raises(ValueError):
        bank.register("mallory-again", spender.identity)


def test_exposure_window(params, bank, spender):
    """Quantify the baseline's exposure: N fraudulent spends all succeed,
    detection only fires when deposits come in."""
    coin, secrets = spender.mint_coin()
    payments = [spender.pay(coin, secrets, f"shop-{i}", timestamp=i) for i in range(10)]
    assert all(p.verify(params) for p in payments)  # 10 successful frauds
    detections = [bank.deposit(p) for p in payments]
    assert detections[0] is None
    assert all(d == "mallory" for d in detections[1:])
