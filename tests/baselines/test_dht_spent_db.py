"""Tests for the WhoPay/Hoepman DHT spent-coin baseline."""

import pytest

from repro.baselines.dht_spent_db import DhtSpentCoinDb, predicted_detection_rate
from repro.analysis.stats import mean

NAMES = [f"merchant-{i}" for i in range(60)]


def test_honest_overlay_detects_everything():
    db = DhtSpentCoinDb(NAMES, replication=3, compromised_fraction=0.0, seed=1)
    rate = db.double_spend_detection_rate(attempts=100)
    assert rate == 1.0


def test_first_spend_accepted():
    db = DhtSpentCoinDb(NAMES, replication=3, seed=2)
    result = db.spend(123456, "merchant-1")
    assert result.accepted
    assert not result.detected_double_spend
    assert result.lookup_hops >= 1


def test_second_spend_detected():
    db = DhtSpentCoinDb(NAMES, replication=3, seed=3)
    db.spend(777, "merchant-1")
    again = db.spend(777, "merchant-2")
    assert not again.accepted
    assert again.detected_double_spend


def test_compromised_overlay_misses_double_spends():
    """The paper's core criticism: detection becomes probabilistic."""
    rates = []
    for seed in range(8):
        db = DhtSpentCoinDb(NAMES, replication=2, compromised_fraction=0.5, seed=seed)
        rates.append(db.double_spend_detection_rate(attempts=120, key_seed=seed))
    average = mean(rates)
    predicted = predicted_detection_rate(0.5, 2)  # 0.75
    assert average < 1.0  # hard guarantee is lost
    assert abs(average - predicted) < 0.15


def test_detection_rate_monotone_in_replication():
    low, high = [], []
    for seed in range(6):
        low.append(
            DhtSpentCoinDb(NAMES, replication=1, compromised_fraction=0.4, seed=seed)
            .double_spend_detection_rate(attempts=100, key_seed=seed)
        )
        high.append(
            DhtSpentCoinDb(NAMES, replication=4, compromised_fraction=0.4, seed=seed)
            .double_spend_detection_rate(attempts=100, key_seed=seed)
        )
    assert mean(high) > mean(low)


def test_predicted_rate_formula():
    assert predicted_detection_rate(0.0, 3) == 1.0
    assert predicted_detection_rate(1.0, 3) == 0.0
    assert predicted_detection_rate(0.5, 3) == pytest.approx(0.875)
    with pytest.raises(ValueError):
        predicted_detection_rate(1.5, 3)
