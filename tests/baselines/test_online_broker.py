"""Tests for the Chaum-style online-clearing baseline."""

import pytest

from repro.baselines.online_broker import OnlineBroker
from repro.core.exceptions import DoubleSpendError, InvalidCoinError, ServiceUnavailableError
from repro.core.protocols import run_withdrawal


@pytest.fixture()
def online(system):
    return OnlineBroker(params=system.params, broker=system.broker)


@pytest.fixture()
def coin(system):
    client = system.new_client()
    return run_withdrawal(client, system.broker, system.standard_info(25, now=0))


def test_first_spend_clears(system, online, coin):
    result = online.spend_online(coin, "shop-a", now=10)
    assert result.accepted
    assert result.broker_queries == 1


def test_double_spend_always_detected(system, online, coin):
    online.spend_online(coin, "shop-a", now=10)
    with pytest.raises(DoubleSpendError) as refusal:
        online.spend_online(coin, "shop-b", now=20)
    assert refusal.value.proof.verify(system.params, coin.coin)


def test_broker_down_blocks_every_payment(system, online, coin):
    """The single point of failure the paper's design removes."""
    online.online = False
    with pytest.raises(ServiceUnavailableError):
        online.spend_online(coin, "shop-a", now=10)


def test_broker_load_grows_with_payments(system, online):
    client = system.new_client()
    for index in range(5):
        stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
        online.spend_online(stored, f"shop-{index}", now=10)
    assert online.queries_served == 5


def test_forged_coin_rejected(system, online, coin):
    from repro.core.client import StoredCoin
    from repro.core.coin import BareCoin, Coin
    from repro.crypto.blind import PartiallyBlindSignature

    forged_bare = BareCoin(
        signature=PartiallyBlindSignature(rho=1, omega=2, sigma=3, delta=4),
        info=coin.coin.info,
        commitment_a=coin.coin.bare.commitment_a,
        commitment_b=coin.coin.bare.commitment_b,
    )
    forged = StoredCoin(
        coin=Coin(bare=forged_bare, witness_entry=coin.coin.witness_entry),
        secrets=coin.secrets,
    )
    with pytest.raises(InvalidCoinError):
        online.spend_online(forged, "shop-a", now=10)
