"""Workload-generator tests: arrival shapes and byte-identity."""

import random

import pytest

from repro.scale.workload import (
    Event,
    WorkloadConfig,
    ZipfSampler,
    event_counts,
    generate_events,
    schedule_digest,
)


class TestZipfSampler:
    def test_rank_zero_dominates(self):
        rng = random.Random(3)
        sampler = ZipfSampler(20, 1.0, rng)
        draws = [sampler.sample() for _ in range(5000)]
        counts = [draws.count(rank) for rank in range(3)]
        assert counts[0] > counts[1] > counts[2]
        assert counts[0] > 5000 / 10  # far above uniform share

    def test_all_ranks_in_range(self):
        rng = random.Random(4)
        sampler = ZipfSampler(5, 1.2, rng)
        assert all(0 <= sampler.sample() < 5 for _ in range(2000))

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0, 1.0, random.Random(0))


class TestGenerateEvents:
    def test_sorted_by_time_with_unique_seqs(self):
        events = generate_events(WorkloadConfig(seed=11, duration=30.0))
        times = [e.time for e in events]
        assert times == sorted(times)
        assert [e.seq for e in events] == list(range(len(events)))

    def test_poisson_count_scales_with_rate(self):
        slow = generate_events(
            WorkloadConfig(seed=5, duration=100.0, payment_rate=2.0)
        )
        fast = generate_events(
            WorkloadConfig(seed=5, duration=100.0, payment_rate=20.0)
        )
        assert 100 < event_counts(slow)["pay"] < 300
        assert 1600 < event_counts(fast)["pay"] < 2400

    def test_withdraw_precedes_each_clients_first_pay(self):
        events = generate_events(WorkloadConfig(seed=8, duration=40.0, clients=4))
        seen_withdraw = set()
        for event in events:
            if event.kind == "withdraw":
                seen_withdraw.add(event.actor)
            elif event.kind == "pay":
                assert event.actor in seen_withdraw

    def test_renewal_storms_cluster_at_boundaries(self):
        config = WorkloadConfig(
            seed=6,
            duration=100.0,
            payment_rate=0.0,
            deposit_rate=0.0,
            renewal_boundaries=(50.0, 90.0),
            renewal_storm_size=40,
            renewal_storm_spread=2.0,
        )
        renews = [e for e in generate_events(config) if e.kind == "renew"]
        assert renews
        # Every storm renewal lands before its boundary, within a few
        # standard deviations.
        assert all(
            (t <= 50.0 and t > 35.0) or (t <= 90.0 and t > 75.0)
            for t in (e.time for e in renews)
        )

    def test_merchant_popularity_is_zipf_skewed(self):
        events = generate_events(
            WorkloadConfig(seed=9, duration=200.0, payment_rate=10.0, merchants=10)
        )
        pays = [e for e in events if e.kind == "pay"]
        top = sum(1 for e in pays if e.merchant == "merchant-0000")
        assert top > len(pays) / 5  # rank 0 gets far more than 1/10


class TestByteIdentity:
    def test_same_seed_same_digest(self):
        config = WorkloadConfig(seed=21, duration=60.0)
        assert schedule_digest(generate_events(config)) == schedule_digest(
            generate_events(config)
        )

    def test_different_seed_different_digest(self):
        a = schedule_digest(generate_events(WorkloadConfig(seed=1)))
        b = schedule_digest(generate_events(WorkloadConfig(seed=2)))
        assert a != b

    def test_render_round_trips_fields(self):
        event = Event(time=1.25, kind="pay", actor="client-0001",
                      merchant="merchant-0002", seq=7)
        assert event.render() == "1.250000 pay client-0001 merchant-0002 7"

    def test_independent_streams(self):
        """Turning one process off must not perturb the others' times."""
        with_renewals = generate_events(
            WorkloadConfig(seed=31, duration=50.0, renewal_boundaries=(30.0,))
        )
        without = generate_events(WorkloadConfig(seed=31, duration=50.0))
        pays = lambda evs: [(e.time, e.actor, e.merchant)
                            for e in evs if e.kind == "pay"]
        assert pays(with_renewals) == pays(without)
