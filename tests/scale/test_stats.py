"""Streaming-estimator tests: reservoir sampling and P² quantiles."""

import random

import pytest

from repro.scale.stats import P2Quantile, ReservoirSample, StreamingStats


class TestReservoirSample:
    def test_small_stream_kept_verbatim(self):
        res = ReservoirSample(capacity=10, seed=1)
        for v in range(5):
            res.add(v)
        assert res.values() == [0.0, 1.0, 2.0, 3.0, 4.0]
        assert res.seen == 5

    def test_capacity_never_exceeded(self):
        res = ReservoirSample(capacity=16, seed=2)
        for v in range(1000):
            res.add(v)
        assert len(res.values()) == 16
        assert res.seen == 1000

    def test_uniformity_over_many_reservoirs(self):
        """Every element should land in the sample with probability k/n."""
        hits = [0] * 50
        for trial in range(300):
            res = ReservoirSample(capacity=10, seed=trial)
            for v in range(50):
                res.add(v)
            for v in res.values():
                hits[int(v)] += 1
        expected = 300 * 10 / 50
        assert all(0.5 * expected < h < 1.5 * expected for h in hits)

    def test_same_seed_same_sample(self):
        def build(seed):
            res = ReservoirSample(capacity=8, seed=seed)
            for v in range(200):
                res.add(v)
            return res.values()

        assert build(7) == build(7)
        assert build(7) != build(8)

    def test_quantile_nearest_rank(self):
        res = ReservoirSample(capacity=100, seed=0)
        for v in range(100):
            res.add(v)
        assert res.quantile(0.0) == 0.0
        assert res.quantile(0.5) == 50.0
        assert res.quantile(1.0) == 99.0

    def test_invalid_args_rejected(self):
        with pytest.raises(ValueError):
            ReservoirSample(0)
        with pytest.raises(ValueError):
            ReservoirSample(4).quantile(1.5)


class TestP2Quantile:
    def test_exact_below_five_samples(self):
        q = P2Quantile(0.5)
        for v in (5.0, 1.0, 3.0):
            q.add(v)
        assert q.value() == 3.0

    def test_median_of_uniform_stream(self):
        rng = random.Random(13)
        q = P2Quantile(0.5)
        for _ in range(20_000):
            q.add(rng.random())
        assert abs(q.value() - 0.5) < 0.02

    @pytest.mark.parametrize("target", [0.9, 0.99])
    def test_tail_quantiles_of_uniform_stream(self, target):
        rng = random.Random(29)
        q = P2Quantile(target)
        for _ in range(20_000):
            q.add(rng.random())
        assert abs(q.value() - target) < 0.02

    def test_exponential_stream_tracks_exact(self):
        """P² stays close to the exact empirical quantile on skewed data."""
        rng = random.Random(5)
        samples = [rng.expovariate(1.0) for _ in range(10_000)]
        q = P2Quantile(0.9)
        for v in samples:
            q.add(v)
        exact = sorted(samples)[int(0.9 * len(samples))]
        assert abs(q.value() - exact) / exact < 0.1

    def test_invalid_quantile_rejected(self):
        with pytest.raises(ValueError):
            P2Quantile(0.0)
        with pytest.raises(ValueError):
            P2Quantile(1.0)


class TestStreamingStats:
    def test_summary_matches_exact_on_small_stream(self):
        stats = StreamingStats("s", seed=3)
        for v in [4.0, 1.0, 3.0, 2.0]:
            stats.add(v)
        summary = stats.summary()
        assert summary["count"] == 4
        assert summary["mean"] == 2.5
        assert summary["min"] == 1.0
        assert summary["max"] == 4.0

    def test_empty_summary_is_all_zero(self):
        assert StreamingStats("e").summary() == {
            "count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
            "p50": 0.0, "p90": 0.0, "p99": 0.0,
        }

    def test_summary_deterministic_across_instances(self):
        def build():
            rng = random.Random(77)
            stats = StreamingStats("d", seed=9)
            for _ in range(5000):
                stats.add(rng.expovariate(0.5))
            return stats.summary()

        assert build() == build()

    def test_constant_memory(self):
        """The sink must not accumulate per-sample state beyond the reservoir."""
        stats = StreamingStats("m", reservoir_size=32, seed=1)
        for v in range(100_000):
            stats.add(v % 997)
        assert len(stats._reservoir.values()) == 32
        assert stats.count == 100_000
