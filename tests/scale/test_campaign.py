"""Campaign-runner tests: determinism, engine identity, and safety.

The determinism contract under test: the report's ``results`` section
(and its sha256 digest) depends only on the :class:`CampaignConfig` —
not on the perf engine, not on the parallel engine or worker count, not
on which run it is.
"""

import json

import pytest

from repro import perf
from repro.perf import parallel
from repro.scale import (
    CampaignConfig,
    identity_check,
    results_digest,
    run_campaign,
)

SMALL = CampaignConfig(seed=2026, nodes=64, duration=8.0)


@pytest.fixture(scope="module")
def small_report():
    with perf.forced(True):
        return run_campaign(SMALL)


class TestDeterminism:
    def test_same_config_same_digest_across_runs(self, small_report):
        with perf.forced(True):
            again = run_campaign(SMALL)
        assert again["digest"] == small_report["digest"]
        assert again["results"] == small_report["results"]

    def test_digest_covers_results_exactly(self, small_report):
        assert small_report["digest"] == results_digest(small_report["results"])

    def test_results_are_json_round_trippable(self, small_report):
        dumped = json.dumps(small_report["results"], sort_keys=True)
        assert json.loads(dumped) == small_report["results"]

    def test_different_seed_different_digest(self, small_report):
        with perf.forced(True):
            other = run_campaign(
                CampaignConfig(seed=2027, nodes=64, duration=8.0)
            )
        assert other["digest"] != small_report["digest"]

    def test_digest_independent_of_parallel_engine(self, small_report):
        """Worker counts must never leak into the digested results."""
        was = parallel.parallel_enabled()
        parallel.set_parallel_enabled(True)
        try:
            with perf.forced(True):
                on = run_campaign(SMALL)
        finally:
            parallel.set_parallel_enabled(was)
        with parallel.parallel_disabled():
            with perf.forced(True):
                off = run_campaign(SMALL)
        assert on["digest"] == small_report["digest"]
        assert off["digest"] == small_report["digest"]


class TestEngineIdentity:
    def test_perf_vs_naive_digests_match(self):
        verdict = identity_check(CampaignConfig(seed=2026, nodes=48, duration=6.0))
        assert verdict["match"], verdict
        assert verdict["perf_table_builds"] == 1
        assert verdict["naive_table_builds"] > 1

    def test_engine_diagnostics_not_digested(self):
        """Engine-dependent fields live outside ``results``."""
        with perf.forced(True):
            report = run_campaign(SMALL, include_protocol=False)
        assert "table_builds" not in json.dumps(report["results"])
        assert report["engine"]["table_builds"] == 1
        assert report["engine"]["full_rebuilds_after_bootstrap"] == 0


class TestSafetyAndShape:
    def test_protocol_slice_has_zero_violations(self, small_report):
        protocol = small_report["results"]["protocol"]
        assert protocol["violations"] == 0
        assert protocol["invariants"]
        assert all(entry["ok"] for entry in protocol["invariants"])
        assert any("paid" in line for line in protocol["outcomes"])
        assert any(line.startswith("deposit ") for line in protocol["outcomes"])

    def test_lookup_hops_within_bound(self, small_report):
        lookups = small_report["results"]["lookups"]
        assert lookups["count"] > 0
        assert lookups["within_bound"]
        assert 0.0 < lookups["home_owner_up_ratio"] <= 1.0

    def test_membership_and_rebalance_accounted(self, small_report):
        membership = small_report["results"]["membership"]
        assert membership["joins"] + membership["leaves"] > 0
        assert membership["rebalance_bytes"] >= 0
        assert membership["final_nodes"] == (
            64 + membership["joins"] - membership["leaves"]
        )

    def test_metrics_wired_into_report(self, small_report):
        metrics = small_report["results"]["metrics"]
        assert metrics["campaign_events_total"]
        assert sum(metrics["campaign_events_total"].values()) == sum(
            small_report["results"]["workload"]["events"].values()
        )
        assert metrics["chord_lookups_total"] == metrics["chord_lookup_hops_count"]

    def test_availability_reflects_churn(self, small_report):
        availability = small_report["results"]["availability"]
        assert availability["live_fraction"]["count"] > 0
        assert availability["live_fraction"]["min"] <= 1.0

    def test_workload_digest_present(self, small_report):
        workload = small_report["results"]["workload"]
        assert len(workload["schedule_digest"]) == 64
        assert workload["events"]["pay"] > 0
