"""Legacy setup shim for offline editable installs (`pip install -e .`)."""

from setuptools import setup

setup()
