"""Ablation: distributing witness-list updates through the merchant P2P
overlay (Sections 3-4).

"From time to time, B may publish a new version of the witness range
assignments" — and the merchants "form a network", so the broker only
seeds a couple of peers and epidemic gossip does the rest. Measured:
rounds to full convergence vs overlay size (the classic O(log N) curve)
and the per-member message cost, versus the broker unicast alternative
(N direct transfers from one server).
"""

import math
import random

from repro.analysis.tables import render_table
from repro.core.params import test_params as make_test_params
from repro.core.witness_ranges import build_table
from repro.crypto.schnorr import SchnorrKeyPair
from repro.net.costmodel import instant_profile
from repro.net.latency import Region, uniform_mesh
from repro.net.node import Network, Node
from repro.net.overlay import GossipOverlay, publish_directory
from repro.net.sim import Simulator

from conftest import record

SIZES = [8, 16, 32, 64]
ROUND_SECONDS = 1.0


def convergence_rounds(size: int, seed: int = 30) -> tuple[float, float]:
    """(rounds until converged, gossip messages per member)."""
    params = make_test_params()
    members = [f"m{i}" for i in range(size)]
    sim = Simulator()
    network = Network(
        sim,
        uniform_mesh([Region.LOCAL], one_way=0.005, seed=seed),
        instant_profile(),
        seed=seed,
    )
    for member in members:
        network.register(Node(member, Region.LOCAL))
    broker_key = SchnorrKeyPair.generate(params.group, random.Random(seed))
    table = build_table(
        params, broker_key, 1, {m: 1.0 for m in members}, rng=random.Random(seed + 1)
    )
    keys = {m: 1 + i for i, m in enumerate(members)}  # placeholder directory keys
    # keys must be group elements for real use; the gossip layer treats
    # them opaquely, so small ints keep this size sweep fast.
    directory = publish_directory(
        params, broker_key, 1, table, keys, random.Random(seed + 2)
    )
    overlay = GossipOverlay(
        params,
        network,
        broker_key.public,
        members,
        interval=ROUND_SECONDS,
        fanout=1,
        seed=seed + 3,
    )
    overlay.seed(directory, seed_members=[members[0]])
    overlay.start()
    probe = 0.0
    while not overlay.converged_to(1):
        probe += ROUND_SECONDS
        if probe > 200:
            raise AssertionError(f"gossip failed to converge at size {size}")
        sim.run(until=probe)
    return probe / ROUND_SECONDS, overlay.messages_exchanged / size


def test_gossip_convergence_scales_logarithmically(benchmark, results_dir):
    results = benchmark.pedantic(
        lambda: [convergence_rounds(size) for size in SIZES], rounds=1, iterations=1
    )
    rows = []
    for size, (rounds, messages_per_member) in zip(SIZES, results):
        rows.append(
            [
                size,
                f"{rounds:.0f}",
                f"{math.log2(size):.1f}",
                f"{messages_per_member:.1f}",
                size,  # broker unicast: one transfer per member, all from one host
            ]
        )
    record(
        results_dir,
        "ablation_overlay_gossip",
        render_table(
            "Ablation: witness-list rollout via merchant gossip (fanout 1, 1s rounds)",
            [
                "overlay size",
                "rounds to converge",
                "log2(N)",
                "gossip msgs/member",
                "broker unicast msgs (from one host)",
            ],
            rows,
        ),
    )
    rounds_by_size = {size: rounds for size, (rounds, _) in zip(SIZES, results)}
    # Epidemic, not linear: doubling the overlay adds only a few rounds.
    assert rounds_by_size[64] <= rounds_by_size[8] + 18
    assert rounds_by_size[64] <= 64  # decisively sub-linear
    # And every size converges within a tight multiple of log2 N.
    for size, (rounds, _) in zip(SIZES, results):
        assert rounds <= 8 * math.log2(size) + 8
