"""Ablation: server saturation under payment load.

Section 1's complaint about online trusted parties: they create "equipment
expenses (especially during peak hours)". This ablation gives every server
a bounded handler pool and ramps up concurrent payments:

* **online clearing** — every payment queues at the one broker; makespan
  grows linearly once the broker saturates;
* **witness scheme** — the same load fans out across the merchants'
  witness services; makespan stays near-flat until the *per-witness*
  load saturates, i.e. capacity scales with the merchant network.

Both sides run identical crypto (the 2006 profile, whose heavyweight
operations make server compute the bottleneck) on servers with the same
per-node handler pool; handlers release their worker while awaiting
nested RPCs (async-server semantics), so the difference measured is
purely architectural.
"""

import random

from repro.analysis.tables import render_table
from repro.baselines.online_broker import OnlineBroker
from repro.core.system import EcashSystem
from repro.core.transcripts import PaymentTranscript
from repro.crypto.representation import respond
from repro.crypto.serialize import text_to_int
from repro.net.costmodel import python2006_profile
from repro.net.latency import Region, uniform_mesh
from repro.net.node import Network, Node, metered
from repro.net.services import NetworkDeployment
from repro.net.sim import Future, Simulator

from conftest import record

MERCHANTS = tuple(f"shop-{i}" for i in range(16))
LOADS = [4, 12, 24, 48]
SERVER_CONCURRENCY = 2


def _gather(sim, futures):
    done = Future()
    remaining = len(futures)

    def on_done(_):
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not done.done:
            done.set_result(None)

    for future in futures:
        future.add_callback(on_done)
    sim.run_until(done)
    for future in futures:
        future.result()  # surface failures


def witness_makespan(load: int, seed: int = 40) -> float:
    system = EcashSystem(merchant_ids=MERCHANTS, seed=seed)
    deployment = NetworkDeployment(
        system,
        cost_model=python2006_profile(noise=0),
        seed=seed,
        server_concurrency=SERVER_CONCURRENCY,
    )
    prepared = []
    for index in range(load):
        client_name = f"client-{index}"
        deployment.add_client(client_name)
        stored = deployment.run(
            deployment.withdrawal_process(
                client_name, system.standard_info(5, now=deployment.now())
            )
        )
        rng = random.Random(seed * 1000 + index)
        merchant_id = rng.choice(
            [m for m in system.merchant_ids if m != stored.coin.witness_id]
        )
        prepared.append((client_name, stored, merchant_id))
    start = deployment.sim.now
    futures = [
        deployment.sim.spawn(
            metered(
                deployment.payment_process(client_name, stored, merchant_id),
                deployment.network.cost_model,
                deployment.network.rng,
            )
        )
        for client_name, stored, merchant_id in prepared
    ]
    _gather(deployment.sim, futures)
    return deployment.sim.now - start


def online_makespan(load: int, seed: int = 41) -> float:
    """Same load against a single online-clearing broker."""
    system = EcashSystem(merchant_ids=MERCHANTS, seed=seed)
    online = OnlineBroker(params=system.params, broker=system.broker)
    sim = Simulator()
    network = Network(
        sim,
        uniform_mesh([Region.LOCAL, Region.WISCONSIN], one_way=0.03, seed=seed),
        python2006_profile(noise=0),
        seed=seed,
    )
    broker_node = network.register(
        Node("clearing-broker", Region.WISCONSIN, concurrency=SERVER_CONCURRENCY)
    )

    def clear(payload):
        transcript = PaymentTranscript.from_wire(
            {
                key.removeprefix("transcript."): value
                for key, value in _flatten(payload).items()
                if key.startswith("transcript.")
            }
        )
        online.clear_payment(transcript)
        return {"ok": 1}

    broker_node.on("clear", clear)

    prepared = []
    from repro.core.protocols import run_withdrawal

    client = system.new_client()
    for index in range(load):
        name = f"client-{index}"
        network.register(Node(name, Region.LOCAL))
        stored = run_withdrawal(client, system.broker, system.standard_info(5, now=0))
        d = system.params.hashes.H0(
            *stored.coin.hash_parts(), f"shop-{index % len(MERCHANTS)}", 10
        )
        transcript = PaymentTranscript(
            coin=stored.coin,
            response=respond(stored.secrets, d, system.params.group.q),
            merchant_id=f"shop-{index % len(MERCHANTS)}",
            timestamp=10,
            salt=0,
        )
        prepared.append((name, transcript))

    def clearing_call(name, transcript):
        reply = yield network.rpc(
            name, "clearing-broker", "clear", {"transcript": transcript.to_wire()},
            timeout=300.0,
        )
        return reply

    start = sim.now
    futures = [
        sim.spawn(metered(clearing_call(name, transcript), network.cost_model, network.rng))
        for name, transcript in prepared
    ]
    _gather(sim, futures)
    return sim.now - start


def _flatten(payload):
    from repro.crypto.serialize import flatten

    flat = flatten(payload)
    return {
        key: (value if isinstance(value, str) else _to_text(value))
        for key, value in flat.items()
    }


def _to_text(value):
    from repro.crypto.serialize import int_to_text

    return int_to_text(value) if isinstance(value, int) else str(value)


def run_sweep():
    return [
        (load, witness_makespan(load), online_makespan(load)) for load in LOADS
    ]


def test_saturation_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record(
        results_dir,
        "ablation_saturation",
        render_table(
            f"Ablation: makespan of N concurrent payments (server concurrency "
            f"{SERVER_CONCURRENCY}, python-2006 crypto)",
            ["concurrent payments", "witness scheme", "online broker", "ratio"],
            [
                [load, f"{w:.2f}s", f"{o:.2f}s", f"{o / w:.1f}x"]
                for load, w, o in rows
            ],
        ),
    )
    by_load = {load: (w, o) for load, w, o in rows}
    # At low load both are fine; at high load the single clearing broker
    # queues while the witness network absorbs the fan-out.
    w_peak, o_peak = by_load[LOADS[-1]]
    w_base, o_base = by_load[LOADS[0]]
    assert o_peak / o_base > 3.0  # broker makespan grows with load (saturation)
    assert w_peak / w_base < o_peak / o_base  # witness scheme degrades more slowly
    assert o_peak > w_peak  # and is slower at peak load: capacity scales with M
