"""Reproduces **Table 2**: payment wall-clock runtime and bandwidth.

The paper: 100 payment-protocol runs across PlanetLab nodes (client and
broker in Wisconsin, witness in California, merchant in Massachusetts),
2006-era native-Python crypto. Reported: client total time avg 1789 ms,
st. dev. 324 ms; client bytes transmitted 1.6 KB (st. dev. 1.3 B).

Our reproduction: the same four-party payment over the discrete-event
simulator — WAN latencies calibrated to the paper's observed 50-100 ms
PlanetLab round trips, per-operation compute costs calibrated to the
paper's own timing anchors (250 ms/signature in native Python,
footnote 7), and byte counts measured from the real URI-encoded messages.
Shape checks: seconds-scale latency dominated by witness/merchant crypto,
sigma from WAN jitter plus interpreter variance, ~1.6 KB of client
traffic that is effectively constant across trials.
"""

import pytest

from repro.analysis.payment_bench import PAPER_TABLE2, run_payment_trials
from repro.analysis.tables import render_table
from repro.core.params import default_params

from conftest import record

TRIALS = 100


@pytest.fixture(scope="module")
def table2_result():
    return run_payment_trials(trials=TRIALS, params=default_params(), seed=2007)


def test_table2_payment_protocol(benchmark, results_dir, table2_result):
    # Benchmark the per-trial harness cost (1024-bit crypto, full wire
    # encoding, event loop) on a short run; the statistics come from the
    # module-scoped 100-trial result.
    benchmark.pedantic(
        run_payment_trials, kwargs={"trials": 3, "seed": 77}, rounds=1, iterations=1
    )
    record(
        results_dir,
        "table2_payment_latency",
        table2_result.render()
        + "\n\nLatency distribution (per-trial, ms):\n"
        + table2_result.latency_histogram(),
    )

    latency = table2_result.latency_ms
    assert latency.n == TRIALS
    # Shape: same order of magnitude and within 20% of the paper's mean.
    assert abs(latency.mean - PAPER_TABLE2["avg_ms"]) / PAPER_TABLE2["avg_ms"] < 0.20
    # Dispersion: hundreds of ms, like the paper's 324 ms.
    assert 100 <= latency.stdev <= 600


def test_table2_bandwidth(benchmark, results_dir, table2_result):
    """Client ~1.6 KB; "merchant and witness overheads on the order of 4KB"."""

    def one_trial_bytes() -> float:
        return run_payment_trials(trials=1, seed=31).client_bytes.mean

    benchmark.pedantic(one_trial_bytes, rounds=1, iterations=1)

    client_bytes = table2_result.client_bytes
    record(
        results_dir,
        "table2_bandwidth",
        render_table(
            "Table 2 (bandwidth): bytes moved during one payment",
            ["Party", "Avg bytes", "St. dev.", "Paper"],
            [
                ["Client sent", f"{client_bytes.mean:.0f}", f"{client_bytes.stdev:.1f}", "~1.6KB"],
                [
                    "Merchant total",
                    f"{table2_result.merchant_bytes.mean:.0f}",
                    f"{table2_result.merchant_bytes.stdev:.1f}",
                    "~4KB",
                ],
                [
                    "Witness total",
                    f"{table2_result.witness_bytes.mean:.0f}",
                    f"{table2_result.witness_bytes.stdev:.1f}",
                    "~4KB",
                ],
            ],
        ),
    )
    # ~1.6KB, within 25% of the paper.
    assert abs(client_bytes.mean - PAPER_TABLE2["client_bytes"]) < 0.25 * PAPER_TABLE2[
        "client_bytes"
    ]
    # Nearly constant across trials (paper: sigma = 1.3 B; ours varies a
    # few tens of bytes with base64 length differences).
    assert client_bytes.stdev < 0.05 * client_bytes.mean
    # Merchant/witness overheads: single-digit KB, like the paper's ~4KB.
    assert 1024 < table2_result.merchant_bytes.mean < 8 * 1024
    assert 1024 < table2_result.witness_bytes.mean < 8 * 1024
