"""Ablation: who carries the double-spend-checking load?

Section 1 argues an online trusted party "creates administrative and
equipment expenses (especially during peak hours)"; the witness design
spreads that load over the merchant network instead. Measured here:

* **broker messages per payment** — 0 for the witness scheme (the broker
  can be fully offline during payments) vs 1 synchronous clearing call
  for the Chaum-style baseline;
* **witness load distribution** — payments fan out across merchants in
  proportion to their published witness ranges;
* **horizontal scaling** — N concurrent payments on the simulator finish
  in roughly the time of one (the witnesses work in parallel), instead of
  serializing through a central clearinghouse.
"""

import random

from repro.analysis.stats import Summary, mean
from repro.analysis.tables import render_table
from repro.core.system import EcashSystem
from repro.net.node import metered
from repro.net.services import BROKER_NODE, NetworkDeployment
from repro.net.sim import Future

from conftest import record

MERCHANTS = tuple(f"shop-{i}" for i in range(8))


def _gather(sim, futures):
    """Run the event loop until every future resolves."""
    done = Future()
    remaining = len(futures)

    def on_done(_):
        nonlocal remaining
        remaining -= 1
        if remaining == 0 and not done.done:
            done.set_result(None)

    for future in futures:
        future.add_callback(on_done)
    sim.run_until(done)
    return [future.result() for future in futures]


def run_concurrent_payments(payment_count: int, seed: int = 21):
    """N clients pay N different merchants simultaneously."""
    system = EcashSystem(merchant_ids=MERCHANTS, seed=seed)
    deployment = NetworkDeployment(system, seed=seed)
    prepared = []
    for index in range(payment_count):
        client_name = f"client-{index}"
        deployment.add_client(client_name)
        stored = deployment.run(
            deployment.withdrawal_process(
                client_name, system.standard_info(25, now=deployment.now())
            )
        )
        rng = random.Random(seed * 100 + index)
        merchant_id = rng.choice(
            [m for m in system.merchant_ids if m != stored.coin.witness_id]
        )
        prepared.append((client_name, stored, merchant_id))

    broker_requests_before = sum(
        1
        for entry in deployment.network.trace.entries
        if entry.destination == BROKER_NODE and entry.kind == "request"
    )
    start = deployment.sim.now
    futures = [
        deployment.sim.spawn(
            metered(
                deployment.payment_process(client_name, stored, merchant_id),
                deployment.network.cost_model,
                deployment.network.rng,
            )
        )
        for client_name, stored, merchant_id in prepared
    ]
    receipts = _gather(deployment.sim, futures)
    makespan = deployment.sim.now - start
    broker_requests_during = (
        sum(
            1
            for entry in deployment.network.trace.entries
            if entry.destination == BROKER_NODE and entry.kind == "request"
        )
        - broker_requests_before
    )
    witness_loads = {
        m: system.witness(m).signed_count for m in system.merchant_ids
    }
    return receipts, makespan, broker_requests_during, witness_loads


def test_broker_offline_during_payments(benchmark, results_dir):
    receipts, makespan, broker_requests, witness_loads = benchmark.pedantic(
        run_concurrent_payments, kwargs={"payment_count": 8}, rounds=1, iterations=1
    )
    individual = Summary.of([r.elapsed for r in receipts])
    record(
        results_dir,
        "ablation_broker_load",
        render_table(
            "Ablation: load placement during 8 concurrent payments",
            ["Quantity", "Witness scheme", "Online-broker baseline"],
            [
                ["broker messages per payment", broker_requests / len(receipts), 1],
                ["makespan (8 concurrent)", f"{makespan:.2f}s", "(serialized at broker)"],
                ["mean single-payment latency", f"{individual.mean:.2f}s", "-"],
                [
                    "witnesses sharing the load",
                    sum(1 for load in witness_loads.values() if load > 0),
                    0,
                ],
            ],
        ),
    )
    # The headline: the broker receives NOTHING during payments.
    assert broker_requests == 0
    # Horizontal scaling: 8 concurrent payments cost far less than 8 serial
    # ones (they overlap on independent witnesses).
    assert makespan < 0.6 * individual.mean * len(receipts)
    # More than one witness carried the load.
    assert sum(1 for load in witness_loads.values() if load > 0) >= 2


def test_witness_load_follows_ranges(benchmark, results_dir):
    """Section 4: bigger witness ranges => proportionally more coins."""

    def measure():
        weights = {"heavy": 6.0, "mid": 3.0, "light": 1.0}
        system = EcashSystem(
            merchant_ids=("heavy", "mid", "light"), weights=weights, seed=8
        )
        client = system.new_client()
        from repro.core.protocols import run_withdrawal

        counts = {m: 0 for m in weights}
        total = 120
        for _ in range(total):
            stored = run_withdrawal(
                client, system.broker, system.standard_info(1, now=0)
            )
            counts[stored.coin.witness_id] += 1
        return weights, counts, total

    weights, counts, total = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        results_dir,
        "ablation_witness_ranges",
        render_table(
            "Ablation: witness assignment follows published range weights (120 coins)",
            ["Merchant", "Weight share", "Assigned share"],
            [
                [m, f"{weights[m]/sum(weights.values()):.2f}", f"{counts[m]/total:.2f}"]
                for m in weights
            ],
        ),
    )
    shares = {m: counts[m] / total for m in weights}
    # Direction and rough magnitude (binomial noise at n=120 is ~±0.09).
    assert shares["heavy"] > shares["mid"] > shares["light"]
    assert abs(shares["heavy"] - 0.6) < 0.15
    assert abs(shares["light"] - 0.1) < 0.10
