"""Ablation: the paper's 2006 stack vs a production (OpenSSL-grade) stack.

Section 7 attributes most of Table 2's 1.8 s to interpreted bignum crypto
(footnote 7: 250 ms/signature native Python vs 4.8 ms OpenSSL) and argues
the protocol itself is network-bound. This ablation re-runs the exact
Table 2 experiment under the OpenSSL compute profile and shows the
crossover: payment latency collapses to WAN scale, landing under the
~0.9 s the paper measured for rendering an ad-supported page text-only —
i.e. with production crypto, paying is faster than looking at the ads.
"""

from repro.analysis.payment_bench import PAPER_AD_RENDER_SECONDS, run_payment_trials
from repro.analysis.tables import render_table
from repro.core.params import default_params
from repro.net.costmodel import openssl_profile, python2006_profile

from conftest import record

TRIALS = 40


def run_both():
    legacy = run_payment_trials(
        trials=TRIALS,
        params=default_params(),
        cost_model=python2006_profile(),
        seed=606,
    )
    modern = run_payment_trials(
        trials=TRIALS,
        params=default_params(),
        cost_model=openssl_profile(),
        seed=606,
    )
    return legacy, modern


def test_modern_crypto_makes_payment_network_bound(benchmark, results_dir):
    legacy, modern = benchmark.pedantic(run_both, rounds=1, iterations=1)
    record(
        results_dir,
        "ablation_modern_deployment",
        render_table(
            f"Ablation: payment latency by crypto stack ({TRIALS} trials each)",
            ["Stack", "avg", "st.dev", "min", "max"],
            [
                [
                    "python-2006 (Table 2 setting)",
                    f"{legacy.latency_ms.mean:.0f}ms",
                    f"{legacy.latency_ms.stdev:.0f}ms",
                    f"{legacy.latency_ms.minimum:.0f}ms",
                    f"{legacy.latency_ms.maximum:.0f}ms",
                ],
                [
                    "openssl profile (Section 7 projection)",
                    f"{modern.latency_ms.mean:.0f}ms",
                    f"{modern.latency_ms.stdev:.0f}ms",
                    f"{modern.latency_ms.minimum:.0f}ms",
                    f"{modern.latency_ms.maximum:.0f}ms",
                ],
                [
                    "ad page text-only render (paper survey)",
                    f"{PAPER_AD_RENDER_SECONDS*1000:.0f}ms",
                    "-",
                    "-",
                    "-",
                ],
            ],
        ),
    )
    # The paper's qualitative claims, quantified:
    # 1. the 2006 number is crypto-bound (compute >> network)...
    assert legacy.latency_ms.mean > 4 * modern.latency_ms.mean
    # 2. ...and a production deployment beats the ad-render yardstick,
    #    supporting "viable in real-world commercial environments".
    assert modern.latency_ms.mean < PAPER_AD_RENDER_SECONDS * 1000
    # 3. Bandwidth is unchanged by the crypto stack.
    assert abs(modern.client_bytes.mean - legacy.client_bytes.mean) < 50
