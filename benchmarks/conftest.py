"""Benchmark-suite helpers: result capture into benchmarks/results/."""

from __future__ import annotations

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where each benchmark writes its paper-style table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
