"""Benchmark-suite helpers: result capture into benchmarks/results/."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

from repro import obs

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> Path:
    """Directory where each benchmark writes its paper-style table."""
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def record(results_dir: Path, name: str, text: str) -> None:
    """Persist a rendered table and echo it to the terminal."""
    (results_dir / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)


@pytest.fixture(autouse=True)
def benchmark_metrics(request: pytest.FixtureRequest):
    """Collect telemetry around each benchmark, snapshot it to results/.

    Every benchmark runs with the obs facade enabled and a clean registry;
    afterwards the combined metrics + span snapshot lands in
    ``benchmarks/results/<test_name>.metrics.json`` so a run's telemetry
    can be diffed across commits alongside the rendered tables.
    """
    obs.reset()
    was_enabled = obs.is_enabled()
    obs.enable()
    yield
    snapshot = obs.export_json()
    if not was_enabled:
        obs.disable()
    obs.reset()
    RESULTS_DIR.mkdir(exist_ok=True)
    safe = re.sub(r"[^A-Za-z0-9_.-]+", "_", request.node.name)
    (RESULTS_DIR / f"{safe}.metrics.json").write_text(snapshot + "\n")
