"""Reproduces the Section 7 advertisement comparison.

The paper surveys a popular ad-supported site (CNN.com): "it serves up
37.13KB in two ad images and associated links", and a text-only render
takes ~0.9 s. The payment protocol's client transfer is ~1.6 KB — "our
protocol is more efficient than advertisement image-based payment from a
network utilization standpoint."
"""

from repro.analysis.payment_bench import (
    PAPER_AD_PAGE_BYTES,
    PAPER_AD_RENDER_SECONDS,
    ad_comparison,
)
from repro.analysis.tables import render_table

from conftest import record


def test_ad_comparison(benchmark, results_dir):
    comparison = benchmark.pedantic(
        ad_comparison, kwargs={"trials": 10, "seed": 5}, rounds=1, iterations=1
    )
    record(
        results_dir,
        "text_ad_comparison",
        render_table(
            "Section 7: payment traffic vs ad-supported page",
            ["Quantity", "Bytes", "Notes"],
            [
                ["ad page (2 images + links)", f"{comparison.ad_page_bytes:.0f}", "paper survey: 37.13KB"],
                ["payment, client sent", f"{comparison.payment_client_bytes:.0f}", "paper: ~1.6KB"],
                ["payment, merchant total", f"{comparison.payment_merchant_bytes:.0f}", "paper: ~4KB"],
                ["payment, witness total", f"{comparison.payment_witness_bytes:.0f}", "paper: ~4KB"],
                ["text-only page render", f"~{PAPER_AD_RENDER_SECONDS}s", "paper's latency yardstick"],
            ],
        ),
    )
    # The paper's conclusion: payments are far cheaper than ads.
    assert comparison.payment_is_cheaper
    assert comparison.payment_client_bytes < PAPER_AD_PAGE_BYTES / 10
    assert comparison.payment_merchant_bytes < PAPER_AD_PAGE_BYTES / 4
