"""Reproduces **Table 1**: number of cryptographic operations.

For every protocol (withdrawal, payment, deposit, coin renewal) and every
party, counts the modular exponentiations, hashes, signature generations
and verifications our implementation performs, and checks each cell
against the paper's Table 1. Also reproduces the Section 7 in-text claims
about the double-spending case (merchant: +2 Exp, −1 Ver; witness: at most
2 Exp).
"""

from repro.analysis.opcount import (
    PAPER_TABLE1,
    measure_double_spend_deltas,
    measure_table1,
    render_table1,
)
from repro.analysis.tables import render_table

from conftest import record


def test_table1_operation_counts(benchmark, results_dir):
    rows = benchmark.pedantic(measure_table1, rounds=3, iterations=1)
    record(results_dir, "table1_crypto_ops", render_table1(rows))
    for row in rows:
        assert row.matches, (
            f"{row.protocol}/{row.party}: measured {row.measured}, paper {row.paper}"
        )


def test_table1_double_spend_deltas(benchmark, results_dir):
    deltas = benchmark.pedantic(measure_double_spend_deltas, rounds=3, iterations=1)
    body = [
        [party, counts["Exp"], counts["Hash"], counts["Sig"], counts["Ver"]]
        for party, counts in deltas.items()
    ]
    record(
        results_dir,
        "table1_double_spend_case",
        render_table(
            "Section 7 double-spend case: ops for the refused second spend",
            ["Party", "Exp", "Hash", "Sig", "Ver"],
            body,
        ),
    )
    happy_merchant = PAPER_TABLE1[("Payment", "Merchant")]
    assert deltas["Merchant"]["Exp"] == happy_merchant[0] + 2  # "+2 exponentiations"
    assert deltas["Merchant"]["Ver"] == happy_merchant[3] - 1  # "one verification less"
    assert deltas["Witness"]["Exp"] <= 2  # "only two exponentiations"
