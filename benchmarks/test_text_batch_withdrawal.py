"""Reproduces the Algorithm 1 step 0 claim about batched purchases.

"Client can buy several coins at a time (saving on communication cost),
but the computation below have to be performed independently for each
coin to ensure they are unlinkable."

Measured: messages and client bytes for withdrawing K coins batched
(2 messages total) vs separately (2K messages), and the per-coin
computation staying identical (the unlinkability requirement).
"""

from repro.analysis.tables import render_table
from repro.core.system import EcashSystem
from repro.crypto.counters import OpCounter
from repro.net.costmodel import instant_profile
from repro.net.services import NetworkDeployment

from conftest import record

BATCH = 5


def measure(batched: bool, seed: int = 600):
    system = EcashSystem(seed=seed)
    deployment = NetworkDeployment(system, cost_model=instant_profile(), seed=seed)
    deployment.add_client("c")
    infos = [system.standard_info(25, now=0) for _ in range(BATCH)]
    node = deployment.network.node("c")
    if batched:
        coins = deployment.run(deployment.batch_withdrawal_process("c", infos))
    else:
        coins = [deployment.run(deployment.withdrawal_process("c", info)) for info in infos]
    assert len(coins) == BATCH
    return node.meter.messages_sent, node.meter.sent_bytes, coins


def count_client_ops_for_batch(size: int, seed: int = 601) -> tuple[int, int, int, int]:
    """Client-side crypto operation totals for one batched withdrawal."""
    system = EcashSystem(seed=seed)
    client = system.new_client()
    infos = [system.standard_info(25, now=0) for _ in range(size)]
    ticket, challenges = system.broker.begin_batch_withdrawal(infos)
    counter = OpCounter()
    with counter:
        sessions = [
            client.begin_withdrawal(info, challenge)
            for info, challenge in zip(infos, challenges)
        ]
    responses = system.broker.complete_batch_withdrawal(ticket, [s.e for s in sessions])
    with counter:
        for info, session, response in zip(infos, sessions, responses):
            client.finish_withdrawal(session, response, system.broker.tables[info.list_version])
    return counter.snapshot()


def test_batch_withdrawal_saves_communication(benchmark, results_dir):
    batched_messages, batched_bytes, batched_coins = benchmark.pedantic(
        measure, kwargs={"batched": True}, rounds=1, iterations=1
    )
    separate_messages, separate_bytes, _ = measure(batched=False)

    # "the computation below have to be performed independently for each
    # coin": the client's crypto for a K-batch is exactly K times the
    # single-coin Table 1 row (12 Exp / 4 Hash / 0 Sig / 1 Ver).
    exp, hashes, sigs, vers = count_client_ops_for_batch(BATCH)
    assert (exp, hashes, sigs, vers) == (12 * BATCH, 4 * BATCH, 0, BATCH)

    record(
        results_dir,
        "text_batch_withdrawal",
        render_table(
            f"Algorithm 1 step 0: withdrawing {BATCH} coins batched vs separately",
            ["Quantity", "Batched", "Separate", "Saving"],
            [
                [
                    "client messages sent",
                    batched_messages,
                    separate_messages,
                    f"{separate_messages - batched_messages}",
                ],
                [
                    "client bytes sent",
                    batched_bytes,
                    separate_bytes,
                    f"{100 * (1 - batched_bytes / separate_bytes):.0f}%",
                ],
                ["rounds to broker", 2, 2 * BATCH, f"{2 * BATCH - 2}"],
                [
                    "client crypto ops (Exp)",
                    exp,
                    12 * BATCH,
                    "none (independence keeps coins unlinkable)",
                ],
            ],
        ),
    )
    assert batched_messages == 2
    assert separate_messages == 2 * BATCH
    assert batched_bytes < separate_bytes
    # Unlinkability requirement: independent signatures and secrets.
    signatures = {c.coin.bare.signature for c in batched_coins}
    assert len(signatures) == BATCH
