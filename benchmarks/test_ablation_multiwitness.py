"""Ablation: single witness vs the paper's "three witnesses, any two sign".

Section 4 proposes k-of-n witness assignment to reduce the probability
that a coin is unusable because its witness is down, with renewal (soft
expiry) as the fallback. This benchmark sweeps witness availability and
compares coin usability under 1-of-1 and 2-of-3, both analytically and by
Monte-Carlo over actual k-of-n spend attempts with churned witnesses.
"""

import random

import pytest

from repro.analysis.stats import mean
from repro.analysis.tables import render_table
from repro.core.multiwitness import MultiWitnessCoin, MultiWitnessService, assign_witnesses, spend_multi
from repro.core.protocols import run_withdrawal
from repro.core.system import EcashSystem
from repro.net.churn import k_of_n_availability

from conftest import record

AVAILABILITIES = [0.5, 0.7, 0.8, 0.9, 0.95, 0.99]
MERCHANTS = tuple(f"m{i}" for i in range(10))


def simulate_usability(availability: float, n: int, k: int, coins: int = 40, seed: int = 0):
    """Fraction of fresh coins spendable when each witness is up w.p. ``availability``."""
    system = EcashSystem(merchant_ids=MERCHANTS, seed=seed)
    client = system.new_client()
    rng = random.Random(seed * 7 + 1)
    successes = 0
    for index in range(coins):
        stored = run_withdrawal(client, system.broker, system.standard_info(5, now=0))
        entries = assign_witnesses(
            system.params, system.broker.current_table, stored.coin.bare, n
        )
        coin = MultiWitnessCoin(bare=stored.coin.bare, entries=entries, threshold=k)
        witnesses = {}
        for merchant_id in coin.witness_ids:
            witnesses[merchant_id] = MultiWitnessService(
                params=system.params,
                merchant_id=merchant_id,
                keypair=system.nodes[merchant_id].merchant.keypair,
                broker_sign_public=system.broker.sign_public,
                up=rng.random() < availability,
            )
        result = spend_multi(
            system.params, coin, stored.secrets, witnesses, "shop", now=10
        )
        successes += result.succeeded
    return successes / coins


def run_sweep():
    rows = []
    for availability in AVAILABILITIES:
        single_analytic = k_of_n_availability(availability, 1, 1)
        multi_analytic = k_of_n_availability(availability, 3, 2)
        single_measured = simulate_usability(availability, n=1, k=1, seed=3)
        multi_measured = simulate_usability(availability, n=3, k=2, seed=4)
        rows.append(
            (availability, single_analytic, single_measured, multi_analytic, multi_measured)
        )
    return rows


def test_multiwitness_availability_sweep(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record(
        results_dir,
        "ablation_multiwitness",
        render_table(
            'Ablation (Section 4): coin usability, 1 witness vs "3 witnesses, any 2 sign"',
            ["witness availability", "1-of-1 analytic", "1-of-1 sim", "2-of-3 analytic", "2-of-3 sim"],
            [
                [f"{a:.2f}", f"{s:.3f}", f"{sm:.3f}", f"{m:.3f}", f"{mm:.3f}"]
                for a, s, sm, m, mm in rows
            ],
        ),
    )
    for availability, single_analytic, single_sim, multi_analytic, multi_sim in rows:
        # The paper's claim: multiple witnesses decrease unusability.
        # (p = 0.5 is the exact crossover of the 2-of-3 curve: p^3 +
        # 3p^2(1-p) = p there; strictly better only above it.)
        if 0.5 < availability < 1.0:
            assert multi_analytic > single_analytic
        else:
            assert multi_analytic >= single_analytic - 1e-12
        # Simulation tracks the analytic curve.
        assert abs(single_sim - single_analytic) < 0.25
        assert abs(multi_sim - multi_analytic) < 0.25
    # At realistic merchant availability (0.9+), 2-of-3 pushes usability
    # into the high 90s even when a single witness would fail 10% of coins.
    high = dict((row[0], row) for row in rows)[0.9]
    assert high[3] > 0.97


def test_renewal_recovers_unusable_coins(benchmark, results_dir):
    """The second mitigation: a coin whose witness is gone is renewed for a
    fresh coin with a (probably) different witness."""

    def renewal_recovery():
        system = EcashSystem(merchant_ids=MERCHANTS, seed=9)
        client = system.new_client()
        recovered = 0
        total = 20
        for _ in range(total):
            stored = run_withdrawal(client, system.broker, system.standard_info(5, now=0))
            # Witness permanently gone: client renews instead of spending.
            from repro.core.protocols import run_renewal

            fresh = run_renewal(
                client, stored, system.broker, system.standard_info(5, now=100), now=100
            )
            recovered += fresh.coin.witness_id in system.merchant_ids
        return recovered / total

    rate = benchmark.pedantic(renewal_recovery, rounds=1, iterations=1)
    assert rate == 1.0
