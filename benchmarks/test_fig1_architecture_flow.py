"""Reproduces **Figure 1**: the high-level system architecture.

Figure 1 is the paper's message-flow diagram: merchants register with the
broker and leave security deposits; clients buy (blind-signed) coins; a
payment goes client -> witness (commitment), client -> merchant, merchant
-> witness (transcript signature); merchants cash signed transcripts at
the broker, which settles against the bank. This benchmark replays the
complete lifecycle on the simulated network and asserts the message trace
contains exactly the arrows of Figure 1, then renders an ASCII version of
the figure from the observed trace.
"""

from repro.core.system import EcashSystem
from repro.net.services import NetworkDeployment

from conftest import record

FIGURE1_FLOW = [
    # (step label, method, from-role, to-role)
    ("1. buy coins (blind withdrawal)", "withdraw/begin", "client", "broker"),
    ("   unblind + witness attach", "withdraw/complete", "client", "broker"),
    ("2. request witness commitment", "witness/commit", "client", "witness"),
    ("3. pay with coin + commitment", "pay", "client", "merchant"),
    ("4. witness signs transcript", "witness/sign", "merchant", "witness"),
    ("5. deposit signed transcript", "deposit", "merchant", "broker"),
]


def run_lifecycle():
    system = EcashSystem(seed=41)
    deployment = NetworkDeployment(system, seed=41)
    deployment.add_client("client-0")
    info = system.standard_info(25, now=0)
    stored = deployment.run(deployment.withdrawal_process("client-0", info))
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    deployment.run(deployment.payment_process("client-0", stored, merchant_id))
    deployment.run(deployment.deposit_process(merchant_id))
    return system, deployment, stored, merchant_id


def test_figure1_message_flow(benchmark, results_dir):
    system, deployment, stored, merchant_id = benchmark.pedantic(
        run_lifecycle, rounds=1, iterations=1
    )
    trace = deployment.network.trace
    assert trace.methods() == [method for _, method, _, _ in FIGURE1_FLOW]

    roles = {
        "broker": "broker",
        "client-0": "client",
        stored.coin.witness_id: "witness",
        merchant_id: "merchant",
    }
    lines = ["Figure 1. High-level view of the E-cash system (observed trace)", ""]
    requests = [e for e in trace.entries if e.kind == "request"]
    for (label, method, expected_src, expected_dst), entry in zip(FIGURE1_FLOW, requests):
        source_role = roles[entry.source]
        destination_role = roles[entry.destination]
        assert source_role == expected_src, f"{method}: {source_role} != {expected_src}"
        assert destination_role == expected_dst
        lines.append(
            f"  {label:<38} {source_role:>8} --[{method}, {entry.size_bytes}B]--> "
            f"{destination_role}"
        )
    lines.append("")
    lines.append(
        "  registration/security deposits and bank settlement happen out of band:"
    )
    for merchant in system.merchant_ids:
        lines.append(
            f"    {merchant:>12} escrow at broker: "
            f"{system.broker.security_deposit_balance(merchant)} cents"
        )
    lines.append(
        f"    merchant {merchant_id!r} revenue after settlement: "
        f"{system.broker.merchant_balance(merchant_id)} cents"
    )
    record(results_dir, "fig1_architecture_flow", "\n".join(lines))

    # Figure 1's economics: money is conserved end to end.
    assert system.broker.merchant_balance(merchant_id) == 25
    assert system.ledger.conserved()
