"""Reproduces the Section 7 round-count claims.

"The withdrawal and renewal protocols each require two rounds of message
exchange between the broker and client, and payment requires 3 rounds of
message exchange (2 for payment, and 1 for commitment). The deposit
protocol is one-sided, only requiring the merchant to send one message to
the broker."
"""

from repro.analysis.payment_bench import PAPER_ROUNDS, measure_message_rounds
from repro.analysis.tables import render_table

from conftest import record


def test_message_rounds(benchmark, results_dir):
    rounds = benchmark.pedantic(measure_message_rounds, rounds=3, iterations=1)
    record(
        results_dir,
        "text_message_rounds",
        render_table(
            "Section 7: message rounds per protocol (measured vs paper)",
            ["Protocol", "Measured", "Paper"],
            [[name, rounds[name], PAPER_ROUNDS[name]] for name in PAPER_ROUNDS],
        ),
    )
    assert rounds == PAPER_ROUNDS
