"""Ablation: routing cost of the DHT alternative (Section 2).

The WhoPay/Hoepman baseline queries a Chord overlay on *every payment* —
"queried using a DHT routing layer such as Chord". Each query costs
O(log N) overlay hops of WAN latency, where the witness scheme's check is
a single direct round trip to a known witness. This benchmark measures
Chord lookup hops across overlay sizes and converts them to the latency
tax a DHT-based check would add per payment.
"""

import math
import random

from repro.analysis.stats import Summary
from repro.analysis.tables import render_table
from repro.net.chord import ChordRing

from conftest import record

SIZES = [16, 64, 256, 1024]
LOOKUPS = 300
ONE_WAY_MS = 35.0  # per overlay hop, the paper's WAN scale


def measure_hops(size: int, seed: int = 50) -> Summary:
    ring = ChordRing([f"peer-{i}" for i in range(size)], successor_list_size=3)
    rng = random.Random(seed)
    hops = [
        float(ring.lookup(rng.getrandbits(64), start=rng.choice(ring.nodes)).hops)
        for _ in range(LOOKUPS)
    ]
    return Summary.of(hops)


def test_chord_lookup_scales_logarithmically(benchmark, results_dir):
    summaries = benchmark.pedantic(
        lambda: [measure_hops(size) for size in SIZES], rounds=1, iterations=1
    )
    rows = []
    for size, summary in zip(SIZES, summaries):
        dht_latency_ms = summary.mean * ONE_WAY_MS
        rows.append(
            [
                size,
                f"{summary.mean:.1f}",
                f"{summary.maximum:.0f}",
                f"{math.log2(size):.1f}",
                f"{dht_latency_ms:.0f}ms",
                f"{2 * ONE_WAY_MS:.0f}ms",
            ]
        )
    record(
        results_dir,
        "ablation_chord_routing",
        render_table(
            f"Ablation: spent-coin check routing cost ({LOOKUPS} lookups per size, "
            f"{ONE_WAY_MS:.0f}ms/hop)",
            [
                "overlay size",
                "avg hops",
                "max hops",
                "log2(N)",
                "DHT check latency",
                "witness check (1 RTT)",
            ],
            rows,
        ),
    )
    by_size = dict(zip(SIZES, summaries))
    for size, summary in by_size.items():
        # O(log N): average hops bounded by log2(N) + slack, never linear.
        assert summary.mean <= math.log2(size) + 2
        assert summary.maximum <= 3 * math.log2(size)
    # The hop count grows with N while the witness check stays at one RTT:
    # at 1024 peers the DHT check costs several witness-checks' worth.
    assert by_size[1024].mean * ONE_WAY_MS > 2 * (2 * ONE_WAY_MS)
    # Monotone-ish growth across the sweep.
    assert by_size[1024].mean > by_size[16].mean
