"""Ablation: the witness scheme vs the related-work baselines (Section 2).

Sweeps the fraction of compromised overlay nodes and compares double-spend
defenses:

* **witness scheme (this paper)** — detection stays certain: either the
  honest witness refuses with an extraction proof, or a faulty witness
  signs twice and the broker pays the cheated merchant from the witness's
  security deposit (the merchant is never left holding the loss);
* **DHT spent-coin DB (WhoPay/Hoepman)** — detection probability decays as
  compromised replicas suppress records ("can only support probabilistic
  guarantees");
* **online broker (Chaum)** — perfect detection but a single point of
  failure: broker down means zero payments anywhere;
* **offline detect-at-deposit (Chaum-Fiat-Naor/Brands)** — merchants
  accept fraudulent payments in real time; only identities are recovered
  later.
"""

import random

import pytest

from repro.analysis.stats import mean
from repro.analysis.tables import render_table
from repro.baselines.dht_spent_db import DhtSpentCoinDb, predicted_detection_rate
from repro.core.broker import DepositOutcome
from repro.core.exceptions import DoubleSpendError
from repro.core.protocols import run_deposit, run_payment, run_withdrawal
from repro.core.system import EcashSystem

from conftest import record

FRACTIONS = [0.0, 0.1, 0.3, 0.5, 0.7]
OVERLAY = [f"merchant-{i}" for i in range(50)]
MERCHANTS = tuple(f"m{i}" for i in range(6))


def witness_scheme_merchant_protection(compromised_fraction: float, coins: int, seed: int) -> float:
    """Fraction of double-spend attempts where no honest merchant loses money.

    A compromised witness *signs* the conflicting transcript, but the
    deposit protocol pays the second merchant from the witness's security
    deposit — so the merchant-protection rate is 1.0 regardless of the
    compromised fraction. This is the paper's "hard, rather than
    probabilistic, guarantee".
    """
    system = EcashSystem(merchant_ids=MERCHANTS, seed=seed)
    rng = random.Random(seed + 1)
    client = system.new_client()
    protected = 0
    for index in range(coins):
        stored = run_withdrawal(client, system.broker, system.standard_info(5, now=0))
        witness = system.witness_of(stored)
        witness.faulty = rng.random() < compromised_fraction
        candidates = [m for m in system.merchant_ids if m != stored.coin.witness_id]
        first, second = candidates[0], candidates[1]
        now = 1000 * index + 10
        run_payment(client, stored, system.merchant(first), witness, now)
        client.wallet.add(stored)
        try:
            run_payment(client, stored, system.merchant(second), witness, now + 400)
        except DoubleSpendError:
            protected += 1  # real-time refusal with proof: nobody loses
            continue
        # Faulty witness signed twice: settle both deposits at the broker.
        results_first = run_deposit(system.merchant(first), system.broker, now + 500)
        results_second = run_deposit(system.merchant(second), system.broker, now + 600)
        second_result = results_second[0]
        if (
            results_first[0].outcome is DepositOutcome.CREDITED
            and second_result.outcome is DepositOutcome.CREDITED_FROM_WITNESS_DEPOSIT
        ):
            protected += 1  # both merchants paid; the witness footed the bill
    return protected / coins


def dht_detection(compromised_fraction: float, attempts: int, seed: int) -> float:
    db = DhtSpentCoinDb(
        OVERLAY, replication=3, compromised_fraction=compromised_fraction, seed=seed
    )
    return db.double_spend_detection_rate(attempts=attempts, key_seed=seed)


def run_sweep():
    rows = []
    for fraction in FRACTIONS:
        witness_rate = witness_scheme_merchant_protection(fraction, coins=8, seed=11)
        dht_rates = [dht_detection(fraction, attempts=80, seed=s) for s in range(5)]
        rows.append((fraction, witness_rate, mean(dht_rates), predicted_detection_rate(fraction, 3)))
    return rows


def test_detection_vs_compromised_fraction(benchmark, results_dir):
    rows = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    record(
        results_dir,
        "ablation_baselines_detection",
        render_table(
            "Ablation (Section 2): double-spend defense vs compromised overlay fraction",
            [
                "compromised f",
                "witness scheme (merchant protected)",
                "DHT r=3 (detected, sim)",
                "DHT r=3 (1-f^r)",
            ],
            [
                [f"{f:.1f}", f"{w:.3f}", f"{d:.3f}", f"{p:.3f}"]
                for f, w, d, p in rows
            ],
        ),
    )
    for fraction, witness_rate, dht_rate, predicted in rows:
        # The headline: the witness scheme's guarantee is flat at 1.0.
        assert witness_rate == 1.0
        # The DHT's guarantee decays with f and tracks 1 - f^r.
        assert abs(dht_rate - predicted) < 0.2
    assert rows[-1][2] < rows[0][2]  # strictly worse at high compromise


def test_online_broker_single_point_of_failure(benchmark, results_dir):
    """Online clearing: broker down => zero payments; witness scheme:
    broker down => payments unaffected."""

    def measure():
        from repro.baselines.online_broker import OnlineBroker
        from repro.core.exceptions import ServiceUnavailableError

        system = EcashSystem(merchant_ids=MERCHANTS, seed=13)
        client = system.new_client()
        online = OnlineBroker(params=system.params, broker=system.broker)
        coins = [
            run_withdrawal(client, system.broker, system.standard_info(5, now=0))
            for _ in range(6)
        ]
        online.online = False  # the trusted third party goes down
        online_successes = 0
        for stored in coins[:3]:
            try:
                online.spend_online(stored, "shop", now=10)
                online_successes += 1
            except ServiceUnavailableError:
                pass
        witness_successes = 0
        for stored in coins[3:]:
            merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
            run_payment(
                client, stored, system.merchant(merchant_id), system.witness_of(stored), now=10
            )
            witness_successes += 1
        return online_successes, witness_successes

    online_successes, witness_successes = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        results_dir,
        "ablation_baselines_spof",
        render_table(
            "Ablation: payments completing while the broker is offline",
            ["Scheme", "Payments attempted", "Completed"],
            [
                ["online broker (Chaum)", 3, online_successes],
                ["witness scheme (paper)", 3, witness_successes],
            ],
        ),
    )
    assert online_successes == 0
    assert witness_successes == 3


def test_offline_scheme_fraud_exposure(benchmark, results_dir):
    """Detect-at-deposit lets every fraudulent payment through in real
    time; the witness scheme blocks the second spend immediately."""

    def measure():
        from repro.baselines.offline_detection import OfflineBank, OfflineSpender
        from repro.core.params import test_params as make_test_params

        params = make_test_params()
        bank = OfflineBank(params=params)
        spender = OfflineSpender(params=params, account_secret=424242, rng=random.Random(3))
        bank.register("mallory", spender.identity)
        coin, secrets = spender.mint_coin()
        payments = [spender.pay(coin, secrets, f"shop-{i}", timestamp=i) for i in range(8)]
        accepted = sum(1 for p in payments if p.verify(params))
        detected_at = None
        for index, payment in enumerate(payments):
            if bank.deposit(payment) is not None and detected_at is None:
                detected_at = index
        return accepted, detected_at

    accepted, detected_at = benchmark.pedantic(measure, rounds=1, iterations=1)
    record(
        results_dir,
        "ablation_baselines_offline_exposure",
        render_table(
            "Ablation: offline detect-at-deposit fraud exposure (8 spends of one coin)",
            ["Quantity", "Value"],
            [
                ["fraudulent payments accepted in real time", accepted],
                ["first detection (deposit index)", detected_at],
                ["witness scheme: payments accepted after the first", 0],
            ],
        ),
    )
    assert accepted == 8  # every fraud succeeded at payment time
    assert detected_at == 1  # caught only when the second deposit arrived
