"""Reproduces the Section 7 compute-vs-network claim.

"Round-trip time on WAN is expected to be at least 50-100 ms (observed on
PlanetLab nodes in the US), while the aggregated computational complexity
per transaction is expected to be 30 ms or less when implemented in
OpenSSL (on a P4 3.2 GHz desktop)" — i.e. with production crypto the
payment protocol is network-bound, not compute-bound.
"""

from repro.analysis.payment_bench import (
    PAPER_OPENSSL_COMPUTE_MS,
    PAPER_WAN_RTT_RANGE_MS,
    compute_vs_network,
)
from repro.analysis.tables import render_table
from repro.net.latency import Region, planetlab_us

from conftest import record


def test_compute_vs_network(benchmark, results_dir):
    breakdown = benchmark.pedantic(compute_vs_network, rounds=3, iterations=1)
    model = planetlab_us(seed=0)
    rtts = {
        "WI-CA (client-witness)": model.mean_rtt(Region.WISCONSIN, Region.CALIFORNIA),
        "WI-MA (client-merchant)": model.mean_rtt(Region.WISCONSIN, Region.MASSACHUSETTS),
        "CA-MA (witness-merchant)": model.mean_rtt(Region.CALIFORNIA, Region.MASSACHUSETTS),
    }
    record(
        results_dir,
        "text_compute_vs_network",
        render_table(
            "Section 7: per-payment compute vs network (OpenSSL profile)",
            ["Quantity", "Measured", "Paper"],
            [
                ["aggregate compute / txn", f"{breakdown.compute_ms:.1f} ms", "<= 30 ms"],
                ["network time / payment", f"{breakdown.network_ms:.0f} ms", "(6 WAN hops)"],
                *[
                    [f"RTT {name}", f"{rtt*1000:.0f} ms", "50-100 ms"]
                    for name, rtt in rtts.items()
                ],
            ],
        ),
    )
    assert breakdown.compute_ms <= PAPER_OPENSSL_COMPUTE_MS
    assert breakdown.network_ms > breakdown.compute_ms  # network-bound
    low, high = PAPER_WAN_RTT_RANGE_MS
    for rtt in rtts.values():
        assert low <= rtt * 1000 <= high
