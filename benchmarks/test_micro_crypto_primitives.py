"""Real wall-clock micro-benchmarks of the cryptographic primitives.

Context: footnote 7 — "the average wall-clock time for an RSA signature is
250ms [2006 native Python], compared to 4.8ms using OpenSSL". These
benchmarks measure what the same primitives cost on *this* machine with
modern CPython bignums, the third point on that curve. They use the
paper's parameter sizes (1024-bit p, 160-bit q).
"""

import random

import pytest

from repro.core.params import default_params
from repro.crypto.blind import BlindSession, PartiallyBlindSigner, verify as blind_verify
from repro.crypto.representation import RepresentationPair, respond, verify_response
from repro.crypto.schnorr import SchnorrKeyPair

PARAMS = default_params()
RNG = random.Random(1)
INFO = ("denom", 25, "v", 1, "soft", 100, "hard", 200)


@pytest.fixture(scope="module")
def keypair():
    return SchnorrKeyPair.generate(PARAMS.group, RNG)


@pytest.fixture(scope="module")
def signer():
    return PartiallyBlindSigner(PARAMS.group, PARAMS.hashes, rng=RNG)


def test_bench_modular_exponentiation(benchmark):
    exponent = PARAMS.group.random_scalar(RNG)
    benchmark(pow, PARAMS.group.g, exponent, PARAMS.group.p)


def test_bench_schnorr_sign(benchmark, keypair):
    benchmark(keypair.sign, "payment-transcript", 1234567890)


def test_bench_schnorr_verify(benchmark, keypair):
    signature = keypair.sign("payment-transcript", 1234567890)
    result = benchmark(keypair.verify, signature, "payment-transcript", 1234567890)
    assert result


def test_bench_hash_to_group(benchmark):
    benchmark(PARAMS.hashes.F, *INFO)


def test_bench_blind_signature_full_session(benchmark, signer):
    message = (PARAMS.group.random_element(RNG), PARAMS.group.random_element(RNG))

    def session():
        challenge, state = signer.start(INFO)
        client = BlindSession.start(
            PARAMS.group, PARAMS.hashes, signer.public, INFO, message, challenge, RNG
        )
        response = signer.respond(state, client.e)
        return client.finish(response)

    signature = benchmark(session)
    assert blind_verify(PARAMS.group, PARAMS.hashes, signer.public, INFO, message, signature)


def test_bench_blind_signature_verify(benchmark, signer):
    message = (PARAMS.group.random_element(RNG), PARAMS.group.random_element(RNG))
    challenge, state = signer.start(INFO)
    client = BlindSession.start(
        PARAMS.group, PARAMS.hashes, signer.public, INFO, message, challenge, RNG
    )
    signature = client.finish(signer.respond(state, client.e))
    result = benchmark(
        blind_verify, PARAMS.group, PARAMS.hashes, signer.public, INFO, message, signature
    )
    assert result


def test_bench_representation_prove_and_verify(benchmark):
    secrets = RepresentationPair.generate(PARAMS.group, RNG)
    commitment_a, commitment_b = secrets.commitments(PARAMS.group)
    d = PARAMS.group.random_scalar(RNG)

    def prove_verify():
        response = respond(secrets, d, PARAMS.group.q)
        return verify_response(PARAMS.group, commitment_a, commitment_b, d, response)

    assert benchmark(prove_verify)
