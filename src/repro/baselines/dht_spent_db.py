"""Baseline: DHT-based spent-coin database (WhoPay / Hoepman).

Section 2: WhoPay "suggests a mechanism for real-time double-spending
detection by which the P2P system is used as a distributed database for
spent coins and queried using a DHT routing layer such as Chord", and the
paper's criticism is that "neither approach can provide hard guarantees
against double-spending, especially when some fraction of P2P nodes are
compromised".

This module implements that design over the real Chord ring of
:mod:`repro.net.chord`: spending a coin records it on the replica set of
``h(coin)``; a merchant accepting a coin first queries the replica set.
Malicious replicas suppress both writes and reads, so detection is
probabilistic in the compromised fraction — the curve the baseline
ablation benchmark sweeps, against the witness scheme's flat 100%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.net.chord import ChordRing


@dataclass(frozen=True)
class DhtCheckResult:
    """Outcome of one spend attempt through the DHT."""

    accepted: bool
    detected_double_spend: bool
    lookup_hops: int


class DhtSpentCoinDb:
    """A spent-coin database spread over a (partially compromised) DHT.

    Args:
        merchant_names: the P2P overlay membership.
        replication: replica-set size for each coin record.
        compromised_fraction: fraction of overlay nodes that suppress
            spent-coin records (store nothing, report nothing).
        seed: adversary placement seed.
    """

    def __init__(
        self,
        merchant_names: list[str],
        replication: int = 3,
        compromised_fraction: float = 0.0,
        seed: int = 0,
    ) -> None:
        self.ring = ChordRing(merchant_names, successor_list_size=max(replication, 3))
        self.replication = replication
        self.rng = random.Random(seed)
        self.compromised = set()
        if compromised_fraction > 0:
            self.compromised = {
                node.name
                for node in self.ring.compromise_fraction(compromised_fraction, self.rng)
            }

    def spend(self, coin_key: int, merchant_id: str) -> DhtCheckResult:
        """Attempt to spend a coin at ``merchant_id``.

        The merchant queries the replica set for an existing spend record;
        if none is visible, it accepts and records the spend. A malicious
        *paying* merchant would skip the check entirely, but the attack the
        paper worries about is subtler: honest merchants whose view of the
        database is silently censored by compromised replicas.
        """
        lookup = self.ring.lookup(coin_key)
        existing = self.ring.get(coin_key)
        if existing:
            return DhtCheckResult(
                accepted=False, detected_double_spend=True, lookup_hops=lookup.hops
            )
        self.ring.put(coin_key, merchant_id)
        return DhtCheckResult(
            accepted=True, detected_double_spend=False, lookup_hops=lookup.hops
        )

    def double_spend_detection_rate(self, attempts: int, key_seed: int = 0) -> float:
        """Monte-Carlo P(second spend of a coin is detected).

        Each trial spends a fresh coin once, then tries to spend it again
        at another merchant; the rate of second-spend refusals is the
        detection probability. With compromised fraction ``f`` and
        replication ``r`` this approaches ``1 - f^r`` (a record survives
        unless every replica suppressed it).
        """
        rng = random.Random(key_seed)
        detected = 0
        for _ in range(attempts):
            coin_key = rng.getrandbits(63)
            first = self.spend(coin_key, "merchant-a")
            second = self.spend(coin_key, "merchant-b")
            if not first.accepted:
                # Freak key collision with an earlier trial; skip silently
                # by counting it as detected (the record was visible).
                detected += 1
            elif second.detected_double_spend:
                detected += 1
        return detected / attempts if attempts else 0.0


def predicted_detection_rate(compromised_fraction: float, replication: int) -> float:
    """The analytic approximation ``1 - f^r``."""
    if not 0 <= compromised_fraction <= 1:
        raise ValueError("fraction must be in [0, 1]")
    return 1.0 - compromised_fraction**replication


__all__ = ["DhtSpentCoinDb", "DhtCheckResult", "predicted_detection_rate"]
