"""Baseline: Chaum-style online clearing (CRYPTO 1982).

The first untraceable e-cash design "required an on-line broker to clear
coins before merchants would provide their services" (Section 2). We reuse
the same Abe-Okamoto withdrawal as the main scheme so coins are identical;
the only difference is the payment path: the merchant synchronously asks
the *broker* — not a witness — whether the coin was spent, and the broker
records it.

Properties demonstrated by the baseline benchmarks:

* detection is perfect (the broker sees every coin), but
* the broker is a single point of failure: if it is down, **no** payment
  anywhere can complete, whereas in the witness scheme only the coins of
  the affected witness stall; and
* every payment in the whole economy adds load to one server.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.broker import Broker
from repro.core.client import StoredCoin
from repro.core.coin import BareCoin
from repro.core.exceptions import DoubleSpendError, InvalidCoinError, ServiceUnavailableError
from repro.core.params import SystemParams
from repro.core.transcripts import DoubleSpendProof, PaymentTranscript


@dataclass(frozen=True)
class OnlineClearingResult:
    """Outcome of one online clearing request."""

    accepted: bool
    broker_queries: int


@dataclass
class OnlineBroker:
    """The online clearinghouse bolted onto a standard :class:`Broker`.

    Args:
        params: system parameters.
        broker: the issuing broker (reused for withdrawal and keys).
    """

    params: SystemParams
    broker: Broker
    online: bool = True
    queries_served: int = 0
    _spent: dict[BareCoin, PaymentTranscript] = field(default_factory=dict)

    def clear_payment(self, transcript: PaymentTranscript) -> OnlineClearingResult:
        """Synchronously clear a payment (merchant -> broker, per payment).

        Raises:
            ServiceUnavailableError: the broker is offline — the baseline's
                single point of failure.
            InvalidCoinError: bad coin signature.
            DoubleSpendError: the coin was already cleared.
        """
        if not self.online:
            raise ServiceUnavailableError("online broker is down; no payment can clear")
        self.queries_served += 1
        coin = transcript.coin
        if not coin.bare.verify_signature(self.params, self.broker.blind_public):
            raise InvalidCoinError("broker signature on coin failed to verify")
        from repro.core.transcripts import verify_payment_response

        verify_payment_response(self.params, transcript)
        previous = self._spent.get(coin.bare)
        if previous is not None:
            from repro.crypto.representation import extract_representations

            secrets = extract_representations(
                previous.challenge(self.params),
                previous.response,
                transcript.challenge(self.params),
                transcript.response,
                self.params.group.q,
            )
            proof = DoubleSpendProof.from_secrets(coin.digest(self.params), secrets)
            raise DoubleSpendError(proof)
        self._spent[coin.bare] = transcript
        return OnlineClearingResult(accepted=True, broker_queries=self.queries_served)

    def spend_online(
        self, stored: StoredCoin, merchant_id: str, now: int
    ) -> OnlineClearingResult:
        """Convenience: build the payment transcript and clear it.

        The transcript shape is identical to the witness scheme's so the
        comparison benchmarks measure only the architectural difference.
        """
        from repro.crypto.representation import respond

        d = self.params.hashes.H0(*stored.coin.hash_parts(), merchant_id, now)
        transcript = PaymentTranscript(
            coin=stored.coin,
            response=respond(stored.secrets, d, self.params.group.q),
            merchant_id=merchant_id,
            timestamp=now,
            salt=0,
        )
        return self.clear_payment(transcript)


__all__ = ["OnlineBroker", "OnlineClearingResult"]
