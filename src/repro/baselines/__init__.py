"""Baseline double-spending defenses the paper positions itself against.

* :mod:`repro.baselines.online_broker` — Chaum's original online scheme:
  every payment is cleared synchronously at a trusted online broker.
  Perfect detection, but a single point of failure and a broker-side
  bottleneck.
* :mod:`repro.baselines.offline_detection` — Chaum-Fiat-Naor / Brands
  style offline e-cash: double-spending is only *detected* at deposit
  time, by extracting the (registered) owner identity from two payment
  transcripts. Requires client accounts and after-the-fact recourse.
* :mod:`repro.baselines.dht_spent_db` — the WhoPay / Hoepman approach:
  the merchant P2P network keeps a DHT of spent coins; detection is
  probabilistic once a fraction of nodes is compromised.

The witness scheme of the paper is the fourth point in this design space:
real-time *prevention* with a hard guarantee (a cheated merchant is always
made whole from the witness's security deposit), no online trusted party.
"""

from repro.baselines.online_broker import OnlineBroker, OnlineClearingResult
from repro.baselines.offline_detection import (
    OfflineBank,
    OfflineCoin,
    OfflinePayment,
    OfflineSpender,
)
from repro.baselines.dht_spent_db import DhtSpentCoinDb, DhtCheckResult

__all__ = [
    "OnlineBroker",
    "OnlineClearingResult",
    "OfflineBank",
    "OfflineCoin",
    "OfflinePayment",
    "OfflineSpender",
    "DhtSpentCoinDb",
    "DhtCheckResult",
]
