"""Baseline: offline e-cash with detect-at-deposit (Chaum-Fiat-Naor / Brands).

In the classic offline designs "each coin contains a hidden reference to
the coin owner: if the coin is spent once it is untraceable, while
spending a coin twice allows the broker to extract the identity hidden
inside the coin" (Section 2). The price: clients must register accounts
(and leave security deposits or credit cards), and merchants only learn of
fraud *after* the coins are deposited.

We implement the Brands-style identity embedding on top of our
representation machinery: a registered client's coins use

    ``A = g1^u1 * g2^u2``   with   ``I = g1^u1``  the registered identity,

``u1`` fixed per client. One payment response reveals nothing about
``u1``; two responses with distinct challenges let the bank extract
``(u1, u2)`` and look up ``g1^u1`` in its account register — after-the-fact
attribution instead of the paper's real-time prevention.

The baseline benchmark measures the quantity this design cannot bound: the
number of *successful* fraudulent payments before detection, and the
exposure window between fraud and deposit.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.exceptions import InvalidPaymentError, UnknownMerchantError
from repro.core.params import SystemParams
from repro.crypto import counters
from repro.crypto.numbers import random_scalar
from repro.crypto.representation import (
    Representation,
    RepresentationPair,
    RepresentationResponse,
    extract_representations,
    respond,
    verify_response,
)


@dataclass(frozen=True)
class OfflineCoin:
    """A baseline coin: commitments ``(A, B)`` with identity inside ``A``."""

    commitment_a: int
    commitment_b: int
    serial: int

    def challenge(self, params: SystemParams, merchant_id: str, timestamp: int) -> int:
        """Payment challenge binding merchant and time."""
        return params.hashes.H0(
            "offline-coin", self.serial, self.commitment_a, self.commitment_b,
            merchant_id, timestamp,
        )


@dataclass(frozen=True)
class OfflinePayment:
    """One offline payment transcript (verifiable without any third party)."""

    coin: OfflineCoin
    merchant_id: str
    timestamp: int
    response: RepresentationResponse

    def verify(self, params: SystemParams) -> bool:
        """Check the representation proof (the merchant's only defense)."""
        d = self.coin.challenge(params, self.merchant_id, self.timestamp)
        return verify_response(
            params.group, self.coin.commitment_a, self.coin.commitment_b, d, self.response
        )


@dataclass
class OfflineSpender:
    """A registered client of the offline scheme.

    Args:
        params: system parameters.
        account_secret: ``u1``; the registered identity is ``g1^u1``.
    """

    params: SystemParams
    account_secret: int
    rng: random.Random | None = None
    _serial_counter: int = 0

    @property
    def identity(self) -> int:
        """The registered public identity ``I = g1^u1``."""
        with counters.suppressed():
            return pow(self.params.group.g1, self.account_secret, self.params.group.p)

    def mint_coin(self) -> tuple[OfflineCoin, RepresentationPair]:
        """Create one coin whose ``A`` embeds the client identity.

        (The blind-issuing round is identical to the main scheme's and is
        not what this baseline studies, so coins are minted directly.)
        """
        group = self.params.group
        u2 = random_scalar(group.q, self.rng)
        secrets = RepresentationPair(
            x=Representation(self.account_secret, u2),
            y=Representation(random_scalar(group.q, self.rng), random_scalar(group.q, self.rng)),
        )
        commitment_a, commitment_b = secrets.commitments(group)
        self._serial_counter += 1
        coin = OfflineCoin(
            commitment_a=commitment_a,
            commitment_b=commitment_b,
            serial=self._serial_counter,
        )
        return coin, secrets

    def pay(
        self,
        coin: OfflineCoin,
        secrets: RepresentationPair,
        merchant_id: str,
        timestamp: int,
    ) -> OfflinePayment:
        """Produce a payment transcript (works any number of times — that
        is precisely the problem this baseline has)."""
        d = coin.challenge(self.params, merchant_id, timestamp)
        return OfflinePayment(
            coin=coin,
            merchant_id=merchant_id,
            timestamp=timestamp,
            response=respond(secrets, d, self.params.group.q),
        )


@dataclass
class OfflineBank:
    """The offline scheme's bank: registers identities, detects at deposit."""

    params: SystemParams
    accounts: dict[int, str] = field(default_factory=dict)
    deposited: dict[tuple[int, int, int], OfflinePayment] = field(default_factory=dict)
    frauds_detected: list[tuple[str, OfflinePayment, OfflinePayment]] = field(
        default_factory=list
    )

    def register(self, client_name: str, identity: int) -> None:
        """Record a client's identity commitment ``g1^u1``.

        Raises:
            ValueError: identity already registered.
        """
        if identity in self.accounts:
            raise ValueError("identity already registered")
        self.accounts[identity] = client_name

    def deposit(self, payment: OfflinePayment) -> str | None:
        """Accept a deposit; returns the cheater's name if fraud surfaces.

        Raises:
            InvalidPaymentError: transcript fails verification.
        """
        if not payment.verify(self.params):
            raise InvalidPaymentError("offline payment transcript failed verification")
        key = (payment.coin.serial, payment.coin.commitment_a, payment.coin.commitment_b)
        previous = self.deposited.get(key)
        if previous is None:
            self.deposited[key] = payment
            return None
        d1 = previous.coin.challenge(self.params, previous.merchant_id, previous.timestamp)
        d2 = payment.coin.challenge(self.params, payment.merchant_id, payment.timestamp)
        if d1 == d2:
            # Same merchant redepositing the same transcript: no new info.
            return None
        secrets = extract_representations(
            d1, previous.response, d2, payment.response, self.params.group.q
        )
        cheater = self.identify(secrets.x)
        if cheater is None:
            raise UnknownMerchantError("extracted identity matches no registered client")
        self.frauds_detected.append((cheater, previous, payment))
        return cheater

    def identify(self, extracted: Representation) -> str | None:
        """Map an extracted representation to a registered client."""
        with counters.suppressed():
            identity = pow(self.params.group.g1, extracted.k1, self.params.group.p)
        return self.accounts.get(identity)


__all__ = ["OfflineCoin", "OfflinePayment", "OfflineSpender", "OfflineBank"]
