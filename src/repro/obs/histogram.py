"""Streaming histograms: quantiles without storing every sample.

Observations land in exponentially sized buckets (a fixed geometric grid,
growth factor ``2**0.25``), so a histogram costs O(1) memory per distinct
magnitude and ``quantile()`` answers p50/p95/p99 by interpolating inside
the bucket where the requested rank falls. The relative error of any
quantile is bounded by the bucket width (under 10%), which is plenty for
latency and hop-count telemetry while never holding sample arrays.

Exact ``count``/``sum``/``min``/``max`` are tracked alongside, so means
are exact even though quantiles are approximate.
"""

from __future__ import annotations

import math
import threading

#: Geometric bucket growth factor; quantile relative error < growth - 1.
GROWTH = 2.0 ** 0.25
_LOG_GROWTH = math.log(GROWTH)


def bucket_index(value: float) -> int:
    """Map a positive value onto the geometric bucket grid.

    Bucket ``i`` covers ``(GROWTH**(i-1), GROWTH**i]``; values at or below
    zero share a single underflow bucket (see :class:`StreamingHistogram`).
    """
    return math.ceil(math.log(value) / _LOG_GROWTH - 1e-9)


class StreamingHistogram:
    """A fixed-memory histogram with approximate quantiles.

    Thread-safe: every mutation happens under an internal lock. Negative
    and zero observations are legal (they land in one underflow bucket and
    are reported exactly through ``min``).
    """

    __slots__ = ("_lock", "_buckets", "_underflow", "count", "total", "minimum", "maximum")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._buckets: dict[int, int] = {}
        self._underflow = 0
        self.count = 0
        self.total = 0.0
        self.minimum = math.inf
        self.maximum = -math.inf

    def observe(self, value: float) -> None:
        """Record one sample."""
        value = float(value)
        with self._lock:
            self.count += 1
            self.total += value
            if value < self.minimum:
                self.minimum = value
            if value > self.maximum:
                self.maximum = value
            if value <= 0.0:
                self._underflow += 1
            else:
                index = bucket_index(value)
                self._buckets[index] = self._buckets.get(index, 0) + 1

    @property
    def mean(self) -> float:
        """Exact arithmetic mean of all observations (0.0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Approximate the ``q``-quantile, ``q`` in [0, 1].

        Returns 0.0 on an empty histogram. The answer is clamped to the
        exact observed ``[min, max]`` envelope.

        Raises:
            ValueError: ``q`` outside [0, 1].
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be in [0, 1]")
        with self._lock:
            if self.count == 0:
                return 0.0
            rank = q * self.count
            cumulative = self._underflow
            if rank <= cumulative:
                return self.minimum
            for index in sorted(self._buckets):
                in_bucket = self._buckets[index]
                if rank <= cumulative + in_bucket:
                    low = GROWTH ** (index - 1)
                    high = GROWTH ** index
                    fraction = (rank - cumulative) / in_bucket
                    estimate = low + (high - low) * fraction
                    return min(max(estimate, self.minimum), self.maximum)
                cumulative += in_bucket
            return self.maximum

    def summary(self, quantiles: tuple[float, ...] = (0.5, 0.95, 0.99)) -> dict[str, float]:
        """A plain-dict digest: count, sum, mean, min, max and quantiles."""
        if self.count == 0:
            return {"count": 0, "sum": 0.0}
        digest: dict[str, float] = {
            "count": self.count,
            "sum": self.total,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
        }
        for q in quantiles:
            digest[f"p{q * 100:g}"] = self.quantile(q)
        return digest


__all__ = ["GROWTH", "StreamingHistogram", "bucket_index"]
