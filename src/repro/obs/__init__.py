"""repro.obs — metrics, tracing and protocol telemetry.

The subsystem has three parts:

* :class:`~repro.obs.registry.MetricsRegistry` — named counters, gauges
  and streaming histograms (p50/p95/p99 without storing samples);
* :class:`~repro.obs.tracer.Tracer` — nested protocol spans (withdrawal →
  payment → witness-sign → deposit) on a wall or simulated clock;
* :mod:`~repro.obs.export` — JSON / Prometheus / console renderings.

This module is the *facade* the rest of the codebase talks to. A single
process-wide registry + tracer pair sits behind module-level helpers
(:func:`counter_inc`, :func:`observe`, :func:`span`, ...) that check one
``enabled`` flag first — with telemetry off (the default), every
instrumentation site costs one function call and one attribute test, so
hot paths stay unmeasurably close to uninstrumented speed. Enable with
:func:`enable` (or the :func:`enabled` context manager), read back with
:func:`snapshot` / :func:`export_console`.

The facade deliberately imports nothing from ``repro.core``/``repro.net``
— every layer may depend on ``repro.obs``, never the reverse.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterator

from repro.obs.export import combined_snapshot, render_console, to_json, to_prometheus
from repro.obs.histogram import StreamingHistogram
from repro.obs.registry import Counter, Gauge, MetricsRegistry
from repro.obs.tracer import ActiveSpan, SpanRecord, Tracer

_registry = MetricsRegistry()
_tracer = Tracer(registry=_registry)
_enabled = False


class _NullSpan:
    """The span returned while telemetry is disabled: does nothing."""

    __slots__ = ()

    def set(self, key: str, value: object) -> "_NullSpan":
        """Ignore the attribute; returns self for chaining."""
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


# ----------------------------------------------------------------------
# Switching and access
# ----------------------------------------------------------------------

def enable() -> None:
    """Turn telemetry collection on (globally, this process)."""
    global _enabled
    _enabled = True


def disable() -> None:
    """Turn telemetry collection off; recorded data is kept until reset."""
    global _enabled
    _enabled = False


def is_enabled() -> bool:
    """Whether instrumentation sites currently record anything."""
    return _enabled


@contextlib.contextmanager
def enabled() -> Iterator[None]:
    """Enable telemetry for a ``with`` block, restoring the prior state."""
    global _enabled
    previous = _enabled
    _enabled = True
    try:
        yield
    finally:
        _enabled = previous


def registry() -> MetricsRegistry:
    """The process-wide metrics registry."""
    return _registry


def tracer() -> Tracer:
    """The process-wide tracer."""
    return _tracer


def reset() -> None:
    """Clear every recorded metric and span (the enabled flag is kept)."""
    _registry.reset()
    _tracer.reset()


# ----------------------------------------------------------------------
# Instrumentation-site helpers (no-ops while disabled)
# ----------------------------------------------------------------------

def counter_inc(name: str, amount: float = 1.0, **labels: object) -> None:
    """Add to a counter if telemetry is enabled."""
    if not _enabled:
        return
    _registry.counter(name, **labels).inc(amount)


def gauge_set(name: str, value: float, **labels: object) -> None:
    """Set a gauge if telemetry is enabled."""
    if not _enabled:
        return
    _registry.gauge(name, **labels).set(value)


def observe(name: str, value: float, **labels: object) -> None:
    """Record a histogram sample if telemetry is enabled."""
    if not _enabled:
        return
    _registry.histogram(name, **labels).observe(value)


def span(name: str, clock: Callable[[], float] | None = None, **attributes: object):
    """Open a traced span (a shared no-op object while disabled).

    Args:
        name: span name, e.g. ``protocol.payment``.
        clock: timestamp source overriding the tracer default — the
            networked layer passes the simulator clock here.
        attributes: initial span attributes.
    """
    if not _enabled:
        return _NULL_SPAN
    return _tracer.span(name, clock=clock, **attributes)


# ----------------------------------------------------------------------
# Reading results
# ----------------------------------------------------------------------

def snapshot() -> dict:
    """The combined metrics + spans dump of the process-wide collectors."""
    return combined_snapshot(_registry, _tracer)


def export_json(indent: int = 2) -> str:
    """JSON rendering of the process-wide snapshot."""
    return to_json(_registry, _tracer, indent=indent)


def export_prometheus() -> str:
    """Prometheus text-format rendering of the process-wide registry."""
    return to_prometheus(_registry)


def export_console() -> str:
    """Human-readable rendering of the process-wide snapshot."""
    return render_console(_registry, _tracer)


__all__ = [
    "ActiveSpan",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "SpanRecord",
    "StreamingHistogram",
    "Tracer",
    "combined_snapshot",
    "counter_inc",
    "disable",
    "enable",
    "enabled",
    "export_console",
    "export_json",
    "export_prometheus",
    "gauge_set",
    "is_enabled",
    "observe",
    "registry",
    "render_console",
    "reset",
    "snapshot",
    "span",
    "to_json",
    "to_prometheus",
    "tracer",
]
