"""The metrics registry: named counters, gauges and histograms.

One :class:`MetricsRegistry` holds every metric of a run. Metrics are
created on first use and cached by ``(name, labels)``, so instrumentation
sites just say ``registry.counter("deposits_total", outcome="credited")``
and get the same object every time. All three metric kinds are safe to
update from multiple threads.

The registry itself never checks an enabled/disabled switch — that lives
in the :mod:`repro.obs` facade so that disabled instrumentation costs one
flag test and nothing here ever runs.
"""

from __future__ import annotations

import threading

from repro.obs.histogram import StreamingHistogram

#: Label sets are carried as sorted ``(key, value)`` tuples.
LabelItems = tuple[tuple[str, str], ...]


def label_key(name: str, labels: dict[str, object]) -> str:
    """Render ``name{k=v,...}`` with sorted labels (bare name if none)."""
    if not labels:
        return name
    inner = ",".join(f"{key}={labels[key]}" for key in sorted(labels))
    return f"{name}{{{inner}}}"


class Counter:
    """A monotonically increasing tally."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (must be non-negative).

        Raises:
            ValueError: negative amount (counters only go up).
        """
        if amount < 0:
            raise ValueError("counters cannot decrease")
        with self._lock:
            self.value += amount


class Gauge:
    """A value that can go up and down (queue depths, balances)."""

    __slots__ = ("_lock", "value")

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.value = 0.0

    def set(self, value: float) -> None:
        """Overwrite the current value."""
        with self._lock:
            self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        with self._lock:
            self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.inc(-amount)


class MetricsRegistry:
    """A concurrent, lazily populated collection of named metrics."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, StreamingHistogram] = {}

    # ------------------------------------------------------------------
    # Metric accessors (create on first use)
    # ------------------------------------------------------------------
    def counter(self, name: str, **labels: object) -> Counter:
        """The counter registered under ``name`` + ``labels``."""
        return self._get(self._counters, Counter, name, labels)

    def gauge(self, name: str, **labels: object) -> Gauge:
        """The gauge registered under ``name`` + ``labels``."""
        return self._get(self._gauges, Gauge, name, labels)

    def histogram(self, name: str, **labels: object) -> StreamingHistogram:
        """The histogram registered under ``name`` + ``labels``."""
        return self._get(self._histograms, StreamingHistogram, name, labels)

    def _get(self, table, factory, name: str, labels: dict[str, object]):
        key = label_key(name, labels)
        metric = table.get(key)
        if metric is None:
            with self._lock:
                metric = table.get(key)
                if metric is None:
                    metric = factory()
                    table[key] = metric
        return metric

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, dict[str, object]]:
        """A JSON-ready dump: every metric's current state by kind."""
        with self._lock:
            counters = dict(self._counters)
            gauges = dict(self._gauges)
            histograms = dict(self._histograms)
        return {
            "counters": {key: counter.value for key, counter in sorted(counters.items())},
            "gauges": {key: gauge.value for key, gauge in sorted(gauges.items())},
            "histograms": {
                key: histogram.summary() for key, histogram in sorted(histograms.items())
            },
        }

    def counter_value(self, name: str, **labels: object) -> float:
        """Read a counter without creating it (0.0 when absent)."""
        metric = self._counters.get(label_key(name, labels))
        return metric.value if metric is not None else 0.0

    def reset(self) -> None:
        """Drop every metric (a fresh run starts from an empty registry)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


__all__ = ["Counter", "Gauge", "MetricsRegistry", "label_key"]
