"""Exporters: JSON, Prometheus text format, and a console summary.

All three consume the same inputs — a :class:`MetricsRegistry` and
(optionally) a :class:`Tracer` — so a run can be dumped machine-readably
(``to_json``), scraped (``to_prometheus``) or eyeballed
(``render_console``) without re-instrumenting anything.
"""

from __future__ import annotations

import json
import re

from repro.obs.registry import MetricsRegistry
from repro.obs.tracer import Tracer

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_KEY_RE = re.compile(r"^(?P<name>[^{]+)(?:\{(?P<labels>.*)\})?$")


def combined_snapshot(registry: MetricsRegistry, tracer: Tracer | None = None) -> dict:
    """The canonical dump: metrics plus (when given) the span digest."""
    snapshot: dict[str, object] = {"metrics": registry.snapshot()}
    if tracer is not None:
        snapshot["spans"] = tracer.summary()
    return snapshot


def to_json(registry: MetricsRegistry, tracer: Tracer | None = None, indent: int = 2) -> str:
    """Serialize the combined snapshot as a JSON document."""
    return json.dumps(combined_snapshot(registry, tracer), indent=indent, sort_keys=True)


def to_prometheus(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format.

    Counters and gauges become single samples; histograms become
    summary-style quantile series plus ``_sum``/``_count``.
    """
    snapshot = registry.snapshot()
    lines: list[str] = []
    typed: set[str] = set()

    def declare(name: str, kind: str) -> None:
        # One TYPE line per metric name: labelled series share it, and
        # strict parsers reject duplicates.
        if name not in typed:
            typed.add(name)
            lines.append(f"# TYPE {name} {kind}")

    for key, value in snapshot["counters"].items():
        name, labels = _split_key(key)
        declare(name, "counter")
        lines.append(f"{name}{labels} {_fmt(value)}")
    for key, value in snapshot["gauges"].items():
        name, labels = _split_key(key)
        declare(name, "gauge")
        lines.append(f"{name}{labels} {_fmt(value)}")
    for key, digest in snapshot["histograms"].items():
        name, labels = _split_key(key)
        declare(name, "summary")
        for field, quantile in (("p50", "0.5"), ("p95", "0.95"), ("p99", "0.99")):
            if field in digest:
                extra = 'quantile="%s"' % quantile
                lines.append(f"{name}{_merge_labels(labels, extra)} {_fmt(digest[field])}")
        lines.append(f"{name}_sum{labels} {_fmt(digest.get('sum', 0.0))}")
        lines.append(f"{name}_count{labels} {_fmt(digest.get('count', 0))}")
    return "\n".join(lines) + "\n"


def render_console(registry: MetricsRegistry, tracer: Tracer | None = None) -> str:
    """A human-readable multi-section summary of one run."""
    snapshot = registry.snapshot()
    out: list[str] = ["== Observability snapshot =="]
    if tracer is not None:
        digest = tracer.summary()
        out.append("")
        out.append(f"-- Spans ({digest['span_count']} recorded) --")
        for name, stats in digest["by_name"].items():  # type: ignore[union-attr]
            out.append(
                f"  {name:<28} n={stats['count']:<5.0f} "
                f"mean={_duration(stats['mean'])} p95={_duration(stats['p95'])} "
                f"max={_duration(stats['max'])}"
            )
    out.append("")
    out.append("-- Counters --")
    for key, value in snapshot["counters"].items():
        out.append(f"  {key:<44} {value:g}")
    if snapshot["gauges"]:
        out.append("")
        out.append("-- Gauges --")
        for key, value in snapshot["gauges"].items():
            out.append(f"  {key:<44} {value:g}")
    out.append("")
    out.append("-- Histograms --")
    for key, digest in snapshot["histograms"].items():
        if digest["count"] == 0:
            out.append(f"  {key:<44} (empty)")
            continue
        out.append(
            f"  {key:<44} n={digest['count']:<6.0f} mean={digest['mean']:.3g} "
            f"p50={digest['p50']:.3g} p95={digest['p95']:.3g} "
            f"p99={digest['p99']:.3g} max={digest['max']:.3g}"
        )
    return "\n".join(out)


def _split_key(key: str) -> tuple[str, str]:
    """Split ``name{k=v,...}`` into a sanitized name and Prometheus labels."""
    match = _KEY_RE.match(key)
    assert match is not None  # keys are produced by label_key()
    name = _NAME_RE.sub("_", match.group("name"))
    raw = match.group("labels")
    if not raw:
        return name, ""
    pairs = []
    for item in raw.split(","):
        label, _, value = item.partition("=")
        escaped = value.replace("\\", "\\\\").replace('"', '\\"')
        pairs.append(f'{_NAME_RE.sub("_", label)}="{escaped}"')
    return name, "{" + ",".join(pairs) + "}"


def _merge_labels(labels: str, extra: str) -> str:
    if not labels:
        return "{" + extra + "}"
    return labels[:-1] + "," + extra + "}"


def _fmt(value: float) -> str:
    return f"{value:g}"


def _duration(seconds: float) -> str:
    """Render a duration with an adaptive unit."""
    if seconds >= 1.0:
        return f"{seconds:.2f}s"
    if seconds >= 1e-3:
        return f"{seconds * 1e3:.1f}ms"
    return f"{seconds * 1e6:.0f}us"


__all__ = ["combined_snapshot", "render_console", "to_json", "to_prometheus"]
