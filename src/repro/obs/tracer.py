"""Span-based protocol tracing.

A *span* covers one named stretch of work (``protocol.payment``,
``net.withdrawal``). Spans nest: entering a span while another is open
records the parent/child edge, so a full coin lifecycle shows up as a
withdrawal → payment → deposit tree with the witness-sign leg inside the
payment. Timestamps come from an injectable clock — wall clock by default,
or the discrete-event simulator's clock for networked runs, so simulated
traces carry simulated time.

Parent tracking uses a :class:`contextvars.ContextVar`; interleaved
generator processes on one event loop share that context, so concurrent
simulated spans may attribute a parent loosely — durations and counts stay
exact, which is what the telemetry consumes.
"""

from __future__ import annotations

import itertools
import threading
import time
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Callable

Clock = Callable[[], float]

_CURRENT: ContextVar[tuple[int, int] | None] = ContextVar("obs_current_span", default=None)


@dataclass
class SpanRecord:
    """One finished span."""

    name: str
    trace_id: int
    span_id: int
    parent_id: int | None
    start: float
    end: float
    attributes: dict[str, object] = field(default_factory=dict)
    error: str | None = None

    @property
    def duration(self) -> float:
        """Elapsed clock units between start and end."""
        return self.end - self.start

    def to_dict(self) -> dict[str, object]:
        """JSON-ready rendering of the span."""
        return {
            "name": self.name,
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "attributes": dict(self.attributes),
            "error": self.error,
        }


class ActiveSpan:
    """Context manager for one in-flight span (returned by ``Tracer.span``)."""

    __slots__ = ("_tracer", "_clock", "_token", "name", "trace_id", "span_id",
                 "parent_id", "start", "attributes")

    def __init__(self, tracer: "Tracer", name: str, clock: Clock,
                 attributes: dict[str, object]) -> None:
        self._tracer = tracer
        self._clock = clock
        self._token = None
        self.name = name
        self.trace_id = 0
        self.span_id = 0
        self.parent_id: int | None = None
        self.start = 0.0
        self.attributes = attributes

    def set(self, key: str, value: object) -> "ActiveSpan":
        """Attach an attribute to the span; returns self for chaining."""
        self.attributes[key] = value
        return self

    def __enter__(self) -> "ActiveSpan":
        parent = _CURRENT.get()
        self.span_id = self._tracer._next_id()
        if parent is None:
            self.trace_id, self.parent_id = self.span_id, None
        else:
            self.trace_id, self.parent_id = parent[0], parent[1]
        self._token = _CURRENT.set((self.trace_id, self.span_id))
        self.start = self._clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = self._clock()
        _CURRENT.reset(self._token)
        self._tracer._finish(
            SpanRecord(
                name=self.name,
                trace_id=self.trace_id,
                span_id=self.span_id,
                parent_id=self.parent_id,
                start=self.start,
                end=end,
                attributes=self.attributes,
                error=type(exc).__name__ if exc is not None else None,
            )
        )
        return False


class Tracer:
    """Collects finished spans and aggregates their durations.

    Args:
        clock: default timestamp source (``time.perf_counter``).
        registry: optional :class:`~repro.obs.registry.MetricsRegistry`;
            when set, every finished span also lands in the
            ``span_duration_seconds{span=...}`` histogram there.
        max_spans: retention cap on individual span records; durations
            keep aggregating past the cap, but the per-span list stops
            growing (bounded memory on long runs).
    """

    def __init__(self, clock: Clock = time.perf_counter, registry=None,
                 max_spans: int = 10_000) -> None:
        self.clock = clock
        self.registry = registry
        self.max_spans = max_spans
        self.dropped = 0
        self.finished: list[SpanRecord] = []
        self._lock = threading.Lock()
        self._ids = itertools.count(1)

    def span(self, name: str, clock: Clock | None = None, **attributes: object) -> ActiveSpan:
        """Open a span; use as ``with tracer.span("protocol.payment"):``."""
        return ActiveSpan(self, name, clock if clock is not None else self.clock, attributes)

    def _next_id(self) -> int:
        return next(self._ids)

    def _finish(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self.finished) < self.max_spans:
                self.finished.append(record)
            else:
                self.dropped += 1
        if self.registry is not None:
            self.registry.histogram("span_duration_seconds", span=record.name).observe(
                record.duration
            )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def durations_by_name(self) -> dict[str, list[float]]:
        """Span durations grouped by span name (retained records only)."""
        grouped: dict[str, list[float]] = {}
        with self._lock:
            records = list(self.finished)
        for record in records:
            grouped.setdefault(record.name, []).append(record.duration)
        return grouped

    def children_of(self, span_id: int) -> list[SpanRecord]:
        """Finished direct children of the given span."""
        with self._lock:
            return [record for record in self.finished if record.parent_id == span_id]

    def summary(self) -> dict[str, object]:
        """JSON-ready digest: per-name counts and duration aggregates."""
        names: dict[str, dict[str, float]] = {}
        for name, durations in sorted(self.durations_by_name().items()):
            ordered = sorted(durations)
            names[name] = {
                "count": len(ordered),
                "total": sum(ordered),
                "mean": sum(ordered) / len(ordered),
                "min": ordered[0],
                "max": ordered[-1],
                "p95": ordered[min(len(ordered) - 1, int(0.95 * len(ordered)))],
            }
        return {"span_count": len(self.finished), "dropped": self.dropped, "by_name": names}

    def reset(self) -> None:
        """Forget every finished span."""
        with self._lock:
            self.finished.clear()
            self.dropped = 0


__all__ = ["ActiveSpan", "SpanRecord", "Tracer"]
