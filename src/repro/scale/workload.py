"""Seeded campaign workloads: arrival processes for 10k-node overlays.

The generator turns a :class:`WorkloadConfig` into a deterministic,
time-ordered stream of :class:`Event` records:

* **Poisson payments** — exponential inter-arrival times at
  ``payment_rate`` events/sec; each payment picks its merchant from a
  Zipf-skewed popularity distribution (a few hot merchants absorb most
  traffic, the regime where witness-set load balancing matters);
* **renewal storms** — the paper's soft/hard expiry windows concentrate
  renewal traffic near deadline boundaries, so renewals arrive in
  Gaussian bursts centred just before each configured boundary rather
  than uniformly;
* **withdraw / deposit flanks** — every payer withdraws before its first
  payment and merchants deposit on a Poisson drain, closing the
  withdraw→pay→deposit loop the protocol slice replays with real crypto.

Determinism contract: ``generate_events(config)`` depends only on the
config (seed included). ``schedule_digest(events)`` is the sha256 of the
canonical one-line renderings — two runs (or two worker counts) with the
same seed must produce byte-identical digests; tests pin this.
"""

from __future__ import annotations

import bisect
import hashlib
import random
from dataclasses import dataclass, field

#: Event kinds in canonical serialization order.
EVENT_KINDS = ("withdraw", "pay", "deposit", "renew")


@dataclass(frozen=True)
class Event:
    """One scheduled campaign action.

    Attributes:
        time: simulated seconds from campaign start.
        kind: one of :data:`EVENT_KINDS`.
        actor: initiating party (client or merchant index label).
        merchant: target merchant label (payments/renewals) or ``"-"``.
        seq: tie-breaking sequence number (schedule-unique).
    """

    time: float
    kind: str
    actor: str
    merchant: str
    seq: int

    def render(self) -> str:
        """Canonical one-line form (the unit of the schedule digest)."""
        return f"{self.time:.6f} {self.kind} {self.actor} {self.merchant} {self.seq}"


@dataclass(frozen=True)
class WorkloadConfig:
    """Parameters of a campaign's arrival processes.

    Attributes:
        seed: master seed; every stream below derives from it.
        duration: campaign horizon in simulated seconds.
        clients: number of paying clients.
        merchants: number of merchants (Zipf-ranked by popularity).
        payment_rate: aggregate Poisson payment arrivals per second.
        deposit_rate: aggregate Poisson merchant-deposit drain per second.
        zipf_s: Zipf skew exponent (1.0 ≈ classic web popularity).
        renewal_boundaries: times (seconds) of soft/hard expiry deadlines.
        renewal_storm_size: renewals clustered at each boundary.
        renewal_storm_spread: std-dev (seconds) of each storm's Gaussian
            cluster; storms land just *before* their boundary.
    """

    seed: int = 2007
    duration: float = 60.0
    clients: int = 8
    merchants: int = 8
    payment_rate: float = 5.0
    deposit_rate: float = 1.0
    zipf_s: float = 1.0
    renewal_boundaries: tuple[float, ...] = ()
    renewal_storm_size: int = 10
    renewal_storm_spread: float = 1.5


class ZipfSampler:
    """Zipf-distributed rank sampling via an inverse-CDF bisect.

    Rank ``k`` (0-based) carries probability proportional to
    ``1 / (k + 1) ** s``. The cumulative table is built once; each draw
    is one uniform variate plus a binary search — O(log n) per sample,
    which matters when the campaign draws millions of merchant picks.

    Args:
        n: number of ranks.
        s: skew exponent (larger ⇒ more mass on rank 0).
        rng: the seeded generator to consume uniforms from.
    """

    def __init__(self, n: int, s: float, rng: random.Random) -> None:
        if n <= 0:
            raise ValueError("ZipfSampler needs at least one rank")
        self._rng = rng
        weights = [1.0 / (k + 1) ** s for k in range(n)]
        total = sum(weights)
        self._cdf: list[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0  # guard against float undershoot

    def sample(self) -> int:
        """Draw one rank (0-based)."""
        return bisect.bisect_left(self._cdf, self._rng.random())


def _poisson_times(
    rng: random.Random, rate: float, duration: float
) -> list[float]:
    """Arrival instants of a homogeneous Poisson process on [0, duration)."""
    times: list[float] = []
    if rate <= 0:
        return times
    t = rng.expovariate(rate)
    while t < duration:
        times.append(t)
        t += rng.expovariate(rate)
    return times


def generate_events(config: WorkloadConfig) -> list[Event]:
    """Materialize the full time-ordered event schedule for ``config``.

    Each arrival process consumes its own child generator seeded from
    ``config.seed`` so adding one process never perturbs another — the
    property the byte-identity tests lean on.
    """
    payments_rng = random.Random(f"workload:payments:{config.seed}")
    zipf_rng = random.Random(f"workload:zipf:{config.seed}")
    deposit_rng = random.Random(f"workload:deposits:{config.seed}")
    renewal_rng = random.Random(f"workload:renewals:{config.seed}")

    zipf = ZipfSampler(config.merchants, config.zipf_s, zipf_rng)
    pending: list[tuple[float, str, str, str]] = []

    # Poisson payments, Zipf-ranked merchants, round-robin payers.
    seen_payers: set[str] = set()
    for i, t in enumerate(
        _poisson_times(payments_rng, config.payment_rate, config.duration)
    ):
        payer = f"client-{i % config.clients:04d}"
        merchant = f"merchant-{zipf.sample():04d}"
        if payer not in seen_payers:
            seen_payers.add(payer)
            # A client's first payment is preceded by its withdrawal.
            pending.append((max(0.0, t - 1e-6), "withdraw", payer, "-"))
        pending.append((t, "pay", payer, merchant))

    # Poisson deposit drain over merchants (round-robin).
    for i, t in enumerate(
        _poisson_times(deposit_rng, config.deposit_rate, config.duration)
    ):
        merchant = f"merchant-{i % config.merchants:04d}"
        pending.append((t, "deposit", merchant, merchant))

    # Renewal storms: Gaussian clusters just before each expiry boundary.
    for boundary in config.renewal_boundaries:
        for _ in range(config.renewal_storm_size):
            offset = abs(renewal_rng.gauss(0.0, config.renewal_storm_spread))
            t = boundary - offset
            if not 0.0 <= t < config.duration:
                continue
            merchant = f"merchant-{zipf.sample():04d}"
            pending.append((t, "renew", merchant, merchant))

    pending.sort(key=lambda row: (row[0], EVENT_KINDS.index(row[1]), row[2]))
    return [
        Event(time=t, kind=kind, actor=actor, merchant=merchant, seq=seq)
        for seq, (t, kind, actor, merchant) in enumerate(pending)
    ]


def schedule_digest(events: list[Event]) -> str:
    """sha256 over the canonical renderings — the byte-identity anchor."""
    h = hashlib.sha256()
    for event in events:
        h.update(event.render().encode())
        h.update(b"\n")
    return h.hexdigest()


def event_counts(events: list[Event]) -> dict[str, int]:
    """Events per kind, in canonical kind order (zero-filled)."""
    counts = {kind: 0 for kind in EVENT_KINDS}
    for event in events:
        counts[event.kind] += 1
    return counts


__all__ = [
    "EVENT_KINDS",
    "Event",
    "WorkloadConfig",
    "ZipfSampler",
    "event_counts",
    "generate_events",
    "schedule_digest",
]
