"""The scale engine: seeded campaign workloads for 10k-node overlays.

Three layers, all deterministic under one seed:

* :mod:`repro.scale.stats` — constant-memory streaming estimators
  (reservoir sampling + P² percentiles) so million-event campaigns never
  hold per-sample lists;
* :mod:`repro.scale.workload` — seeded arrival processes (Poisson
  payments, Zipf merchant popularity, renewal storms at expiry
  boundaries) with a byte-identity schedule digest;
* :mod:`repro.scale.campaign` — the runner: a large Chord overlay under
  availability and membership churn, per-event witness lookups, range
  rebalancing in bytes, a real-crypto protocol slice with the safety
  invariant checker, and a digested engine-independent report.

Entry point: ``python -m repro campaign`` (see ``repro.cli``).
"""

from repro.scale.campaign import (
    CampaignConfig,
    identity_check,
    results_digest,
    run_campaign,
)
from repro.scale.stats import P2Quantile, ReservoirSample, StreamingStats
from repro.scale.workload import (
    Event,
    WorkloadConfig,
    ZipfSampler,
    event_counts,
    generate_events,
    schedule_digest,
)

__all__ = [
    "CampaignConfig",
    "Event",
    "P2Quantile",
    "ReservoirSample",
    "StreamingStats",
    "WorkloadConfig",
    "ZipfSampler",
    "event_counts",
    "generate_events",
    "identity_check",
    "results_digest",
    "run_campaign",
    "schedule_digest",
]
