"""Streaming statistics for million-event campaigns.

A 10k-node campaign produces one hop count per lookup and one cost per
churn event — holding every sample in a list is exactly the O(events)
memory the scale engine must avoid. Two classic streaming estimators keep
the campaign report O(1) in the event count:

* :class:`ReservoirSample` — Vitter's Algorithm R: a uniform fixed-size
  sample of the stream, used for exact small-stream percentiles and as a
  cross-check of the P² estimates;
* :class:`P2Quantile` — the Jain/Chlamtac P² algorithm: five markers
  tracking a single quantile with piecewise-parabolic interpolation,
  O(1) per observation, no buffering.

:class:`StreamingStats` bundles count/mean (Welford), min/max, three P²
quantiles (p50/p90/p99) and a reservoir into one sink with a
deterministic, rounded :meth:`~StreamingStats.summary` — the property the
campaign's byte-identical reports rely on. Everything is seeded; nothing
reads a wall clock.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass, field


class ReservoirSample:
    """Vitter's Algorithm R: a uniform ``capacity``-sized stream sample.

    Args:
        capacity: reservoir size.
        seed: replacement randomness (deterministic campaigns seed this).
    """

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity <= 0:
            raise ValueError("reservoir capacity must be positive")
        self.capacity = capacity
        self.seen = 0
        self._rng = random.Random(f"reservoir:{seed}")
        self._values: list[float] = []

    def add(self, value: float) -> None:
        """Offer one observation to the reservoir."""
        self.seen += 1
        if len(self._values) < self.capacity:
            self._values.append(float(value))
            return
        slot = self._rng.randrange(self.seen)
        if slot < self.capacity:
            self._values[slot] = float(value)

    def values(self) -> list[float]:
        """The current sample (insertion order)."""
        return list(self._values)

    def quantile(self, q: float) -> float:
        """Empirical quantile of the sample (nearest-rank, 0 if empty)."""
        if not 0 <= q <= 1:
            raise ValueError("quantile must be in [0, 1]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[rank]


class P2Quantile:
    """The P² single-quantile estimator (Jain & Chlamtac, 1985).

    Five markers track the minimum, the target quantile, the maximum and
    two intermediates; marker heights are nudged by piecewise-parabolic
    (falling back to linear) interpolation as desired positions drift.
    Until five observations arrive the estimate is exact (sorted buffer).

    Args:
        q: the quantile in (0, 1), e.g. ``0.99``.
    """

    def __init__(self, q: float) -> None:
        if not 0 < q < 1:
            raise ValueError("quantile must be strictly inside (0, 1)")
        self.q = q
        self._initial: list[float] = []
        self._heights: list[float] = []
        self._positions: list[float] = []
        self._desired: list[float] = []
        self._increments = [0.0, q / 2.0, q, (1.0 + q) / 2.0, 1.0]

    @property
    def count(self) -> int:
        """Observations absorbed so far."""
        return len(self._initial) if not self._heights else int(self._positions[4])

    def add(self, value: float) -> None:
        """Absorb one observation in O(1)."""
        value = float(value)
        if not self._heights:
            bisect.insort(self._initial, value)
            if len(self._initial) == 5:
                self._heights = list(self._initial)
                self._positions = [1.0, 2.0, 3.0, 4.0, 5.0]
                self._desired = [
                    1.0 + 2.0 * self.q,
                    1.0 + 4.0 * self.q,
                ]
                self._desired = [
                    1.0,
                    1.0 + 2.0 * self.q,
                    1.0 + 4.0 * self.q,
                    3.0 + 2.0 * self.q,
                    5.0,
                ]
            return
        heights, positions = self._heights, self._positions
        if value < heights[0]:
            heights[0] = value
            cell = 0
        elif value >= heights[4]:
            heights[4] = value
            cell = 3
        else:
            cell = 0
            while cell < 3 and value >= heights[cell + 1]:
                cell += 1
        for index in range(cell + 1, 5):
            positions[index] += 1.0
        for index in range(5):
            self._desired[index] += self._increments[index]
        for index in (1, 2, 3):
            drift = self._desired[index] - positions[index]
            step_up = positions[index + 1] - positions[index]
            step_down = positions[index - 1] - positions[index]
            if (drift >= 1.0 and step_up > 1.0) or (drift <= -1.0 and step_down < -1.0):
                sign = 1.0 if drift >= 1.0 else -1.0
                candidate = self._parabolic(index, sign)
                if heights[index - 1] < candidate < heights[index + 1]:
                    heights[index] = candidate
                else:
                    heights[index] = self._linear(index, sign)
                positions[index] += sign

    def _parabolic(self, index: int, sign: float) -> float:
        heights, positions = self._heights, self._positions
        span = positions[index + 1] - positions[index - 1]
        upper = (positions[index] - positions[index - 1] + sign) * (
            heights[index + 1] - heights[index]
        ) / (positions[index + 1] - positions[index])
        lower = (positions[index + 1] - positions[index] - sign) * (
            heights[index] - heights[index - 1]
        ) / (positions[index] - positions[index - 1])
        return heights[index] + sign / span * (upper + lower)

    def _linear(self, index: int, sign: float) -> float:
        heights, positions = self._heights, self._positions
        step = int(sign)
        return heights[index] + sign * (heights[index + step] - heights[index]) / (
            positions[index + step] - positions[index]
        )

    def value(self) -> float:
        """The current quantile estimate (0 if no observations)."""
        if self._heights:
            return self._heights[2]
        if not self._initial:
            return 0.0
        rank = min(len(self._initial) - 1, int(self.q * len(self._initial)))
        return self._initial[rank]


@dataclass
class StreamingStats:
    """A constant-memory sink for one metric's sample stream.

    Args:
        name: metric label (appears in the summary).
        reservoir_size: uniform-sample size kept alongside the P² markers.
        seed: reservoir-replacement randomness.
    """

    name: str
    reservoir_size: int = 512
    seed: int = 0
    count: int = 0
    total: float = 0.0
    minimum: float = field(default=float("inf"))
    maximum: float = field(default=float("-inf"))

    def __post_init__(self) -> None:
        self._p50 = P2Quantile(0.5)
        self._p90 = P2Quantile(0.9)
        self._p99 = P2Quantile(0.99)
        self._reservoir = ReservoirSample(self.reservoir_size, seed=self.seed)

    def add(self, value: float) -> None:
        """Absorb one observation (O(1) time and memory)."""
        value = float(value)
        self.count += 1
        self.total += value
        self.minimum = min(self.minimum, value)
        self.maximum = max(self.maximum, value)
        self._p50.add(value)
        self._p90.add(value)
        self._p99.add(value)
        self._reservoir.add(value)

    @property
    def mean(self) -> float:
        """Arithmetic mean of the stream (0 if empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Reservoir-based quantile (exact for streams under the size)."""
        return self._reservoir.quantile(q)

    def summary(self) -> dict[str, float | int]:
        """Deterministic rounded digest for campaign reports."""
        if not self.count:
            return {"count": 0, "mean": 0.0, "min": 0.0, "max": 0.0,
                    "p50": 0.0, "p90": 0.0, "p99": 0.0}
        return {
            "count": self.count,
            "mean": round(self.mean, 6),
            "min": round(self.minimum, 6),
            "max": round(self.maximum, 6),
            "p50": round(self._p50.value(), 6),
            "p90": round(self._p90.value(), 6),
            "p99": round(self._p99.value(), 6),
        }


__all__ = ["P2Quantile", "ReservoirSample", "StreamingStats"]
