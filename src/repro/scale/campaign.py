"""Campaign runner: seeded 10k-node overlay workloads under churn.

A *campaign* drives a :mod:`repro.scale.workload` event schedule against
a large :class:`~repro.net.chord.ChordRing` while three chaos streams run
concurrently, all derived from one seed:

* **availability churn** — :class:`~repro.net.churn.ChurnModel` timelines
  flip node liveness (fail/recover) without touching routing tables;
* **membership churn** — a Poisson stream of joins and leaves exercises
  the incremental-repair path and moves stored records to heirs
  (range rebalancing, accounted in bytes against Table 2's scale);
* **the workload itself** — every withdraw/pay/deposit/renew event
  resolves its witness with one overlay lookup; payments store a witness
  entry at the owner.

Alongside the overlay tier, a small *protocol slice* replays the first
few workload events through the real-crypto stack
(:class:`~repro.core.system.EcashSystem` over the sim transport) and runs
the :class:`~repro.faults.invariants.InvariantChecker`, so every campaign
asserts the paper's safety invariants with real signatures while the
overlay scales to 10⁴ nodes.

Determinism contract: the report's ``results`` section depends only on
the config — it is identical across runs, across worker counts, and
across the perf-engine on/off switch (the small-n identity check in
``BENCH_campaign.json`` and the CI smoke job pin this). Engine-dependent
diagnostics (repair ops, table builds, wall-clock, scaling timings) live
*outside* ``results`` and are excluded from the digest.
"""

from __future__ import annotations

import hashlib
import json
import math
import random
import time
from dataclasses import asdict, dataclass
from typing import Any

from repro import obs, perf
from repro.core.exceptions import EcashError, ServiceUnavailableError
from repro.core.system import EcashSystem
from repro.faults.invariants import InvariantChecker
from repro.net.chord import ChordLookupError, ChordRing, chord_id
from repro.net.churn import ChurnModel
from repro.net.costmodel import instant_profile
from repro.net.services import NetworkDeployment
from repro.net.sim import SimTimeoutError
from repro.scale.stats import StreamingStats
from repro.scale.workload import (
    WorkloadConfig,
    event_counts,
    generate_events,
    schedule_digest,
)

#: The client node name the protocol slice uses.
CLIENT = "client-0"

#: Report schema tag (bump when the digested layout changes).
SCHEMA = "repro-campaign-v1"

#: Mean-hop acceptance bound: 0.5·log₂(n) + this constant.
HOP_BOUND_CONSTANT = 2.0


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign run depends on (the determinism boundary).

    Attributes:
        seed: master seed for every derived stream.
        nodes: overlay size at bootstrap.
        duration: campaign horizon in simulated seconds.
        successor_list_size: Chord ``r`` (failover depth).
        payment_rate: Poisson payment arrivals per second.
        deposit_rate: Poisson merchant-deposit drain per second.
        clients: workload payer population.
        merchants: workload merchant population (Zipf-ranked).
        zipf_s: merchant-popularity skew exponent.
        renewal_boundaries: soft/hard expiry instants (seconds); empty ⇒
            storms at 60% and 90% of the horizon.
        renewal_storm_size: renewals clustered at each boundary.
        churn_fraction: fraction of nodes given availability timelines.
        churn_mean_uptime: mean up period (seconds) for churned nodes.
        churn_mean_downtime: mean down period (seconds).
        membership_rate: Poisson join/leave events per second.
        protocol_payments: pay events replayed through real crypto.
        protocol_renewals: renew events replayed through real crypto.
    """

    seed: int = 2007
    nodes: int = 500
    duration: float = 30.0
    successor_list_size: int = 4
    payment_rate: float = 20.0
    deposit_rate: float = 4.0
    clients: int = 8
    merchants: int = 8
    zipf_s: float = 1.0
    renewal_boundaries: tuple[float, ...] = ()
    renewal_storm_size: int = 20
    churn_fraction: float = 0.1
    churn_mean_uptime: float = 40.0
    churn_mean_downtime: float = 5.0
    membership_rate: float = 0.5
    protocol_payments: int = 4
    protocol_renewals: int = 1

    def workload(self) -> WorkloadConfig:
        """The derived workload-generator config."""
        boundaries = self.renewal_boundaries or (
            round(0.6 * self.duration, 6),
            round(0.9 * self.duration, 6),
        )
        return WorkloadConfig(
            seed=self.seed,
            duration=self.duration,
            clients=self.clients,
            merchants=self.merchants,
            payment_rate=self.payment_rate,
            deposit_rate=self.deposit_rate,
            zipf_s=self.zipf_s,
            renewal_boundaries=tuple(boundaries),
            renewal_storm_size=self.renewal_storm_size,
        )


def _witness_record(kind: str, seq: int, actor: str) -> str:
    """Canonical witness-table entry stored at the key's owner.

    Its rendered length is the unit of the range-rebalance byte
    accounting: when a node leaves, the bytes handed to its heir are the
    sum of its stored entries' lengths — the same "state a witness must
    transfer" quantity Table 2 prices per payment on the wire.
    """
    return f"entry kind={kind} seq={seq} actor={actor}"


def _merged_timeline(
    config: CampaignConfig, ring: ChordRing
) -> tuple[list[tuple[float, int, int, Any]], int]:
    """All campaign happenings in deterministic time order.

    Returns ``(entries, initial_down)`` where each entry is
    ``(time, tiebreak_class, tiebreak_seq, payload)`` and payload is one
    of ``("flip", name, up)``, ``("member", action)`` or
    ``("event", Event)``. ``initial_down`` counts churned nodes that
    start the campaign down (applied before the loop).
    """
    entries: list[tuple[float, int, int, Any]] = []

    churn_rng = random.Random(f"campaign:churn:{config.seed}")
    churned = max(0, min(len(ring.nodes), round(config.churn_fraction * config.nodes)))
    names = sorted(node.name for node in ring.nodes)
    flipped = churn_rng.sample(names, churned)
    model = ChurnModel(
        mean_uptime=config.churn_mean_uptime,
        mean_downtime=config.churn_mean_downtime,
        rng=churn_rng,
    )
    initial_down = 0
    seq = 0
    for name in flipped:
        timeline = model.timeline(config.duration)
        if not timeline.initially_up:
            initial_down += 1
            ring.set_up(name, False)
        for at, up in timeline.events():
            entries.append((at, 1, seq, ("flip", name, up)))
            seq += 1

    member_rng = random.Random(f"campaign:membership:{config.seed}")
    at = 0.0
    seq = 0
    if config.membership_rate > 0:
        at = member_rng.expovariate(config.membership_rate)
        while at < config.duration:
            action = "join" if member_rng.random() < 0.5 else "leave"
            entries.append((at, 0, seq, ("member", action)))
            seq += 1
            at += member_rng.expovariate(config.membership_rate)

    for event in generate_events(config.workload()):
        entries.append((event.time, 2, event.seq, ("event", event)))

    entries.sort(key=lambda row: (row[0], row[1], row[2]))
    return entries, initial_down


def _protocol_slice(config: CampaignConfig) -> dict[str, Any]:
    """Replay a few workload events through the real-crypto stack.

    A fresh :class:`EcashSystem` on the fast test group, driven over the
    sim transport with the hardened payment path, then checked by the
    safety-invariant suite. Outcome labels and invariant verdicts are
    deterministic and perf-engine-independent, so they are digested.
    """
    system = EcashSystem(seed=config.seed)
    deployment = NetworkDeployment(
        system, cost_model=instant_profile(), seed=config.seed
    )
    deployment.add_client(CLIENT)
    checker = InvariantChecker(system)
    outcomes: list[str] = []

    def pay_once(tag: str, merchant_rank: int, renew_first: bool) -> None:
        try:
            info = system.standard_info(25, now=deployment.now())
            stored = deployment.run(deployment.withdrawal_process(CLIENT, info))
            if renew_first:
                fresh_info = system.standard_info(25, now=deployment.now())
                stored = deployment.run(
                    deployment.renewal_process(CLIENT, stored, fresh_info)
                )
            others = [
                m for m in system.merchant_ids if m != stored.coin.witness_id
            ]
            merchant_id = others[merchant_rank % len(others)]
            receipt = deployment.run(
                deployment.robust_payment_process(CLIENT, stored, merchant_id)
            )
            outcomes.append(f"{tag} paid {receipt.merchant_id} amount={receipt.amount}")
        except (SimTimeoutError, ServiceUnavailableError):
            outcomes.append(f"{tag} unavailable")
        except EcashError as error:
            outcomes.append(f"{tag} refused-{type(error).__name__}")

    events = generate_events(config.workload())
    pays = [e for e in events if e.kind == "pay"][: config.protocol_payments]
    renews = [e for e in events if e.kind == "renew"][: config.protocol_renewals]
    for event in pays:
        pay_once(f"pay#{event.seq}", int(event.merchant.split("-")[1]), False)
    for event in renews:
        pay_once(f"renew#{event.seq}", int(event.merchant.split("-")[1]), True)

    for merchant_id in system.merchant_ids:
        if not system.merchant(merchant_id).pending_deposits():
            continue
        try:
            replies = deployment.run(deployment.deposit_process(merchant_id))
            outcomes.extend(
                f"deposit {merchant_id}: {reply.get('outcome')}" for reply in replies
            )
        except (SimTimeoutError, EcashError) as error:
            outcomes.append(f"deposit {merchant_id}: {type(error).__name__}")

    invariants = checker.check_all()
    return {
        "outcomes": outcomes,
        "invariants": [
            {"name": result.name, "ok": result.ok} for result in invariants
        ],
        "violations": sum(1 for result in invariants if not result.ok),
        "system": system,
        "deployment": deployment,
    }


def results_digest(results: dict[str, Any]) -> str:
    """sha256 over the canonical JSON of the digested section."""
    canonical = json.dumps(results, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()


def run_campaign(
    config: CampaignConfig,
    *,
    scaling_workers: int = 0,
    include_protocol: bool = True,
) -> dict[str, Any]:
    """Run one seeded campaign and return its report dict.

    Args:
        config: the determinism boundary — same config ⇒ same ``results``
            section and ``digest``, regardless of perf engine or workers.
        scaling_workers: when > 1, append a timing-based ``scaling``
            section exercising :mod:`repro.perf.parallel` at worker
            levels up to this count (gated on ``host_cpus``; excluded
            from the digest like all timings).
        include_protocol: drive the real-crypto protocol slice and the
            safety-invariant checker (on by default; tests that only
            exercise the overlay tier can switch it off).
    """
    started = time.perf_counter()
    ring = ChordRing(
        [f"peer-{i:05d}" for i in range(config.nodes)],
        successor_list_size=config.successor_list_size,
    )
    entries, initial_down = _merged_timeline(config, ring)

    hops = StreamingStats("chord_lookup_hops", seed=config.seed)
    availability = StreamingStats("live_fraction", seed=config.seed + 1)
    repair = StreamingStats("repair_ops", seed=config.seed + 2)
    lookup_rng = random.Random(f"campaign:lookups:{config.seed}")
    bytes_by_node: dict[str, int] = {}
    counts = {"joins": 0, "leaves": 0, "flips": 0, "records_moved": 0}
    rebalance_bytes = 0
    joined = 0
    home_up = 0
    lookups = 0
    failed_lookups = 0
    events_by_kind: dict[str, int] = {}
    floor = max(4, config.successor_list_size + 1)

    for at, _tie, _seq, payload in entries:
        if payload[0] == "flip":
            _, name, up = payload
            try:
                ring.set_up(name, up)
            except KeyError:
                continue  # the node left the ring before this flip
            counts["flips"] += 1
        elif payload[0] == "member":
            if payload[1] == "join":
                ops = ring.join(f"peer-x{joined:05d}")
                joined += 1
                counts["joins"] += 1
                repair.add(ops)
            else:
                if len(ring.nodes) <= floor:
                    continue
                victim = ring.nodes[lookup_rng.randrange(len(ring.nodes))]
                victim_name, victim_id = victim.name, victim.node_id
                ops, moved = ring.leave(victim_name)
                counts["leaves"] += 1
                counts["records_moved"] += moved
                repair.add(ops)
                moved_bytes = bytes_by_node.pop(victim_name, 0)
                rebalance_bytes += moved_bytes
                if moved_bytes:
                    heir = ring._successor_of(victim_id)
                    bytes_by_node[heir.name] = (
                        bytes_by_node.get(heir.name, 0) + moved_bytes
                    )
        else:
            event = payload[1]
            events_by_kind[event.kind] = events_by_kind.get(event.kind, 0) + 1
            obs.counter_inc("campaign_events_total", kind=event.kind)
            availability.add(ring.live_count / len(ring.nodes))
            key = chord_id(f"{event.kind}:{event.seq}:{event.actor}")
            index = lookup_rng.randrange(len(ring.nodes))
            start = None
            for probe in range(len(ring.nodes)):
                candidate = ring.nodes[(index + probe) % len(ring.nodes)]
                if candidate.up:
                    start = candidate
                    break
            if start is None:
                failed_lookups += 1
                continue
            try:
                result = ring.lookup(key, start=start)
            except ChordLookupError:
                failed_lookups += 1
                continue
            lookups += 1
            hops.add(result.hops)
            if ring._successor_of(key).up:
                home_up += 1
            if event.kind == "pay":
                record = _witness_record(event.kind, event.seq, event.actor)
                result.owner.put_local(key, record)
                bytes_by_node[result.owner.name] = (
                    bytes_by_node.get(result.owner.name, 0) + len(record)
                )

    workload = config.workload()
    schedule = generate_events(workload)
    hop_bound = round(
        0.5 * math.log2(max(2, config.nodes)) + HOP_BOUND_CONSTANT, 6
    )
    hop_summary = hops.summary()
    results: dict[str, Any] = {
        "workload": {
            "events": event_counts(schedule),
            "schedule_digest": schedule_digest(schedule),
        },
        "lookups": {
            "count": lookups,
            "failed": failed_lookups,
            "hops": hop_summary,
            "mean_hops_bound": hop_bound,
            "within_bound": bool(hop_summary["mean"] <= hop_bound),
            "home_owner_up_ratio": round(home_up / lookups, 6) if lookups else 0.0,
        },
        "availability": {
            "live_fraction": availability.summary(),
            "initially_down": initial_down,
            "flips": counts["flips"],
        },
        "membership": {
            "joins": counts["joins"],
            "leaves": counts["leaves"],
            "records_moved": counts["records_moved"],
            "rebalance_bytes": rebalance_bytes,
            "final_nodes": len(ring.nodes),
        },
        "metrics": {
            "campaign_events_total": dict(sorted(events_by_kind.items())),
            "chord_lookups_total": lookups,
            "chord_lookup_hops_count": hop_summary["count"],
        },
    }
    if include_protocol:
        slice_report = _protocol_slice(config)
        results["protocol"] = {
            "outcomes": slice_report["outcomes"],
            "invariants": slice_report["invariants"],
            "violations": slice_report["violations"],
        }

    report: dict[str, Any] = {
        "schema": SCHEMA,
        "config": asdict(config),
        "results": results,
        "digest": results_digest(results),
        "engine": {
            "perf_enabled": perf.is_enabled(),
            "table_builds": ring.table_builds,
            "full_rebuilds_after_bootstrap": ring.table_builds - 1,
            "ring_repair_ops_total": ring.repair_ops,
            "repair_ops_per_event": repair.summary(),
            "wall_seconds": round(time.perf_counter() - started, 3),
        },
    }
    if scaling_workers > 1 and include_protocol:
        report["scaling"] = _scaling_section(slice_report, scaling_workers)
    return report


def _scaling_section(slice_report: dict[str, Any], workers: int) -> dict[str, Any]:
    """Efficiency-vs-cores section reusing the parallel bench harness.

    Recorded as per-level speedups with the host's ``host_cpus`` stamped,
    never a single number: on a 1-core host every level measures pool
    overhead, and the section is informative only when ``host_cpus ≥ 4``
    (the ROADMAP gating). Excluded from the digest — it is timing.
    """
    from repro.perf.bench import _run_parallel_section

    system: EcashSystem = slice_report["system"]
    deployment: NetworkDeployment = slice_report["deployment"]
    merchant_id = system.merchant_ids[0]
    return _run_parallel_section(
        system, merchant_id, workers, now=deployment.now()
    )


def identity_check(config: CampaignConfig) -> dict[str, Any]:
    """Run ``config`` on both engines and compare result digests.

    The acceptance-criteria check: the perf path (bisect + incremental
    repair + lookup memo) must be byte-identical to the naive path at
    small n. Returns both digests and the verdict; callers embed this in
    ``BENCH_campaign.json`` and the CI smoke job asserts ``match``.
    """
    with perf.forced(True):
        fast = run_campaign(config, include_protocol=False)
    with perf.forced(False):
        naive = run_campaign(config, include_protocol=False)
    return {
        "nodes": config.nodes,
        "digest_perf": fast["digest"],
        "digest_naive": naive["digest"],
        "match": fast["digest"] == naive["digest"],
        "naive_table_builds": naive["engine"]["table_builds"],
        "perf_table_builds": fast["engine"]["table_builds"],
    }


__all__ = [
    "CampaignConfig",
    "HOP_BOUND_CONSTANT",
    "SCHEMA",
    "identity_check",
    "results_digest",
    "run_campaign",
]
