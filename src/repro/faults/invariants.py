"""Safety-invariant checking for chaos runs.

The paper's guarantee is not "payments succeed" — under enough injected
chaos they may not — but that *no adversary schedule ever lets money be
created*: a coin is credited from the broker's float at most once, every
double-spend attempt yields a publicly verifiable ``(x1, x2)``
extraction, a witness that signed twice is slashed at deposit time, and
the ledger stays conserved throughout. :class:`InvariantChecker` asserts
exactly those properties against a finished (or mid-flight) system, and
the chaos scenarios run it after every seeded run.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.coin import Coin
from repro.core.system import EcashSystem
from repro.core.transcripts import DoubleSpendProof


@dataclass(frozen=True)
class InvariantResult:
    """The verdict on one safety invariant."""

    name: str
    ok: bool
    detail: str

    def render(self) -> str:
        """Fixed-format line for the chaos report."""
        status = "PASS" if self.ok else "FAIL"
        return f"{status} {self.name}: {self.detail}"


class InvariantChecker:
    """Checks the paper's safety properties on an :class:`EcashSystem`.

    Construct it *before* the run (it snapshots the registered security
    deposits) and call the check methods — or :meth:`check_all` — after.
    """

    def __init__(self, system: EcashSystem) -> None:
        self.system = system
        self.broker = system.broker
        self._initial_deposits = {
            merchant_id: account.security_deposit
            for merchant_id, account in self.broker.merchants.items()
        }

    # ------------------------------------------------------------------
    # Individual invariants
    # ------------------------------------------------------------------
    def ledger_conserved(self) -> InvariantResult:
        """Minted money equals held plus burned money, always."""
        ledger = self.broker.ledger
        return InvariantResult(
            name="ledger-conserved",
            ok=ledger.conserved(),
            detail=(
                f"minted={ledger.minted} held={ledger.total_internal()} "
                f"burned={ledger.burned}"
            ),
        )

    def single_credit_per_coin(self) -> InvariantResult:
        """No coin is credited from the broker's float more than once.

        Every credit funded by the float must correspond to exactly one
        deposit record (the deposit database is keyed by the bare coin, so
        one record *is* one coin); every additional credit for an
        already-deposited coin must have been funded from a witness's
        security-deposit escrow and be backed by a fault-log entry.
        """
        float_credits = [
            entry
            for entry in self.broker.ledger.history
            if entry[0] == self.broker.account and entry[2] == "coin deposit"
        ]
        escrow_credits = [
            entry
            for entry in self.broker.ledger.history
            if entry[0].startswith("deposit:") and entry[2] == "coin deposit"
        ]
        coins_deposited = len(self.broker._deposits)
        ok = len(float_credits) == coins_deposited and len(escrow_credits) == len(
            self.broker.witness_fault_log
        )
        return InvariantResult(
            name="single-credit-per-coin",
            ok=ok,
            detail=(
                f"float-credits={len(float_credits)} coins-deposited={coins_deposited} "
                f"escrow-credits={len(escrow_credits)} "
                f"witness-faults={len(self.broker.witness_fault_log)}"
            ),
        )

    def witness_faults_slashed(self) -> InvariantResult:
        """Every logged witness fault carries evidence and cost a slash.

        Each fault-log entry must hold two transcripts for the *same*
        bare coin, deposited by *different* merchants, both carrying valid
        signatures from the accused witness — and the witness's escrow
        must be short by exactly the sum of the slashed denominations.
        """
        slashed: dict[str, int] = {}
        for witness_id, first, second in self.broker.witness_fault_log:
            account = self.broker.merchants.get(witness_id)
            if account is None:
                return InvariantResult(
                    "witness-faults-slashed", False, f"unknown witness {witness_id!r}"
                )
            same_coin = first.transcript.coin.bare == second.transcript.coin.bare
            distinct = first.transcript.merchant_id != second.transcript.merchant_id
            both_signed = first.verify_witness_signature(
                self.system.params, account.public_key
            ) and second.verify_witness_signature(self.system.params, account.public_key)
            if not (same_coin and distinct and both_signed):
                return InvariantResult(
                    name="witness-faults-slashed",
                    ok=False,
                    detail=(
                        f"fault evidence against {witness_id} unverifiable "
                        f"(same_coin={same_coin} distinct={distinct} signed={both_signed})"
                    ),
                )
            slashed[witness_id] = slashed.get(witness_id, 0) + (
                second.transcript.coin.denomination
            )
        for witness_id, amount in slashed.items():
            expected = self._initial_deposits[witness_id] - amount
            actual = self.broker.security_deposit_balance(witness_id)
            if actual != expected:
                return InvariantResult(
                    name="witness-faults-slashed",
                    ok=False,
                    detail=(
                        f"{witness_id} escrow={actual}, expected {expected} "
                        f"after slashing {amount}"
                    ),
                )
        return InvariantResult(
            name="witness-faults-slashed",
            ok=True,
            detail=f"faults={len(self.broker.witness_fault_log)} slashed={slashed or 0}",
        )

    def double_spend_proofs_verify(
        self, proofs: list[tuple[DoubleSpendProof, Coin]]
    ) -> InvariantResult:
        """Every refusal proof actually opens the coin's commitments."""
        bad = sum(
            1 for proof, coin in proofs if not proof.verify(self.system.params, coin)
        )
        return InvariantResult(
            name="double-spend-proofs-verify",
            ok=bad == 0,
            detail=f"proofs={len(proofs)} unverifiable={bad}",
        )

    # ------------------------------------------------------------------
    # All at once
    # ------------------------------------------------------------------
    def check_all(
        self, proofs: list[tuple[DoubleSpendProof, Coin]] | None = None
    ) -> list[InvariantResult]:
        """Run every invariant; ``proofs`` feeds the extraction check."""
        results = [
            self.ledger_conserved(),
            self.single_credit_per_coin(),
            self.witness_faults_slashed(),
        ]
        if proofs is not None:
            results.append(self.double_spend_proofs_verify(proofs))
        return results


__all__ = ["InvariantChecker", "InvariantResult"]
