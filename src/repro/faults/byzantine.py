"""Scripted Byzantine actors for the chaos scenarios.

Each function here makes one party misbehave in exactly the way the
paper's detection-and-punishment machinery exists to catch:

* an **equivocating witness** signs two transcripts for one coin —
  caught at deposit time (Algorithm 3 case 2-b), the cheated merchant is
  paid from the witness's security deposit;
* a **double-spending client** replays a spent coin at a second merchant
  — refused in real time with a verifiable ``(x1, x2)`` extraction when
  the witness is honest;
* a **double-depositing merchant** re-submits an already-cleared
  transcript — refused with :class:`~repro.core.exceptions.DoubleDepositError`;
* a **stale-table broker** replays old (or outright forged) overlay
  directories — peers ignore anything not strictly newer and
  authentically signed.
"""

from __future__ import annotations

import random
from typing import Any, Generator

from repro.core.client import StoredCoin
from repro.core.exceptions import DoubleSpendError, EcashError
from repro.core.params import SystemParams
from repro.core.system import EcashSystem
from repro.core.transcripts import DoubleSpendProof, SignedTranscript
from repro.core.witness import WitnessService
from repro.core.witness_ranges import WitnessAssignmentTable
from repro.net.overlay import Directory, directory_signed_parts
from repro.net.services import BROKER_NODE, NetworkDeployment
from repro.net.sim import Sleep
from repro.crypto.schnorr import SchnorrKeyPair


def equivocating_witness(system: EcashSystem, witness_id: str) -> WitnessService:
    """Turn a witness faulty: it will sign conflicting transcripts.

    Returns the witness service so callers can inspect its state.
    """
    witness = system.witness(witness_id)
    witness.faulty = True
    return witness


def double_spend_process(
    deployment: NetworkDeployment,
    client_name: str,
    stored: StoredCoin,
    merchants: tuple[str, str],
    pause: float = 200.0,
) -> Generator[Any, Any, tuple[list[str], DoubleSpendProof | None]]:
    """Spend one coin at two merchants (re-arming the wallet in between).

    Returns ``(outcomes, proof)`` where ``outcomes`` holds one label per
    attempt (``accepted`` / the refusing error type) and ``proof`` is the
    double-spend extraction if any attempt was refused with one. With an
    honest witness the second attempt is refused; with an equivocating
    witness both are accepted — and the deposit protocol must catch it.

    Args:
        pause: simulated seconds slept between the attempts, so the first
            commitment's lifetime expires and the witness accepts a fresh
            commitment request for the coin.
    """
    client = deployment.clients[client_name]
    outcomes: list[str] = []
    proof: DoubleSpendProof | None = None
    for index, merchant_id in enumerate(merchants):
        if index > 0:
            if pause > 0:
                yield Sleep(pause)
            if stored not in client.wallet.coins:
                client.wallet.add(stored)  # the attacker "forgets" it was spent
        try:
            yield from deployment.payment_process(client_name, stored, merchant_id)
            outcomes.append("accepted")
        except DoubleSpendError as refusal:
            outcomes.append("refused-double-spend")
            proof = refusal.proof
        except EcashError as error:
            outcomes.append(f"refused-{type(error).__name__}")
    return outcomes, proof


def double_deposit_process(
    deployment: NetworkDeployment, merchant_id: str, signed: SignedTranscript
) -> Generator[Any, Any, list[str]]:
    """Deposit the same signed transcript twice from one merchant.

    Returns the outcome labels of both attempts; the broker must refuse
    the second (Algorithm 3 case 2-a).
    """
    outcomes: list[str] = []
    for _ in range(2):
        try:
            reply = yield deployment.network.rpc(
                merchant_id,
                BROKER_NODE,
                "deposit",
                {"merchant_id": merchant_id, "signed": signed.to_wire()},
            )
            outcomes.append(str(reply.get("outcome")))
        except EcashError as error:
            outcomes.append(f"refused-{type(error).__name__}")
    return outcomes


def forged_directory(
    params: SystemParams,
    version: int,
    table: WitnessAssignmentTable,
    merchant_keys: dict[str, int],
    rng: random.Random | None = None,
) -> Directory:
    """A directory signed by an adversary's key instead of the broker's.

    Overlay members must reject it regardless of its (tempting) version
    number.
    """
    imposter = SchnorrKeyPair.generate(params.group, rng)
    signature = imposter.sign(
        *directory_signed_parts(version, table, merchant_keys), rng=rng
    )
    return Directory(
        version=version,
        table=table,
        merchant_keys=dict(merchant_keys),
        signature=signature,
    )


def push_directory_process(
    deployment_network: Any, source: str, target: str, directory: Directory
) -> Generator[Any, Any, str]:
    """Push a directory at a peer, as the stale-table broker actor does.

    Returns the version the target reports holding afterwards (as text),
    or the refusing error type. The ``source`` node must be registered on
    the network (the adversary runs a real host).
    """
    from repro.net.overlay import directory_to_payload

    try:
        reply = yield deployment_network.rpc(
            source, target, "overlay/push", directory_to_payload(directory), timeout=5.0
        )
        return str(reply.get("version"))
    except EcashError as error:
        return f"refused-{type(error).__name__}"


__all__ = [
    "double_deposit_process",
    "double_spend_process",
    "equivocating_witness",
    "forged_directory",
    "push_directory_process",
]
