"""repro.faults — deterministic fault injection and safety checking.

The paper's central claim is a *safety* claim: whatever the network does
— drops, delays, replays, crashes — and whoever misbehaves — clients,
merchants, witnesses, even a stale broker — no adversary schedule lets
money be created or a cheater go unidentified. This package turns that
claim into an executable test surface:

* :mod:`repro.faults.plan` / :mod:`repro.faults.injector` — declarative,
  seeded fault plans (drop / delay / duplicate / reorder / corrupt rules
  plus crash windows) executed against the simulated network via the
  first-class ``Network.fault_filter`` hook;
* :mod:`repro.faults.recovery` — deterministic exponential backoff and
  per-peer circuit breakers used by the hardened client retry loop;
* :mod:`repro.faults.byzantine` — scripted misbehaving parties
  (equivocating witness, double-spending client, double-depositing
  merchant, stale-table broker);
* :mod:`repro.faults.invariants` — the safety invariants checked after
  every chaos run;
* :mod:`repro.faults.scenarios` — the seeded end-to-end chaos suite
  behind ``python -m repro chaos``.

``byzantine`` and ``scenarios`` are *not* imported eagerly here: they
depend on :mod:`repro.net.services`, which itself uses
:mod:`repro.faults.recovery` — import them as submodules.
"""

from repro.faults.injector import (
    DEFAULT_REORDER_HOLD,
    FaultInjector,
    InjectionEvent,
    corrupt_message,
)
from repro.faults.invariants import InvariantChecker, InvariantResult
from repro.faults.plan import CrashWindow, FaultKind, FaultPlan, FaultRule
from repro.faults.recovery import BackoffPolicy, CircuitBreaker

__all__ = [
    "BackoffPolicy",
    "CircuitBreaker",
    "CrashWindow",
    "DEFAULT_REORDER_HOLD",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultRule",
    "InjectionEvent",
    "InvariantChecker",
    "InvariantResult",
    "corrupt_message",
]
