"""Declarative, seeded fault plans.

A :class:`FaultPlan` is the *schedule* of chaos for one run: a list of
:class:`FaultRule` message faults (drop, delay, duplicate, reorder,
corrupt) scoped to links/methods/time windows, plus :class:`CrashWindow`
node outages. Plans are pure data — the
:class:`~repro.faults.injector.FaultInjector` executes them against a
:class:`~repro.net.node.Network` — and every random decision is driven by
the plan's seed, so the same plan on the same deployment produces the
same run, event for event.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field


class FaultKind(enum.Enum):
    """The message-fault repertoire."""

    DROP = "drop"
    DELAY = "delay"
    DUPLICATE = "duplicate"
    REORDER = "reorder"
    CORRUPT = "corrupt"


@dataclass(frozen=True)
class FaultRule:
    """One message-fault rule.

    A rule matches a request in flight by source/destination node name and
    method (``None`` matches anything; a trailing ``*`` in ``method``
    prefix-matches), within an optional simulated-time window, and fires
    with the given probability until its injection budget is exhausted.

    Args:
        kind: what to do to a matched message.
        source: sending node name (``None`` = any).
        destination: receiving node name (``None`` = any).
        method: RPC method, exact or ``prefix*`` (``None`` = any).
        probability: chance a matched message is actually faulted.
        delay: extra in-flight seconds (``DELAY``) or hold window
            (``REORDER``); ignored by the other kinds.
        jitter: half-width of the uniform jitter added to ``delay``.
        max_injections: stop firing after this many injections
            (``None`` = unlimited).
        start: rule active from this simulated time.
        stop: rule inactive from this simulated time (``None`` = forever).
    """

    kind: FaultKind
    source: str | None = None
    destination: str | None = None
    method: str | None = None
    probability: float = 1.0
    delay: float = 0.0
    jitter: float = 0.0
    max_injections: int | None = None
    start: float = 0.0
    stop: float | None = None

    def __post_init__(self) -> None:
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.delay < 0 or self.jitter < 0:
            raise ValueError("delay and jitter must be non-negative")
        if self.max_injections is not None and self.max_injections < 1:
            raise ValueError("max_injections must be at least 1 (or None)")

    def matches(self, source: str, destination: str, method: str, now: float) -> bool:
        """Whether this rule applies to a message on ``source -> destination``."""
        if now < self.start or (self.stop is not None and now >= self.stop):
            return False
        if self.source is not None and self.source != source:
            return False
        if self.destination is not None and self.destination != destination:
            return False
        if self.method is not None:
            if self.method.endswith("*"):
                if not method.startswith(self.method[:-1]):
                    return False
            elif self.method != method:
                return False
        return True


@dataclass(frozen=True)
class CrashWindow:
    """A scheduled node outage: down ``at`` seconds after the plan is
    installed, back up ``duration`` seconds after that.

    A ``duration`` of ``None`` means the node never restarts.
    """

    node: str
    at: float
    duration: float | None

    def __post_init__(self) -> None:
        if self.at < 0:
            raise ValueError("crash time must be non-negative")
        if self.duration is not None and self.duration <= 0:
            raise ValueError("crash duration must be positive (or None)")


@dataclass
class FaultPlan:
    """A composable schedule of message faults and node crashes.

    Build one fluently::

        plan = (
            FaultPlan(seed=7)
            .drop(destination="alice-books", method="witness/*", probability=0.5)
            .delay(method="pay", delay=2.0, jitter=0.5)
            .crash("bob-news", at=10.0, duration=30.0)
        )

    Args:
        seed: drives every probabilistic decision the injector makes for
            this plan (fire-or-not, jitter, corruption target choice).
    """

    seed: int = 0
    rules: list[FaultRule] = field(default_factory=list)
    crashes: list[CrashWindow] = field(default_factory=list)

    def add(self, rule: FaultRule) -> "FaultPlan":
        """Append a pre-built rule; returns self for chaining."""
        self.rules.append(rule)
        return self

    def drop(self, **kwargs: object) -> "FaultPlan":
        """Add a message-drop rule (see :class:`FaultRule` for kwargs)."""
        return self.add(FaultRule(kind=FaultKind.DROP, **kwargs))  # type: ignore[arg-type]

    def delay(self, **kwargs: object) -> "FaultPlan":
        """Add a message-delay rule (``delay`` / ``jitter`` seconds)."""
        return self.add(FaultRule(kind=FaultKind.DELAY, **kwargs))  # type: ignore[arg-type]

    def duplicate(self, **kwargs: object) -> "FaultPlan":
        """Add a message-duplication rule (the replica arrives right after)."""
        return self.add(FaultRule(kind=FaultKind.DUPLICATE, **kwargs))  # type: ignore[arg-type]

    def reorder(self, **kwargs: object) -> "FaultPlan":
        """Add a reorder rule: hold a message until the next one passes it."""
        return self.add(FaultRule(kind=FaultKind.REORDER, **kwargs))  # type: ignore[arg-type]

    def corrupt(self, **kwargs: object) -> "FaultPlan":
        """Add a payload-corruption rule (one field deterministically bumped)."""
        return self.add(FaultRule(kind=FaultKind.CORRUPT, **kwargs))  # type: ignore[arg-type]

    def crash(self, node: str, at: float, duration: float | None) -> "FaultPlan":
        """Schedule a node crash/restart window; returns self for chaining."""
        self.crashes.append(CrashWindow(node=node, at=at, duration=duration))
        return self


__all__ = ["CrashWindow", "FaultKind", "FaultPlan", "FaultRule"]
