"""Executes a :class:`~repro.faults.plan.FaultPlan` against a network.

The injector installs itself as the network's ``fault_filter`` (the
first-class generalization of the older ``tamper_hook``): every request
reaching its destination is matched against the plan's rules and, when a
rule fires, the message is dropped, delayed, duplicated, reordered or
corrupted. Crash windows are scheduled on the simulator as
``node.set_up`` transitions. Every decision draws from one RNG seeded by
the plan, so a given (plan, deployment, workload) triple replays
identically — the property the chaos suite's byte-identical reports rest
on.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Callable

from repro import obs
from repro.faults.plan import CrashWindow, FaultKind, FaultPlan, FaultRule
from repro.net.node import Network, Node
from repro.net.transport import Message

#: How long a reorder-held message waits before being released anyway,
#: when no later message comes along to overtake it.
DEFAULT_REORDER_HOLD = 1.0


@dataclass(frozen=True)
class InjectionEvent:
    """One fault the injector actually applied."""

    time: float
    kind: str
    source: str
    destination: str
    method: str

    def render(self) -> str:
        """Fixed-format line for the chaos report."""
        return (
            f"t={self.time:10.3f} fault {self.kind:<9} "
            f"{self.source}->{self.destination} {self.method}"
        )


class FaultInjector:
    """Applies a fault plan to a :class:`~repro.net.node.Network`.

    Args:
        plan: the fault schedule to execute.
        observer: optional callback receiving one formatted line per
            injected fault (the chaos scenarios feed these into their
            event logs).
    """

    def __init__(
        self, plan: FaultPlan, observer: Callable[[str], None] | None = None
    ) -> None:
        self.plan = plan
        self.rng = random.Random(f"fault-injector:{plan.seed}")
        self.observer = observer
        self.events: list[InjectionEvent] = []
        self.network: Network | None = None
        self._fired: dict[int, int] = {}
        self._held: dict[tuple[str, str], list[tuple[Node, Node, Message, int, Any]]] = {}

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, network: Network) -> "FaultInjector":
        """Attach to the network and schedule the plan's crash windows.

        Raises:
            RuntimeError: the network already has a fault filter.
        """
        if network.fault_filter is not None:
            raise RuntimeError("network already has a fault injector installed")
        self.network = network
        network.fault_filter = self._filter
        for crash in self.plan.crashes:
            self._schedule_crash(network, crash)
        return self

    def uninstall(self) -> None:
        """Detach from the network (held messages are released immediately)."""
        if self.network is None:
            return
        for link in list(self._held):
            self._release_held(link)
        self.network.fault_filter = None
        self.network = None

    def _schedule_crash(self, network: Network, crash: CrashWindow) -> None:
        def down() -> None:
            network.node(crash.node).set_up(False)
            self._record("crash", crash.node, crash.node, "<node>")

        network.sim.schedule(crash.at, down)
        if crash.duration is not None:

            def up() -> None:
                network.node(crash.node).set_up(True)
                self._record("restart", crash.node, crash.node, "<node>")

            network.sim.schedule(crash.at + crash.duration, up)

    # ------------------------------------------------------------------
    # The filter (called by Network._deliver for every request)
    # ------------------------------------------------------------------
    def _filter(
        self,
        network: Network,
        src: Node,
        dst: Node,
        request: Message,
        size: int,
        result: Any,
    ) -> Message | None:
        now = network.sim.now
        link = (src.name, dst.name)
        for index, rule in enumerate(self.plan.rules):
            if not rule.matches(src.name, dst.name, request.method, now):
                continue
            if (
                rule.max_injections is not None
                and self._fired.get(index, 0) >= rule.max_injections
            ):
                continue
            if rule.probability < 1.0 and self.rng.random() >= rule.probability:
                continue
            self._fired[index] = self._fired.get(index, 0) + 1
            self._record(rule.kind.value, src.name, dst.name, request.method)
            if rule.kind is FaultKind.DROP:
                self._release_held(link)
                return None
            if rule.kind is FaultKind.DELAY:
                extra = self._sample_delay(rule)
                network.sim.schedule(
                    extra, network.deliver_now, src, dst, request, size, result
                )
                self._release_held(link)
                return None
            if rule.kind is FaultKind.DUPLICATE:
                # The replica enters the destination right after the
                # original (same instant, later event-heap sequence).
                network.sim.schedule(
                    0.0, network.deliver_now, src, dst, request, size, result
                )
            elif rule.kind is FaultKind.CORRUPT:
                request = corrupt_message(request, self.rng)
            elif rule.kind is FaultKind.REORDER:
                hold = rule.delay if rule.delay > 0 else DEFAULT_REORDER_HOLD
                self._hold(network, link, (src, dst, request, size, result), hold)
                return None
        # Any message that passes through overtakes a reorder-held one:
        # the held message is released right behind it.
        self._schedule_release_after_current(network, link)
        return request

    # ------------------------------------------------------------------
    # Reorder bookkeeping
    # ------------------------------------------------------------------
    def _hold(
        self,
        network: Network,
        link: tuple[str, str],
        pending: tuple[Node, Node, Message, int, Any],
        hold: float,
    ) -> None:
        self._held.setdefault(link, []).append(pending)

        def flush() -> None:
            self._release_held(link)

        network.sim.schedule(hold, flush)

    def _schedule_release_after_current(
        self, network: Network, link: tuple[str, str]
    ) -> None:
        if self._held.get(link):
            network.sim.schedule(0.0, self._release_held, link)

    def _release_held(self, link: tuple[str, str]) -> None:
        pending = self._held.pop(link, [])
        if not pending or self.network is None:
            return
        for src, dst, request, size, result in pending:
            self.network.deliver_now(src, dst, request, size, result)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _sample_delay(self, rule: FaultRule) -> float:
        if rule.jitter <= 0:
            return rule.delay
        return max(0.0, rule.delay + rule.jitter * (2.0 * self.rng.random() - 1.0))

    def _record(self, kind: str, source: str, destination: str, method: str) -> None:
        time = self.network.sim.now if self.network is not None else 0.0
        event = InjectionEvent(
            time=time, kind=kind, source=source, destination=destination, method=method
        )
        self.events.append(event)
        obs.counter_inc("fault_injected_total", kind=kind)
        if self.observer is not None:
            self.observer(event.render())


def corrupt_message(message: Message, rng: random.Random) -> Message:
    """Deterministically corrupt one payload field of a message.

    Integer-valued leaves are preferred (a bumped group element breaks a
    signature or NIZK without breaking wire parsing); when the payload has
    none, a string leaf is mangled instead. The target leaf is chosen by
    ``rng`` over the sorted leaf paths, so a seeded run always corrupts
    the same field.
    """
    paths = _leaf_paths(message.payload)
    int_paths = [path for path, value in paths if isinstance(value, int)]
    str_paths = [path for path, value in paths if isinstance(value, str)]
    pool = int_paths if int_paths else str_paths
    if not pool:
        return message
    target = pool[rng.randrange(len(pool))]
    payload = _copy_payload(message.payload)
    node: Any = payload
    for part in target[:-1]:
        node = node[part]
    value = node[target[-1]]
    node[target[-1]] = value + 1 if isinstance(value, int) else value + "?"
    return Message(method=message.method, payload=payload)


def _leaf_paths(
    payload: dict[str, Any], prefix: tuple[str, ...] = ()
) -> list[tuple[tuple[str, ...], Any]]:
    out: list[tuple[tuple[str, ...], Any]] = []
    for key in sorted(payload):
        value = payload[key]
        if isinstance(value, dict):
            out.extend(_leaf_paths(value, prefix + (key,)))
        else:
            out.append((prefix + (key,), value))
    return out


def _copy_payload(payload: dict[str, Any]) -> dict[str, Any]:
    return {
        key: _copy_payload(value) if isinstance(value, dict) else value
        for key, value in payload.items()
    }


__all__ = [
    "DEFAULT_REORDER_HOLD",
    "FaultInjector",
    "InjectionEvent",
    "corrupt_message",
]
