"""The seeded end-to-end chaos suite behind ``python -m repro chaos``.

Each scenario builds a fresh deployment, applies one flavour of chaos —
message faults from a :class:`~repro.faults.plan.FaultPlan`, scripted
Byzantine parties from :mod:`repro.faults.byzantine`, or a broker
crash/restart — drives real protocol traffic through it, and then runs
the :class:`~repro.faults.invariants.InvariantChecker`. The *liveness*
outcome of a run (payments succeeded, recovered, or gave up) is recorded
but never asserted; the *safety* invariants must hold for every seed.

Everything is seeded and the report renderer is fixed-format, so
``run_suite`` with the same seeds produces a byte-identical report — the
property the CI smoke step and the determinism test pin down.
"""

from __future__ import annotations

import random
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Generator, Iterable, Sequence

from repro.core.client import StoredCoin
from repro.core.exceptions import (
    DoubleDepositError,
    EcashError,
    ServiceUnavailableError,
)
from repro.core.persistence import (
    attach_broker_store,
    broker_spaces,
    load_broker,
    save_broker,
)
from repro.core.system import EcashSystem
from repro.faults.byzantine import (
    double_deposit_process,
    double_spend_process,
    equivocating_witness,
    forged_directory,
    push_directory_process,
)
from repro.faults.injector import FaultInjector
from repro.faults.invariants import InvariantChecker, InvariantResult
from repro.faults.plan import FaultPlan
from repro.net.costmodel import instant_profile
from repro.net.latency import Region
from repro.net.node import Node, metered
from repro.net.overlay import GossipOverlay, publish_directory
from repro.net.services import BROKER_NODE, NetworkDeployment
from repro.net.sim import SimTimeoutError
from repro.store import Store

#: The client node name every scenario uses.
CLIENT = "client-0"


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one seeded scenario run produced."""

    name: str
    seed: int
    outcomes: tuple[str, ...]
    invariants: tuple[InvariantResult, ...]
    fault_counts: tuple[tuple[str, int], ...]

    @property
    def ok(self) -> bool:
        """True iff every safety invariant held."""
        return all(result.ok for result in self.invariants)

    def render(self) -> str:
        """Fixed-format block for the chaos report."""
        status = "OK" if self.ok else "VIOLATED"
        lines = [f"scenario {self.name} seed={self.seed} {status}"]
        if self.fault_counts:
            lines.append(
                "  faults "
                + " ".join(f"{kind}={count}" for kind, count in self.fault_counts)
            )
        lines.extend(f"  outcome {line}" for line in self.outcomes)
        lines.extend(f"  invariant {result.render()}" for result in self.invariants)
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Shared plumbing
# ----------------------------------------------------------------------

def _fresh(seed: int) -> tuple[EcashSystem, NetworkDeployment, InvariantChecker]:
    """A deployment on the fast test group, plus its invariant checker.

    The checker is constructed *before* any chaos so it snapshots the
    pristine security deposits.
    """
    system = EcashSystem(seed=seed)
    deployment = NetworkDeployment(system, cost_model=instant_profile(), seed=seed)
    deployment.add_client(CLIENT)
    return system, deployment, InvariantChecker(system)


def _withdraw(
    system: EcashSystem, deployment: NetworkDeployment, denomination: int = 25
) -> StoredCoin:
    info = system.standard_info(denomination, now=deployment.now())
    return deployment.run(deployment.withdrawal_process(CLIENT, info))


def _other_merchant(system: EcashSystem, stored: StoredCoin, index: int = 0) -> str:
    """A deterministic storefront that is not the coin's own witness."""
    others = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    return others[index % len(others)]


def _pay(
    deployment: NetworkDeployment,
    stored: StoredCoin,
    merchant_id: str,
    **kwargs: Any,
) -> str:
    """Run the hardened payment, mapping the outcome to a report label."""
    try:
        receipt = deployment.run(
            deployment.robust_payment_process(CLIENT, stored, merchant_id, **kwargs)
        )
        return f"paid {receipt.merchant_id} amount={receipt.amount}"
    except (SimTimeoutError, ServiceUnavailableError):
        return "unavailable"
    except EcashError as error:
        return f"refused-{type(error).__name__}"
    except Exception as error:  # noqa: BLE001 - corrupted payloads crash parsers
        return f"error-{type(error).__name__}"


def _settle_one(
    system: EcashSystem, deployment: NetworkDeployment, merchant_id: str
) -> list[str]:
    """Deposit one merchant's pending transcripts; label each outcome."""
    lines: list[str] = []
    try:
        replies = deployment.run(deployment.deposit_process(merchant_id))
        lines.extend(
            f"deposit {merchant_id}: {reply.get('outcome')}" for reply in replies
        )
    except SimTimeoutError:
        lines.append(f"deposit {merchant_id}: timeout")
    except EcashError as error:
        lines.append(f"deposit {merchant_id}: refused-{type(error).__name__}")
    return lines


def _settle(system: EcashSystem, deployment: NetworkDeployment) -> list[str]:
    """Deposit every merchant's pending transcripts; label each outcome."""
    lines: list[str] = []
    for merchant_id in system.merchant_ids:
        if system.merchant(merchant_id).pending_deposits():
            lines.extend(_settle_one(system, deployment, merchant_id))
    return lines


def _finish(
    name: str,
    seed: int,
    outcomes: Sequence[str],
    checker: InvariantChecker,
    injector: FaultInjector | None = None,
    proofs: list[tuple[Any, Any]] | None = None,
) -> ScenarioResult:
    counts: dict[str, int] = {}
    if injector is not None:
        for event in injector.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
    return ScenarioResult(
        name=name,
        seed=seed,
        outcomes=tuple(outcomes),
        invariants=tuple(checker.check_all(proofs)),
        fault_counts=tuple(sorted(counts.items())),
    )


# ----------------------------------------------------------------------
# Message-fault scenarios
# ----------------------------------------------------------------------

def _scenario_drop(seed: int) -> ScenarioResult:
    """Witness traffic randomly dropped; clients fail over by renewing."""
    system, deployment, checker = _fresh(seed)
    coins = [_withdraw(system, deployment) for _ in range(3)]
    plan = FaultPlan(seed=seed).drop(method="witness/*", probability=0.3)
    injector = FaultInjector(plan).install(deployment.network)
    outcomes = [
        f"payment-{index}: {_pay(deployment, stored, _other_merchant(system, stored, index))}"
        for index, stored in enumerate(coins)
    ]
    injector.uninstall()
    outcomes.extend(_settle(system, deployment))
    return _finish("drop-witness-requests", seed, outcomes, checker, injector)


def _scenario_delay(seed: int) -> ScenarioResult:
    """Every message delayed by seconds of jittered extra latency."""
    system, deployment, checker = _fresh(seed)
    coins = [_withdraw(system, deployment) for _ in range(2)]
    plan = FaultPlan(seed=seed).delay(delay=2.0, jitter=1.0, probability=0.5)
    injector = FaultInjector(plan).install(deployment.network)
    outcomes = [
        f"payment-{index}: {_pay(deployment, stored, _other_merchant(system, stored, index))}"
        for index, stored in enumerate(coins)
    ]
    outcomes.extend(_settle(system, deployment))
    injector.uninstall()
    return _finish("delay-storm", seed, outcomes, checker, injector)


def _scenario_reorder(seed: int) -> ScenarioResult:
    """Two deposits race on one link; the first is held and overtaken."""
    system, deployment, checker = _fresh(seed)
    coins = [_withdraw(system, deployment) for _ in range(2)]
    merchant_id = _other_merchant(system, coins[0])
    outcomes = [
        f"payment-{index}: {_pay(deployment, stored, merchant_id)}"
        for index, stored in enumerate(coins)
    ]
    pending = list(system.merchant(merchant_id).pending_deposits())
    plan = FaultPlan(seed=seed).reorder(method="deposit", max_injections=1)
    injector = FaultInjector(plan).install(deployment.network)
    race_lines: list[str] = []
    for index, signed in enumerate(pending):

        def runner(signed=signed, index=index) -> Generator[Any, Any, None]:
            try:
                reply = yield deployment.network.rpc(
                    merchant_id,
                    BROKER_NODE,
                    "deposit",
                    {"merchant_id": merchant_id, "signed": signed.to_wire()},
                )
                race_lines.append(f"deposit-{index}: {reply.get('outcome')}")
            except EcashError as error:
                race_lines.append(f"deposit-{index}: refused-{type(error).__name__}")
            except SimTimeoutError:
                race_lines.append(f"deposit-{index}: timeout")

        deployment.sim.spawn(
            metered(runner(), deployment.network.cost_model, deployment.network.rng)
        )
    deployment.sim.run()
    injector.uninstall()
    outcomes.extend(race_lines)
    return _finish("reorder-deposits", seed, outcomes, checker, injector)


def _scenario_duplicate(seed: int) -> ScenarioResult:
    """Deposit messages replayed on the wire; replays must not re-credit."""
    system, deployment, checker = _fresh(seed)
    coins = [_withdraw(system, deployment) for _ in range(2)]
    outcomes = [
        f"payment-{index}: {_pay(deployment, stored, _other_merchant(system, stored, index))}"
        for index, stored in enumerate(coins)
    ]
    plan = FaultPlan(seed=seed).duplicate(method="deposit")
    injector = FaultInjector(plan).install(deployment.network)
    outcomes.extend(_settle(system, deployment))
    injector.uninstall()
    return _finish("duplicate-deposit-replay", seed, outcomes, checker, injector)


def _scenario_corrupt(seed: int) -> ScenarioResult:
    """One payment message corrupted in flight, then a clean retry."""
    system, deployment, checker = _fresh(seed)
    stored = _withdraw(system, deployment)
    merchant_id = _other_merchant(system, stored)
    plan = FaultPlan(seed=seed).corrupt(method="pay", max_injections=1)
    injector = FaultInjector(plan).install(deployment.network)
    outcomes = [f"payment-corrupted: {_pay(deployment, stored, merchant_id)}"]
    injector.uninstall()
    # Wait out the first commitment's lifetime, then retry cleanly.
    deployment.sim.schedule(200.0, lambda: None)
    deployment.sim.run()
    if stored in deployment.clients[CLIENT].wallet.coins:
        outcomes.append(f"payment-retry: {_pay(deployment, stored, merchant_id)}")
    outcomes.extend(_settle(system, deployment))
    return _finish("corrupt-payment", seed, outcomes, checker, injector)


# ----------------------------------------------------------------------
# Crash scenarios
# ----------------------------------------------------------------------

def _scenario_witness_crash(seed: int) -> ScenarioResult:
    """The coin's witness crashes and later restarts mid-payment."""
    system, deployment, checker = _fresh(seed)
    stored = _withdraw(system, deployment)
    plan = FaultPlan(seed=seed).crash(stored.coin.witness_id, at=0.0, duration=40.0)
    injector = FaultInjector(plan).install(deployment.network)
    outcomes = [
        f"payment: {_pay(deployment, stored, _other_merchant(system, stored), max_attempts=4)}"
    ]
    outcomes.extend(_settle(system, deployment))
    injector.uninstall()
    return _finish("witness-crash-restart", seed, outcomes, checker, injector)


def _scenario_unresponsive_witness(seed: int) -> ScenarioResult:
    """The coin's witness goes down for good; renewal routes around it."""
    system, deployment, checker = _fresh(seed)
    stored = _withdraw(system, deployment)
    plan = FaultPlan(seed=seed).crash(stored.coin.witness_id, at=0.0, duration=None)
    injector = FaultInjector(plan).install(deployment.network)
    outcomes = [
        f"payment: {_pay(deployment, stored, _other_merchant(system, stored), max_attempts=4)}"
    ]
    outcomes.extend(_settle(system, deployment))
    injector.uninstall()
    return _finish("unresponsive-witness", seed, outcomes, checker, injector)


def _scenario_broker_crash(seed: int) -> ScenarioResult:
    """The broker crashes after a deposit and restarts from saved state.

    The deposit database must survive the round-trip: re-depositing the
    already-cleared transcript against the restarted broker is refused.
    """
    system, deployment, checker = _fresh(seed)
    stored = _withdraw(system, deployment)
    merchant_id = _other_merchant(system, stored)
    outcomes = [f"payment: {_pay(deployment, stored, merchant_id)}"]
    pending = list(system.merchant(merchant_id).pending_deposits())
    outcomes.extend(_settle(system, deployment))
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "broker.json"
        save_broker(system.broker, path)
        restarted = load_broker(path, system.params)
    outcomes.append("broker: crash-restart round-trip")
    for signed in pending:
        try:
            restarted.deposit(merchant_id, signed, deployment.now())
            outcomes.append("re-deposit after restart: ACCEPTED")
        except DoubleDepositError:
            outcomes.append("re-deposit after restart: refused-DoubleDepositError")
    conserved = restarted.ledger.conserved()
    outcomes.append(f"restarted ledger conserved: {conserved}")
    return _finish("broker-crash-restart", seed, outcomes, checker)


def _broker_crash_campaign(seed: int, backend: str) -> ScenarioResult:
    """The broker dies mid-deposit-campaign and recovers from its store.

    The broker journals every mutation into a :class:`repro.store.Store`
    (``backend`` selects memory or SQLite shards). Mid-campaign the
    broker node crashes via a :class:`~repro.faults.plan.CrashWindow`
    and the process "dies": the store is closed abruptly, a torn partial
    record is appended to one WAL — and, because the store was compacted
    earlier, the journal is already longer than its snapshot. Recovery
    must truncate the torn tail, replay the journal over the stale
    snapshot, and reproduce the pre-crash state exactly: pending
    deposits settle (nothing lost), cleared transcripts stay refused (no
    double credit), and the ledger audit still conserves money.
    """
    system, deployment, checker = _fresh(seed)
    with tempfile.TemporaryDirectory() as tmp:
        state_dir = Path(tmp) / "broker-state"
        store = Store(state_dir, backend=backend, shards=4)
        attach_broker_store(system.broker, store)
        coins = [_withdraw(system, deployment) for _ in range(4)]
        outcomes = [
            f"payment-{index}: {_pay(deployment, stored, _other_merchant(system, stored, index))}"
            for index, stored in enumerate(coins)
        ]
        pending_by = {
            merchant_id: list(system.merchant(merchant_id).pending_deposits())
            for merchant_id in system.merchant_ids
            if system.merchant(merchant_id).pending_deposits()
        }
        campaign = sorted(pending_by)
        # Settle the first storefront, then compact: everything journaled
        # after this point lives only in the WAL, ahead of the snapshot —
        # which the second storefront's settlement then writes to.
        cleared: list[Any] = []
        if campaign:
            cleared = pending_by[campaign[0]]
            outcomes.extend(_settle_one(system, deployment, campaign[0]))
        store.compact()
        outcomes.append("store: compacted (stale snapshot, journal runs ahead)")
        for merchant_id in campaign[1:2]:
            outcomes.extend(_settle_one(system, deployment, merchant_id))
        # The broker node goes dark mid-campaign; the remaining deposit
        # runs are attempted against the dead node.
        plan = FaultPlan(seed=seed).crash(BROKER_NODE, at=0.0, duration=60.0)
        injector = FaultInjector(plan).install(deployment.network)
        for merchant_id in campaign[2:]:
            outcomes.extend(_settle_one(system, deployment, merchant_id))
        expected = broker_spaces(system.broker)
        # Process death: abrupt close, plus a torn partial record on one
        # shard's WAL, as if the power died mid-write.
        store.close()
        with (state_dir / "shard-00" / "wal.log").open("ab") as handle:
            handle.write(b"\x00\x00\x00\x17to")
        reopened = Store(state_dir, backend=backend, shards=4)
        stats = attach_broker_store(system.broker, reopened)
        outcomes.append(
            "restart: "
            f"snapshot={stats.snapshot_records} "
            f"replayed={stats.replayed_records} "
            f"torn-bytes={stats.truncated_bytes} "
            f"discarded={stats.discarded_records}"
        )
        outcomes.append(
            f"state preserved across crash: {broker_spaces(system.broker) == expected}"
        )
        outcomes.append(f"store digest: {reopened.state_digest()[:16]}")
        # No double credit: transcripts cleared before the crash stay
        # refused by the recovered deposit database.
        for signed in cleared:
            try:
                system.broker.deposit(campaign[0], signed, deployment.now())
                outcomes.append("re-deposit after restart: ACCEPTED")
            except DoubleDepositError:
                outcomes.append("re-deposit after restart: refused-DoubleDepositError")
        # Nothing lost: once the node is back up, the interrupted
        # campaign finishes against the recovered broker.
        deployment.sim.schedule(90.0, lambda: None)
        deployment.sim.run()
        outcomes.extend(_settle(system, deployment))
        injector.uninstall()
        outcomes.append(f"ledger conserved: {system.broker.ledger.conserved()}")
        reopened.close()
    return _finish(
        f"broker-crash-campaign-{backend}", seed, outcomes, checker, injector
    )


def _scenario_crash_campaign_memory(seed: int) -> ScenarioResult:
    """Broker crash mid-deposit-campaign, memory-backed store."""
    return _broker_crash_campaign(seed, "memory")


def _scenario_crash_campaign_sqlite(seed: int) -> ScenarioResult:
    """Broker crash mid-deposit-campaign, SQLite-backed store."""
    return _broker_crash_campaign(seed, "sqlite")


# ----------------------------------------------------------------------
# Byzantine scenarios
# ----------------------------------------------------------------------

def _scenario_byzantine_witness(seed: int) -> ScenarioResult:
    """An equivocating witness signs two transcripts for one coin.

    Both payments go through in real time — the witness is the detection
    point and it is lying — so the fraud must be caught at deposit time
    (Algorithm 3 case 2-b): the second depositing merchant is paid out of
    the witness's security deposit and the fault is logged with the two
    conflicting transcripts as evidence.
    """
    system, deployment, checker = _fresh(seed)
    stored = _withdraw(system, deployment)
    equivocating_witness(system, stored.coin.witness_id)
    others = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    attempts, proof = deployment.run(
        double_spend_process(deployment, CLIENT, stored, (others[0], others[1]))
    )
    outcomes = [f"spend-{index}: {label}" for index, label in enumerate(attempts)]
    if proof is not None:
        outcomes.append("unexpected real-time refusal despite faulty witness")
    outcomes.extend(_settle(system, deployment))
    outcomes.append(f"witness-faults-logged: {len(system.broker.witness_fault_log)}")
    return _finish("byzantine-witness-slash", seed, outcomes, checker)


def _scenario_double_spend(seed: int) -> ScenarioResult:
    """A client replays a spent coin; the honest witness refuses with proof."""
    system, deployment, checker = _fresh(seed)
    stored = _withdraw(system, deployment)
    others = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    attempts, proof = deployment.run(
        double_spend_process(deployment, CLIENT, stored, (others[0], others[1]))
    )
    outcomes = [f"spend-{index}: {label}" for index, label in enumerate(attempts)]
    proofs = [(proof, stored.coin)] if proof is not None else []
    outcomes.append(f"extraction-proof: {'present' if proof is not None else 'MISSING'}")
    outcomes.extend(_settle(system, deployment))
    return _finish("double-spend-extraction", seed, outcomes, checker, proofs=proofs)


def _scenario_double_deposit(seed: int) -> ScenarioResult:
    """A merchant submits the same cleared transcript twice."""
    system, deployment, checker = _fresh(seed)
    stored = _withdraw(system, deployment)
    merchant_id = _other_merchant(system, stored)
    outcomes = [f"payment: {_pay(deployment, stored, merchant_id)}"]
    signed = system.merchant(merchant_id).pending_deposits()[0]
    attempts = deployment.run(
        double_deposit_process(deployment, merchant_id, signed)
    )
    system.merchant(merchant_id).mark_deposited(signed)
    outcomes.extend(f"deposit-{index}: {label}" for index, label in enumerate(attempts))
    return _finish("double-deposit-merchant", seed, outcomes, checker)


def _scenario_stale_broker(seed: int) -> ScenarioResult:
    """An adversary pushes stale and forged directories into the overlay."""
    system, deployment, checker = _fresh(seed)
    members = list(system.merchant_ids)
    overlay = GossipOverlay(
        system.params,
        deployment.network,
        system.broker.sign_public,
        members,
        seed=seed,
    )
    rng = random.Random(f"chaos-stale:{seed}")
    keys = {mid: system.merchant(mid).public_key for mid in members}
    table = system.broker.current_table
    stale = publish_directory(
        system.params, system.broker._sign_key, 1, table, keys, rng
    )
    current = publish_directory(
        system.params, system.broker._sign_key, 2, table, keys, rng
    )
    overlay.seed(current, members)
    deployment.network.register(Node("mallory", Region.MASSACHUSETTS))
    target = members[0]
    deployment.run(
        push_directory_process(deployment.network, "mallory", target, stale)
    )
    outcomes = [f"stale push: target still at v{overlay.version_of(target)}"]
    forged = forged_directory(system.params, 9, table, keys, rng)
    deployment.run(
        push_directory_process(deployment.network, "mallory", target, forged)
    )
    outcomes.append(f"forged push: target still at v{overlay.version_of(target)}")
    outcomes.append(f"forged rejections: {overlay.states[target].rejected}")
    return _finish("stale-table-broker", seed, outcomes, checker)


#: The scenario registry, in report order.
SCENARIOS: dict[str, Callable[[int], ScenarioResult]] = {
    "drop-witness-requests": _scenario_drop,
    "delay-storm": _scenario_delay,
    "reorder-deposits": _scenario_reorder,
    "duplicate-deposit-replay": _scenario_duplicate,
    "corrupt-payment": _scenario_corrupt,
    "witness-crash-restart": _scenario_witness_crash,
    "unresponsive-witness": _scenario_unresponsive_witness,
    "byzantine-witness-slash": _scenario_byzantine_witness,
    "double-spend-extraction": _scenario_double_spend,
    "double-deposit-merchant": _scenario_double_deposit,
    "stale-table-broker": _scenario_stale_broker,
    "broker-crash-restart": _scenario_broker_crash,
    "broker-crash-campaign-memory": _scenario_crash_campaign_memory,
    "broker-crash-campaign-sqlite": _scenario_crash_campaign_sqlite,
}


def run_scenario(name: str, seed: int) -> ScenarioResult:
    """Run one named scenario under one seed.

    Raises:
        KeyError: unknown scenario name.
    """
    return SCENARIOS[name](seed)


def run_suite(
    names: Iterable[str] | None = None, seeds: Iterable[int] = range(20)
) -> list[ScenarioResult]:
    """Run scenarios × seeds (all scenarios by default), in report order."""
    chosen = list(names) if names is not None else list(SCENARIOS)
    return [run_scenario(name, seed) for name in chosen for seed in seeds]


def render_report(results: Sequence[ScenarioResult]) -> str:
    """The full chaos report: fixed format, no clocks, byte-stable."""
    violations = sum(1 for result in results if not result.ok)
    lines = [
        "chaos report",
        f"runs={len(results)} violations={violations}",
        "",
    ]
    for result in results:
        lines.append(result.render())
        lines.append("")
    lines.append(
        "ALL INVARIANTS HELD" if violations == 0 else f"INVARIANT VIOLATIONS: {violations}"
    )
    return "\n".join(lines) + "\n"


__all__ = [
    "CLIENT",
    "SCENARIOS",
    "ScenarioResult",
    "render_report",
    "run_scenario",
    "run_suite",
]
