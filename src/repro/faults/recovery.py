"""Recovery primitives: deterministic backoff and circuit breaking.

The paper's availability story (Section 4) assumes clients *retry around*
faulty witnesses — renewing the coin at the broker and paying again. These
helpers make that retry loop production-shaped without losing determinism:
:class:`BackoffPolicy` spaces attempts exponentially with seeded jitter
(so simulated retries never thunder and seeded runs replay exactly), and
:class:`CircuitBreaker` stops a client from burning full RPC timeouts on a
witness that has already failed repeatedly.

Nothing here imports the network layer, so ``repro.net`` modules can use
these primitives without an import cycle.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field


@dataclass(frozen=True)
class BackoffPolicy:
    """Exponential backoff with deterministic, seeded jitter.

    The delay before retry ``attempt`` (0-based) is
    ``min(base * factor**attempt, max_delay)``, scaled by a uniform jitter
    factor in ``[1 - jitter, 1 + jitter]`` drawn from the caller's RNG —
    the caller owns the seed, so a replayed run backs off identically.
    """

    base: float = 0.5
    factor: float = 2.0
    max_delay: float = 30.0
    jitter: float = 0.1

    def __post_init__(self) -> None:
        if self.base < 0 or self.max_delay < 0:
            raise ValueError("backoff delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be at least 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be within [0, 1)")

    def delay(self, attempt: int, rng: random.Random | None = None) -> float:
        """The pause before retry ``attempt`` (0-based), in seconds."""
        raw = min(self.base * self.factor**attempt, self.max_delay)
        if self.jitter > 0 and rng is not None:
            raw *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return raw


@dataclass
class CircuitBreaker:
    """A per-peer circuit breaker over an external clock.

    Closed (normal) until ``failure_threshold`` consecutive failures open
    it; while open, :meth:`allows` returns ``False`` until
    ``reset_timeout`` seconds pass, after which one probe is allowed
    (half-open). A success closes the circuit, another failure re-opens
    it for a fresh timeout. The clock is whatever the caller passes to
    :meth:`allows` / :meth:`record_failure` — the deployment passes
    simulated time.
    """

    failure_threshold: int = 3
    reset_timeout: float = 60.0
    failures: int = 0
    opened_at: float | None = None
    _probing: bool = field(default=False, repr=False)

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError("failure threshold must be at least 1")
        if self.reset_timeout < 0:
            raise ValueError("reset timeout must be non-negative")

    @property
    def open(self) -> bool:
        """True while the circuit is open (requests should be skipped)."""
        return self.opened_at is not None

    def allows(self, now: float) -> bool:
        """Whether a request may be attempted at ``now``.

        While open, returns ``False`` until the reset timeout elapses;
        the first call after that is the half-open probe and returns
        ``True``.
        """
        if self.opened_at is None:
            return True
        if now - self.opened_at >= self.reset_timeout:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        """Note a successful call: the circuit closes and counters reset."""
        self.failures = 0
        self.opened_at = None
        self._probing = False

    def record_failure(self, now: float) -> None:
        """Note a failed call; may open (or re-open) the circuit."""
        if self._probing:
            # The half-open probe failed: re-open for a fresh timeout.
            self._probing = False
            self.opened_at = now
            return
        self.failures += 1
        if self.opened_at is None and self.failures >= self.failure_threshold:
            self.opened_at = now


__all__ = ["BackoffPolicy", "CircuitBreaker"]
