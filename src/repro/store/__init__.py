"""repro.store — durable, sharded storage under the broker and witnesses.

The paper's double-spend guarantee is only as strong as the broker's
memory of past deposits: a broker that forgets a transcript after a
crash re-opens the exact window the witness layer closes. This package
provides that memory as three small layers:

* :class:`~repro.store.wal.WriteAheadLog` — an append-only journal of
  length-prefixed, CRC-checked records with batched fsync; every
  mutation is journaled *before* it is acknowledged;
* :class:`~repro.store.shard.Shard` — one journaled partition: WAL +
  atomic snapshot + a materialized :class:`~repro.store.backend.KVBackend`
  (in-memory for simulations, SQLite for daemons) rebuilt wholesale on
  recovery, so recovered state is a function of the journal alone;
* :class:`~repro.store.store.Store` — a fixed set of shards routed by
  coin-hash prefix, aligned with the witness ranges that already
  partition ``[0, 2^k)``.

Transient IO errors retry with seeded backoff
(:class:`~repro.store.retry.RetryPolicy`) before surfacing as the typed
:class:`~repro.store.errors.StoreIOError`; structural damage beyond a
torn final WAL record raises
:class:`~repro.store.errors.StoreCorruptError`. ``repro.core.persistence``
builds broker/witness journaling on top; ``repro.daemon`` wires recovery
into the broker process (``--state-dir``); ``repro.faults`` crash-tests
the whole path.
"""

from __future__ import annotations

from repro.store.backend import (
    BACKENDS,
    KVBackend,
    MemoryBackend,
    SQLiteBackend,
    make_backend,
)
from repro.store.errors import StoreCorruptError, StoreError, StoreIOError
from repro.store.retry import RetryPolicy, with_retries
from repro.store.shard import RecoveryStats, SNAPSHOT_VERSION, Shard
from repro.store.store import (
    MANIFEST_VERSION,
    SHARDED_SPACES,
    Store,
    open_store,
    shard_index,
)
from repro.store.wal import MAGIC, WalScan, WriteAheadLog, scan_wal_bytes

__all__ = [
    "BACKENDS",
    "KVBackend",
    "MAGIC",
    "MANIFEST_VERSION",
    "MemoryBackend",
    "RecoveryStats",
    "RetryPolicy",
    "SHARDED_SPACES",
    "SNAPSHOT_VERSION",
    "SQLiteBackend",
    "Shard",
    "Store",
    "StoreCorruptError",
    "StoreError",
    "StoreIOError",
    "WalScan",
    "WriteAheadLog",
    "make_backend",
    "open_store",
    "scan_wal_bytes",
    "shard_index",
]
