"""Materialized key/value backends behind one small protocol.

A backend is a *cache of the journal*, never the source of truth: the
:class:`~repro.store.shard.Shard` recovery path clears the backend and
rebuilds it from snapshot + WAL on every open. That inversion is what
makes recovery byte-identical across backends — the logical state is a
function of the journal alone, and a backend only has to answer reads
fast between recoveries.

Two implementations ship:

* :class:`MemoryBackend` — plain nested dicts, for simulations and
  tests where the process *is* the deployment;
* :class:`SQLiteBackend` — one ``kv`` table per shard file, for the
  daemon processes. Because the WAL already carries durability,
  SQLite runs with ``synchronous=OFF`` — losing its buffered pages in
  a crash is fine, recovery rebuilds them.

Keys live in *spaces* (``"deposits"``, ``"merchants"``, ...), so one
backend file holds every table of a shard.
"""

from __future__ import annotations

import sqlite3
from pathlib import Path
from typing import Iterator, Protocol


class KVBackend(Protocol):
    """What a shard needs from its materialized state.

    Values are UTF-8 JSON blobs; the shard owns encoding. Implementations
    must make ``put``/``delete`` idempotent (recovery replays journaled
    operations that may already be applied).
    """

    def get(self, space: str, key: str) -> bytes | None:
        """Return the value at ``(space, key)``, or ``None``."""
        ...

    def put(self, space: str, key: str, value: bytes) -> None:
        """Insert or overwrite the value at ``(space, key)``."""
        ...

    def delete(self, space: str, key: str) -> None:
        """Remove ``(space, key)`` if present (no error when absent)."""
        ...

    def items(self, space: str) -> Iterator[tuple[str, bytes]]:
        """Iterate ``(key, value)`` pairs of one space, key-sorted."""
        ...

    def spaces(self) -> list[str]:
        """All non-empty space names, sorted."""
        ...

    def clear(self) -> None:
        """Drop every space — recovery rebuilds from the journal."""
        ...

    def flush(self) -> None:
        """Persist buffered writes (no-op for memory)."""
        ...

    def close(self) -> None:
        """Release resources; the backend must not be used afterwards."""
        ...


class MemoryBackend:
    """Nested-dict backend for simulations: fast, volatile, ordered."""

    def __init__(self) -> None:
        self._spaces: dict[str, dict[str, bytes]] = {}

    def get(self, space: str, key: str) -> bytes | None:
        """Return the value at ``(space, key)``, or ``None``."""
        table = self._spaces.get(space)
        return None if table is None else table.get(key)

    def put(self, space: str, key: str, value: bytes) -> None:
        """Insert or overwrite the value at ``(space, key)``."""
        self._spaces.setdefault(space, {})[key] = value

    def delete(self, space: str, key: str) -> None:
        """Remove ``(space, key)`` if present (no error when absent)."""
        table = self._spaces.get(space)
        if table is not None:
            table.pop(key, None)
            if not table:
                del self._spaces[space]

    def items(self, space: str) -> Iterator[tuple[str, bytes]]:
        """Iterate ``(key, value)`` pairs of one space, key-sorted."""
        table = self._spaces.get(space, {})
        for key in sorted(table):
            yield key, table[key]

    def spaces(self) -> list[str]:
        """All non-empty space names, sorted."""
        return sorted(name for name, table in self._spaces.items() if table)

    def clear(self) -> None:
        """Drop every space — recovery rebuilds from the journal."""
        self._spaces.clear()

    def flush(self) -> None:
        """Nothing buffered: memory is already 'persisted'."""

    def close(self) -> None:
        """Release the dicts so reuse after close fails loudly in tests."""
        self._spaces.clear()


class SQLiteBackend:
    """SQLite-file backend for daemons: one ``kv`` table, WAL-subordinate.

    Args:
        path: the database file (created on first use).

    The connection commits on :meth:`flush`/:meth:`close` only;
    ``synchronous=OFF`` is safe because the shard's write-ahead log is
    the durability anchor and recovery rebuilds this file from it.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._conn = sqlite3.connect(self.path)
        self._conn.execute("PRAGMA synchronous=OFF")
        self._conn.execute("PRAGMA journal_mode=MEMORY")
        self._conn.execute(
            "CREATE TABLE IF NOT EXISTS kv ("
            " space TEXT NOT NULL,"
            " key TEXT NOT NULL,"
            " value BLOB NOT NULL,"
            " PRIMARY KEY (space, key))"
        )
        self._conn.commit()

    def get(self, space: str, key: str) -> bytes | None:
        """Return the value at ``(space, key)``, or ``None``."""
        row = self._conn.execute(
            "SELECT value FROM kv WHERE space = ? AND key = ?", (space, key)
        ).fetchone()
        return None if row is None else bytes(row[0])

    def put(self, space: str, key: str, value: bytes) -> None:
        """Insert or overwrite the value at ``(space, key)``."""
        self._conn.execute(
            "INSERT INTO kv (space, key, value) VALUES (?, ?, ?) "
            "ON CONFLICT (space, key) DO UPDATE SET value = excluded.value",
            (space, key, value),
        )

    def delete(self, space: str, key: str) -> None:
        """Remove ``(space, key)`` if present (no error when absent)."""
        self._conn.execute(
            "DELETE FROM kv WHERE space = ? AND key = ?", (space, key)
        )

    def items(self, space: str) -> Iterator[tuple[str, bytes]]:
        """Iterate ``(key, value)`` pairs of one space, key-sorted."""
        rows = self._conn.execute(
            "SELECT key, value FROM kv WHERE space = ? ORDER BY key", (space,)
        )
        for key, value in rows:
            yield str(key), bytes(value)

    def spaces(self) -> list[str]:
        """All non-empty space names, sorted."""
        rows = self._conn.execute("SELECT DISTINCT space FROM kv ORDER BY space")
        return [str(row[0]) for row in rows]

    def clear(self) -> None:
        """Drop every space — recovery rebuilds from the journal."""
        self._conn.execute("DELETE FROM kv")

    def flush(self) -> None:
        """Commit buffered writes to the database file."""
        self._conn.commit()

    def close(self) -> None:
        """Commit and close the connection."""
        self._conn.commit()
        self._conn.close()


#: Registry of backend factories by configuration name.
BACKENDS = ("memory", "sqlite")


def make_backend(kind: str, path: Path) -> KVBackend:
    """Instantiate a backend by name (``"memory"`` or ``"sqlite"``).

    ``path`` names the shard's data file; the memory backend ignores it.

    Raises:
        ValueError: unknown backend name.
    """
    if kind == "memory":
        return MemoryBackend()
    if kind == "sqlite":
        return SQLiteBackend(path)
    raise ValueError(f"unknown store backend {kind!r} (expected one of {BACKENDS})")


__all__ = [
    "BACKENDS",
    "KVBackend",
    "MemoryBackend",
    "SQLiteBackend",
    "make_backend",
]
