"""The sharded store: coin-hash-prefix routing over N journaled shards.

The broker's heavy tables — deposits, renewals, witness commitment and
spent-coin tables — are keyed by (a hex encoding of) the coin digest,
the same value the witness layer already partitions over ``[0, 2^k)``.
Sharding by a prefix of that digest therefore aligns storage partitions
with witness ranges: a shard holds exactly the transcripts a
corresponding witness-range subset certifies, and shards journal and
fsync independently (parallel commit under the deposit campaign).

Singleton spaces (``meta``, ``merchants``, ``tickets``, ...) are pinned
to shard 0; sharded spaces (declared in :data:`SHARDED_SPACES`, matched
on the base name before any ``":"`` qualifier) route by key. The shard
count is recorded in a ``store.json`` manifest at creation and verified
on reopen — resharding is a migration, not an accident.

``dump``/``state_digest`` merge all shards into one logical state, so
the digest is invariant under both shard count and backend choice.
"""

from __future__ import annotations

import contextlib
import hashlib
import itertools
import json
import os
import random
import time
import zlib
from pathlib import Path
from typing import Callable, Iterator

from repro import obs
from repro.store.errors import StoreCorruptError
from repro.store.retry import RetryPolicy, with_retries
from repro.store.shard import RecoveryStats, Shard, committed_txns
from repro.store.wal import scan_wal_bytes

#: Base space names routed by key; every other space pins to shard 0.
SHARDED_SPACES = frozenset({"deposits", "renewals", "commitments", "spent"})

#: Manifest format version, checked on reopen.
MANIFEST_VERSION = 1


def shard_index(key: str, shards: int) -> int:
    """Route a key to a shard by its leading hex digits.

    Keys in sharded spaces are hex coin digests, so the first eight
    digits are a uniform 32-bit prefix; non-hex keys fall back to CRC32
    so routing stays total.
    """
    if shards <= 1:
        return 0
    prefix = key[:8]
    try:
        value = int(prefix, 16)
    except ValueError:
        value = zlib.crc32(key.encode("utf-8"))
    return value % shards


class Store:
    """A fixed set of shards behind one put/get/delete surface.

    Args:
        directory: the store's root directory (manifest + ``shard-NN``
            subdirectories live here).
        backend: backend name for every shard (``"memory"``/``"sqlite"``).
        shards: number of shards; fixed at creation by the manifest.
        fsync_every: WAL group-commit width per shard.
        retry: IO retry budget.
        rng: seeded randomness for retry jitter.
        sleep: retry pause implementation (tests inject a no-op).

    Raises:
        StoreCorruptError: the directory has a manifest that disagrees
            with the requested layout (shard count) or is unreadable.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        backend: str = "memory",
        shards: int = 4,
        fsync_every: int = 1,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("a store needs at least one shard")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.backend_kind = backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.rng = rng if rng is not None else random.Random("repro.store")
        self._manifest_sleep = sleep
        self.shard_count = self._check_manifest(shards, backend)
        self._active_txn: int | None = None
        self._txn_touched: set[int] = set()
        self._txn_counter: itertools.count[int] | None = None
        self.shards = [
            Shard(
                self.directory / f"shard-{index:02d}",
                backend=backend,
                fsync_every=fsync_every,
                retry=self.retry,
                rng=self.rng,
                sleep=sleep,
            )
            for index in range(self.shard_count)
        ]

    @property
    def manifest_path(self) -> Path:
        """Where the store manifest lives."""
        return self.directory / "store.json"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, space: str, key: str) -> Shard:
        """The shard owning ``(space, key)`` under prefix routing."""
        return self.shards[self._route(space, key)]

    def _route(self, space: str, key: str) -> int:
        base = space.split(":", 1)[0]
        if base in SHARDED_SPACES:
            return shard_index(key, self.shard_count)
        return 0

    # ------------------------------------------------------------------
    # Mutation / reads (delegate to the owning shard)
    # ------------------------------------------------------------------
    def put(self, space: str, key: str, value: object) -> None:
        """Journal and apply an upsert on the owning shard."""
        index = self._route(space, key)
        self.shards[index].put(space, key, value, txn=self._active_txn)
        if self._active_txn is not None:
            self._txn_touched.add(index)

    def delete(self, space: str, key: str) -> None:
        """Journal and apply a deletion on the owning shard."""
        index = self._route(space, key)
        self.shards[index].delete(space, key, txn=self._active_txn)
        if self._active_txn is not None:
            self._txn_touched.add(index)

    def get(self, space: str, key: str) -> object | None:
        """Read the decoded value from the owning shard."""
        return self.shard_for(space, key).get(space, key)

    def ack(self) -> None:
        """Durability barrier across all shards (fsync each dirty WAL).

        Inside an open :meth:`operation` this is a no-op: the operation's
        records must not become effective until its commit marker lands,
        and :meth:`commit` is the single durability point.
        """
        if self._active_txn is not None:
            return
        for shard in self.shards:
            shard.ack()

    # ------------------------------------------------------------------
    # Atomic logical operations
    # ------------------------------------------------------------------
    @contextlib.contextmanager
    def operation(self) -> Iterator[None]:
        """Scope one atomic logical operation (re-entrant: inner scopes join).

        Every ``put``/``delete`` inside the scope is journaled tagged
        with one transaction id and becomes effective-on-recovery only
        when the commit marker written at scope exit is durable — so a
        crash anywhere inside the scope discards the *whole* operation
        on replay, never a prefix of it. This is what makes a deposit's
        ledger credit and its transcript record a single durability
        unit even though they land in different shards' WALs.
        """
        if self._active_txn is not None:
            yield  # join the enclosing operation
            return
        self.begin()
        try:
            yield
        except BaseException:
            self.abort()
            raise
        else:
            self.commit()

    def begin(self) -> None:
        """Open a transaction scope (prefer :meth:`operation`).

        Raises:
            RuntimeError: an operation is already open.
        """
        if self._active_txn is not None:
            raise RuntimeError("a store operation is already open")
        if self._txn_counter is None:
            self._txn_counter = itertools.count(self._scan_highest_txn() + 1)
        self._active_txn = next(self._txn_counter)
        self._txn_touched = set()

    def commit(self) -> None:
        """Make the open operation durable: fsync records, then the marker.

        Ordering is the invariant: every shard holding the operation's
        records is fsynced *before* the commit marker is appended and
        fsynced, so a durable marker implies durable records — and an
        absent marker means recovery discards the half-written operation.

        Raises:
            RuntimeError: no operation is open.
        """
        if self._active_txn is None:
            raise RuntimeError("no store operation is open")
        txn = self._active_txn
        touched = sorted(self._txn_touched)
        self._active_txn = None
        self._txn_touched = set()
        if not touched:
            return
        marker = touched[0]
        for index in touched:
            if index != marker:
                self.shards[index].wal.flush()
        self.shards[marker].append_commit(txn)
        self.shards[marker].wal.flush()

    def abort(self) -> None:
        """Close the open operation without committing it.

        Its journal records (flushed or not) carry no commit marker, so
        recovery discards them; the in-memory backends may still hold the
        aborted writes, which is why callers abort only on errors that
        fail the whole enclosing request.
        """
        self._active_txn = None
        self._txn_touched = set()

    @property
    def in_operation(self) -> bool:
        """Whether an atomic operation scope is currently open."""
        return self._active_txn is not None

    def _scan_highest_txn(self) -> int:
        """Highest transaction id in the on-disk WALs (0 when none).

        Run once, lazily, so a store attached over a pre-existing
        directory without an explicit :meth:`recover` never reissues a
        transaction id an earlier life already committed.
        """
        highest = 0
        for shard in self.shards:
            if not shard.wal.path.exists():
                continue
            scanned = scan_wal_bytes(shard.wal.path.read_bytes())
            for payload in scanned.payloads:
                op = json.loads(payload.decode("utf-8"))
                txn = op.get("txn")
                if txn is not None:
                    highest = max(highest, int(txn))
        return highest

    def dump(self) -> dict[str, dict[str, object]]:
        """Merged logical state over all shards: ``{space: {key: value}}``."""
        merged: dict[str, dict[str, object]] = {}
        for shard in self.shards:
            for space, table in shard.dump().items():
                merged.setdefault(space, {}).update(table)
        return {
            space: dict(sorted(table.items()))
            for space, table in sorted(merged.items())
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryStats:
        """Recover every shard; return summed :class:`RecoveryStats`.

        Commit markers are resolved across *all* shards before any
        journal record is applied: an operation's records may live on
        one shard and its marker on another, and a record whose
        operation never committed is discarded — it was never
        acknowledged to any caller.
        """
        started = time.perf_counter()
        bases = [shard.load_base() for shard in self.shards]
        committed, highest = committed_txns([ops for _count, ops in bases])
        self._txn_counter = itertools.count(highest + 1)
        applied_total = 0
        discarded_total = 0
        for shard, (_count, ops) in zip(self.shards, bases):
            applied, discarded = shard.apply_ops(ops, committed)
            applied_total += applied
            discarded_total += discarded
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        obs.observe("store_replay_ms", elapsed_ms)
        obs.counter_inc("store_replayed_records_total", float(applied_total))
        return RecoveryStats(
            snapshot_records=sum(count for count, _ops in bases),
            replayed_records=applied_total,
            truncated_bytes=sum(shard.wal.truncated_bytes for shard in self.shards),
            replay_ms=elapsed_ms,
            discarded_records=discarded_total,
        )

    def compact(self) -> None:
        """Snapshot every shard, then reset every WAL — in that order.

        Two phases, not per-shard compaction: a commit marker on shard A
        may commit records on shard B, so no WAL may be reset until
        *every* shard's records are safe in a snapshot. A crash between
        the phases leaves stale-snapshot + longer-WAL layouts that
        recovery already replays idempotently.

        Raises:
            RuntimeError: called inside an open :meth:`operation`.
        """
        if self._active_txn is not None:
            raise RuntimeError("cannot compact inside an open store operation")
        for shard in self.shards:
            shard.write_snapshot()
        for shard in self.shards:
            shard.wal.reset()
            shard.backend.flush()

    def verify(self) -> list[str]:
        """Collect integrity problems from the manifest and every shard."""
        problems: list[str] = []
        try:
            self._check_manifest(self.shard_count, self.backend_kind)
        except StoreCorruptError as error:
            problems.append(str(error))
        for index, shard in enumerate(self.shards):
            for issue in shard.verify():
                problems.append(f"shard-{index:02d}/{issue}")
        return problems

    def state_digest(self) -> str:
        """SHA-256 over the merged canonical dump.

        Invariant under shard count and backend — the property the
        chaos suite's cross-backend recovery check rests on.
        """
        canonical = json.dumps(
            self.dump(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(canonical).hexdigest()

    def wal_bytes(self) -> int:
        """Total WAL size across shards (the ``store_wal_bytes`` gauge)."""
        return sum(shard.wal.size_bytes for shard in self.shards)

    def flush(self) -> None:
        """Fsync every WAL and commit every backend."""
        for shard in self.shards:
            shard.flush()

    def close(self) -> None:
        """Flush and release every shard."""
        for shard in self.shards:
            shard.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_manifest(self, shards: int, backend: str) -> int:
        if self.manifest_path.exists():
            try:
                manifest = json.loads(self.manifest_path.read_text("utf-8"))
            except ValueError as error:
                raise StoreCorruptError(
                    f"{self.manifest_path}: manifest is not valid JSON ({error})"
                ) from error
            if manifest.get("version") != MANIFEST_VERSION:
                raise StoreCorruptError(
                    f"{self.manifest_path}: manifest version "
                    f"{manifest.get('version')!r} (expected {MANIFEST_VERSION})"
                )
            recorded = int(manifest["shards"])
            if recorded != shards:
                raise StoreCorruptError(
                    f"{self.manifest_path}: store was created with "
                    f"{recorded} shard(s), reopened with {shards} — "
                    "resharding requires an explicit migration"
                )
            recorded_backend = str(manifest.get("backend", backend))
            if recorded_backend != backend:
                raise StoreCorruptError(
                    f"{self.manifest_path}: store was created with the "
                    f"{recorded_backend!r} backend, reopened with "
                    f"{backend!r} — use open_store() to reuse the "
                    "recorded layout"
                )
            return recorded
        # Written like a snapshot — tmp file + fsync + os.replace — so a
        # crash during store creation leaves either no manifest (a fresh
        # start) or a complete one, never a truncated file every later
        # open would reject as corrupt.
        payload = json.dumps(
            {"version": MANIFEST_VERSION, "shards": shards, "backend": backend},
            sort_keys=True,
        ).encode("utf-8")
        tmp = self.manifest_path.with_suffix(".json.tmp")

        def write_manifest() -> None:
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.manifest_path)

        with_retries(
            write_manifest,
            policy=self.retry,
            rng=self.rng,
            describe=f"write manifest {self.manifest_path.name}",
            sleep=self._manifest_sleep,
        )
        return shards


def open_store(
    directory: str | Path,
    *,
    fsync_every: int = 1,
    retry: RetryPolicy | None = None,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] | None = None,
) -> Store:
    """Open an existing store using the layout its manifest records.

    Unlike :class:`Store`, which takes the layout as arguments (and
    creates the manifest on first use), this reads ``store.json`` and
    reopens with the recorded backend and shard count — the right call
    for tooling (``repro store``) that inspects a store it did not
    create.

    Raises:
        StoreCorruptError: no manifest, or the manifest is unreadable.
    """
    manifest_path = Path(directory) / "store.json"
    if not manifest_path.exists():
        raise StoreCorruptError(f"{manifest_path}: no store manifest found")
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except ValueError as error:
        raise StoreCorruptError(
            f"{manifest_path}: manifest is not valid JSON ({error})"
        ) from error
    return Store(
        directory,
        backend=str(manifest.get("backend", "memory")),
        shards=int(manifest.get("shards", 1)),
        fsync_every=fsync_every,
        retry=retry,
        rng=rng,
        sleep=sleep,
    )


__all__ = ["MANIFEST_VERSION", "SHARDED_SPACES", "Store", "open_store", "shard_index"]
