"""The sharded store: coin-hash-prefix routing over N journaled shards.

The broker's heavy tables — deposits, renewals, witness commitment and
spent-coin tables — are keyed by (a hex encoding of) the coin digest,
the same value the witness layer already partitions over ``[0, 2^k)``.
Sharding by a prefix of that digest therefore aligns storage partitions
with witness ranges: a shard holds exactly the transcripts a
corresponding witness-range subset certifies, and shards journal and
fsync independently (parallel commit under the deposit campaign).

Singleton spaces (``meta``, ``merchants``, ``tickets``, ...) are pinned
to shard 0; sharded spaces (declared in :data:`SHARDED_SPACES`, matched
on the base name before any ``":"`` qualifier) route by key. The shard
count is recorded in a ``store.json`` manifest at creation and verified
on reopen — resharding is a migration, not an accident.

``dump``/``state_digest`` merge all shards into one logical state, so
the digest is invariant under both shard count and backend choice.
"""

from __future__ import annotations

import hashlib
import json
import random
import zlib
from pathlib import Path
from typing import Callable

from repro.store.errors import StoreCorruptError
from repro.store.retry import RetryPolicy
from repro.store.shard import RecoveryStats, Shard

#: Base space names routed by key; every other space pins to shard 0.
SHARDED_SPACES = frozenset({"deposits", "renewals", "commitments", "spent"})

#: Manifest format version, checked on reopen.
MANIFEST_VERSION = 1


def shard_index(key: str, shards: int) -> int:
    """Route a key to a shard by its leading hex digits.

    Keys in sharded spaces are hex coin digests, so the first eight
    digits are a uniform 32-bit prefix; non-hex keys fall back to CRC32
    so routing stays total.
    """
    if shards <= 1:
        return 0
    prefix = key[:8]
    try:
        value = int(prefix, 16)
    except ValueError:
        value = zlib.crc32(key.encode("utf-8"))
    return value % shards


class Store:
    """A fixed set of shards behind one put/get/delete surface.

    Args:
        directory: the store's root directory (manifest + ``shard-NN``
            subdirectories live here).
        backend: backend name for every shard (``"memory"``/``"sqlite"``).
        shards: number of shards; fixed at creation by the manifest.
        fsync_every: WAL group-commit width per shard.
        retry: IO retry budget.
        rng: seeded randomness for retry jitter.
        sleep: retry pause implementation (tests inject a no-op).

    Raises:
        StoreCorruptError: the directory has a manifest that disagrees
            with the requested layout (shard count) or is unreadable.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        backend: str = "memory",
        shards: int = 4,
        fsync_every: int = 1,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if shards < 1:
            raise ValueError("a store needs at least one shard")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.backend_kind = backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.rng = rng if rng is not None else random.Random("repro.store")
        self.shard_count = self._check_manifest(shards, backend)
        self.shards = [
            Shard(
                self.directory / f"shard-{index:02d}",
                backend=backend,
                fsync_every=fsync_every,
                retry=self.retry,
                rng=self.rng,
                sleep=sleep,
            )
            for index in range(self.shard_count)
        ]

    @property
    def manifest_path(self) -> Path:
        """Where the store manifest lives."""
        return self.directory / "store.json"

    # ------------------------------------------------------------------
    # Routing
    # ------------------------------------------------------------------
    def shard_for(self, space: str, key: str) -> Shard:
        """The shard owning ``(space, key)`` under prefix routing."""
        base = space.split(":", 1)[0]
        if base in SHARDED_SPACES:
            return self.shards[shard_index(key, self.shard_count)]
        return self.shards[0]

    # ------------------------------------------------------------------
    # Mutation / reads (delegate to the owning shard)
    # ------------------------------------------------------------------
    def put(self, space: str, key: str, value: object) -> None:
        """Journal and apply an upsert on the owning shard."""
        self.shard_for(space, key).put(space, key, value)

    def delete(self, space: str, key: str) -> None:
        """Journal and apply a deletion on the owning shard."""
        self.shard_for(space, key).delete(space, key)

    def get(self, space: str, key: str) -> object | None:
        """Read the decoded value from the owning shard."""
        return self.shard_for(space, key).get(space, key)

    def ack(self) -> None:
        """Durability barrier across all shards (fsync each dirty WAL)."""
        for shard in self.shards:
            shard.ack()

    def dump(self) -> dict[str, dict[str, object]]:
        """Merged logical state over all shards: ``{space: {key: value}}``."""
        merged: dict[str, dict[str, object]] = {}
        for shard in self.shards:
            for space, table in shard.dump().items():
                merged.setdefault(space, {}).update(table)
        return {
            space: dict(sorted(table.items()))
            for space, table in sorted(merged.items())
        }

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryStats:
        """Recover every shard; return summed :class:`RecoveryStats`."""
        stats = [shard.recover() for shard in self.shards]
        return RecoveryStats(
            snapshot_records=sum(s.snapshot_records for s in stats),
            replayed_records=sum(s.replayed_records for s in stats),
            truncated_bytes=sum(s.truncated_bytes for s in stats),
            replay_ms=sum(s.replay_ms for s in stats),
        )

    def compact(self) -> None:
        """Snapshot and reset the WAL on every shard."""
        for shard in self.shards:
            shard.compact()

    def verify(self) -> list[str]:
        """Collect integrity problems from the manifest and every shard."""
        problems: list[str] = []
        try:
            self._check_manifest(self.shard_count, self.backend_kind)
        except StoreCorruptError as error:
            problems.append(str(error))
        for index, shard in enumerate(self.shards):
            for issue in shard.verify():
                problems.append(f"shard-{index:02d}/{issue}")
        return problems

    def state_digest(self) -> str:
        """SHA-256 over the merged canonical dump.

        Invariant under shard count and backend — the property the
        chaos suite's cross-backend recovery check rests on.
        """
        canonical = json.dumps(
            self.dump(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(canonical).hexdigest()

    def wal_bytes(self) -> int:
        """Total WAL size across shards (the ``store_wal_bytes`` gauge)."""
        return sum(shard.wal.size_bytes for shard in self.shards)

    def flush(self) -> None:
        """Fsync every WAL and commit every backend."""
        for shard in self.shards:
            shard.flush()

    def close(self) -> None:
        """Flush and release every shard."""
        for shard in self.shards:
            shard.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _check_manifest(self, shards: int, backend: str) -> int:
        if self.manifest_path.exists():
            try:
                manifest = json.loads(self.manifest_path.read_text("utf-8"))
            except ValueError as error:
                raise StoreCorruptError(
                    f"{self.manifest_path}: manifest is not valid JSON ({error})"
                ) from error
            if manifest.get("version") != MANIFEST_VERSION:
                raise StoreCorruptError(
                    f"{self.manifest_path}: manifest version "
                    f"{manifest.get('version')!r} (expected {MANIFEST_VERSION})"
                )
            recorded = int(manifest["shards"])
            if recorded != shards:
                raise StoreCorruptError(
                    f"{self.manifest_path}: store was created with "
                    f"{recorded} shard(s), reopened with {shards} — "
                    "resharding requires an explicit migration"
                )
            return recorded
        self.manifest_path.write_text(
            json.dumps(
                {"version": MANIFEST_VERSION, "shards": shards, "backend": backend},
                sort_keys=True,
            ),
            "utf-8",
        )
        return shards


def open_store(
    directory: str | Path,
    *,
    fsync_every: int = 1,
    retry: RetryPolicy | None = None,
    rng: random.Random | None = None,
    sleep: Callable[[float], None] | None = None,
) -> Store:
    """Open an existing store using the layout its manifest records.

    Unlike :class:`Store`, which takes the layout as arguments (and
    creates the manifest on first use), this reads ``store.json`` and
    reopens with the recorded backend and shard count — the right call
    for tooling (``repro store``) that inspects a store it did not
    create.

    Raises:
        StoreCorruptError: no manifest, or the manifest is unreadable.
    """
    manifest_path = Path(directory) / "store.json"
    if not manifest_path.exists():
        raise StoreCorruptError(f"{manifest_path}: no store manifest found")
    try:
        manifest = json.loads(manifest_path.read_text("utf-8"))
    except ValueError as error:
        raise StoreCorruptError(
            f"{manifest_path}: manifest is not valid JSON ({error})"
        ) from error
    return Store(
        directory,
        backend=str(manifest.get("backend", "memory")),
        shards=int(manifest.get("shards", 1)),
        fsync_every=fsync_every,
        retry=retry,
        rng=rng,
        sleep=sleep,
    )


__all__ = ["MANIFEST_VERSION", "SHARDED_SPACES", "Store", "open_store", "shard_index"]
