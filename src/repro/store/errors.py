"""Typed failures of the durable-storage subsystem.

The store distinguishes *transient* IO trouble from *permanent* damage
because callers recover differently: an :class:`StoreIOError` means the
write path gave up after bounded retries (the daemon should surface the
RPC as failed and let the client retry — nothing was acknowledged), while
a :class:`StoreCorruptError` means the on-disk journal or snapshot is
structurally damaged beyond the torn-tail case the recovery path heals
automatically, and an operator has to intervene.
"""

from __future__ import annotations


class StoreError(Exception):
    """Base class for every durable-storage failure."""


class StoreIOError(StoreError):
    """A filesystem operation kept failing after bounded retries."""


class StoreCorruptError(StoreError):
    """The journal or snapshot is structurally damaged (not a torn tail)."""


__all__ = ["StoreCorruptError", "StoreError", "StoreIOError"]
