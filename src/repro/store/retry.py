"""Bounded retries with seeded backoff for store IO.

Disks hiccup: an ``fsync`` or rename can fail transiently (NFS, thin
provisioning, a container runtime reloading) and succeed a moment later.
The store wraps every such call in :func:`with_retries`, which mirrors
the daemon RPC retry discipline (:class:`repro.faults.recovery.BackoffPolicy`
— exponential spacing with seeded jitter, so replayed runs back off
identically) and converts a persistent failure into the typed
:class:`~repro.store.errors.StoreIOError` callers can catch.

The ``sleep`` callable is injectable so tests (and simulated time) never
block a real clock.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, TypeVar

from repro import obs
from repro.faults.recovery import BackoffPolicy
from repro.store.errors import StoreIOError

T = TypeVar("T")


def _default_backoff() -> BackoffPolicy:
    """Short fuse: IO retries must not stall an RPC for whole seconds."""
    return BackoffPolicy(base=0.002, factor=2.0, max_delay=0.05, jitter=0.2)


@dataclass(frozen=True)
class RetryPolicy:
    """How many times to retry a failing store IO call, and how spaced.

    Args:
        attempts: total tries (the first call plus ``attempts - 1``
            retries); must be at least 1.
        backoff: delay schedule between tries (seeded jitter comes from
            the RNG the caller passes to :func:`with_retries`).
    """

    attempts: int = 4
    backoff: BackoffPolicy = field(default_factory=_default_backoff)

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError("retry attempts must be at least 1")


def with_retries(
    op: Callable[[], T],
    *,
    policy: RetryPolicy,
    rng: random.Random,
    describe: str,
    sleep: Callable[[float], None] | None = None,
) -> T:
    """Run ``op``, retrying transient :class:`OSError` failures.

    Args:
        op: the IO operation; called until it succeeds or tries run out.
        policy: attempt budget and backoff schedule.
        rng: seeded randomness for the backoff jitter (the store owns one
            seeded stream, so retry timing replays deterministically).
        describe: human label for the operation, used in the error.
        sleep: pause implementation (defaults to :func:`time.sleep`).

    Raises:
        StoreIOError: every attempt raised :class:`OSError`.
    """
    pause = sleep if sleep is not None else time.sleep
    failure: OSError | None = None
    for attempt in range(policy.attempts):
        try:
            return op()
        except OSError as error:
            failure = error
            obs.counter_inc("store_io_retries_total")
            if attempt + 1 < policy.attempts:
                pause(policy.backoff.delay(attempt, rng))
    raise StoreIOError(
        f"{describe} failed after {policy.attempts} attempt(s): {failure}"
    ) from failure


__all__ = ["RetryPolicy", "with_retries"]
