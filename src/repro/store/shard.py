"""One shard: a write-ahead log + snapshot + materialized backend.

Every mutation follows the same discipline:

1. encode the operation as JSON and :meth:`append <WriteAheadLog.append>`
   it to the shard's WAL (``ack`` flushes/fsyncs first — the caller only
   acknowledges *after* the journal is durable);
2. apply it to the backend.

Recovery inverts that: clear the backend, load the last snapshot (an
atomically-replaced JSON file), then replay the WAL front to back. Both
``put`` and ``delete`` replay idempotently, so the stale-snapshot +
longer-WAL case (crash between snapshot write and WAL truncation during
compaction) merely re-applies operations the snapshot already contains.
Because the backend is rebuilt wholesale, two shards fed the same
snapshot + journal materialize the same logical state regardless of
backend — that is the cross-backend recovery-identity property the chaos
suite asserts.

Compaction = write a new snapshot of the current state (tmp file, fsync,
``os.replace``) and reset the WAL. A crash at any point leaves either the
old snapshot + full WAL or the new snapshot + (possibly still-full) WAL —
both recover to the same state.
"""

from __future__ import annotations

import hashlib
import json
import os
import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable

from repro import obs
from repro.store.backend import KVBackend, make_backend
from repro.store.errors import StoreCorruptError
from repro.store.retry import RetryPolicy, with_retries
from repro.store.wal import WriteAheadLog

#: Snapshot format version, checked on load.
SNAPSHOT_VERSION = 1


@dataclass(frozen=True)
class RecoveryStats:
    """What one shard recovery did (summed per store by the caller).

    ``discarded_records`` counts journal operations dropped because they
    belong to a logical operation whose commit marker never made it to
    disk — by construction these were never acknowledged to any caller.
    """

    snapshot_records: int
    replayed_records: int
    truncated_bytes: int
    replay_ms: float
    discarded_records: int = 0


def committed_txns(
    ops_lists: "list[list[dict[str, object]]]",
) -> tuple[set[int], int]:
    """Collect committed transaction ids (and the highest id seen).

    A journal record tagged ``"txn": N`` belongs to logical operation
    ``N`` and only takes effect if a ``{"op": "commit", "txn": N}``
    marker exists — on *any* shard, which is why the caller passes every
    shard's decoded operations together.
    """
    committed: set[int] = set()
    highest = 0
    for ops in ops_lists:
        for op in ops:
            txn = op.get("txn")
            if txn is None:
                continue
            highest = max(highest, int(txn))  # type: ignore[call-overload]
            if op.get("op") == "commit":
                committed.add(int(txn))  # type: ignore[call-overload]
    return committed, highest


class Shard:
    """One journaled partition of a store.

    Args:
        directory: the shard's directory (``wal.log``, ``snapshot.json``
            and the backend's data file live here).
        backend: backend name — ``"memory"`` or ``"sqlite"``.
        fsync_every: WAL group-commit width.
        retry: IO retry budget shared by WAL and snapshot writes.
        rng: seeded randomness for retry jitter.
        sleep: retry pause implementation (tests inject a no-op).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        backend: str = "memory",
        fsync_every: int = 1,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.backend_kind = backend
        self.retry = retry if retry is not None else RetryPolicy()
        self.rng = rng if rng is not None else random.Random("repro.store.shard")
        self.sleep = sleep
        self.wal = WriteAheadLog(
            self.directory / "wal.log",
            fsync_every=fsync_every,
            retry=self.retry,
            rng=self.rng,
            sleep=sleep,
        )
        self.backend: KVBackend = make_backend(backend, self.directory / "data.db")

    @property
    def snapshot_path(self) -> Path:
        """Where this shard's snapshot file lives."""
        return self.directory / "snapshot.json"

    # ------------------------------------------------------------------
    # Mutation (journal first, then apply)
    # ------------------------------------------------------------------
    def put(
        self, space: str, key: str, value: object, txn: int | None = None
    ) -> None:
        """Journal and apply an upsert of a JSON-encodable value.

        With ``txn`` set, the record is tagged as part of logical
        operation ``txn`` (effective on recovery only once its commit
        marker lands) and its fsync is deferred to the commit point.
        """
        blob = _encode(value)
        record: dict[str, object] = {"op": "put", "space": space, "key": key, "value": value}
        if txn is not None:
            record["txn"] = txn
        self.wal.append(
            json.dumps(record, sort_keys=True).encode("utf-8"), defer=txn is not None
        )
        self.backend.put(space, key, blob)

    def delete(self, space: str, key: str, txn: int | None = None) -> None:
        """Journal and apply a deletion (idempotent on replay)."""
        record: dict[str, object] = {"op": "delete", "space": space, "key": key}
        if txn is not None:
            record["txn"] = txn
        self.wal.append(
            json.dumps(record, sort_keys=True).encode("utf-8"), defer=txn is not None
        )
        self.backend.delete(space, key)

    def append_commit(self, txn: int) -> None:
        """Append (without fsyncing) the commit marker for operation ``txn``.

        The caller — :meth:`repro.store.store.Store.commit` — fsyncs every
        shard holding the operation's records *before* this marker is
        appended, then fsyncs this shard, so a durable marker implies
        durable records.
        """
        self.wal.append(
            json.dumps({"op": "commit", "txn": txn}, sort_keys=True).encode("utf-8"),
            defer=True,
        )

    def ack(self) -> None:
        """Durability barrier: fsync the WAL before acknowledging a caller."""
        self.wal.flush()

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def get(self, space: str, key: str) -> object | None:
        """Return the decoded value at ``(space, key)``, or ``None``."""
        blob = self.backend.get(space, key)
        return None if blob is None else json.loads(blob.decode("utf-8"))

    def dump(self) -> dict[str, dict[str, object]]:
        """The shard's whole logical state: ``{space: {key: value}}``."""
        state: dict[str, dict[str, object]] = {}
        for space in self.backend.spaces():
            state[space] = {
                key: json.loads(blob.decode("utf-8"))
                for key, blob in self.backend.items(space)
            }
        return state

    # ------------------------------------------------------------------
    # Recovery / compaction
    # ------------------------------------------------------------------
    def recover(self) -> RecoveryStats:
        """Rebuild the backend from snapshot + WAL replay.

        A standalone shard resolves commit markers against its own WAL
        only; a :class:`~repro.store.store.Store` orchestrates recovery
        itself (via :meth:`load_base` / :meth:`apply_ops`) so markers on
        one shard commit records on another.

        Returns:
            Per-shard :class:`RecoveryStats`.

        Raises:
            StoreCorruptError: snapshot unreadable, or WAL damage beyond
                a torn tail.
        """
        started = time.perf_counter()
        snapshot_records, ops = self.load_base()
        committed, _highest = committed_txns([ops])
        applied, discarded = self.apply_ops(ops, committed)
        elapsed_ms = (time.perf_counter() - started) * 1000.0
        obs.observe("store_replay_ms", elapsed_ms)
        obs.counter_inc("store_replayed_records_total", float(applied))
        return RecoveryStats(
            snapshot_records=snapshot_records,
            replayed_records=applied,
            truncated_bytes=self.wal.truncated_bytes,
            replay_ms=elapsed_ms,
            discarded_records=discarded,
        )

    def load_base(self) -> tuple[int, list[dict[str, object]]]:
        """Clear the backend, load the snapshot, read the healed WAL.

        Returns:
            ``(snapshot record count, decoded journal operations)`` —
            the operations are *not* applied yet; the caller filters
            them by commit status first.
        """
        self.backend.clear()
        snapshot_records = self._load_snapshot()
        ops = [
            json.loads(payload.decode("utf-8")) for payload in self.wal.replay()
        ]
        return snapshot_records, ops

    def apply_ops(
        self, ops: list[dict[str, object]], committed: set[int]
    ) -> tuple[int, int]:
        """Apply decoded journal operations, honoring commit markers.

        Returns:
            ``(applied, discarded)`` record counts; commit markers
            themselves count as neither.
        """
        applied = 0
        discarded = 0
        for op in ops:
            if op.get("op") == "commit":
                continue
            txn = op.get("txn")
            if txn is not None and int(txn) not in committed:  # type: ignore[call-overload]
                discarded += 1
                continue
            self._apply(op)
            applied += 1
        self.backend.flush()
        return applied, discarded

    def compact(self) -> None:
        """Snapshot current state atomically, then reset the WAL.

        The snapshot lands via tmp file + fsync + ``os.replace``; a crash
        between the replace and the WAL reset leaves the stale-snapshot +
        longer-WAL layout that :meth:`recover` handles idempotently.
        """
        self.write_snapshot()
        self.wal.reset()
        self.backend.flush()

    def write_snapshot(self) -> None:
        """Write an atomic snapshot of current state, leaving the WAL alone.

        Split from :meth:`compact` so the store can snapshot *every*
        shard before resetting *any* WAL — commit markers must outlive
        all journal records they commit, even across shards.
        """
        payload = json.dumps(
            {"version": SNAPSHOT_VERSION, "spaces": self.dump()},
            sort_keys=True,
            separators=(",", ":"),
        ).encode("utf-8")
        tmp = self.snapshot_path.with_suffix(".json.tmp")

        def write_file() -> None:
            with open(tmp, "wb") as handle:
                handle.write(payload)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.snapshot_path)

        with_retries(
            write_file,
            policy=self.retry,
            rng=self.rng,
            describe=f"write snapshot {self.snapshot_path.name}",
            sleep=self.sleep,
        )

    def verify(self) -> list[str]:
        """Check snapshot parseability and WAL integrity without mutating."""
        problems = [f"wal.log: {issue}" for issue in self.wal.verify()]
        if self.snapshot_path.exists():
            try:
                document = json.loads(self.snapshot_path.read_text("utf-8"))
            except (ValueError, OSError) as error:
                problems.append(f"snapshot.json: unreadable ({error})")
            else:
                if document.get("version") != SNAPSHOT_VERSION:
                    problems.append(
                        f"snapshot.json: version {document.get('version')!r} "
                        f"(expected {SNAPSHOT_VERSION})"
                    )
        return problems

    def state_digest(self) -> str:
        """SHA-256 over the canonical JSON dump of the logical state.

        Backend- and history-independent: two shards that recovered the
        same journal produce the same digest.
        """
        canonical = json.dumps(
            self.dump(), sort_keys=True, separators=(",", ":")
        ).encode("utf-8")
        return hashlib.sha256(canonical).hexdigest()

    def flush(self) -> None:
        """Fsync the WAL and commit the backend."""
        self.wal.flush()
        self.backend.flush()

    def close(self) -> None:
        """Flush everything and release file handles."""
        self.wal.close()
        self.backend.close()

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _load_snapshot(self) -> int:
        if not self.snapshot_path.exists():
            return 0
        try:
            document = json.loads(self.snapshot_path.read_text("utf-8"))
        except ValueError as error:
            raise StoreCorruptError(
                f"{self.snapshot_path}: snapshot is not valid JSON ({error})"
            ) from error
        if document.get("version") != SNAPSHOT_VERSION:
            raise StoreCorruptError(
                f"{self.snapshot_path}: snapshot version "
                f"{document.get('version')!r} (expected {SNAPSHOT_VERSION})"
            )
        count = 0
        for space, table in document["spaces"].items():
            for key, value in table.items():
                self.backend.put(space, key, _encode(value))
                count += 1
        return count

    def _apply(self, operation: dict[str, object]) -> None:
        op = operation.get("op")
        space = str(operation["space"])
        key = str(operation["key"])
        if op == "put":
            self.backend.put(space, key, _encode(operation["value"]))
        elif op == "delete":
            self.backend.delete(space, key)
        else:
            raise StoreCorruptError(f"unknown journal operation {op!r}")


def _encode(value: object) -> bytes:
    return json.dumps(value, sort_keys=True, separators=(",", ":")).encode("utf-8")


__all__ = ["RecoveryStats", "SNAPSHOT_VERSION", "Shard", "committed_txns"]
