"""The write-ahead log: append-only, length-prefixed, CRC-checked.

Every mutation of a :class:`~repro.store.shard.Shard` is appended here
*before* it is applied to the backend (and long before any RPC reply is
sent), so a crash at any instant loses at most the mutations that were
never acknowledged. The file layout is deliberately trivial to parse
forwards and impossible to misparse silently:

```
offset  size  field
0       5     file magic  b"RWAL\\x01" (format version in the last byte)
--- then zero or more records, back to back ---
+0      4     payload length N   (big-endian unsigned)
+4      4     CRC32 of payload   (big-endian unsigned)
+8      N     payload bytes      (UTF-8 JSON operation)
```

Durability is batched: ``append`` buffers, and every ``fsync_every``
records (or an explicit :meth:`flush`, which the store issues before any
acknowledgement) the file is flushed and fsynced — group commit. A *torn
final record* (crash mid-append: short header, short payload, or a CRC
mismatch that runs to end-of-file) is healed by truncating back to the
last good record; it can only ever be an unacknowledged mutation. Damage
*before* the tail — a CRC mismatch with further bytes behind it — is not
healable and raises :class:`~repro.store.errors.StoreCorruptError`.
"""

from __future__ import annotations

import os
import random
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import BinaryIO, Callable, TypeVar

from repro import obs
from repro.store.errors import StoreCorruptError
from repro.store.retry import RetryPolicy, with_retries

#: File magic: "RWAL" + one format-version byte.
MAGIC = b"RWAL\x01"

_HEADER = struct.Struct(">II")

_T = TypeVar("_T")


@dataclass(frozen=True)
class WalScan:
    """Outcome of reading a WAL file front to back.

    ``torn_bytes`` counts trailing bytes that do not form a complete,
    checksummed record (zero on a cleanly closed log); ``problem`` names
    non-tail damage when present (the scan stops there).
    """

    payloads: tuple[bytes, ...]
    good_size: int
    torn_bytes: int
    problem: str | None


def scan_wal_bytes(data: bytes) -> WalScan:
    """Parse raw WAL bytes without touching any file.

    Shared by recovery (which truncates the torn tail) and ``verify``
    (which only reports). A file shorter than the magic is treated as a
    torn creation; a wrong magic is damage.
    """
    if len(data) < len(MAGIC):
        return WalScan(payloads=(), good_size=0, torn_bytes=len(data), problem=None)
    if data[: len(MAGIC)] != MAGIC:
        return WalScan(
            payloads=(), good_size=0, torn_bytes=0, problem="bad file magic"
        )
    payloads: list[bytes] = []
    offset = len(MAGIC)
    problem: str | None = None
    while offset < len(data):
        if offset + _HEADER.size > len(data):
            break  # torn header at the tail
        length, crc = _HEADER.unpack_from(data, offset)
        end = offset + _HEADER.size + length
        if end > len(data):
            break  # torn payload at the tail
        payload = data[offset + _HEADER.size : end]
        if zlib.crc32(payload) != crc:
            if end < len(data):
                problem = f"CRC mismatch at offset {offset} with data after it"
            break  # CRC-bad final record counts as torn
        payloads.append(payload)
        offset = end
    return WalScan(
        payloads=tuple(payloads),
        good_size=offset,
        torn_bytes=len(data) - offset,
        problem=problem,
    )


class WriteAheadLog:
    """One append-only journal file with batched fsync.

    Args:
        path: the log file (created with the magic header on first use).
        fsync_every: group-commit width — fsync after this many appends
            (1 = every record; the store still calls :meth:`flush` before
            acknowledging, so a larger width only batches *within* one
            logical operation).
        retry: IO retry budget for writes and fsyncs.
        rng: seeded randomness for retry jitter.
        sleep: pause implementation for retries (tests inject a no-op).
    """

    def __init__(
        self,
        path: str | Path,
        *,
        fsync_every: int = 1,
        retry: RetryPolicy | None = None,
        rng: random.Random | None = None,
        sleep: Callable[[float], None] | None = None,
    ) -> None:
        if fsync_every < 1:
            raise ValueError("fsync_every must be at least 1")
        self.path = Path(path)
        self.fsync_every = fsync_every
        self.retry = retry if retry is not None else RetryPolicy()
        self.rng = rng if rng is not None else random.Random("repro.store.wal")
        self.sleep = sleep
        self.fsync_count = 0
        self.appended_records = 0
        self.truncated_bytes = 0
        self._file: BinaryIO | None = None
        self._size = 0
        self._pending = 0

    # ------------------------------------------------------------------
    # Writing
    # ------------------------------------------------------------------
    @property
    def size_bytes(self) -> int:
        """Current durable-plus-buffered size of the log file."""
        if self._file is None and self.path.exists():
            return self.path.stat().st_size
        return self._size if self._file is not None else 0

    def append(self, payload: bytes, *, defer: bool = False) -> None:
        """Append one checksummed record (buffered; see ``fsync_every``).

        Args:
            payload: the record body.
            defer: skip the automatic group-commit flush — the caller is
                inside a multi-record logical operation and will issue
                one :meth:`flush` at its commit point.

        Raises:
            StoreIOError: the write kept failing after retries.
        """
        record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
        handle = self._open()
        offset = self._size

        def write() -> None:
            # Rewind to the last known-good boundary before (re)writing,
            # so a partially written attempt is overwritten, not doubled.
            handle.seek(offset)
            handle.truncate(offset)
            handle.write(record)

        self._with_retries(write, f"append to {self.path.name}")
        self._size = offset + len(record)
        self._pending += 1
        self.appended_records += 1
        if not defer and self._pending >= self.fsync_every:
            self.flush()

    def flush(self) -> None:
        """Flush buffered records and fsync — the group-commit barrier.

        Raises:
            StoreIOError: the flush/fsync kept failing after retries.
        """
        if self._file is None or self._pending == 0:
            return
        handle = self._file

        def sync() -> None:
            handle.flush()
            os.fsync(handle.fileno())

        self._with_retries(sync, f"fsync {self.path.name}")
        self._pending = 0
        self.fsync_count += 1
        obs.counter_inc("store_fsyncs_total")
        obs.gauge_set("store_wal_bytes", float(self._size))

    def reset(self) -> None:
        """Truncate to an empty (header-only) log, after a snapshot.

        Raises:
            StoreIOError: the truncate kept failing after retries.
        """
        handle = self._open()

        def truncate() -> None:
            handle.seek(0)
            handle.truncate(0)
            handle.write(MAGIC)
            handle.flush()
            os.fsync(handle.fileno())

        self._with_retries(truncate, f"reset {self.path.name}")
        self._size = len(MAGIC)
        self._pending = 0
        self.fsync_count += 1
        obs.counter_inc("store_fsyncs_total")
        obs.gauge_set("store_wal_bytes", float(self._size))

    # ------------------------------------------------------------------
    # Reading
    # ------------------------------------------------------------------
    def replay(self) -> list[bytes]:
        """Read every intact record; heal (truncate) a torn tail.

        Returns:
            The record payloads, oldest first.

        Raises:
            StoreCorruptError: damage before the tail (unhealable).
            StoreIOError: reading or truncating kept failing.
        """
        self.close()
        if not self.path.exists():
            return []
        data = self._with_retries(self.path.read_bytes, f"read {self.path.name}")
        scanned = scan_wal_bytes(data)
        if scanned.problem is not None:
            raise StoreCorruptError(f"{self.path}: {scanned.problem}")
        if scanned.torn_bytes:
            self.truncated_bytes += scanned.torn_bytes
            obs.counter_inc("store_wal_torn_bytes_total", scanned.torn_bytes)
            good = scanned.good_size

            def heal() -> None:
                with open(self.path, "r+b") as handle:
                    handle.truncate(good)
                    if good == 0:
                        handle.write(MAGIC)
                    handle.flush()
                    os.fsync(handle.fileno())

            self._with_retries(heal, f"truncate torn tail of {self.path.name}")
        return list(scanned.payloads)

    def verify(self) -> list[str]:
        """Scan without modifying anything; return problem descriptions.

        A torn tail is reported (it would be healed by recovery) but so
        is unhealable corruption; an intact log returns ``[]``.
        """
        if not self.path.exists():
            return []
        scanned = scan_wal_bytes(self.path.read_bytes())
        problems: list[str] = []
        if scanned.problem is not None:
            problems.append(f"corrupt: {scanned.problem}")
        elif scanned.torn_bytes:
            problems.append(
                f"torn tail: {scanned.torn_bytes} trailing byte(s) "
                "(recovery will truncate)"
            )
        return problems

    def close(self) -> None:
        """Flush pending records and release the file handle."""
        if self._file is not None:
            self.flush()
            self._file.close()
            self._file = None

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _open(self) -> BinaryIO:
        if self._file is not None:
            return self._file

        def open_file() -> BinaryIO:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            handle: BinaryIO
            if not self.path.exists() or self.path.stat().st_size == 0:
                handle = open(self.path, "w+b")
                handle.write(MAGIC)
                handle.flush()
                return handle
            # A pre-existing file may end in a torn record (crash during
            # a previous life). Appending after damaged bytes would turn
            # a healable torn tail into unhealable mid-file corruption,
            # so validate and truncate to the last good record first.
            data = self.path.read_bytes()
            scanned = scan_wal_bytes(data)
            if scanned.problem is not None:
                raise StoreCorruptError(f"{self.path}: {scanned.problem}")
            handle = open(self.path, "r+b")
            if scanned.torn_bytes:
                self.truncated_bytes += scanned.torn_bytes
                obs.counter_inc("store_wal_torn_bytes_total", scanned.torn_bytes)
                handle.truncate(scanned.good_size)
                if scanned.good_size == 0:
                    # Torn creation: shorter than the magic itself.
                    handle.write(MAGIC)
                handle.flush()
                os.fsync(handle.fileno())
            handle.seek(0, os.SEEK_END)
            return handle

        self._file = self._with_retries(open_file, f"open {self.path.name}")
        self._size = self._file.tell()
        self._pending = 0
        return self._file

    def _with_retries(self, op: Callable[[], _T], describe: str) -> _T:
        return with_retries(
            op, policy=self.retry, rng=self.rng, describe=describe, sleep=self.sleep
        )


__all__ = ["MAGIC", "WalScan", "WriteAheadLog", "scan_wal_bytes"]
