"""Command-line interface: demos and experiment reruns.

Usage::

    python -m repro demo                 # full coin lifecycle
    python -m repro demo --metrics       # ... plus the telemetry snapshot
    python -m repro attack               # double-spend attempt, refused
    python -m repro table1               # regenerate Table 1
    python -m repro table2 --trials 20   # regenerate Table 2 (simulated)
    python -m repro rounds               # message rounds per protocol
    python -m repro trace                # Figure 1 message flow
    python -m repro wallet <file>        # inspect a wallet JSON file
    python -m repro metrics              # instrumented run, telemetry dump
    python -m repro chaos --quick        # fault-injection suite, 3 seeds
    python -m repro bench --quick        # perf engine before/after numbers
    python -m repro campaign --quick     # seeded large-overlay campaign
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro import obs
from repro.core.exceptions import DoubleSpendError


def _print_metrics() -> None:
    """Print the collected telemetry snapshot (console format)."""
    print()
    print(obs.export_console())


def _exercise_network_telemetry(seed: int) -> None:
    """Drive the gossip overlay and Chord DHT so network telemetry exists.

    Runs a small anti-entropy convergence (overlay message counters) and a
    batch of replicated DHT puts/lookups (hop-count histograms) on the fast
    test group; the protocol demo itself never touches the P2P layer, so
    this is what populates the overlay/hop sections of the snapshot.
    """
    import random

    from repro.core.params import test_params
    from repro.core.witness_ranges import build_table
    from repro.crypto.schnorr import SchnorrKeyPair
    from repro.net.chord import ChordRing, chord_id
    from repro.net.costmodel import instant_profile
    from repro.net.latency import Region, uniform_mesh
    from repro.net.node import Network, Node
    from repro.net.overlay import GossipOverlay, publish_directory
    from repro.net.sim import Simulator

    params = test_params()
    rng = random.Random(seed)
    members = [f"shop-{index:02d}" for index in range(8)]
    sim = Simulator()
    network = Network(
        sim,
        uniform_mesh([Region.LOCAL], one_way=0.01, seed=seed),
        instant_profile(),
        seed=seed,
    )
    for member in members:
        network.register(Node(member, Region.LOCAL))
    broker_key = SchnorrKeyPair.generate(params.group, rng)
    table = build_table(params, broker_key, 1, {m: 1.0 for m in members}, rng=rng)
    keys = {
        member: SchnorrKeyPair.generate(params.group, rng).public for member in members
    }
    directory = publish_directory(params, broker_key, 1, table, keys, rng)
    overlay = GossipOverlay(
        params, network, broker_key.public, members, interval=1.0, fanout=2, seed=seed
    )
    overlay.seed(directory, seed_members=members[:2])
    overlay.start()
    sim.run(until=30.0)

    ring = ChordRing([f"peer-{index:02d}" for index in range(32)])
    for index in range(24):
        key = chord_id(f"spent-coin-{index}")
        ring.put(key, f"transcript-{index}")
        ring.get(key)


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.protocols import run_deposit, run_payment, run_withdrawal
    from repro.core.system import EcashSystem

    if args.metrics:
        obs.enable()
    system = EcashSystem(seed=args.seed)
    client = system.new_client()
    info = system.standard_info(args.denomination, now=0)
    stored = run_withdrawal(client, system.broker, info)
    print(f"withdrew {info.short_label()} coin; witness = {stored.coin.witness_id}")
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    run_payment(client, stored, system.merchant(merchant_id), system.witness_of(stored), now=10)
    print(f"paid {merchant_id} (witness countersigned)")
    results = run_deposit(system.merchant(merchant_id), system.broker, now=100)
    print(
        f"deposited: {results[0].outcome.value}; "
        f"{merchant_id} balance = {system.broker.merchant_balance(merchant_id)} cents; "
        f"ledger conserved = {system.ledger.conserved()}"
    )
    if args.metrics:
        _exercise_network_telemetry(args.seed)
        _print_metrics()
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.core.protocols import run_payment, run_withdrawal
    from repro.core.system import EcashSystem

    if args.metrics:
        obs.enable()
    system = EcashSystem(seed=args.seed)
    attacker = system.new_client()
    stored = run_withdrawal(attacker, system.broker, system.standard_info(25, now=0))
    shops = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    witness = system.witness_of(stored)
    run_payment(attacker, stored, system.merchant(shops[0]), witness, now=10)
    print(f"spend #1 at {shops[0]}: accepted")
    attacker.wallet.add(stored)
    try:
        run_payment(attacker, stored, system.merchant(shops[1]), witness, now=500)
        print("spend #2: ACCEPTED — this is a bug")
        return 1
    except DoubleSpendError as refusal:
        print(f"spend #2 at {shops[1]}: refused in real time")
        print(f"  proof verifies: {refusal.proof.verify(system.params, stored.coin)}")
        print(f"  extracted x == attacker's secret: {refusal.proof.x == stored.secrets.x}")
    if args.metrics:
        _print_metrics()
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.opcount import measure_table1, render_table1

    rows = measure_table1()
    print(render_table1(rows))
    return 0 if all(row.matches for row in rows) else 1


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.analysis.payment_bench import run_payment_trials
    from repro.core.params import default_params, test_params

    if args.metrics:
        obs.enable()
    params = test_params() if args.fast else default_params()
    result = run_payment_trials(trials=args.trials, params=params, seed=args.seed)
    print(result.render())
    if args.metrics:
        _print_metrics()
    return 0


def _cmd_metrics(args: argparse.Namespace) -> int:
    from repro.core.protocols import run_deposit, run_payment, run_withdrawal
    from repro.core.system import EcashSystem

    obs.enable()
    system = EcashSystem(seed=args.seed)
    client = system.new_client()

    # Honest lifecycle: withdraw, pay, deposit.
    stored = run_withdrawal(client, system.broker, system.standard_info(25, now=0))
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    run_payment(client, stored, system.merchant(merchant_id), system.witness_of(stored), now=10)
    run_deposit(system.merchant(merchant_id), system.broker, now=100)

    # Double-spend attempt: exercises the detection counter.
    attacker = system.new_client()
    cheat = run_withdrawal(attacker, system.broker, system.standard_info(25, now=0))
    shops = [m for m in system.merchant_ids if m != cheat.coin.witness_id]
    witness = system.witness_of(cheat)
    run_payment(attacker, cheat, system.merchant(shops[0]), witness, now=10)
    attacker.wallet.add(cheat)
    try:
        run_payment(attacker, cheat, system.merchant(shops[1]), witness, now=500)
        return 1  # pragma: no cover - detection failure would be a bug
    except DoubleSpendError:
        pass

    # Network layer: gossip convergence + DHT lookups.
    _exercise_network_telemetry(args.seed)

    # Publish the perf engine's cache/table sizes as gauges.
    from repro import perf

    perf.export_metrics()

    if args.format == "json":
        print(obs.export_json())
    elif args.format == "prom":
        print(obs.export_prometheus())
    else:
        print(obs.export_console())
    return 0


def _cmd_rounds(args: argparse.Namespace) -> int:
    from repro.analysis.payment_bench import PAPER_ROUNDS, measure_message_rounds
    from repro.analysis.tables import render_table

    rounds = measure_message_rounds()
    print(
        render_table(
            "Message rounds per protocol",
            ["Protocol", "Measured", "Paper"],
            [[name, rounds[name], PAPER_ROUNDS[name]] for name in PAPER_ROUNDS],
        )
    )
    return 0 if rounds == PAPER_ROUNDS else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.system import EcashSystem
    from repro.net.services import NetworkDeployment

    system = EcashSystem(seed=args.seed)
    deployment = NetworkDeployment(system, seed=args.seed)
    deployment.add_client("client-0")
    stored = deployment.run(
        deployment.withdrawal_process("client-0", system.standard_info(25, now=0))
    )
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    deployment.run(deployment.payment_process("client-0", stored, merchant_id))
    deployment.run(deployment.deposit_process(merchant_id))
    print("Figure 1 message flow (simulated PlanetLab geography):")
    for entry in deployment.network.trace.entries:
        arrow = "->" if entry.kind == "request" else "<-"
        print(
            f"  t={entry.time*1000:8.1f}ms  {entry.source:>12} {arrow} "
            f"{entry.destination:<12} {entry.method:<18} {entry.size_bytes:>5}B "
            f"({entry.kind})"
        )
    return 0


def _cmd_wallet(args: argparse.Namespace) -> int:
    from repro.core.client import Wallet

    wallet = Wallet.load(args.path)
    print(f"{len(wallet.coins)} coin(s), total {wallet.total_value()} cents")
    for index, stored in enumerate(wallet.coins):
        info = stored.coin.info
        print(
            f"  [{index}] {info.short_label()}  witness={stored.coin.witness_id}  "
            f"spendable-until={info.soft_expiry}  void-after={info.hard_expiry}"
        )
    return 0


def _cmd_chaos(args: argparse.Namespace) -> int:
    from repro.faults.scenarios import SCENARIOS, render_report, run_suite

    if args.list:
        for name in SCENARIOS:
            print(name)
        return 0
    names = args.scenario or None
    if names:
        unknown = [name for name in names if name not in SCENARIOS]
        if unknown:
            print(f"unknown scenario(s): {', '.join(unknown)}", file=sys.stderr)
            return 2
    if args.metrics:
        obs.enable()
    seed_count = 3 if args.quick else args.seeds
    seeds = range(args.seed, args.seed + seed_count)
    results = run_suite(names, seeds)
    report = render_report(results)
    if args.out:
        from pathlib import Path

        Path(args.out).write_text(report)
        print(f"(written to {args.out})")
    else:
        print(report, end="")
    if args.metrics:
        _print_metrics()
    return 0 if all(result.ok for result in results) else 1


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from repro.perf import bench

    mode = "quick" if args.quick else "full"
    results = bench.run_bench(quick=args.quick, seed=args.seed, workers=args.workers)
    print(json.dumps({mode: results}, indent=2, sort_keys=True))
    if args.check:
        from pathlib import Path

        baseline_file = Path(args.out)
        if not baseline_file.exists():
            print(f"no baseline at {args.out}; writing one", file=sys.stderr)
            bench.write_results(results, args.out, mode)
            return 0
        baseline = json.loads(baseline_file.read_text()).get(mode, {})
        failures = bench.check_regression(results, baseline, tolerance=args.tolerance)
        for failure in failures:
            print(f"REGRESSION {failure}", file=sys.stderr)
        return 1 if failures else 0
    bench.write_results(results, args.out, mode)
    print(f"(written to {args.out})")
    return 0


def _cmd_campaign(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from repro.scale import CampaignConfig, identity_check, run_campaign

    nodes = args.nodes if args.nodes is not None else (200 if args.quick else 10_000)
    duration = (
        args.duration if args.duration is not None else (10.0 if args.quick else 60.0)
    )
    config = CampaignConfig(seed=args.seed, nodes=nodes, duration=duration)
    if args.metrics:
        obs.enable()

    failures: list[str] = []
    reports = []
    for run in range(max(1, args.runs)):
        reports.append(run_campaign(config, scaling_workers=args.workers or 0))
    report = reports[0]
    digests = {r["digest"] for r in reports}
    if len(digests) > 1:
        failures.append(f"digest differs across {len(reports)} runs: {sorted(digests)}")
    elif len(reports) > 1:
        report["byte_identity_runs"] = len(reports)

    results = report["results"]
    violations = results.get("protocol", {}).get("violations", 0)
    if violations:
        failures.append(f"{violations} safety-invariant violation(s)")

    if args.check_identity:
        small = CampaignConfig(
            seed=args.seed,
            nodes=min(nodes, args.identity_nodes),
            duration=min(duration, 10.0),
        )
        verdict = identity_check(small)
        report["identity_check"] = verdict
        if not verdict["match"]:
            failures.append("perf-vs-naive digest mismatch at small n")

    print(
        f"campaign seed={config.seed} nodes={config.nodes} "
        f"duration={config.duration}s"
    )
    hops = results["lookups"]["hops"]
    print(
        f"  lookups {results['lookups']['count']}: mean hops {hops['mean']} "
        f"(p99 {hops['p99']}, bound {results['lookups']['mean_hops_bound']}, "
        f"within={results['lookups']['within_bound']})"
    )
    print(
        f"  membership: {results['membership']['joins']} joins, "
        f"{results['membership']['leaves']} leaves, "
        f"{results['membership']['rebalance_bytes']} rebalance bytes"
    )
    print(
        f"  engine: table_builds={report['engine']['table_builds']} "
        f"repair_ops={report['engine']['ring_repair_ops_total']} "
        f"wall={report['engine']['wall_seconds']}s"
    )
    print(f"  digest {report['digest']}")
    if args.metrics:
        _print_metrics()
    Path(args.out).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"(written to {args.out})")
    for failure in failures:
        print(f"FAIL {failure}", file=sys.stderr)
    return 1 if failures else 0


def _changed_python_files(ref: str) -> set[str] | None:
    """Repo-relative ``.py`` paths changed vs ``ref`` (plus untracked)."""
    import subprocess

    try:
        diff = subprocess.run(
            ["git", "diff", "--name-only", ref, "--"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        untracked = subprocess.run(
            ["git", "ls-files", "--others", "--exclude-standard"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
    except (OSError, subprocess.CalledProcessError):
        return None
    return {
        line.strip()
        for line in (diff + untracked).splitlines()
        if line.strip().endswith(".py")
    }


def _cmd_lint(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.lint import baseline as lint_baseline
    from repro.lint import engine as lint_engine
    from repro.lint import report as lint_report
    from repro.lint.program import run_program, select_program_rules
    from repro.lint.rules import all_rules

    if args.list_rules:
        print("per-file rules:")
        for rule_id, rule in sorted(all_rules().items()):
            print(f"  {rule_id:16} {rule.description}")
        print("program rules (--program):")
        for rule_id, program_rule in sorted(select_program_rules().items()):
            print(f"  {rule_id:16} {program_rule.description}")
        return 0

    only = args.rule or None
    engine = lint_engine.LintEngine()
    try:
        if only and not args.program:
            engine.select_rules(only)  # validate ids before scanning
        if only and args.program:
            select_program_rules(only)
    except KeyError as error:
        print(f"unknown rule: {error.args[0]}", file=sys.stderr)
        return 2
    paths: list[str] = args.paths or ["src"]

    changed: set[str] | None = None
    if args.changed is not None:
        changed = _changed_python_files(args.changed)
        if changed is None:
            print(f"cannot diff against git ref '{args.changed}'", file=sys.stderr)
            return 2

    baseline_file = args.use_baseline or lint_baseline.DEFAULT_BASELINE
    if args.write_baseline:
        # Regenerate both namespaces in one pass so the file stays whole.
        file_findings = engine.lint(paths, None)
        program_run = run_program(paths)
        accepted = lint_baseline.BaselineFile(
            files=lint_baseline.Baseline.from_findings(file_findings),
            program=lint_baseline.Baseline.from_findings(program_run.findings),
        )
        accepted.save(baseline_file)
        print(
            f"wrote {baseline_file}: "
            f"{sum(accepted.files.counts.values())} per-file + "
            f"{sum(accepted.program.counts.values())} program "
            "grandfathered finding(s)"
        )
        return 0

    scanned: set[str] | None = None
    if args.program:
        # The program tier is whole-program by construction: a changed
        # run keeps the full file set (correctness) and leans on the
        # summary cache for speed instead of narrowing the scan.
        cache_dir = ".lint_cache" if changed is not None else None
        run = run_program(paths, only=only, cache_dir=cache_dir)
        findings, checked = run.findings, run.checked_files
        if changed is not None:
            print(
                f"summary cache: {run.cache_hits} hit(s), "
                f"{run.cache_misses} miss(es)",
                file=sys.stderr,
            )
    else:
        root = Path.cwd()
        files = [
            file
            for file in lint_engine.iter_python_files(paths)
            if changed is None
            or lint_engine._relative_posix(file, root) in changed
        ]
        findings = engine.lint([str(file) for file in files], only) if files else []
        checked = len(files)
        scanned = {lint_engine._relative_posix(file, root) for file in files}

    stale: list[str] = []
    baseline = None
    if args.use_baseline:
        try:
            stored = lint_baseline.BaselineFile.load(baseline_file)
        except lint_baseline.BaselineError as error:
            print(str(error), file=sys.stderr)
            return 2
        baseline = stored.program if args.program else stored.files
        findings, stale = lint_baseline.diff_against_baseline(findings, baseline)
        if changed is not None and scanned is not None:
            # A narrowed scan cannot prove absence in unscanned files.
            stale = [
                fingerprint
                for fingerprint in stale
                if baseline.context.get(fingerprint, {}).get("path") in scanned
            ]
    render = (
        lint_report.render_json if args.format == "json" else lint_report.render_console
    )
    print(render(findings, stale, baseline, checked_files=checked))
    return lint_report.exit_code(findings, stale)


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(
        args.output, trials=args.trials, fast=args.fast, seed=args.seed
    )
    print(text)
    print(f"(written to {args.output})")
    return 0


def _cmd_provision(args: argparse.Namespace) -> int:
    from repro.daemon.demo import write_deployment

    config = write_deployment(args.dir, args.seed)
    print(f"provisioned {len(config.nodes)} daemons + client keys in {args.dir}")
    for name, address in config.nodes.items():
        print(f"  {name:<14} {address.role:<9} {address.host}:{address.port}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import asyncio

    from repro.daemon.service import serve

    try:
        asyncio.run(
            serve(
                args.dir,
                args.name,
                host=args.host,
                port=args.port,
                state_dir=args.state_dir,
                store_backend=args.store_backend,
                store_shards=args.store_shards,
            )
        )
    except KeyboardInterrupt:
        pass
    return 0


def _cmd_store(args: argparse.Namespace) -> int:
    from repro.store import StoreError, open_store

    if args.action == "smoke":
        from repro.faults.scenarios import render_report, run_suite

        names = [f"broker-crash-campaign-{args.backend}"]
        results = run_suite(names, seeds=range(args.seed, args.seed + args.seeds))
        print(render_report(results), end="")
        return 0 if all(result.ok for result in results) else 1

    if args.dir is None:
        print(f"store {args.action} requires --dir", file=sys.stderr)
        return 2
    try:
        store = open_store(args.dir)
    except StoreError as error:
        print(f"cannot open store: {error}", file=sys.stderr)
        return 1
    try:
        if args.action == "verify":
            problems = store.verify()
            for problem in problems:
                print(f"PROBLEM {problem}")
            print(f"{len(problems)} problem(s)")
            return 1 if problems else 0
        stats = store.recover()
        if args.action == "compact":
            before = store.wal_bytes()
            store.compact()
            print(
                f"compacted: wal {before} -> {store.wal_bytes()} bytes, "
                f"{stats.replayed_records} journal record(s) folded into the snapshot"
            )
            return 0
        # inspect
        print(f"store {store.directory}")
        print(f"  backend={store.backend_kind} shards={store.shard_count}")
        print(
            f"  recovery: snapshot={stats.snapshot_records} "
            f"replayed={stats.replayed_records} torn-bytes={stats.truncated_bytes} "
            f"discarded={stats.discarded_records}"
        )
        print(f"  wal-bytes={store.wal_bytes()}")
        for space, table in store.dump().items():
            print(f"  space {space}: {len(table)} record(s)")
        print(f"  state-digest={store.state_digest()}")
        return 0
    finally:
        store.close()


def _cmd_connect(args: argparse.Namespace) -> int:
    import asyncio

    if args.demo:
        import tempfile

        from repro.daemon.demo import format_report, run_loopback_demo

        with tempfile.TemporaryDirectory(prefix="repro-daemon-") as directory:
            report = run_loopback_demo(directory, seed=args.seed)
        print(format_report(report))
        return 0 if not report["problems"] else 1

    from repro.daemon.client import SocketTransport
    from repro.daemon.config import load_config
    from repro.daemon.keys import load_authorized, load_identity

    async def ping() -> dict[str, object]:
        config = load_config(args.dir)
        transport = SocketTransport(
            load_identity(args.dir, args.name),
            load_authorized(args.dir),
            config.netmap(),
        )
        try:
            return await transport.call(args.peer, args.method, {})
        finally:
            await transport.close()

    print(asyncio.run(ping()))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Witness-based anonymous e-cash (ICDCS 2007 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=2007, help="deterministic seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the full coin lifecycle")
    demo.add_argument("--denomination", type=int, default=25, help="coin value in cents")
    demo.add_argument(
        "--metrics", action="store_true", help="print the telemetry snapshot after"
    )
    demo.set_defaults(func=_cmd_demo)

    attack = subparsers.add_parser("attack", help="attempt a double-spend")
    attack.add_argument(
        "--metrics", action="store_true", help="print the telemetry snapshot after"
    )
    attack.set_defaults(func=_cmd_attack)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1 (op counts)")
    table1.set_defaults(func=_cmd_table1)

    table2 = subparsers.add_parser("table2", help="regenerate Table 2 (latency/bytes)")
    table2.add_argument("--trials", type=int, default=100)
    table2.add_argument(
        "--fast", action="store_true", help="use the 512-bit test group"
    )
    table2.add_argument(
        "--metrics", action="store_true", help="print the telemetry snapshot after"
    )
    table2.set_defaults(func=_cmd_table2)

    metrics = subparsers.add_parser(
        "metrics", help="run an instrumented workload, dump the telemetry snapshot"
    )
    metrics.add_argument(
        "--format",
        choices=["console", "json", "prom"],
        default="console",
        help="snapshot output format",
    )
    metrics.set_defaults(func=_cmd_metrics)

    rounds = subparsers.add_parser("rounds", help="message rounds per protocol")
    rounds.set_defaults(func=_cmd_rounds)

    trace = subparsers.add_parser("trace", help="print the Figure 1 message flow")
    trace.set_defaults(func=_cmd_trace)

    wallet = subparsers.add_parser("wallet", help="inspect a wallet file")
    wallet.add_argument("path", help="path to a wallet JSON file")
    wallet.set_defaults(func=_cmd_wallet)

    chaos = subparsers.add_parser(
        "chaos",
        help="run the seeded fault-injection scenario suite, check invariants",
    )
    chaos.add_argument(
        "--quick", action="store_true", help="3 seeds per scenario (CI smoke)"
    )
    chaos.add_argument(
        "--seeds", type=int, default=20, help="seeds per scenario (default 20)"
    )
    chaos.add_argument(
        "--scenario",
        action="append",
        metavar="NAME",
        help="run only this scenario (repeatable)",
    )
    chaos.add_argument("--list", action="store_true", help="list scenario names")
    chaos.add_argument("--out", help="write the report to a file instead of stdout")
    chaos.add_argument(
        "--metrics", action="store_true", help="print the telemetry snapshot after"
    )
    chaos.set_defaults(func=_cmd_chaos)

    bench = subparsers.add_parser(
        "bench",
        help="measure naive-vs-perf throughput, write/check BENCH_payment.json",
    )
    bench.add_argument(
        "--quick", action="store_true", help="512-bit test group (CI smoke)"
    )
    bench.add_argument(
        "--out",
        default="BENCH_payment.json",
        help="results/baseline file (default BENCH_payment.json)",
    )
    bench.add_argument(
        "--check",
        action="store_true",
        help="compare speedups against the baseline instead of overwriting it",
    )
    bench.add_argument(
        "--tolerance",
        type=float,
        default=0.7,
        help="minimum fraction of the baseline speedup that must hold (default 0.7)",
    )
    bench.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="also benchmark the process-pool engine at 1/2/4..N workers "
        "(adds a 'parallel' section to the results)",
    )
    bench.set_defaults(func=_cmd_bench)

    campaign = subparsers.add_parser(
        "campaign",
        help="run a seeded large-overlay workload campaign under churn, "
        "write BENCH_campaign.json",
    )
    campaign.add_argument(
        "--nodes",
        type=int,
        default=None,
        help="overlay size (default 10000, or 200 with --quick)",
    )
    campaign.add_argument(
        "--duration",
        type=float,
        default=None,
        help="campaign horizon in simulated seconds (default 60, 10 with --quick)",
    )
    campaign.add_argument(
        "--quick", action="store_true", help="small overlay + short horizon (CI smoke)"
    )
    campaign.add_argument(
        "--runs",
        type=int,
        default=1,
        metavar="N",
        help="repeat the campaign N times and assert byte-identical digests",
    )
    campaign.add_argument(
        "--check-identity",
        action="store_true",
        help="also run a small-n perf-vs-naive byte-identity check",
    )
    campaign.add_argument(
        "--identity-nodes",
        type=int,
        default=120,
        help="overlay size for the identity check (default 120)",
    )
    campaign.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="append a scaling-efficiency section at 1/2/4..N workers "
        "(informative when host_cpus >= 4)",
    )
    campaign.add_argument(
        "--out",
        default="BENCH_campaign.json",
        help="report file (default BENCH_campaign.json)",
    )
    campaign.add_argument(
        "--metrics", action="store_true", help="print the telemetry snapshot after"
    )
    campaign.set_defaults(func=_cmd_campaign)

    lint = subparsers.add_parser(
        "lint",
        help="run the protocol-invariant static analyzer (AST rules)",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        metavar="PATH",
        help="files/directories to scan (default: src)",
    )
    lint.add_argument(
        "--format",
        choices=["console", "json"],
        default="console",
        help="report format",
    )
    lint.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule (repeatable)",
    )
    lint.add_argument(
        "--baseline",
        nargs="?",
        const="LINT_baseline.json",
        default=None,
        dest="use_baseline",
        metavar="FILE",
        help="suppress findings recorded in the baseline file "
        "(default LINT_baseline.json); stale entries still fail",
    )
    lint.add_argument(
        "--write-baseline",
        action="store_true",
        help="accept the current findings: regenerate the baseline file "
        "(runs both tiers, rewrites both schema-v2 sections)",
    )
    lint.add_argument(
        "--program",
        action="store_true",
        help="run the whole-program analyses (wire-schema, journal-first, "
        "async-safety, exception-wire) instead of the per-file rules",
    )
    lint.add_argument(
        "--changed",
        metavar="REF",
        default=None,
        help="fast incremental mode: per-file rules scan only files that "
        "differ from git REF (plus untracked); --program runs whole-program "
        "but caches module summaries under .lint_cache/",
    )
    lint.add_argument("--list-rules", action="store_true", help="list rule ids")
    lint.set_defaults(func=_cmd_lint)

    report = subparsers.add_parser(
        "report", help="run every harness, write a Markdown reproduction report"
    )
    report.add_argument("--output", default="REPORT.md", help="output file")
    report.add_argument("--trials", type=int, default=100, help="Table 2 trials")
    report.add_argument(
        "--fast", action="store_true", help="use the 512-bit test group"
    )
    report.set_defaults(func=_cmd_report)

    provision = subparsers.add_parser(
        "provision", help="write daemon keys + netmap for a loopback deployment"
    )
    provision.add_argument("--dir", required=True, help="deployment directory")
    provision.set_defaults(func=_cmd_provision)

    serve = subparsers.add_parser(
        "serve", help="run one daemon (broker/witness/merchant) from a deployment dir"
    )
    serve.add_argument("--dir", required=True, help="deployment directory")
    serve.add_argument("--name", required=True, help="node name to serve")
    serve.add_argument("--host", default=None, help="bind address override")
    serve.add_argument("--port", type=int, default=None, help="bind port override")
    serve.add_argument(
        "--state-dir",
        default=None,
        help="durable state directory (broker only): journal every RPC "
        "to a write-ahead log, replay it on restart",
    )
    serve.add_argument(
        "--store-backend",
        choices=("memory", "sqlite"),
        default="sqlite",
        help="materialized backend behind the journal (default sqlite)",
    )
    serve.add_argument(
        "--store-shards",
        type=int,
        default=4,
        help="coin-hash-prefix shard count, fixed at store creation (default 4)",
    )
    serve.set_defaults(func=_cmd_serve)

    store = subparsers.add_parser(
        "store", help="inspect, verify, compact, or smoke-test a durable store"
    )
    store.add_argument(
        "action",
        choices=("inspect", "verify", "compact", "smoke"),
        help="inspect: recover + per-space counts + digest; verify: "
        "integrity scan (exit 1 on problems); compact: fold the journal "
        "into the snapshot; smoke: run the broker-crash-campaign chaos "
        "scenario end to end",
    )
    store.add_argument("--dir", default=None, help="store directory (not for smoke)")
    store.add_argument(
        "--backend",
        choices=("memory", "sqlite"),
        default="sqlite",
        help="backend for the smoke scenario (default sqlite)",
    )
    store.add_argument(
        "--seeds", type=int, default=3, help="smoke: number of seeds to run"
    )
    store.set_defaults(func=_cmd_store)

    connect = subparsers.add_parser(
        "connect", help="connect to a daemon deployment (or run the loopback demo)"
    )
    connect.add_argument(
        "--demo",
        action="store_true",
        help="spawn broker+witness+merchant, run the full lifecycle, compare "
        "byte accounting against the sim backend",
    )
    connect.add_argument("--dir", default=None, help="deployment directory")
    connect.add_argument("--name", default="client-0", help="connecting identity")
    connect.add_argument("--peer", default="broker", help="daemon to contact")
    connect.add_argument("--method", default="admin/ping", help="method to call")
    connect.set_defaults(func=_cmd_connect)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
