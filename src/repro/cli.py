"""Command-line interface: demos and experiment reruns.

Usage::

    python -m repro demo                 # full coin lifecycle
    python -m repro attack               # double-spend attempt, refused
    python -m repro table1               # regenerate Table 1
    python -m repro table2 --trials 20   # regenerate Table 2 (simulated)
    python -m repro rounds               # message rounds per protocol
    python -m repro trace                # Figure 1 message flow
    python -m repro wallet <file>        # inspect a wallet JSON file
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.core.exceptions import DoubleSpendError


def _cmd_demo(args: argparse.Namespace) -> int:
    from repro.core.protocols import run_deposit, run_payment, run_withdrawal
    from repro.core.system import EcashSystem

    system = EcashSystem(seed=args.seed)
    client = system.new_client()
    info = system.standard_info(args.denomination, now=0)
    stored = run_withdrawal(client, system.broker, info)
    print(f"withdrew {info.short_label()} coin; witness = {stored.coin.witness_id}")
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    run_payment(client, stored, system.merchant(merchant_id), system.witness_of(stored), now=10)
    print(f"paid {merchant_id} (witness countersigned)")
    results = run_deposit(system.merchant(merchant_id), system.broker, now=100)
    print(
        f"deposited: {results[0].outcome.value}; "
        f"{merchant_id} balance = {system.broker.merchant_balance(merchant_id)} cents; "
        f"ledger conserved = {system.ledger.conserved()}"
    )
    return 0


def _cmd_attack(args: argparse.Namespace) -> int:
    from repro.core.protocols import run_payment, run_withdrawal
    from repro.core.system import EcashSystem

    system = EcashSystem(seed=args.seed)
    attacker = system.new_client()
    stored = run_withdrawal(attacker, system.broker, system.standard_info(25, now=0))
    shops = [m for m in system.merchant_ids if m != stored.coin.witness_id]
    witness = system.witness_of(stored)
    run_payment(attacker, stored, system.merchant(shops[0]), witness, now=10)
    print(f"spend #1 at {shops[0]}: accepted")
    attacker.wallet.add(stored)
    try:
        run_payment(attacker, stored, system.merchant(shops[1]), witness, now=500)
        print("spend #2: ACCEPTED — this is a bug")
        return 1
    except DoubleSpendError as refusal:
        print(f"spend #2 at {shops[1]}: refused in real time")
        print(f"  proof verifies: {refusal.proof.verify(system.params, stored.coin)}")
        print(f"  extracted x == attacker's secret: {refusal.proof.x == stored.secrets.x}")
    return 0


def _cmd_table1(args: argparse.Namespace) -> int:
    from repro.analysis.opcount import measure_table1, render_table1

    rows = measure_table1()
    print(render_table1(rows))
    return 0 if all(row.matches for row in rows) else 1


def _cmd_table2(args: argparse.Namespace) -> int:
    from repro.analysis.payment_bench import run_payment_trials
    from repro.core.params import default_params, test_params

    params = test_params() if args.fast else default_params()
    result = run_payment_trials(trials=args.trials, params=params, seed=args.seed)
    print(result.render())
    return 0


def _cmd_rounds(args: argparse.Namespace) -> int:
    from repro.analysis.payment_bench import PAPER_ROUNDS, measure_message_rounds
    from repro.analysis.tables import render_table

    rounds = measure_message_rounds()
    print(
        render_table(
            "Message rounds per protocol",
            ["Protocol", "Measured", "Paper"],
            [[name, rounds[name], PAPER_ROUNDS[name]] for name in PAPER_ROUNDS],
        )
    )
    return 0 if rounds == PAPER_ROUNDS else 1


def _cmd_trace(args: argparse.Namespace) -> int:
    from repro.core.system import EcashSystem
    from repro.net.services import NetworkDeployment

    system = EcashSystem(seed=args.seed)
    deployment = NetworkDeployment(system, seed=args.seed)
    deployment.add_client("client-0")
    stored = deployment.run(
        deployment.withdrawal_process("client-0", system.standard_info(25, now=0))
    )
    merchant_id = next(m for m in system.merchant_ids if m != stored.coin.witness_id)
    deployment.run(deployment.payment_process("client-0", stored, merchant_id))
    deployment.run(deployment.deposit_process(merchant_id))
    print("Figure 1 message flow (simulated PlanetLab geography):")
    for entry in deployment.network.trace.entries:
        arrow = "->" if entry.kind == "request" else "<-"
        print(
            f"  t={entry.time*1000:8.1f}ms  {entry.source:>12} {arrow} "
            f"{entry.destination:<12} {entry.method:<18} {entry.size_bytes:>5}B "
            f"({entry.kind})"
        )
    return 0


def _cmd_wallet(args: argparse.Namespace) -> int:
    from repro.core.client import Wallet

    wallet = Wallet.load(args.path)
    print(f"{len(wallet.coins)} coin(s), total {wallet.total_value()} cents")
    for index, stored in enumerate(wallet.coins):
        info = stored.coin.info
        print(
            f"  [{index}] {info.short_label()}  witness={stored.coin.witness_id}  "
            f"spendable-until={info.soft_expiry}  void-after={info.hard_expiry}"
        )
    return 0


def _cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.report import generate_report

    text = generate_report(
        args.output, trials=args.trials, fast=args.fast, seed=args.seed
    )
    print(text)
    print(f"(written to {args.output})")
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Witness-based anonymous e-cash (ICDCS 2007 reproduction)",
    )
    parser.add_argument("--seed", type=int, default=2007, help="deterministic seed")
    subparsers = parser.add_subparsers(dest="command", required=True)

    demo = subparsers.add_parser("demo", help="run the full coin lifecycle")
    demo.add_argument("--denomination", type=int, default=25, help="coin value in cents")
    demo.set_defaults(func=_cmd_demo)

    attack = subparsers.add_parser("attack", help="attempt a double-spend")
    attack.set_defaults(func=_cmd_attack)

    table1 = subparsers.add_parser("table1", help="regenerate Table 1 (op counts)")
    table1.set_defaults(func=_cmd_table1)

    table2 = subparsers.add_parser("table2", help="regenerate Table 2 (latency/bytes)")
    table2.add_argument("--trials", type=int, default=100)
    table2.add_argument(
        "--fast", action="store_true", help="use the 512-bit test group"
    )
    table2.set_defaults(func=_cmd_table2)

    rounds = subparsers.add_parser("rounds", help="message rounds per protocol")
    rounds.set_defaults(func=_cmd_rounds)

    trace = subparsers.add_parser("trace", help="print the Figure 1 message flow")
    trace.set_defaults(func=_cmd_trace)

    wallet = subparsers.add_parser("wallet", help="inspect a wallet file")
    wallet.add_argument("path", help="path to a wallet JSON file")
    wallet.set_defaults(func=_cmd_wallet)

    report = subparsers.add_parser(
        "report", help="run every harness, write a Markdown reproduction report"
    )
    report.add_argument("--output", default="REPORT.md", help="output file")
    report.add_argument("--trials", type=int, default=100, help="Table 2 trials")
    report.add_argument(
        "--fast", action="store_true", help="use the 512-bit test group"
    )
    report.set_defaults(func=_cmd_report)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except BrokenPipeError:
        # Output piped into a pager/head that closed early: not an error.
        return 0


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
