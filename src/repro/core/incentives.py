"""Witness incentives: cashing-fee discounts for witness service.

Section 4, "Witness Motivation and Assignment": *"the broker can provide
incentives to merchants for signing coins, e.g. give discounts on cashing
the coins, where the credit given depends on the amount of witness service
(e.g. coins signed) the merchant has performed. The merchants that do not
sign will pay more fees for cashing coins, while the hardworking witnesses
will get sufficient credit to motivate them."* The paper leaves the exact
policy open; this module provides a concrete, tunable one so the incentive
loop (witness more -> pay less -> get bigger ranges -> witness more) can
actually be run and measured.

The fee schedule is a base rate in basis points, discounted by the
merchant's *witness ratio* — coins it witnessed per coin it cashed —
clamped to a floor so fees never go negative.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.broker import Broker, DepositResult


@dataclass(frozen=True)
class FeePolicy:
    """A cashing-fee schedule with witness-service discounts.

    Args:
        base_fee_bps: fee on deposits, in basis points (1/100 of a percent),
            for a merchant that performs no witness service.
        discount_per_ratio_bps: fee reduction per unit of witness ratio
            (coins witnessed / coins deposited).
        floor_bps: minimum fee, in basis points.
    """

    base_fee_bps: int = 200          # 2.00%
    discount_per_ratio_bps: int = 100
    floor_bps: int = 0

    def __post_init__(self) -> None:
        if self.base_fee_bps < 0 or self.floor_bps < 0:
            raise ValueError("fees cannot be negative")
        if self.floor_bps > self.base_fee_bps:
            raise ValueError("fee floor exceeds the base fee")

    def fee_bps(self, coins_witnessed: int, coins_deposited: int) -> int:
        """Effective fee rate for a merchant's current service record."""
        ratio = coins_witnessed / max(1, coins_deposited)
        discounted = self.base_fee_bps - round(ratio * self.discount_per_ratio_bps)
        return max(self.floor_bps, discounted)

    def fee_amount(self, amount: int, coins_witnessed: int, coins_deposited: int) -> int:
        """Fee in cents on a deposit of ``amount`` cents (rounded down)."""
        return amount * self.fee_bps(coins_witnessed, coins_deposited) // 10_000


@dataclass
class FeeCollectingBroker:
    """A deposit front-end that applies a :class:`FeePolicy`.

    Wraps a :class:`Broker` without modifying the paper's protocol: the
    merchant is credited in full by the underlying deposit (so Table 1 and
    the settlement tests stay exact), then the fee moves from the
    merchant's revenue to the broker's fee account — the accounting view a
    real broker would implement.
    """

    broker: Broker
    policy: FeePolicy
    fee_account: str = "broker:fees"
    deposits_seen: dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.deposits_seen is None:
            self.deposits_seen = {}

    def deposit(self, merchant_id: str, signed, now: int) -> tuple[DepositResult, int]:
        """Clear a deposit and collect the (possibly discounted) fee.

        Returns:
            ``(deposit_result, fee_charged_in_cents)``.
        """
        result = self.broker.deposit(merchant_id, signed, now)
        account = self.broker.merchants[merchant_id]
        deposited = self.deposits_seen.get(merchant_id, 0) + 1
        self.deposits_seen[merchant_id] = deposited
        fee = self.policy.fee_amount(result.amount, account.coins_witnessed, deposited)
        if fee > 0:
            self.broker.ledger.transfer(
                f"revenue:{merchant_id}", self.fee_account, fee, memo="cashing fee"
            )
        return result, fee

    def effective_fee_bps(self, merchant_id: str) -> int:
        """The rate the merchant would pay on its next deposit."""
        account = self.broker.merchants[merchant_id]
        return self.policy.fee_bps(
            account.coins_witnessed, self.deposits_seen.get(merchant_id, 0) + 1
        )


__all__ = ["FeePolicy", "FeeCollectingBroker"]
