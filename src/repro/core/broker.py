"""The broker: coin issuer, deposit clearinghouse, witness-list authority.

The broker (Section 3's dedicated-but-not-necessarily-online server) owns
two keys — the blind-signature key ``y = g^x`` that signs coins and a plain
Schnorr key that signs witness-range assignments — plus three databases:
registered merchants (with their security deposits), deposited payment
transcripts (kept until each coin's hard expiry, Alg. 3) and renewal
transcripts (Alg. 4).

Both transcript databases are keyed by the *bare coin tuple itself*, which
is how Algorithm 3 phrases the search ("searches its database to determine
if the bare coin ... has previously been deposited") — no extra hashing.
"""

from __future__ import annotations

import contextlib
import enum
import itertools
import random
import secrets
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, ContextManager, Mapping, cast

from repro import obs, perf
from repro.core.bank import Ledger
from repro.core.coin import BareCoin, Coin
from repro.core.exceptions import (
    DoubleDepositError,
    EcashError,
    ExpiredCoinError,
    InvalidCoinError,
    InvalidPaymentError,
    RenewalRefusedError,
    UnknownMerchantError,
    WrongWitnessError,
)
from repro.core.info import CoinInfo
from repro.core.params import SystemParams
from repro.core.transcripts import DoubleSpendProof, SignedTranscript
from repro.core.witness_ranges import WitnessAssignmentTable, build_table
from repro.crypto import counters
from repro.crypto.blind import PartiallyBlindSigner, SignerChallenge, SignerResponse, SignerSession
from repro.crypto.representation import RepresentationResponse, extract_representations
from repro.crypto.schnorr import SchnorrKeyPair, verify as schnorr_verify

if TYPE_CHECKING:
    from repro.core.persistence import BrokerJournal


class DepositOutcome(enum.Enum):
    """How a successful deposit was funded (Algorithm 3 step 2)."""

    CREDITED = "credited"
    CREDITED_FROM_WITNESS_DEPOSIT = "credited-from-witness-deposit"


@dataclass(frozen=True)
class DepositResult:
    """Outcome of a deposit plus any faulty-witness evidence."""

    outcome: DepositOutcome
    amount: int
    witness_fault_proof: tuple[SignedTranscript, SignedTranscript] | None = None


@dataclass
class MerchantAccount:
    """Broker-side record for one registered merchant."""

    merchant_id: str
    public_key: int
    security_deposit: int
    coins_witnessed: int = 0
    incidents: int = 0


@dataclass
class _DepositRecord:
    """One cleared deposit, retained until the coin's hard expiry."""

    signed: SignedTranscript
    deposited_at: int


@dataclass
class _RenewalRecord:
    """One renewal, retained until the old coin's hard expiry."""

    bare: BareCoin
    challenge: int
    response: RepresentationResponse
    renewed_at: int


@dataclass
class _WithdrawalTicket:
    """Broker-side state of one in-flight withdrawal/renewal session."""

    info: CoinInfo
    session: SignerSession
    paid_by: str | None


#: Protocol order of the claim-certified stages in a bulk verification:
#: a correction at an earlier stage wins because the naive per-item path
#: would have raised there first and never reached the later checks.
_DEPOSIT_STAGE_ORDER = {"coin": 0, "wsig": 1}

#: The exception each certified stage raises on the naive path.
_DEPOSIT_STAGE_ERRORS: dict[str, Callable[[], EcashError]] = {
    "coin": lambda: InvalidCoinError(
        "broker signature on deposited coin failed to verify"
    ),
    "wsig": lambda: InvalidPaymentError(
        "witness signature on transcript failed to verify"
    ),
}


def _earliest_claim_failures(tokens: list[object]) -> dict[int, str]:
    """Collapse ``(index, stage)`` claim tokens to each item's earliest stage."""
    worst: dict[int, str] = {}
    for token in tokens:
        index, stage = cast("tuple[int, str]", token)
        if index not in worst or _DEPOSIT_STAGE_ORDER[stage] < _DEPOSIT_STAGE_ORDER[worst[index]]:
            worst[index] = stage
    return worst


class Broker:
    """The broker role.

    Args:
        params: system parameters.
        ledger: the bank ledger backing all balances.
        rng: optional deterministic randomness source.
        broker_account: ledger account name holding the coin float.
    """

    def __init__(
        self,
        params: SystemParams,
        ledger: Ledger | None = None,
        rng: random.Random | None = None,
        broker_account: str = "broker",
    ) -> None:
        self.params = params
        self.ledger = ledger if ledger is not None else Ledger()
        self.rng = rng
        self.account = broker_account
        self.ledger.open_account(broker_account)
        self._signer = PartiallyBlindSigner(params.group, params.hashes, rng=rng)
        self._sign_key = SchnorrKeyPair.generate(params.group, rng)
        self.merchants: dict[str, MerchantAccount] = {}
        self.tables: dict[int, WitnessAssignmentTable] = {}
        self._next_version = 1
        self._tickets: dict[int, _WithdrawalTicket] = {}
        self._batch_tickets: dict[int, list[_WithdrawalTicket]] = {}
        self._ticket_ids = itertools.count(1)
        self._deposits: dict[BareCoin, _DepositRecord] = {}
        self._renewals: dict[BareCoin, _RenewalRecord] = {}
        self.witness_fault_log: list[tuple[str, SignedTranscript, SignedTranscript]] = []
        #: Durability hook (see :func:`repro.core.persistence.attach_journal`):
        #: when set, every mutation below is journaled before the method
        #: returns, so no acknowledged state change can be lost to a crash.
        #: Each mutating protocol step runs inside one
        #: :meth:`_journal_scope`, so everything it journals — ledger
        #: movements included — commits as a single atomic durability unit.
        self.journal: "BrokerJournal | None" = None

    def _journal_scope(self) -> ContextManager[None]:
        """One atomic durability unit covering a whole protocol step.

        All journal records written inside the scope (including ledger
        entries fired through :attr:`Ledger.on_entry`) share one commit
        marker: recovery replays the step entirely or not at all, never
        a ledger credit without its transcript record. Without a journal
        attached this is a no-op scope.
        """
        if self.journal is not None:
            return self.journal.operation()
        return contextlib.nullcontext()

    # ------------------------------------------------------------------
    # Public keys
    # ------------------------------------------------------------------
    @property
    def blind_public(self) -> int:
        """The blind-signature verification key ``y`` printed on coins."""
        return self._signer.public

    @property
    def sign_public(self) -> int:
        """The plain signature key verifying witness-range entries."""
        return self._sign_key.public

    # ------------------------------------------------------------------
    # Merchant registration and witness list management (Section 4)
    # ------------------------------------------------------------------
    def register_merchant(
        self,
        merchant_id: str,
        public_key: int,
        security_deposit: int,
        funded_from: str | None = None,
    ) -> MerchantAccount:
        """Register a merchant with its certified key and security deposit.

        The deposit moves into a dedicated escrow account
        ``deposit:<merchant_id>``; Algorithm 3 pays cheated merchants from
        it when the witness misbehaves.

        Raises:
            ValueError: duplicate registration or non-positive deposit.
            InsufficientFundsError: the funding account cannot cover it.
        """
        if merchant_id in self.merchants:
            raise ValueError(f"merchant {merchant_id!r} already registered")
        if security_deposit <= 0:
            raise ValueError("security deposit must be positive")
        if not self.params.group.is_element(public_key):
            raise ValueError("merchant public key is not a group element")
        escrow = self._escrow_account(merchant_id)
        source = funded_from if funded_from is not None else f"bank:{merchant_id}"
        with self._journal_scope():
            if funded_from is None:
                self.ledger.mint(source, security_deposit, memo="security deposit funding")
            self.ledger.transfer(source, escrow, security_deposit, memo="security deposit")
            account = MerchantAccount(
                merchant_id=merchant_id,
                public_key=public_key,
                security_deposit=security_deposit,
            )
            self.merchants[merchant_id] = account
            if self.journal is not None:
                self.journal.record_merchant(account)
        # Registered keys verify a witness signature per deposited coin;
        # make them fixed-base candidates for the perf engine.
        perf.register_fixed_base(public_key, self.params.group.p, self.params.group.q)
        return account

    def publish_witness_table(self, weights: Mapping[str, float]) -> WitnessAssignmentTable:
        """Publish a new signed witness-range assignment version.

        Raises:
            UnknownMerchantError: a weighted merchant is not registered.
        """
        for merchant_id in weights:
            if merchant_id not in self.merchants:
                raise UnknownMerchantError(f"cannot assign range to unknown {merchant_id!r}")
        version = self._next_version
        self._next_version += 1
        table = build_table(self.params, self._sign_key, version, weights, rng=self.rng)
        with self._journal_scope():
            self.tables[version] = table
            if self.journal is not None:
                self.journal.record_table(table)
        return table

    @property
    def current_table(self) -> WitnessAssignmentTable:
        """The latest published witness table.

        Raises:
            RuntimeError: no table has been published yet.
        """
        if not self.tables:
            raise RuntimeError("broker has not published a witness table")
        return self.tables[max(self.tables)]

    # ------------------------------------------------------------------
    # Withdrawal (Algorithm 1, broker side)
    # ------------------------------------------------------------------
    def begin_withdrawal(
        self, info: CoinInfo, paid_by: str | None = None
    ) -> tuple[int, SignerChallenge]:
        """Step 1: collect payment, send ``(a, b)``.

        Costs 3 ``Exp`` + 1 ``Hash`` (the broker's withdrawal row).

        Args:
            info: the agreed public coin attributes; its ``list_version``
                must be a published table version.
            paid_by: ledger account paying for the coin; ``None`` mints
                fresh external money (an anonymous gift-card purchase).

        Raises:
            ValueError: unpublished witness list version.
        """
        if info.list_version not in self.tables:
            raise ValueError(f"witness list version {info.list_version} not published")
        payer = paid_by if paid_by is not None else "anonymous-purchase"
        with self._journal_scope():
            if paid_by is None:
                self.ledger.mint(payer, info.denomination, memo="coin purchase")
            self.ledger.transfer(
                payer, self.account, info.denomination, memo="coin purchase"
            )
            obs.counter_inc("broker_withdrawals_total")
            challenge, session = self._signer.start(info.hash_parts())
            ticket_id = next(self._ticket_ids)
            ticket = _WithdrawalTicket(info=info, session=session, paid_by=payer)
            self._tickets[ticket_id] = ticket
            if self.journal is not None:
                self.journal.record_ticket(ticket_id, ticket)
        return ticket_id, challenge

    def complete_withdrawal(self, ticket_id: int, e: int) -> SignerResponse:
        """Step 3: answer the blinded challenge. Pure ``Z_q`` arithmetic.

        Raises:
            KeyError: unknown or already-completed ticket.
        """
        ticket = self._tickets.pop(ticket_id)
        if self.journal is not None:
            self.journal.drop_ticket(ticket_id)
        return self._signer.respond(ticket.session, e)

    # ------------------------------------------------------------------
    # Batched withdrawal (Algorithm 1, step 0: "Client can buy several
    # coins at a time (saving on communication cost), but the computation
    # below have to be performed independently for each coin to ensure
    # they are unlinkable.")
    # ------------------------------------------------------------------
    def begin_batch_withdrawal(
        self,
        infos: list[CoinInfo],
        paid_by: str | None = None,
        pool: "perf.CryptoPool | None" = None,
    ) -> tuple[int, list[SignerChallenge]]:
        """Open one ticket covering independent signing sessions per coin.

        One payment covers the whole batch; every coin still gets its own
        fresh signer nonces (independence is what makes the batch
        unlinkable). When the parallel engine is available, the per-coin
        step-1 work (3 ``Exp`` + 1 ``Hash`` each) fans out across pool
        workers; the secret session nonces come back to — and only ever
        live in — this process.

        Raises:
            ValueError: empty batch or unpublished list version.
        """
        if not infos:
            raise ValueError("cannot withdraw an empty batch")
        for info in infos:
            if info.list_version not in self.tables:
                raise ValueError(f"witness list version {info.list_version} not published")
        total = sum(info.denomination for info in infos)
        payer = paid_by if paid_by is not None else "anonymous-purchase"
        with self._journal_scope():
            if paid_by is None:
                self.ledger.mint(payer, total, memo="coin batch purchase")
            self.ledger.transfer(payer, self.account, total, memo="coin batch purchase")
            challenges: list[SignerChallenge] = []
            ticket_id = next(self._ticket_ids)
            batch: list[_WithdrawalTicket] = []
            pool = pool if pool is not None else perf.shared_pool()
            if pool is not None and pool.active() and len(infos) > 1:
                from repro.perf.parallel import replay_ops

                signed = pool.sign_withdrawals(
                    self.params,
                    self._signer.secret,
                    [info.hash_parts() for info in infos],
                    seed=self._draw_seed(),
                )
                for info, challenge_out in zip(infos, signed):
                    replay_ops(challenge_out.ops)
                    challenges.append(
                        SignerChallenge(a=challenge_out.a, b=challenge_out.b)
                    )
                    session = SignerSession(
                        u=challenge_out.u,
                        s=challenge_out.s,
                        d=challenge_out.d,
                        z=challenge_out.z,
                    )
                    batch.append(
                        _WithdrawalTicket(info=info, session=session, paid_by=payer)
                    )
            else:
                for info in infos:
                    challenge, session = self._signer.start(info.hash_parts())
                    challenges.append(challenge)
                    batch.append(
                        _WithdrawalTicket(info=info, session=session, paid_by=payer)
                    )
            self._batch_tickets[ticket_id] = batch
            if self.journal is not None:
                self.journal.record_batch(ticket_id, batch)
        return ticket_id, challenges

    def complete_batch_withdrawal(self, ticket_id: int, es: list[int]) -> list[SignerResponse]:
        """Answer every blinded challenge of a batch in one round.

        Raises:
            KeyError: unknown ticket.
            ValueError: challenge count does not match the batch.
        """
        batch = self._batch_tickets.pop(ticket_id)
        if len(es) != len(batch):
            self._batch_tickets[ticket_id] = batch
            raise ValueError(f"expected {len(batch)} challenges, got {len(es)}")
        responses = [
            self._signer.respond(ticket.session, e) for ticket, e in zip(batch, es)
        ]
        if self.journal is not None:
            self.journal.drop_batch(ticket_id)
        return responses

    # ------------------------------------------------------------------
    # Deposit (Algorithm 3)
    # ------------------------------------------------------------------
    def deposit(self, merchant_id: str, signed: SignedTranscript, now: int) -> DepositResult:
        """Clear a witness-signed payment transcript.

        Happy path costs 6 ``Exp`` + 4 ``Hash`` + 1 ``Ver`` (Table 1):
        secret-key coin verification (3 ``Exp``, 2 ``Hash``), witness
        digest (1 ``Hash``), transcript signature (1 ``Ver``), challenge
        (1 ``Hash``) and the representation check (3 ``Exp``).

        Raises:
            UnknownMerchantError: depositor or witness not registered.
            InvalidCoinError / ExpiredCoinError / WrongWitnessError /
            InvalidPaymentError: failed verification (step 1).
            DoubleDepositError: the same merchant re-deposited the coin.
        """
        self._verify_deposit_structure(merchant_id, signed, now)
        from repro.core.transcripts import verify_payment_response

        verify_payment_response(self.params, signed.transcript)
        return self._settle_deposit(merchant_id, signed, now)

    def deposit_batch(
        self,
        merchant_id: str,
        items: list[SignedTranscript],
        now: int,
        pool: "perf.CryptoPool | None" = None,
    ) -> list[DepositResult | EcashError]:
        """Clear many transcripts from one merchant in a single pipeline.

        With the perf engine on, the per-item representation checks
        ``A_i B_i^{d_i} == g1^{r1_i} g2^{r2_i}`` collapse into one
        small-random-exponent linear combination evaluated as a single
        multi-exponentiation (:func:`repro.perf.batch.verify_batch`); if
        the combined check fails, the broker falls back to per-item
        verification to name the culprits. Each item still records the
        same logical operations as an individual :meth:`deposit` (6
        ``Exp`` + 4 ``Hash`` + 1 ``Ver`` on the happy path), and with the
        engine off the method is exactly a loop over :meth:`deposit`.

        When the parallel engine is available (``pool`` given, or the
        shared :func:`repro.perf.shared_pool` on a multi-core host with
        ``REPRO_PARALLEL`` on), the verification work fans out across
        worker processes in chunks — identical checks, identical
        accept/reject outcomes and culprit naming, with each item's
        logical operations replayed into this process's counter.
        Settlement always happens here, sequentially in input order, so
        an in-batch repeat of the same coin behaves identically to two
        separate deposits.

        Returns:
            Per item, in order: a :class:`DepositResult`, or the
            :class:`~repro.core.exceptions.EcashError` that item raised.
        """
        items = list(items)
        obs.observe("perf_batch_deposit_size", len(items))
        results: list[DepositResult | EcashError | None] = [None] * len(items)
        if not perf.is_enabled():
            for index, signed in enumerate(items):
                try:
                    results[index] = self.deposit(merchant_id, signed, now)
                except EcashError as exc:
                    results[index] = exc
            return results  # type: ignore[return-value]

        pool = pool if pool is not None else perf.shared_pool()
        if pool is not None and pool.active() and len(items) > 1:
            outcomes = pool.run_deposit_checks(
                self.params,
                self._signer.secret,
                {m_id: acct.public_key for m_id, acct in self.merchants.items()},
                self.tables,
                merchant_id,
                items,
                now,
                seed=self._draw_seed(),
            )
            from repro.perf.parallel import replay_ops

            for index, outcome in enumerate(outcomes):
                replay_ops(outcome.ops)
                if outcome.error is not None:
                    results[index] = outcome.error
                    continue
                try:
                    results[index] = self._settle_deposit(merchant_id, items[index], now)
                except EcashError as exc:
                    results[index] = exc
            return results  # type: ignore[return-value]

        group = self.params.group
        claims = perf.ClaimSet()
        checked: list[tuple[int, SignedTranscript, perf.RepresentationCheck]] = []
        for index, signed in enumerate(items):
            try:
                self._verify_deposit_structure(merchant_id, signed, now, claims, index)
            except EcashError as exc:
                results[index] = exc
                continue
            transcript = signed.transcript
            d = transcript.challenge(self.params)
            # The representation check is 3 logical Exp per transcript
            # regardless of how the physical batch evaluates it.
            counters.record_exp(3)
            checked.append(
                (
                    index,
                    signed,
                    perf.RepresentationCheck(
                        commitment_a=transcript.coin.bare.commitment_a,
                        commitment_b=transcript.coin.bare.commitment_b,
                        challenge=d,
                        r1=transcript.response.r1,
                        r2=transcript.response.r2,
                    ),
                )
            )
        if checked and not perf.verify_batch(
            group.p, group.q, group.g1, group.g2, [c for _, _, c in checked], rng=self.rng
        ):
            # At least one bad (or non-subgroup) item: fall back to naive
            # per-item checks to identify it. Logical costs are already
            # recorded, so the rescue pass runs suppressed.
            from repro.crypto.representation import verify_response

            survivors: list[tuple[int, SignedTranscript, perf.RepresentationCheck]] = []
            for index, signed, check in checked:
                with counters.suppressed():
                    valid = verify_response(
                        group,
                        check.commitment_a,
                        check.commitment_b,
                        check.challenge,
                        signed.transcript.response,
                    )
                if valid:
                    survivors.append((index, signed, check))
                else:
                    results[index] = InvalidPaymentError(
                        "representation proof A*B^d == g1^r1*g2^r2 failed"
                    )
            checked = survivors
        # Certify the batch's fast-path signature recoveries (coin and
        # witness-signature stages) in one combined equation before any
        # money moves. A definitively-bad token overrides whatever the
        # glitched fast path concluded — mapped back to the exception the
        # naive path would have raised at that (earlier) protocol stage.
        corrected = _earliest_claim_failures(claims.certify(group.p, group.q, self.rng))
        if corrected:
            for index, stage in corrected.items():
                results[index] = _DEPOSIT_STAGE_ERRORS[stage]()
            checked = [entry for entry in checked if entry[0] not in corrected]
        for index, signed, _ in checked:
            try:
                results[index] = self._settle_deposit(merchant_id, signed, now)
            except EcashError as exc:
                results[index] = exc
        return results  # type: ignore[return-value]

    def _verify_deposit_structure(
        self,
        merchant_id: str,
        signed: SignedTranscript,
        now: int,
        claims: "perf.ClaimSet | None" = None,
        index: int | None = None,
    ) -> None:
        """Algorithm 3 step 1 minus the representation check.

        Raises the same exceptions, in the same order, as the front half
        of :meth:`deposit` always has; shared by the single and batched
        pipelines. Batched callers pass a claim set and the item's batch
        ``index``: the coin-signature and witness-signature fast paths
        then register their recovery claims under ``(index, stage)``
        tokens for combined certification after the whole batch is
        structurally checked.
        """
        self._require_merchant(merchant_id)
        transcript = signed.transcript
        coin = transcript.coin
        if transcript.merchant_id != merchant_id:
            raise InvalidPaymentError("transcript names a different depositing merchant")
        if claims is not None and perf.is_enabled():
            coin_ok, recovered = self._signer.check_with_secret(
                coin.info.hash_parts(), coin.bare.message_parts(), coin.bare.signature
            )
            if coin_ok and recovered:
                claims.add(
                    (index, "coin"),
                    recovered,
                    lambda: self._signer.verify_with_secret(
                        coin.info.hash_parts(),
                        coin.bare.message_parts(),
                        coin.bare.signature,
                    ),
                )
        else:
            coin_ok = self._signer.verify_with_secret(
                coin.info.hash_parts(), coin.bare.message_parts(), coin.bare.signature
            )
        if not coin_ok:
            raise InvalidCoinError("broker signature on deposited coin failed to verify")
        if not coin.info.is_spendable(now):
            raise ExpiredCoinError("coin is past its soft expiry and no longer cashable")
        self._check_witness_assignment(coin)
        witness = self._require_merchant(coin.witness_id)
        if not signed.verify_witness_signature(
            self.params, witness.public_key, claims, (index, "wsig")
        ):
            raise InvalidPaymentError("witness signature on transcript failed to verify")

    def _settle_deposit(
        self, merchant_id: str, signed: SignedTranscript, now: int
    ) -> DepositResult:
        """Algorithm 3 step 2: dedup against the transcript database and pay.

        The whole settlement is one :meth:`_journal_scope`: the ledger
        credit, the deposit (or fault) record and the witness counters
        share one commit marker, so a crash at any instant recovers to
        either the full settlement or none of it — never a credited
        merchant account with no memory of the coin (the state a
        retrying merchant could turn into a double credit).
        """
        coin = signed.transcript.coin
        witness = self._require_merchant(coin.witness_id)
        previous = self._deposits.get(coin.bare)
        with self._journal_scope():
            if previous is None:
                record = _DepositRecord(signed=signed, deposited_at=now)
                self._deposits[coin.bare] = record
                witness.coins_witnessed += 1
                self._credit(merchant_id, coin.denomination, source=self.account)
                if self.journal is not None:
                    self.journal.record_deposit(coin.bare, record)
                    self.journal.record_merchant(witness)
                obs.counter_inc(
                    "broker_deposits_total", outcome=DepositOutcome.CREDITED.value
                )
                return DepositResult(
                    outcome=DepositOutcome.CREDITED, amount=coin.denomination
                )
            if previous.signed.transcript.merchant_id == merchant_id:
                obs.counter_inc("broker_double_deposits_refused_total")
                raise DoubleDepositError(
                    f"merchant {merchant_id!r} already deposited this coin"
                )
            # Case 2-b: a second merchant deposits the same coin — both hold
            # witness signatures, so the witness signed twice. The second
            # merchant is still paid, from the witness's security deposit.
            witness.incidents += 1
            obs.counter_inc("witness_faults_detected_total")
            obs.counter_inc(
                "broker_deposits_total",
                outcome=DepositOutcome.CREDITED_FROM_WITNESS_DEPOSIT.value,
            )
            proof = (previous.signed, signed)
            self.witness_fault_log.append((coin.witness_id, *proof))
            self._credit(
                merchant_id, coin.denomination, source=self._escrow_account(coin.witness_id)
            )
            if self.journal is not None:
                self.journal.record_merchant(witness)
                self.journal.record_fault(
                    len(self.witness_fault_log) - 1, self.witness_fault_log[-1]
                )
            return DepositResult(
                outcome=DepositOutcome.CREDITED_FROM_WITNESS_DEPOSIT,
                amount=coin.denomination,
                witness_fault_proof=proof,
            )

    # ------------------------------------------------------------------
    # Renewal (Algorithm 4, broker side)
    # ------------------------------------------------------------------
    def begin_renewal(self, new_info: CoinInfo) -> tuple[int, SignerChallenge]:
        """Step 1: agree on the new coin and send ``(a, b)``.

        Identical crypto to withdrawal's step 1 (3 ``Exp`` + 1 ``Hash``)
        but no payment: the old coin *is* the payment.

        Raises:
            ValueError: unpublished witness list version.
        """
        if new_info.list_version not in self.tables:
            raise ValueError(f"witness list version {new_info.list_version} not published")
        with self._journal_scope():
            challenge, session = self._signer.start(new_info.hash_parts())
            ticket_id = next(self._ticket_ids)
            ticket = _WithdrawalTicket(info=new_info, session=session, paid_by=None)
            self._tickets[ticket_id] = ticket
            if self.journal is not None:
                self.journal.record_ticket(ticket_id, ticket)
        return ticket_id, challenge

    def complete_renewal(
        self,
        ticket_id: int,
        e: int,
        old_bare: BareCoin,
        proof_timestamp: int,
        proof_salt: int,
        r1_star: int,
        r2_star: int,
        now: int,
    ) -> SignerResponse:
        """Step 3: verify the old coin and ownership proof, then sign.

        Costs 6 ``Exp`` + 3 ``Hash`` here, 9 ``Exp`` + 4 ``Hash`` for the
        whole renewal including :meth:`begin_renewal` — the broker's
        renewal row of Table 1.

        Raises:
            KeyError: unknown ticket.
            InvalidCoinError / ExpiredCoinError / InvalidPaymentError:
                failed verification of the old coin or proof.
            RenewalRefusedError: the old coin was already deposited or
                renewed; carries the extracted representations.
            ValueError: denomination mismatch between old and new coin.
        """
        ticket = self._tickets.pop(ticket_id)
        if ticket.info.denomination != old_bare.info.denomination:
            self._tickets[ticket_id] = ticket
            raise ValueError("new coin denomination must match the renewed coin")
        if not self._signer.verify_with_secret(
            old_bare.info.hash_parts(), old_bare.message_parts(), old_bare.signature
        ):
            self._tickets[ticket_id] = ticket
            raise InvalidCoinError("broker signature on old coin failed to verify")
        if old_bare.info.is_void(now):
            self._tickets[ticket_id] = ticket
            raise ExpiredCoinError("old coin is past its hard expiry and void")
        if not (proof_timestamp <= now <= proof_timestamp + 300):
            self._tickets[ticket_id] = ticket
            raise InvalidPaymentError("renewal proof timestamp outside the accepted window")
        d_star = self.params.hashes.H0(
            *_bare_renewal_parts(old_bare), "renewal", proof_timestamp, proof_salt
        )
        response = RepresentationResponse(r1=r1_star, r2=r2_star)
        from repro.crypto.representation import verify_response

        if not verify_response(
            self.params.group, old_bare.commitment_a, old_bare.commitment_b, d_star, response
        ):
            self._tickets[ticket_id] = ticket
            raise InvalidPaymentError("ownership proof on old coin failed to verify")

        refusal = self._find_prior_use(old_bare, d_star, response)
        if refusal is not None:
            if self.journal is not None:
                self.journal.drop_ticket(ticket_id)
            obs.counter_inc("broker_renewals_refused_total")
            raise RenewalRefusedError(refusal)
        obs.counter_inc("broker_renewals_total")

        record = _RenewalRecord(
            bare=old_bare, challenge=d_star, response=response, renewed_at=now
        )
        with self._journal_scope():
            self._renewals[old_bare] = record
            if self.journal is not None:
                self.journal.record_renewal(record)
                self.journal.drop_ticket(ticket_id)
        return self._signer.respond(ticket.session, e)

    def _find_prior_use(
        self, old_bare: BareCoin, d_star: int, response: RepresentationResponse
    ) -> DoubleSpendProof | None:
        """Extract secrets if the old coin was already deposited or renewed."""
        prior: tuple[int, RepresentationResponse] | None = None
        deposit = self._deposits.get(old_bare)
        if deposit is not None:
            transcript = deposit.signed.transcript
            prior = (transcript.challenge(self.params), transcript.response)
        else:
            renewal = self._renewals.get(old_bare)
            if renewal is not None:
                prior = (renewal.challenge, renewal.response)
        if prior is None:
            return None
        secrets = extract_representations(
            prior[0], prior[1], d_star, response, self.params.group.q
        )
        return DoubleSpendProof.from_secrets(old_bare.digest(self.params), secrets)

    # ------------------------------------------------------------------
    # Housekeeping
    # ------------------------------------------------------------------
    def purge_expired_records(self, now: int) -> int:
        """Drop transcript records for coins past their hard expiry.

        Algorithm 3 stores transcripts "until the coins become uncashable";
        renewal transcripts likewise live until the old coin's second
        expiration date.

        Returns:
            Number of records removed.
        """
        removed = 0
        with self._journal_scope():
            for space, store in (
                ("deposits", self._deposits),
                ("renewals", self._renewals),
            ):
                stale = [bare for bare in store if bare.info.is_void(now)]
                for bare in stale:
                    del store[bare]
                    if self.journal is not None:
                        self.journal.drop_record(space, bare)
                    removed += 1
        return removed

    def merchant_balance(self, merchant_id: str) -> int:
        """Ledger balance of a merchant's revenue account."""
        return self.ledger.balance(f"revenue:{merchant_id}")

    def security_deposit_balance(self, merchant_id: str) -> int:
        """Remaining security deposit of a merchant."""
        return self.ledger.balance(self._escrow_account(merchant_id))

    def witness_performance(self) -> dict[str, float]:
        """Signed-coin counts per witness, usable as next-version weights."""
        return {
            merchant_id: float(account.coins_witnessed + 1)
            for merchant_id, account in self.merchants.items()
        }

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def verify_range_signature(self, entry_parts: tuple[object, ...], signature) -> bool:
        """Expose plain-signature verification (used by the arbiter)."""
        return schnorr_verify(self.params.group, self.sign_public, signature, *entry_parts)

    def _check_witness_assignment(self, coin: Coin) -> None:
        """Check the coin's witness against the broker's own table.

        The broker trusts its own records, so this is one ``Hash`` (the
        digest) and table lookups — no signature verification.

        Raises:
            WrongWitnessError: stale version or wrong witness/range.
        """
        table = self.tables.get(coin.info.list_version)
        if table is None:
            raise WrongWitnessError(
                f"coin references unknown witness list v{coin.info.list_version}"
            )
        digest = coin.digest(self.params)
        expected = table.witness_for(digest)
        if expected.merchant_id != coin.witness_id or expected.range != coin.witness_entry.range:
            raise WrongWitnessError("coin's attached witness entry does not match the table")

    def _draw_seed(self) -> int:
        """64-bit seed for a pooled batch — deterministic under a seeded RNG."""
        if self.rng is not None:
            return self.rng.getrandbits(64)
        return secrets.randbits(64)

    def _credit(self, merchant_id: str, amount: int, source: str) -> None:
        self.ledger.transfer(source, f"revenue:{merchant_id}", amount, memo="coin deposit")

    def _require_merchant(self, merchant_id: str) -> MerchantAccount:
        account = self.merchants.get(merchant_id)
        if account is None:
            raise UnknownMerchantError(f"merchant {merchant_id!r} is not registered")
        return account

    @staticmethod
    def _escrow_account(merchant_id: str) -> str:
        return f"deposit:{merchant_id}"


def _bare_renewal_parts(bare: BareCoin) -> tuple[object, ...]:
    """Hash parts for the renewal challenge over the *bare* coin.

    Renewal (Algorithm 4) exchanges the bare coin; the witness entry is
    irrelevant to the broker, so the challenge binds the bare coin only.
    """
    return bare.hash_parts()


__all__ = [
    "Broker",
    "DepositOutcome",
    "DepositResult",
    "MerchantAccount",
]
