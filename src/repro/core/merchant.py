"""The merchant role: accept payments, verify everything, deposit later.

Step 3 of the payment protocol is the merchant's big verification moment:
broker signature on the coin, witness assignment, witness commitment
(binding via the nonce), and the representation NIZK. Only then does it
forward the transcript to the witness; only with the witness's signature in
hand does it deliver the service; and the signed transcript is what it
later cashes at the broker (Algorithm 3).
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass, field

from repro import obs, perf
from repro.core.coin import Coin
from repro.core.exceptions import (
    DoubleSpendError,
    EcashError,
    InvalidCoinError,
    InvalidPaymentError,
)
from repro.core.params import SystemParams
from repro.core.transcripts import (
    DoubleSpendProof,
    PaymentTranscript,
    SignedTranscript,
    WitnessCommitment,
    verify_commitment_binding,
    verify_payment_response,
)
from repro.core.witness_ranges import verify_entry_matches
from repro.crypto.schnorr import SchnorrKeyPair


@dataclass(frozen=True)
class PaymentRequest:
    """Everything the client hands the merchant in step 3."""

    transcript: PaymentTranscript
    commitment: WitnessCommitment


@dataclass
class Merchant:
    """One storefront merchant.

    Args:
        params: system parameters.
        merchant_id: this merchant's identifier ``I_M``.
        keypair: Schnorr key pair registered with the broker.
        broker_blind_public: the broker's blind-signature key ``y`` (coin
            verification).
        broker_sign_public: the broker's plain signature key (witness-range
            verification).
        witness_keys: directory mapping merchant ids to their public keys;
            in deployment this comes from the broker's signed merchant
            list, here it is filled in at registration time.
    """

    params: SystemParams
    merchant_id: str
    keypair: SchnorrKeyPair
    broker_blind_public: int
    broker_sign_public: int
    witness_keys: dict[str, int] = field(default_factory=dict)
    rng: random.Random | None = None
    accepted: list[SignedTranscript] = field(default_factory=list)
    deposited: list[SignedTranscript] = field(default_factory=list)
    refused_double_spends: list[DoubleSpendProof] = field(default_factory=list)
    _seen_bare_coins: set[object] = field(default_factory=set)

    @property
    def public_key(self) -> int:
        """The merchant's signature-verification key."""
        return self.keypair.public

    def verify_payment_request(self, request: PaymentRequest, now: int) -> None:
        """Run every local check of step 3 before involving the witness.

        Cost: 7 ``Exp`` + 6 ``Hash`` + 2 ``Ver`` (coin signature 4 ``Exp``
        2 ``Hash``; witness assignment 1 ``Hash`` 1 ``Ver``; commitment
        binding 2 ``Hash`` 1 ``Ver``; NIZK 1 ``Hash`` 3 ``Exp``) — together
        with :meth:`accept_signed_transcript`'s 1 ``Ver`` this is the
        merchant's payment row of Table 1.

        Raises:
            InvalidCoinError, ExpiredCoinError, WrongWitnessError,
            CommitmentError, InvalidPaymentError: per failed check.
        """
        transcript = request.transcript
        coin = transcript.coin
        if transcript.merchant_id != self.merchant_id:
            raise InvalidPaymentError("payment transcript names a different merchant")
        coin.ensure_valid_signature(self.params, self.broker_blind_public)
        coin.ensure_spendable(now)
        digest = coin.digest(self.params)
        verify_entry_matches(
            self.params,
            self.broker_sign_public,
            coin.witness_entry,
            digest,
            coin.info.list_version,
        )
        witness_public = self._witness_public(coin)
        verify_commitment_binding(
            self.params,
            request.commitment,
            coin,
            transcript.salt,
            self.merchant_id,
            witness_public,
            now,
        )
        verify_payment_response(self.params, transcript)
        if coin.bare in self._seen_bare_coins:
            raise InvalidPaymentError("merchant already accepted a payment with this coin")
        obs.counter_inc("merchant_payments_verified_total")

    def accept_signed_transcript(self, signed: SignedTranscript, now: int) -> None:
        """Verify the witness's signature (1 ``Ver``) and store for deposit.

        Raises:
            InvalidPaymentError: bad witness signature.
        """
        witness_public = self._witness_public(signed.transcript.coin)
        if not signed.verify_witness_signature(self.params, witness_public):
            raise InvalidPaymentError("witness signature on transcript failed to verify")
        self.accepted.append(signed)
        self._seen_bare_coins.add(signed.transcript.coin.bare)

    def handle_double_spend_proof(self, proof: DoubleSpendProof, coin: Coin) -> None:
        """Validate a double-spend refusal from the witness.

        Verifying the revealed representation(s) against ``A``/``B`` costs
        the two extra exponentiations the paper reports for the
        double-spend case (and the merchant skips the transcript ``Ver``).

        Raises:
            InvalidPaymentError: the proof does not actually open the
                coin's commitments — the witness refused without evidence,
                which is itself an arbitrable protocol violation.
        """
        if not proof.verify(self.params, coin):
            raise InvalidPaymentError("witness returned an invalid double-spend proof")
        self.refused_double_spends.append(proof)
        obs.counter_inc("merchant_double_spend_refusals_total")
        raise DoubleSpendError(proof)

    def verify_payment_bulk(
        self,
        items: list[SignedTranscript],
        now: int,
        pool: "perf.CryptoPool | None" = None,
    ) -> list[EcashError | None]:
        """Audit-grade public verification of many signed transcripts.

        Per item: broker signature on the coin (4 ``Exp`` 2 ``Hash``),
        spendability, witness-range entry (1 ``Hash`` 1 ``Ver``), witness
        signature on the transcript (1 ``Ver``) and the representation
        NIZK (1 ``Hash`` + 3 ``Exp``). Unlike
        :meth:`verify_payment_request` this does not bind the transcripts
        to *this* merchant — it is the bulk re-check a depositor, auditor
        or arbiter runs over a pile of third-party transcripts.

        With the perf engine on, the NIZKs collapse into BGR batch
        equations (per pool chunk when the parallel engine fans out, one
        batch otherwise) with exact per-item fallback naming culprits;
        accept/reject outcomes and logical-op accounting are identical on
        every path.

        Returns:
            Per item, in order: ``None`` on success, else the
            :class:`~repro.core.exceptions.EcashError` it raised.
        """
        items = list(items)
        results: list[EcashError | None] = [None] * len(items)
        if not perf.is_enabled():
            from repro.core.transcripts import verify_payment_response

            for index, signed in enumerate(items):
                try:
                    self._verify_transcript_structure(signed, now)
                    verify_payment_response(self.params, signed.transcript)
                except EcashError as exc:
                    results[index] = exc
            return results

        pool = pool if pool is not None else perf.shared_pool()
        if pool is not None and pool.active() and len(items) > 1:
            from repro.perf.parallel import replay_ops

            outcomes = pool.run_payment_checks(
                self.params,
                self.broker_blind_public,
                self.broker_sign_public,
                dict(self.witness_keys),
                items,
                now,
                seed=self._draw_seed(),
            )
            for index, outcome in enumerate(outcomes):
                replay_ops(outcome.ops)
                results[index] = outcome.error
            return results

        from repro.crypto import counters
        from repro.crypto.representation import verify_response

        group = self.params.group
        claims = perf.ClaimSet()
        checked: list[tuple[int, SignedTranscript, perf.RepresentationCheck]] = []
        for index, signed in enumerate(items):
            try:
                self._verify_transcript_structure(signed, now, claims, index)
            except EcashError as exc:
                results[index] = exc
                continue
            transcript = signed.transcript
            d = transcript.challenge(self.params)
            counters.record_exp(3)
            checked.append(
                (
                    index,
                    signed,
                    perf.RepresentationCheck(
                        commitment_a=transcript.coin.bare.commitment_a,
                        commitment_b=transcript.coin.bare.commitment_b,
                        challenge=d,
                        r1=transcript.response.r1,
                        r2=transcript.response.r2,
                    ),
                )
            )
        if checked and not perf.verify_batch(
            group.p, group.q, group.g1, group.g2, [c for _, _, c in checked], rng=self.rng
        ):
            for index, signed, check in checked:
                with counters.suppressed():
                    valid = verify_response(
                        group,
                        check.commitment_a,
                        check.commitment_b,
                        check.challenge,
                        signed.transcript.response,
                    )
                if not valid:
                    results[index] = InvalidPaymentError(
                        "representation proof A*B^d == g1^r1*g2^r2 failed"
                    )
        # Certify every fast-path signature recovery in one combined
        # equation; a definitively-bad token overrides the glitched fast
        # path's verdict with the exception the naive path would have
        # raised at that (earlier) stage.
        stage_order = {"coin": 0, "wsig": 1}
        worst: dict[int, str] = {}
        for token in claims.certify(group.p, group.q, self.rng):
            index, stage = token  # type: ignore[misc]
            if index not in worst or stage_order[stage] < stage_order[worst[index]]:
                worst[index] = stage
        for index, stage in worst.items():
            if stage == "coin":
                results[index] = InvalidCoinError(
                    "broker's partially blind signature failed to verify"
                )
            else:
                results[index] = InvalidPaymentError(
                    "witness signature on transcript failed to verify"
                )
        return results

    def _verify_transcript_structure(
        self,
        signed: SignedTranscript,
        now: int,
        claims: "perf.ClaimSet | None" = None,
        index: int | None = None,
    ) -> None:
        """The non-NIZK checks of :meth:`verify_payment_bulk` for one item.

        Mirrors the per-item half of the parallel engine's payment chunk
        (:func:`repro.perf.parallel.run_payment_chunk`) — same checks,
        same order, same exceptions — so serial and pooled bulk
        verification agree item for item. Bulk callers thread a claim set
        through so the coin- and witness-signature fast paths register
        their recovery claims under ``(index, stage)`` tokens.

        Raises:
            InvalidCoinError, ExpiredCoinError, WrongWitnessError,
            InvalidPaymentError: per failed check.
        """
        transcript = signed.transcript
        coin = transcript.coin
        coin.ensure_valid_signature(
            self.params, self.broker_blind_public, claims, (index, "coin")
        )
        coin.ensure_spendable(now)
        verify_entry_matches(
            self.params,
            self.broker_sign_public,
            coin.witness_entry,
            coin.digest(self.params),
            coin.info.list_version,
        )
        witness_public = self.witness_keys.get(coin.witness_id)
        if witness_public is None:
            raise InvalidPaymentError(
                f"no verification key for witness {coin.witness_id!r}"
            )
        if not signed.verify_witness_signature(
            self.params, witness_public, claims, (index, "wsig")
        ):
            raise InvalidPaymentError(
                "witness signature on transcript failed to verify"
            )

    def _draw_seed(self) -> int:
        """64-bit seed for a pooled batch — deterministic under a seeded RNG."""
        if self.rng is not None:
            return self.rng.getrandbits(64)
        return secrets.randbits(64)

    def pending_deposits(self) -> list[SignedTranscript]:
        """Signed transcripts accepted but not yet deposited."""
        return [signed for signed in self.accepted if signed not in self.deposited]

    def mark_deposited(self, signed: SignedTranscript) -> None:
        """Record a successful deposit."""
        self.deposited.append(signed)

    def _witness_public(self, coin: Coin) -> int:
        """Look up the public key of the coin's witness.

        Raises:
            InvalidPaymentError: unknown witness (not in the merchant
                directory).
        """
        try:
            return self.witness_keys[coin.witness_id]
        except KeyError:
            raise InvalidPaymentError(
                f"unknown witness merchant {coin.witness_id!r}"
            ) from None


__all__ = ["Merchant", "PaymentRequest"]
