"""In-memory protocol orchestration.

These functions run the paper's four protocols (Algorithms 1-4) between
party objects by direct method calls — no network. They are the reference
execution used by the unit/integration tests and by the Table 1 operation
counting harness; :mod:`repro.net.services` re-runs the same party steps
over the discrete-event network for the latency experiments.
"""

from __future__ import annotations

from repro import obs
from repro.core.broker import Broker, DepositResult
from repro.core.client import Client, StoredCoin
from repro.core.exceptions import DoubleSpendError
from repro.core.info import CoinInfo
from repro.core.merchant import Merchant, PaymentRequest
from repro.core.transcripts import SignedTranscript
from repro.core.witness import WitnessService


def run_withdrawal(
    client: Client,
    broker: Broker,
    info: CoinInfo,
    paid_by: str | None = None,
) -> StoredCoin:
    """Algorithm 1: withdraw one coin.

    Two message rounds: (client pays, broker sends ``a, b``) and (client
    sends ``e``, broker sends ``r, c, s``); the client then attaches the
    witness entry locally.

    Returns:
        The stored coin (also added to the client's wallet).
    """
    with obs.span("protocol.withdrawal"):
        obs.counter_inc("protocol_runs_total", protocol="withdrawal")
        ticket_id, challenge = broker.begin_withdrawal(info, paid_by=paid_by)
        session = client.begin_withdrawal(info, challenge)
        response = broker.complete_withdrawal(ticket_id, session.e)
        return client.finish_withdrawal(session, response, broker.tables[info.list_version])


def run_batch_withdrawal(
    client: Client,
    broker: Broker,
    infos: list[CoinInfo],
    paid_by: str | None = None,
) -> list[StoredCoin]:
    """Algorithm 1, batched: withdraw several coins in two rounds total.

    The paper's step 0: buying several coins at once saves communication,
    while each coin's blinding runs independently so the batch stays
    unlinkable.

    Returns:
        The stored coins, in ``infos`` order.
    """
    with obs.span("protocol.batch_withdrawal", coins=len(infos)):
        obs.counter_inc("protocol_runs_total", protocol="batch_withdrawal")
        ticket_id, challenges = broker.begin_batch_withdrawal(infos, paid_by=paid_by)
        sessions = [
            client.begin_withdrawal(info, challenge)
            for info, challenge in zip(infos, challenges)
        ]
        responses = broker.complete_batch_withdrawal(
            ticket_id, [session.e for session in sessions]
        )
        return [
            client.finish_withdrawal(session, response, broker.tables[info.list_version])
            for info, session, response in zip(infos, sessions, responses)
        ]


def run_payment(
    client: Client,
    stored: StoredCoin,
    merchant: Merchant,
    witness: WitnessService,
    now: int,
) -> SignedTranscript:
    """Algorithm 2: spend ``stored`` at ``merchant`` with ``witness``.

    Three message rounds: commitment (client <-> witness), payment
    (client -> merchant) and transcript signing (merchant <-> witness).

    Raises:
        DoubleSpendError: the witness proved the coin already spent; the
            merchant validated the proof before refusing (step 6).
        CommitmentError / InvalidPaymentError / ...: per failed check.
    """
    with obs.span("protocol.payment", merchant=merchant.merchant_id):
        obs.counter_inc("protocol_runs_total", protocol="payment")
        request, pending = client.prepare_commitment_request(stored, merchant.merchant_id, now)
        with obs.span("protocol.payment.commitment"):
            commitment = witness.request_commitment(request, now)
        transcript = client.build_payment(pending, commitment, witness.public_key, now)
        payment = PaymentRequest(transcript=transcript, commitment=commitment)
        merchant.verify_payment_request(payment, now)
        try:
            with obs.span("protocol.payment.witness_sign"):
                signed = witness.sign_transcript(transcript, now)
        except DoubleSpendError as refusal:
            # Step 6: the merchant validates the extraction before refusing the
            # client, so a lazy witness cannot fabricate refusals.
            merchant.handle_double_spend_proof(refusal.proof, transcript.coin)
            raise  # pragma: no cover - handle_double_spend_proof always raises
        merchant.accept_signed_transcript(signed, now)
        client.mark_spent(stored)
        return signed


def run_purchase(
    client: Client,
    amount: int,
    merchant: Merchant,
    witnesses: dict[str, WitnessService],
    now: int,
) -> list[SignedTranscript]:
    """Pay an arbitrary amount with multiple coins from the wallet.

    Coins are indivisible (divisible e-cash is the paper's future work),
    so a 60-cent purchase with 25/25/5/5-cent coins is four single-coin
    payment protocol runs. Selection picks an exact subset
    (:meth:`Wallet.select_coins`); each coin's own witness co-operates.

    Args:
        witnesses: witness service per merchant id (each selected coin may
            have a different witness).

    Raises:
        ValueError: the wallet cannot pay the amount exactly.
        KeyError: a selected coin's witness is not in ``witnesses``.
    """
    with obs.span("protocol.purchase", amount=amount):
        obs.counter_inc("protocol_runs_total", protocol="purchase")
        selected = client.wallet.select_coins(amount, now)
        signed: list[SignedTranscript] = []
        for stored in selected:
            witness = witnesses[stored.coin.witness_id]
            signed.append(run_payment(client, stored, merchant, witness, now))
        return signed


def run_deposit(merchant: Merchant, broker: Broker, now: int) -> list[DepositResult]:
    """Algorithm 3: deposit every pending signed transcript.

    One message round per transcript (merchant -> broker).
    """
    with obs.span("protocol.deposit", merchant=merchant.merchant_id):
        obs.counter_inc("protocol_runs_total", protocol="deposit")
        results = []
        for signed in merchant.pending_deposits():
            result = broker.deposit(merchant.merchant_id, signed, now)
            merchant.mark_deposited(signed)
            results.append(result)
        return results


def run_renewal(
    client: Client,
    stored: StoredCoin,
    broker: Broker,
    new_info: CoinInfo,
    now: int,
) -> StoredCoin:
    """Algorithm 4: exchange an old coin for a fresh one.

    Two message rounds, mirroring withdrawal, with the ownership proof on
    the old bare coin piggy-backed on the client's second message.

    Raises:
        RenewalRefusedError: the coin was already cashed or renewed.
    """
    with obs.span("protocol.renewal"):
        obs.counter_inc("protocol_runs_total", protocol="renewal")
        ticket_id, challenge = broker.begin_renewal(new_info)
        session = client.begin_withdrawal(new_info, challenge)
        proof_timestamp, proof_salt, r1_star, r2_star = client.renewal_proof(stored, now)
        response = broker.complete_renewal(
            ticket_id,
            session.e,
            stored.coin.bare,
            proof_timestamp,
            proof_salt,
            r1_star,
            r2_star,
            now,
        )
        fresh = client.finish_withdrawal(
            session, response, broker.tables[new_info.list_version]
        )
        client.mark_spent(stored)
        return fresh


__all__ = [
    "run_withdrawal",
    "run_batch_withdrawal",
    "run_payment",
    "run_purchase",
    "run_deposit",
    "run_renewal",
]
