"""Error taxonomy for the e-cash protocols.

Every protocol-level rejection raises a distinct exception type so callers
(and tests) can tell *why* a payment, deposit or renewal was refused. The
double-spend and renewal refusals carry the extracted coin secrets, because
in the paper those secrets *are* the publicly verifiable proof.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.core.transcripts import DoubleSpendProof


class EcashError(Exception):
    """Base class for all protocol errors."""


class InvalidCoinError(EcashError):
    """The broker's partially blind signature on the coin does not verify."""


class ExpiredCoinError(EcashError):
    """The coin is past its soft (unspendable) or hard (void) expiration."""


class WrongWitnessError(EcashError):
    """The coin's attached witness assignment is inconsistent.

    Raised when ``h(bare coin)`` does not fall in the attached signed range,
    the range signature is bad, the list version differs from the coin's
    ``info``, or the contacted witness is not the assigned one.
    """


class CommitmentError(EcashError):
    """A witness commitment is missing, expired, malformed or mis-bound."""


class CommitmentOutstandingError(CommitmentError):
    """The witness already has an unexpired commitment out for this coin.

    Step 2 of the payment protocol: *"The witness must not issue new
    commitments on this coin_hash until this commitment expires."*
    """


class InvalidPaymentError(EcashError):
    """The payment transcript fails verification (NIZK, nonce, binding...)."""


class DoubleSpendError(EcashError):
    """The coin was already spent; carries the extraction-based proof."""

    def __init__(self, proof: "DoubleSpendProof") -> None:
        super().__init__("coin already spent: double-spend proof attached")
        self.proof = proof


class DoubleDepositError(EcashError):
    """The same merchant deposited the same coin twice (Alg. 3 case 2-b)."""


class UnknownMerchantError(EcashError):
    """The merchant is not registered with the broker."""


class InsufficientFundsError(EcashError):
    """A ledger account cannot cover the requested amount."""


class RenewalRefusedError(EcashError):
    """Renewal refused: the coin was already cashed or renewed.

    Carries the extracted representations, as Algorithm 4 step 3 returns
    them to the client with the refusal.
    """

    def __init__(self, proof: "DoubleSpendProof") -> None:
        super().__init__("coin already cashed or renewed")
        self.proof = proof


class ProtocolViolationError(EcashError):
    """A party deviated from the protocol in a provable way."""


class ServiceUnavailableError(EcashError):
    """A remote party is offline or timed out (network layer)."""


class ChordLookupError(ServiceUnavailableError):
    """A Chord lookup could not reach a live owner for the key.

    Raised when the ring has no live node to route to (or, defensively,
    when iterative routing fails to converge) — the DHT-availability
    failure mode the paper's Section 2 baselines suffer from.
    """
