"""Payment-protocol messages: commitments, transcripts and proofs.

These are the objects exchanged in Algorithm 2 (payment), carried into
Algorithm 3 (deposit) and handed to the arbiter in disputes. The module
also hosts the verification helpers shared by merchant, witness, broker and
arbiter, structured so that each helper is self-contained — which is
exactly how the per-party hash counts of Table 1 come out.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import perf
from repro.core.coin import Coin
from repro.core.exceptions import CommitmentError, InvalidPaymentError
from repro.core.params import SystemParams
from repro.crypto.hashing import HashInput, constant_time_eq
from repro.crypto.representation import (
    Representation,
    RepresentationPair,
    RepresentationResponse,
    verify_response,
)
from repro.crypto.schnorr import (
    SchnorrSignature,
    check as schnorr_check,
    verify as schnorr_verify,
)
from repro.crypto.serialize import text_to_int


def payment_nonce(params: SystemParams, salt: int, merchant_id: str) -> int:
    """``nonce = h(salt_C || I_M)`` — binds a commitment to one merchant."""
    return params.hashes.h("nonce", salt, merchant_id)


@dataclass(frozen=True)
class CommitmentRequest:
    """Step 1 of the payment protocol: ``(coin_hash, nonce)``.

    The witness learns *which* coin is about to be spent but not *where*:
    the merchant identity is hidden inside the nonce until the client
    reveals ``salt_C``.
    """

    coin_hash: int
    nonce: int

    def to_wire(self) -> dict[str, object]:
        """Serialize for URI transfer."""
        return {"coin_hash": self.coin_hash, "nonce": self.nonce}

    @classmethod
    def from_wire(cls, fields: dict[str, str]) -> "CommitmentRequest":
        """Parse URI fields."""
        return cls(coin_hash=text_to_int(fields["coin_hash"]), nonce=text_to_int(fields["nonce"]))


@dataclass(frozen=True)
class WitnessCommitment:
    """Step 2: ``Sig_{M_C}(coin_hash, nonce, h(v), t_e, commit)``.

    ``v`` is the witness's committed evidence: a random value if the coin is
    fresh, or the prior (salted) transcript / extracted secrets if it was
    already spent. Only ``h(v)`` is revealed here; a merchant suspecting a
    race can demand ``v`` itself (see
    :meth:`repro.core.witness.WitnessService.reveal_commitment_value`).
    """

    witness_id: str
    coin_hash: int
    nonce: int
    v_hash: int
    expires_at: int
    signature: SchnorrSignature

    def signed_parts(self) -> tuple[HashInput, ...]:
        """The message tuple the witness signs."""
        return (
            "commit",
            self.witness_id,
            self.coin_hash,
            self.nonce,
            self.v_hash,
            self.expires_at,
        )

    def verify(
        self,
        params: SystemParams,
        witness_public: int,
        claims: "perf.ClaimSet | None" = None,
        token: object = None,
    ) -> bool:
        """Verify the witness's signature (one ``Ver``).

        Memoized — the merchant checks the commitment in step 3 and the
        broker re-checks it in disputes; a cache hit replays the ``Ver``.

        Bulk callers pass a :class:`~repro.perf.batch.ClaimSet` and a
        ``token``: a cache *miss* then registers the fast-path recovery
        claim for combined certification, with a recheck that repairs the
        memo entry should the fast path have glitched. Verdict and
        logical accounting are identical either way.
        """
        return _verify_schnorr_memo(
            params,
            "witness-commitment",
            (
                "commitment",
                params.group.p,
                witness_public,
                *self.signed_parts(),
                self.signature.e,
                self.signature.s,
            ),
            witness_public,
            self.signature,
            self.signed_parts(),
            claims,
            token,
        )

    def to_wire(self) -> dict[str, object]:
        """Serialize for URI transfer."""
        return {
            "witness_id": self.witness_id,
            "coin_hash": self.coin_hash,
            "nonce": self.nonce,
            "v_hash": self.v_hash,
            "expires_at": self.expires_at,
            "sig_e": self.signature.e,
            "sig_s": self.signature.s,
        }

    @classmethod
    def from_wire(cls, fields: dict[str, str]) -> "WitnessCommitment":
        """Parse URI fields."""
        return cls(
            witness_id=fields["witness_id"],
            coin_hash=text_to_int(fields["coin_hash"]),
            nonce=text_to_int(fields["nonce"]),
            v_hash=text_to_int(fields["v_hash"]),
            expires_at=text_to_int(fields["expires_at"]),
            signature=SchnorrSignature(
                e=text_to_int(fields["sig_e"]), s=text_to_int(fields["sig_s"])
            ),
        )


@dataclass(frozen=True)
class PaymentTranscript:
    """``(C, r1, r2, I_M, date/time, salt_C)`` — the core payment object."""

    coin: Coin
    response: RepresentationResponse
    merchant_id: str
    timestamp: int
    salt: int

    def challenge(self, params: SystemParams) -> int:
        """``d = H0(C, I_M, date/time)`` (one ``Hash``).

        Binding the challenge to the merchant and time means a second
        spend necessarily uses a different ``d``, which is what makes
        extraction possible.
        """
        return params.hashes.H0(*self.coin.hash_parts(), self.merchant_id, self.timestamp)

    def hash_parts(self) -> tuple[HashInput, ...]:
        """Canonical tuple the witness signs in step 5."""
        return (
            "payment-transcript",
            *self.coin.hash_parts(),
            self.response.r1,
            self.response.r2,
            self.merchant_id,
            self.timestamp,
            self.salt,
        )

    def to_wire(self) -> dict[str, object]:
        """Serialize for URI transfer."""
        return {
            "coin": self.coin.to_wire(),
            "r1": self.response.r1,
            "r2": self.response.r2,
            "merchant_id": self.merchant_id,
            "timestamp": self.timestamp,
            "salt": self.salt,
        }

    @classmethod
    def from_wire(cls, fields: dict[str, str]) -> "PaymentTranscript":
        """Parse URI fields."""
        coin_fields = {
            key.removeprefix("coin."): value
            for key, value in fields.items()
            if key.startswith("coin.")
        }
        return cls(
            coin=Coin.from_wire(coin_fields),
            response=RepresentationResponse(
                r1=text_to_int(fields["r1"]), r2=text_to_int(fields["r2"])
            ),
            merchant_id=fields["merchant_id"],
            timestamp=text_to_int(fields["timestamp"]),
            salt=text_to_int(fields["salt"]),
        )


@dataclass(frozen=True)
class SignedTranscript:
    """A payment transcript plus the witness's signature — cashable at the broker."""

    transcript: PaymentTranscript
    witness_signature: SchnorrSignature

    def verify_witness_signature(
        self,
        params: SystemParams,
        witness_public: int,
        claims: "perf.ClaimSet | None" = None,
        token: object = None,
    ) -> bool:
        """Verify ``Sig_{M_C}(payment transcript)`` (one ``Ver``).

        Memoized — the merchant verifies at payment time and the broker
        again at deposit; a cache hit replays the logical ``Ver``.

        Bulk callers pass a :class:`~repro.perf.batch.ClaimSet` and a
        ``token``: a cache *miss* then registers the fast-path recovery
        claim for combined certification, with a recheck that repairs the
        memo entry should the fast path have glitched. Verdict and
        logical accounting are identical either way.
        """
        return _verify_schnorr_memo(
            params,
            "signed-transcript",
            (
                "signed-transcript",
                params.group.p,
                witness_public,
                *self.transcript.hash_parts(),
                self.witness_signature.e,
                self.witness_signature.s,
            ),
            witness_public,
            self.witness_signature,
            self.transcript.hash_parts(),
            claims,
            token,
        )

    def to_wire(self) -> dict[str, object]:
        """Serialize for URI transfer."""
        return {
            "transcript": self.transcript.to_wire(),
            "wsig_e": self.witness_signature.e,
            "wsig_s": self.witness_signature.s,
        }

    @classmethod
    def from_wire(cls, fields: dict[str, str]) -> "SignedTranscript":
        """Parse URI fields."""
        transcript_fields = {
            key.removeprefix("transcript."): value
            for key, value in fields.items()
            if key.startswith("transcript.")
        }
        return cls(
            transcript=PaymentTranscript.from_wire(transcript_fields),
            witness_signature=SchnorrSignature(
                e=text_to_int(fields["wsig_e"]), s=text_to_int(fields["wsig_s"])
            ),
        )


@dataclass(frozen=True)
class DoubleSpendProof:
    """The extracted representations — a public proof of double-spending.

    The witness releases only the secrets, never the earlier transcript, so
    the identity of the merchant where the coin was first spent stays
    hidden (payment protocol requirement 1).
    """

    coin_hash: int
    x: Representation | None
    y: Representation | None

    def verify(self, params: SystemParams, coin: Coin) -> bool:
        """Check the revealed representations open the coin's commitments.

        Costs two ``Exp`` per revealed representation — the "+2 Exp" the
        paper reports for a merchant handling a double-spend.
        """
        if self.x is None and self.y is None:
            return False
        if not constant_time_eq(self.coin_hash, coin.digest(params)):
            return False
        if self.x is not None and not self.x.opens(params.group, coin.bare.commitment_a):
            return False
        if self.y is not None and not self.y.opens(params.group, coin.bare.commitment_b):
            return False
        return True

    @classmethod
    def from_secrets(cls, coin_hash: int, secrets: RepresentationPair) -> "DoubleSpendProof":
        """Build a proof revealing both representations."""
        return cls(coin_hash=coin_hash, x=secrets.x, y=secrets.y)

    def to_wire(self) -> dict[str, object]:
        """Serialize for URI transfer (absent parts encode as empty)."""
        out: dict[str, object] = {"coin_hash": self.coin_hash}
        if self.x is not None:
            out["x1"] = self.x.k1
            out["x2"] = self.x.k2
        if self.y is not None:
            out["y1"] = self.y.k1
            out["y2"] = self.y.k2
        return out

    @classmethod
    def from_wire(cls, fields: dict[str, str]) -> "DoubleSpendProof":
        """Parse URI fields."""
        x = None
        y = None
        if "x1" in fields:
            x = Representation(text_to_int(fields["x1"]), text_to_int(fields["x2"]))
        if "y1" in fields:
            y = Representation(text_to_int(fields["y1"]), text_to_int(fields["y2"]))
        return cls(coin_hash=text_to_int(fields["coin_hash"]), x=x, y=y)


# ----------------------------------------------------------------------
# Shared verification helpers (merchant / witness / broker / arbiter)
# ----------------------------------------------------------------------

def _verify_schnorr_memo(
    params: SystemParams,
    cache_name: str,
    key: tuple[object, ...],
    public_key: int,
    signature: SchnorrSignature,
    message_parts: tuple[HashInput, ...],
    claims: "perf.ClaimSet | None",
    token: object,
) -> bool:
    """Memoized Schnorr verification with optional claim registration.

    Without a claim set this is exactly the old ``verify_memo`` wrapping of
    :func:`repro.crypto.schnorr.verify`. With one, a cache miss runs the
    claim-returning :func:`repro.crypto.schnorr.check` instead and, when
    the fast path accepted, registers the recovery claim under ``token``.
    The recheck re-judges the item naively *and rewrites the memo entry*,
    so a fast-path fault cannot leave a poisoned verdict behind for later
    (non-batched) callers to hit.
    """
    if claims is None or not perf.is_enabled():
        return bool(
            perf.verify_memo(
                cache_name,
                key,
                lambda: schnorr_verify(params.group, public_key, signature, *message_parts),
                ver=1,
            )
        )
    captured: list[perf.CommitmentClaim] = []

    def compute() -> bool:
        ok, claim = schnorr_check(params.group, public_key, signature, *message_parts)
        if claim is not None:
            captured.append(claim)
        return ok

    result = bool(perf.verify_memo(cache_name, key, compute, ver=1))
    if result and captured:

        def recheck() -> bool:
            ok = schnorr_verify(params.group, public_key, signature, *message_parts)
            perf.cache(cache_name).put(key, ok)
            return ok

        claims.add(token, tuple(captured), recheck)
    return result

def verify_commitment_binding(
    params: SystemParams,
    commitment: WitnessCommitment,
    coin: Coin,
    salt: int,
    merchant_id: str,
    witness_public: int,
    now: int,
) -> None:
    """Verify a witness commitment against a coin, salt and merchant.

    Checks, per step 3 of the payment protocol: the commitment covers this
    coin (recomputes the digest: one ``Hash``), the nonce opens to this
    merchant (one ``Hash``), the witness signature verifies (one ``Ver``)
    and the commitment has not expired.

    Raises:
        CommitmentError: on any failure.
    """
    if not constant_time_eq(commitment.coin_hash, coin.digest(params)):
        raise CommitmentError("commitment covers a different coin")
    if not constant_time_eq(commitment.nonce, payment_nonce(params, salt, merchant_id)):
        raise CommitmentError("nonce does not open to this merchant/salt")
    if not commitment.verify(params, witness_public):
        raise CommitmentError("witness signature on commitment failed to verify")
    if now >= commitment.expires_at:
        raise CommitmentError(f"commitment expired at {commitment.expires_at}, now {now}")
    if commitment.witness_id != coin.witness_id:
        raise CommitmentError("commitment issued by a different witness than the coin's")


def verify_payment_response(params: SystemParams, transcript: PaymentTranscript) -> None:
    """Verify the NIZK response: ``A * B^d == g1^r1 * g2^r2``.

    One ``Hash`` (the challenge) plus three ``Exp``.

    Raises:
        InvalidPaymentError: if the representation proof fails.
    """
    d = transcript.challenge(params)
    if not verify_response(
        params.group,
        transcript.coin.bare.commitment_a,
        transcript.coin.bare.commitment_b,
        d,
        transcript.response,
    ):
        raise InvalidPaymentError("representation proof A*B^d == g1^r1*g2^r2 failed")


__all__ = [
    "payment_nonce",
    "CommitmentRequest",
    "WitnessCommitment",
    "PaymentTranscript",
    "SignedTranscript",
    "DoubleSpendProof",
    "verify_commitment_binding",
    "verify_payment_response",
]
