"""Escrowed (trustee-traceable) coins — the Section 3 extension.

The paper's requirements include *"incorporation of escrow mechanisms that
allow tracing the coin owner"* (Section 3, "Usability and Extendibility";
revisited in Section 8: "the accompanying cryptographic protocols can
easily be extended to provide additional functionalities such as escrow
service"). This module provides that extension without disturbing the
plain anonymous coin:

* a **trustee** holds an ElGamal key pair; an *escrowed coin* carries an
  encryption of the owner's registered identity element inside the
  blind-signed message, so the coin remains unlinkable to everyone —
  except the trustee, who can decrypt the tag of any spent coin and hand
  the identity to a court;
* the broker cannot see the tag at issue time (it is blinded), so
  correctness is enforced by **cut-and-choose**: the client prepares ``K``
  candidate coins, the broker demands that ``K-1`` random ones be opened
  completely (blinding factors, coin secrets, encryption randomness) and
  checks each encrypts the registered identity, then signs the one
  remaining candidate. A cheating client slips a bad tag through with
  probability only ``1/K`` — the classic Chaum-Fiat-Naor trade-off the
  paper's reference [12] made, traded here for trustee-only traceability.

Escrowed coins use their own verification equation (the blind-signed
message is ``(A, B, c1, c2)``), and spend with the same representation
NIZK as plain coins.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.core.exceptions import InvalidCoinError, ProtocolViolationError
from repro.core.info import CoinInfo
from repro.core.params import SystemParams
from repro.crypto import blind
from repro.crypto.blind import BlindSession, PartiallyBlindSignature, SignerChallenge
from repro.crypto.elgamal import (
    ElGamalCiphertext,
    ElGamalKeyPair,
    encrypt,
    verify_opening,
)
from repro.crypto.hashing import HashInput
from repro.crypto.numbers import random_scalar
from repro.crypto.representation import RepresentationPair

#: Default cut-and-choose width: a cheater passes with probability 1/K.
DEFAULT_CUT_AND_CHOOSE = 8


@dataclass(frozen=True)
class EscrowedCoin:
    """A coin whose blind-signed message includes the identity tag."""

    signature: PartiallyBlindSignature
    info: CoinInfo
    commitment_a: int
    commitment_b: int
    tag: ElGamalCiphertext

    def message_parts(self) -> tuple[HashInput, ...]:
        """The blind-signed message ``(A, B, c1, c2)``."""
        return (self.commitment_a, self.commitment_b, self.tag.c1, self.tag.c2)

    def verify_signature(self, params: SystemParams, broker_blind_public: int) -> bool:
        """Publicly verify the broker's signature on the escrowed coin."""
        return blind.verify(
            params.group,
            params.hashes,
            broker_blind_public,
            self.info.hash_parts(),
            self.message_parts(),
            self.signature,
        )


@dataclass
class _Candidate:
    """Client-side state for one cut-and-choose candidate."""

    secrets: RepresentationPair
    tag: ElGamalCiphertext
    tag_randomness: int
    session: BlindSession


@dataclass(frozen=True)
class OpenedCandidate:
    """Everything the client reveals when a candidate is challenged."""

    e: int
    t1: int
    t2: int
    t3: int
    t4: int
    commitment_a: int
    commitment_b: int
    tag: ElGamalCiphertext
    tag_randomness: int


@dataclass
class TrusteeService:
    """The escrow trustee: holds the tracing key, answers court orders."""

    params: SystemParams
    keypair: ElGamalKeyPair = field(init=False)
    rng: random.Random | None = None
    traces_performed: int = 0

    def __post_init__(self) -> None:
        self.keypair = ElGamalKeyPair.generate(self.params.group, self.rng)

    @property
    def public_key(self) -> int:
        """The tag-encryption key clients use."""
        return self.keypair.public

    def trace(self, coin: EscrowedCoin) -> int:
        """Decrypt a spent coin's tag to the owner's identity element.

        Only the trustee can do this — the broker and merchants see a
        random-looking ciphertext.
        """
        self.traces_performed += 1
        return self.keypair.decrypt(coin.tag)


@dataclass
class EscrowClientSession:
    """Client-side state of one cut-and-choose escrowed withdrawal."""

    info: CoinInfo
    candidates: list[_Candidate]

    @property
    def blinded_challenges(self) -> list[int]:
        """The ``e_i`` values sent to the broker (one per candidate)."""
        return [candidate.session.e for candidate in self.candidates]

    def open(self, index: int) -> OpenedCandidate:
        """Reveal candidate ``index`` completely for audit."""
        candidate = self.candidates[index]
        session = candidate.session
        t1, t2, t3, t4 = session.blinding_factors()
        return OpenedCandidate(
            e=session.e,
            t1=t1,
            t2=t2,
            t3=t3,
            t4=t4,
            commitment_a=session.message_parts[0],
            commitment_b=session.message_parts[1],
            tag=candidate.tag,
            tag_randomness=candidate.tag_randomness,
        )


def begin_escrowed_withdrawal(
    params: SystemParams,
    trustee_public: int,
    identity: int,
    info: CoinInfo,
    broker_blind_public: int,
    challenges: list[SignerChallenge],
    rng: random.Random | None = None,
) -> EscrowClientSession:
    """Client step: build ``K`` candidates, one per broker challenge.

    Args:
        identity: the client's registered identity element ``I = g^u``.
        challenges: the broker's ``K`` independent ``(a, b)`` pairs.
    """
    candidates = []
    for challenge in challenges:
        secrets = RepresentationPair.generate(params.group, rng)
        commitment_a, commitment_b = secrets.commitments(params.group)
        tag, tag_randomness = encrypt(params.group, trustee_public, identity, rng)
        session = BlindSession.start(
            params.group,
            params.hashes,
            broker_blind_public,
            info.hash_parts(),
            (commitment_a, commitment_b, tag.c1, tag.c2),
            challenge,
            rng,
        )
        candidates.append(
            _Candidate(
                secrets=secrets, tag=tag, tag_randomness=tag_randomness, session=session
            )
        )
    return EscrowClientSession(info=info, candidates=candidates)


def audit_opened_candidate(
    params: SystemParams,
    trustee_public: int,
    broker_blind_public: int,
    registered_identity: int,
    info: CoinInfo,
    challenge: SignerChallenge,
    opened: OpenedCandidate,
) -> None:
    """Broker step: verify one opened candidate top to bottom.

    Checks (a) the tag encrypts the registered identity under the revealed
    randomness, and (b) the blinded challenge ``e`` is consistent with the
    revealed blinding factors, commitments and tag — i.e. the candidate,
    had it been signed, would have unblinded to a well-formed escrowed
    coin for this client.

    Raises:
        ProtocolViolationError: any check fails (the client cheated).
    """
    group, hashes = params.group, params.hashes
    if not verify_opening(
        group, trustee_public, opened.tag, registered_identity, opened.tag_randomness
    ):
        raise ProtocolViolationError("escrow tag does not encrypt the registered identity")
    z = hashes.F(*info.hash_parts())
    alpha = group.mul(
        challenge.a, group.commit2(group.g, opened.t1, broker_blind_public, opened.t2)
    )
    beta = group.mul(challenge.b, group.commit2(group.g, opened.t3, z, opened.t4))
    epsilon = hashes.H(
        alpha,
        beta,
        z,
        opened.commitment_a,
        opened.commitment_b,
        opened.tag.c1,
        opened.tag.c2,
    )
    if opened.e != (epsilon - opened.t2 - opened.t4) % group.q:
        raise ProtocolViolationError("blinded challenge inconsistent with the opening")


@dataclass
class EscrowedWithdrawalResult:
    """Outcome of a completed escrowed withdrawal."""

    coin: EscrowedCoin
    secrets: RepresentationPair


def run_escrowed_withdrawal(
    params: SystemParams,
    signer: "blind.PartiallyBlindSigner",
    trustee: TrusteeService,
    registered_identity: int,
    info: CoinInfo,
    cut_and_choose: int = DEFAULT_CUT_AND_CHOOSE,
    rng: random.Random | None = None,
    cheat_candidate: int | None = None,
    cheat_identity: int | None = None,
) -> EscrowedWithdrawalResult:
    """The full cut-and-choose issuing protocol, run in memory.

    Args:
        signer: the broker's blind signer.
        registered_identity: the identity element the broker has on file.
        cut_and_choose: ``K``; a cheater passes with probability 1/K.
        cheat_candidate / cheat_identity: attack hooks for the tests — the
            client substitutes a tag encrypting ``cheat_identity`` into
            candidate ``cheat_candidate``.

    Raises:
        ProtocolViolationError: an opened candidate failed the audit.
    """
    if cut_and_choose < 2:
        raise ValueError("cut-and-choose needs at least two candidates")
    # Broker step 1: K independent signing sessions.
    sessions = [signer.start(info.hash_parts()) for _ in range(cut_and_choose)]
    challenges = [challenge for challenge, _ in sessions]

    # Client step 2: K candidates.
    client_session = begin_escrowed_withdrawal(
        params,
        trustee.public_key,
        registered_identity,
        info,
        signer.public,
        challenges,
        rng,
    )
    if cheat_candidate is not None:
        _inject_cheating_tag(
            params, trustee.public_key, signer.public, info,
            challenges[cheat_candidate], client_session, cheat_candidate,
            cheat_identity if cheat_identity is not None else params.group.g,
            rng,
        )

    # Broker step 3: challenge all but one random candidate.
    audit_rng = rng if rng is not None else random.Random(random_scalar(params.group.q))
    keep = audit_rng.randrange(cut_and_choose)
    for index in range(cut_and_choose):
        if index == keep:
            continue
        audit_opened_candidate(
            params,
            trustee.public_key,
            signer.public,
            registered_identity,
            info,
            challenges[index],
            client_session.open(index),
        )

    # Broker step 4: sign the surviving candidate; client unblinds.
    chosen = client_session.candidates[keep]
    response = signer.respond(sessions[keep][1], chosen.session.e)
    signature = chosen.session.finish(response)
    coin = EscrowedCoin(
        signature=signature,
        info=info,
        commitment_a=chosen.session.message_parts[0],
        commitment_b=chosen.session.message_parts[1],
        tag=chosen.tag,
    )
    if not coin.verify_signature(params, signer.public):
        raise InvalidCoinError("escrowed coin failed to verify after unblinding")
    return EscrowedWithdrawalResult(coin=coin, secrets=chosen.secrets)


def _inject_cheating_tag(
    params: SystemParams,
    trustee_public: int,
    broker_blind_public: int,
    info: CoinInfo,
    challenge: SignerChallenge,
    client_session: EscrowClientSession,
    index: int,
    fake_identity: int,
    rng: random.Random | None,
) -> None:
    """Test hook: rebuild candidate ``index`` with a tag for a fake identity."""
    secrets = RepresentationPair.generate(params.group, rng)
    commitment_a, commitment_b = secrets.commitments(params.group)
    tag, tag_randomness = encrypt(params.group, trustee_public, fake_identity, rng)
    session = BlindSession.start(
        params.group,
        params.hashes,
        broker_blind_public,
        info.hash_parts(),
        (commitment_a, commitment_b, tag.c1, tag.c2),
        challenge,
        rng,
    )
    client_session.candidates[index] = _Candidate(
        secrets=secrets, tag=tag, tag_randomness=tag_randomness, session=session
    )


__all__ = [
    "DEFAULT_CUT_AND_CHOOSE",
    "EscrowedCoin",
    "OpenedCandidate",
    "TrusteeService",
    "EscrowClientSession",
    "begin_escrowed_withdrawal",
    "audit_opened_candidate",
    "run_escrowed_withdrawal",
    "EscrowedWithdrawalResult",
]
