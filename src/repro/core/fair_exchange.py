"""Optimistic fair exchange of a coin for a digital good.

Section 5 (payment protocol, requirement 3): *"Conflict resolution
mechanisms such as optimistic fair exchange can be incorporated
naturally"*, and later: *"In particular, fair exchange protocols may be
incorporated into the transactions."* This module incorporates one.

The construction rides on the unmodified payment protocol:

1. **Offer** — the merchant signs an offer ``(good_id, price, h(k),
   expiry)`` and serves the good encrypted under ``k``.
2. **Bound payment** — the client runs the ordinary payment protocol but
   derives its transcript salt as ``salt = h("fair-exchange", offer_hash,
   opening)`` for a random ``opening``. The salt is opaque to everyone
   (it already travels in the transcript), yet the client can later
   *prove* this payment was for this offer by revealing ``opening``.
3. **Delivery** — on receiving the witness-signed transcript the merchant
   sends ``k``; the client checks ``h(k)`` against the offer and decrypts.
4. **Dispute (optimistic part)** — only if the merchant withholds or
   mis-delivers ``k`` does the arbiter wake up: the client submits the
   offer, the payment transcript and the opening; the arbiter checks the
   binding and the witness's spend record, then either extracts ``k``
   from the merchant or orders a refund out of the merchant's funds at
   the broker.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass

from repro.core.broker import Broker
from repro.core.client import Client, PendingPayment, StoredCoin
from repro.core.exceptions import InvalidPaymentError, ProtocolViolationError
from repro.core.params import SystemParams
from repro.core.transcripts import CommitmentRequest, PaymentTranscript, payment_nonce
from repro.core.witness import WitnessService
from repro.crypto.hashing import HashInput, constant_time_eq
from repro.crypto.numbers import random_bits
from repro.crypto.schnorr import SchnorrKeyPair, SchnorrSignature, verify as schnorr_verify


# ----------------------------------------------------------------------
# Symmetric encryption of the good (SHA-256 keystream)
# ----------------------------------------------------------------------

def _keystream(key: int, length: int) -> bytes:
    blocks = []
    counter = 0
    key_bytes = key.to_bytes(32, "big")
    while sum(len(b) for b in blocks) < length:
        blocks.append(
            hashlib.sha256(b"fx-stream/" + key_bytes + counter.to_bytes(8, "big")).digest()
        )
        counter += 1
    return b"".join(blocks)[:length]


def encrypt_good(key: int, good: bytes) -> bytes:
    """Encrypt a digital good under ``k`` (XOR with a SHA-256 keystream)."""
    stream = _keystream(key, len(good))
    return bytes(a ^ b for a, b in zip(good, stream))


def decrypt_good(key: int, blob: bytes) -> bytes:
    """Inverse of :func:`encrypt_good`."""
    return encrypt_good(key, blob)


# ----------------------------------------------------------------------
# Offers and binding
# ----------------------------------------------------------------------

@dataclass(frozen=True)
class Offer:
    """A merchant's signed sale offer."""

    merchant_id: str
    good_id: str
    price: int
    key_commitment: int
    expires_at: int
    signature: SchnorrSignature

    def signed_parts(self) -> tuple[HashInput, ...]:
        """The tuple the merchant signs."""
        return (
            "fx-offer",
            self.merchant_id,
            self.good_id,
            self.price,
            self.key_commitment,
            self.expires_at,
        )

    def verify(self, params: SystemParams, merchant_public: int) -> bool:
        """Verify the merchant's signature."""
        return schnorr_verify(params.group, merchant_public, self.signature, *self.signed_parts())

    def digest(self, params: SystemParams) -> int:
        """``h(offer)`` — what payments bind to."""
        return params.hashes.h(*self.signed_parts())


def make_offer(
    params: SystemParams,
    merchant_keypair: SchnorrKeyPair,
    merchant_id: str,
    good_id: str,
    price: int,
    good: bytes,
    now: int,
    lifetime: int = 3600,
    rng=None,
) -> tuple[Offer, bytes, int]:
    """Merchant step 1: create an offer, the encrypted good, and ``k``."""
    key = random_bits(256, rng)
    key_commitment = params.hashes.h("fx-key", key)
    expires_at = now + lifetime
    signature = merchant_keypair.sign(
        "fx-offer", merchant_id, good_id, price, key_commitment, expires_at, rng=rng
    )
    offer = Offer(
        merchant_id=merchant_id,
        good_id=good_id,
        price=price,
        key_commitment=key_commitment,
        expires_at=expires_at,
        signature=signature,
    )
    return offer, encrypt_good(key, good), key


def bound_salt(params: SystemParams, offer_digest: int, opening: int) -> int:
    """The fair-exchange salt: ``h("fair-exchange", offer_hash, opening)``."""
    return params.hashes.h("fair-exchange", offer_digest, opening)


def prepare_bound_payment(
    params: SystemParams,
    client: Client,
    stored: StoredCoin,
    offer: Offer,
    now: int,
) -> tuple[CommitmentRequest, PendingPayment, int]:
    """Client step 2a: commitment request with an offer-bound salt.

    Returns the request, the pending-payment state and the ``opening``
    the client must retain for any later dispute.

    Raises:
        ExpiredCoinError: the coin is past its soft expiry.
    """
    stored.coin.ensure_spendable(now)
    opening = random_bits(128, client.rng)
    salt = bound_salt(params, offer.digest(params), opening)
    coin_hash = stored.coin.digest(params)
    nonce = payment_nonce(params, salt, offer.merchant_id)
    request = CommitmentRequest(coin_hash=coin_hash, nonce=nonce)
    pending = PendingPayment(
        stored=stored,
        merchant_id=offer.merchant_id,
        salt=salt,
        coin_hash=coin_hash,
        nonce=nonce,
    )
    return request, pending, opening


def verify_binding(
    params: SystemParams,
    transcript: PaymentTranscript,
    offer: Offer,
    opening: int,
) -> bool:
    """Check a transcript was bound to an offer (reveal-the-opening proof)."""
    return constant_time_eq(
        transcript.salt, bound_salt(params, offer.digest(params), opening)
    ) and (transcript.merchant_id == offer.merchant_id)


def verify_delivered_key(params: SystemParams, offer: Offer, key: int) -> bool:
    """Client step 3: check the delivered ``k`` opens the offer commitment."""
    return constant_time_eq(params.hashes.h("fx-key", key), offer.key_commitment)


# ----------------------------------------------------------------------
# Dispute resolution
# ----------------------------------------------------------------------

class FxResolution(enum.Enum):
    """Arbiter outcomes."""

    KEY_RELEASED = "key-released"
    CLIENT_REFUNDED = "client-refunded"
    CLAIM_REJECTED = "claim-rejected"


@dataclass(frozen=True)
class FxDispute:
    """Everything the client submits when the merchant withholds the key."""

    offer: Offer
    transcript: PaymentTranscript
    opening: int
    encrypted_good: bytes


@dataclass
class FairExchangeArbiter:
    """The optimistic third party: offline until a dispute arrives.

    Args:
        params: system parameters.
        broker: used to execute refunds against merchant funds.
    """

    params: SystemParams
    broker: Broker
    disputes_resolved: int = 0

    def resolve(
        self,
        dispute: FxDispute,
        merchant_public: int,
        witness: WitnessService,
        merchant_key: int | None,
        refund_account: str,
        now: int,
    ) -> tuple[FxResolution, int | None]:
        """Adjudicate a withheld-key dispute.

        Checks, in order: the offer signature, the payment-offer binding,
        the payment's own validity, and that the coin's witness actually
        saw the spend. Then demands the key from the merchant
        (``merchant_key`` models its answer; ``None`` = unresponsive or
        refusing): a valid key is released to the client; otherwise the
        client is refunded the price from the merchant's funds at the
        broker (revenue first, security deposit as backstop).

        Returns:
            ``(resolution, key_or_None)``.
        """
        self.disputes_resolved += 1
        if not dispute.offer.verify(self.params, merchant_public):
            return (FxResolution.CLAIM_REJECTED, None)
        if not verify_binding(self.params, dispute.transcript, dispute.offer, dispute.opening):
            return (FxResolution.CLAIM_REJECTED, None)
        try:
            from repro.core.transcripts import verify_payment_response

            verify_payment_response(self.params, dispute.transcript)
        except InvalidPaymentError:
            return (FxResolution.CLAIM_REJECTED, None)
        if not witness.has_seen(dispute.transcript.coin.digest(self.params)):
            # No spend on record: the client never actually paid.
            return (FxResolution.CLAIM_REJECTED, None)

        if merchant_key is not None and verify_delivered_key(
            self.params, dispute.offer, merchant_key
        ):
            return (FxResolution.KEY_RELEASED, merchant_key)

        self._refund(dispute.offer, refund_account)
        return (FxResolution.CLIENT_REFUNDED, None)

    def _refund(self, offer: Offer, refund_account: str) -> None:
        """Move the price back to the client from the merchant's funds."""
        ledger = self.broker.ledger
        revenue = f"revenue:{offer.merchant_id}"
        escrow = f"deposit:{offer.merchant_id}"
        source = revenue if ledger.balance(revenue) >= offer.price else escrow
        if ledger.balance(source) < offer.price:
            raise ProtocolViolationError(
                f"merchant {offer.merchant_id!r} has no funds left to refund from"
            )
        ledger.transfer(source, refund_account, offer.price, memo="fair-exchange refund")


__all__ = [
    "Offer",
    "make_offer",
    "encrypt_good",
    "decrypt_good",
    "bound_salt",
    "prepare_bound_payment",
    "verify_binding",
    "verify_delivered_key",
    "FxResolution",
    "FxDispute",
    "FairExchangeArbiter",
]
