"""Broker and witness state persistence over the durable store.

Section 3: the broker is "a dedicated (but not necessarily on-line)
server" — it goes down, restarts, and must come back with its signing
keys, merchant registry, witness tables and (critically) its deposit and
renewal databases intact: forgetting a deposited coin would let the same
coin be cashed twice across a restart. The witnesses carry the same
burden for their commitment and spent-coin tables.

This module maps that state onto the :mod:`repro.store` space schema and
provides two ways to use it:

* **Whole-state snapshots** — :func:`save_broker` / :func:`load_broker`
  keep the original single-JSON-file interface (now covering *all*
  broker state, including in-flight withdrawal tickets, batch tickets,
  the witness-fault log and the full ledger history);
* **Journaling** — :func:`attach_journal` /
  :func:`attach_witness_journal` hook a live :class:`Broker` /
  :class:`WitnessService` to a :class:`~repro.store.Store` so every
  mutation is appended to the write-ahead log *before* the mutating
  method returns (journal-before-acknowledge), and
  :func:`attach_broker_store` replays snapshot+WAL back into a broker
  after a crash.

State is serialized to JSON using the same wire codecs as the network
layer, so a stored transcript is byte-identical to a transmitted one.
The files contain the broker's SECRET keys; a deployment would encrypt
them at rest — key management is out of scope here, as it is in the
paper.

Space schema (``spaces`` marked with * shard by coin-hash prefix):

========================  =====================================================
space                     contents
========================  =====================================================
``meta``                  account name, both secret keys, version/ticket ctrs
``merchants``             one record per registered merchant
``tables``                one record per published witness table version
``deposits`` *            cleared deposits, keyed by hex coin digest
``renewals`` *            renewal transcripts, keyed by hex coin digest
``tickets``               in-flight withdrawal/renewal sessions
``batches``               in-flight batch-withdrawal sessions
``ledger``                every ledger movement, keyed by zero-padded sequence
``faults``                the witness-fault log, keyed by sequence
``commitments:<id>`` *    a witness's outstanding commitments
``spent:<id>`` *          a witness's spent-coin records
``witness:<id>``          a witness's counters (``signed_count``)
========================  =====================================================

Ledger balances, ``minted`` and ``burned`` are not stored — they are
rebuilt by replaying the journaled history through the real ledger
methods, so the persisted form cannot drift from the arithmetic.
"""

from __future__ import annotations

import itertools
import json
from contextlib import AbstractContextManager
from pathlib import Path
from typing import TYPE_CHECKING

from repro.core.bank import Ledger
from repro.core.broker import (
    Broker,
    MerchantAccount,
    _DepositRecord,
    _RenewalRecord,
    _WithdrawalTicket,
)
from repro.core.coin import BareCoin
from repro.core.params import SystemParams
from repro.core.transcripts import DoubleSpendProof, PaymentTranscript, SignedTranscript, WitnessCommitment
from repro.core.witness import WitnessService, _CommitmentRecord, _SpentRecord
from repro.core.witness_ranges import SignedWitnessEntry, WitnessAssignmentTable
from repro.crypto import counters
from repro.crypto.blind import PartiallyBlindSigner, SignerSession
from repro.crypto.representation import RepresentationResponse
from repro.crypto.schnorr import SchnorrKeyPair
from repro.crypto.serialize import int_to_text, text_to_int

if TYPE_CHECKING:
    from repro.store import RecoveryStats, Store

STATE_VERSION = 2

#: Zero-padding width for sequence-numbered keys (ledger, faults); keeps
#: lexicographic key order equal to numeric order in every backend.
_SEQ_WIDTH = 12


# ----------------------------------------------------------------------
# Record codecs (store values are JSON; big ints travel as text)
# ----------------------------------------------------------------------

def _seq_key(seq: int) -> str:
    return f"{seq:0{_SEQ_WIDTH}d}"


def _merchant_to_json(account: MerchantAccount) -> dict[str, object]:
    return {
        "public_key": int_to_text(account.public_key),
        "security_deposit": account.security_deposit,
        "coins_witnessed": account.coins_witnessed,
        "incidents": account.incidents,
    }


def _merchant_from_json(merchant_id: str, fields: dict[str, object]) -> MerchantAccount:
    return MerchantAccount(
        merchant_id=merchant_id,
        public_key=text_to_int(str(fields["public_key"])),
        security_deposit=int(fields["security_deposit"]),  # type: ignore[arg-type]
        coins_witnessed=int(fields["coins_witnessed"]),  # type: ignore[arg-type]
        incidents=int(fields["incidents"]),  # type: ignore[arg-type]
    )


def _table_to_json(table: WitnessAssignmentTable) -> dict[str, object]:
    return {
        "space": int_to_text(table.space),
        "entries": [_jsonify(entry.to_wire()) for entry in table.entries],
    }


def _table_from_json(version: int, fields: dict[str, object]) -> WitnessAssignmentTable:
    entries = tuple(
        SignedWitnessEntry.from_wire(_flatten(entry))
        for entry in fields["entries"]  # type: ignore[union-attr]
    )
    return WitnessAssignmentTable(
        version=version, entries=entries, space=text_to_int(str(fields["space"]))
    )


def _deposit_to_json(record: _DepositRecord) -> dict[str, object]:
    return {
        "signed": _jsonify(record.signed.to_wire()),
        "deposited_at": record.deposited_at,
    }


def _deposit_from_json(fields: dict[str, object]) -> _DepositRecord:
    signed = SignedTranscript.from_wire(_flatten(fields["signed"]))
    return _DepositRecord(
        signed=signed, deposited_at=int(fields["deposited_at"])  # type: ignore[arg-type]
    )


def _renewal_to_json(record: _RenewalRecord) -> dict[str, object]:
    return {
        "bare": _jsonify(record.bare.to_wire()),
        "challenge": int_to_text(record.challenge),
        "r1": int_to_text(record.response.r1),
        "r2": int_to_text(record.response.r2),
        "renewed_at": record.renewed_at,
    }


def _renewal_from_json(fields: dict[str, object]) -> _RenewalRecord:
    return _RenewalRecord(
        bare=BareCoin.from_wire(_flatten(fields["bare"])),
        challenge=text_to_int(str(fields["challenge"])),
        response=RepresentationResponse(
            r1=text_to_int(str(fields["r1"])), r2=text_to_int(str(fields["r2"]))
        ),
        renewed_at=int(fields["renewed_at"]),  # type: ignore[arg-type]
    )


def _ticket_to_json(ticket: _WithdrawalTicket) -> dict[str, object]:
    return {
        "info": _jsonify(ticket.info.to_wire()),
        "session": {
            "u": int_to_text(ticket.session.u),
            "s": int_to_text(ticket.session.s),
            "d": int_to_text(ticket.session.d),
            "z": int_to_text(ticket.session.z),
        },
        "paid_by": ticket.paid_by,
    }


def _ticket_from_json(fields: dict[str, object]) -> _WithdrawalTicket:
    from repro.core.info import CoinInfo

    session = fields["session"]  # type: ignore[assignment]
    paid_by = fields["paid_by"]
    return _WithdrawalTicket(
        info=CoinInfo.from_wire(_flatten(fields["info"])),
        session=SignerSession(
            u=text_to_int(str(session["u"])),  # type: ignore[index]
            s=text_to_int(str(session["s"])),  # type: ignore[index]
            d=text_to_int(str(session["d"])),  # type: ignore[index]
            z=text_to_int(str(session["z"])),  # type: ignore[index]
        ),
        paid_by=None if paid_by is None else str(paid_by),
    )


def _fault_to_json(
    entry: tuple[str, SignedTranscript, SignedTranscript]
) -> dict[str, object]:
    witness_id, first, second = entry
    return {
        "witness_id": witness_id,
        "first": _jsonify(first.to_wire()),
        "second": _jsonify(second.to_wire()),
    }


def _fault_from_json(
    fields: dict[str, object]
) -> tuple[str, SignedTranscript, SignedTranscript]:
    return (
        str(fields["witness_id"]),
        SignedTranscript.from_wire(_flatten(fields["first"])),
        SignedTranscript.from_wire(_flatten(fields["second"])),
    )


def _ledger_entry_to_json(entry: tuple[str, str, str, int]) -> dict[str, object]:
    source, destination, memo, amount = entry
    return {"src": source, "dst": destination, "memo": memo, "amount": amount}


def _v_to_json(v: tuple[object, ...]) -> list[dict[str, object]]:
    parts: list[dict[str, object]] = []
    for part in v:
        if isinstance(part, bool):  # bool is an int subclass; keep it out
            raise TypeError("unexpected committed value part: bool")
        if isinstance(part, int):
            parts.append({"kind": "int", "value": int_to_text(part)})
        elif isinstance(part, str):
            parts.append({"kind": "str", "value": part})
        elif isinstance(part, bytes):
            parts.append({"kind": "bytes", "value": part.hex()})
        else:
            raise TypeError(f"unexpected committed value part {part!r}")
    return parts


def _v_from_json(parts: list[dict[str, object]]) -> tuple[object, ...]:
    out: list[object] = []
    for part in parts:
        kind = part["kind"]
        value = str(part["value"])
        if kind == "int":
            out.append(text_to_int(value))
        elif kind == "str":
            out.append(value)
        elif kind == "bytes":
            out.append(bytes.fromhex(value))
        else:
            raise ValueError(f"unknown committed value kind {kind!r}")
    return tuple(out)


def _commitment_to_json(record: _CommitmentRecord) -> dict[str, object]:
    return {
        "commitment": _jsonify(record.commitment.to_wire()),
        "v": _v_to_json(record.v),
    }


def _commitment_from_json(fields: dict[str, object]) -> _CommitmentRecord:
    return _CommitmentRecord(
        commitment=WitnessCommitment.from_wire(_flatten(fields["commitment"])),
        v=_v_from_json(fields["v"]),  # type: ignore[arg-type]
    )


def _spent_to_json(record: _SpentRecord) -> dict[str, object]:
    return {
        "transcript": None
        if record.transcript is None
        else _jsonify(record.transcript.to_wire()),
        "salt": None
        if record.transcript_salt is None
        else int_to_text(record.transcript_salt),
        "proof": None if record.proof is None else _jsonify(record.proof.to_wire()),
    }


def _spent_from_json(fields: dict[str, object]) -> _SpentRecord:
    transcript = fields["transcript"]
    salt = fields["salt"]
    proof = fields["proof"]
    return _SpentRecord(
        transcript=None
        if transcript is None
        else PaymentTranscript.from_wire(_flatten(transcript)),
        transcript_salt=None if salt is None else text_to_int(str(salt)),
        proof=None if proof is None else DoubleSpendProof.from_wire(_flatten(proof)),
    )


# ----------------------------------------------------------------------
# Whole-state dump / restore
# ----------------------------------------------------------------------

def _bare_key(bare: BareCoin, params: SystemParams) -> str:
    """Hex coin digest — the storage key and shard-routing prefix.

    Suppressed: persistence bookkeeping must not perturb the Table 1
    operation counts the protocol tests assert.
    """
    with counters.suppressed():
        return f"{bare.digest(params):x}"


def _meta_record(broker: Broker) -> dict[str, object]:
    """The ``meta`` singleton: account, keys, counters.

    A tiny constant-size record, built directly — the journal re-writes
    it on every counter advance (ticket opened, table published), so it
    must never require serializing the broker's accumulated state.
    """
    return {
        "account": broker.account,
        "blind_secret": int_to_text(broker._signer._secret),
        "sign_secret": int_to_text(broker._sign_key.secret),
        "next_version": broker._next_version,
        "next_ticket": _peek_ticket_counter(broker),
    }


def broker_spaces(broker: Broker) -> dict[str, dict[str, object]]:
    """The broker's complete logical state in the store space schema."""
    params = broker.params
    spaces: dict[str, dict[str, object]] = {
        "meta": _meta_record(broker),
        "merchants": {
            merchant_id: _merchant_to_json(account)
            for merchant_id, account in broker.merchants.items()
        },
        "tables": {
            str(version): _table_to_json(table)
            for version, table in broker.tables.items()
        },
        "deposits": {
            _bare_key(bare, params): _deposit_to_json(record)
            for bare, record in broker._deposits.items()
        },
        "renewals": {
            _bare_key(bare, params): _renewal_to_json(record)
            for bare, record in broker._renewals.items()
        },
        "tickets": {
            str(ticket_id): _ticket_to_json(ticket)
            for ticket_id, ticket in broker._tickets.items()
        },
        "batches": {
            str(ticket_id): [_ticket_to_json(ticket) for ticket in batch]
            for ticket_id, batch in broker._batch_tickets.items()
        },
        "ledger": {
            _seq_key(seq): _ledger_entry_to_json(entry)
            for seq, entry in enumerate(broker.ledger.history)
        },
        "faults": {
            _seq_key(seq): _fault_to_json(entry)
            for seq, entry in enumerate(broker.witness_fault_log)
        },
    }
    return {space: table for space, table in spaces.items() if table or space == "meta"}


def restore_broker(broker: Broker, spaces: dict[str, dict[str, object]]) -> None:
    """Rebuild a broker's state in place from a space-schema dump.

    In-place (rather than returning a fresh broker) so that everything
    already holding a reference — simulation dispatchers, invariant
    checkers, daemon registries — observes the recovered state.

    Raises:
        ValueError: the dump has no ``meta`` space (not broker state).
    """
    meta = spaces.get("meta")
    if not meta:
        raise ValueError("broker state dump has no 'meta' space")
    params = broker.params

    broker.account = str(meta["account"])
    broker._signer = PartiallyBlindSigner(
        params.group, params.hashes, secret=text_to_int(str(meta["blind_secret"]))
    )
    sign_secret = text_to_int(str(meta["sign_secret"]))
    with counters.suppressed():
        sign_public = pow(params.group.g, sign_secret, params.group.p)
    broker._sign_key = SchnorrKeyPair(
        group=params.group, secret=sign_secret, public=sign_public
    )
    broker._next_version = int(meta["next_version"])  # type: ignore[arg-type]
    broker._ticket_ids = itertools.count(int(meta["next_ticket"]))  # type: ignore[arg-type]

    broker.merchants.clear()
    for merchant_id, fields in spaces.get("merchants", {}).items():
        broker.merchants[merchant_id] = _merchant_from_json(
            merchant_id, fields  # type: ignore[arg-type]
        )

    broker.tables.clear()
    for version_text, fields in spaces.get("tables", {}).items():
        broker.tables[int(version_text)] = _table_from_json(
            int(version_text), fields  # type: ignore[arg-type]
        )

    broker._deposits.clear()
    for fields in spaces.get("deposits", {}).values():
        record = _deposit_from_json(fields)  # type: ignore[arg-type]
        broker._deposits[record.signed.transcript.coin.bare] = record

    broker._renewals.clear()
    for fields in spaces.get("renewals", {}).values():
        record = _renewal_from_json(fields)  # type: ignore[arg-type]
        broker._renewals[record.bare] = record

    broker._tickets.clear()
    for ticket_text, fields in spaces.get("tickets", {}).items():
        broker._tickets[int(ticket_text)] = _ticket_from_json(
            fields  # type: ignore[arg-type]
        )

    broker._batch_tickets.clear()
    for ticket_text, batch_fields in spaces.get("batches", {}).items():
        broker._batch_tickets[int(ticket_text)] = [
            _ticket_from_json(fields) for fields in batch_fields  # type: ignore[union-attr]
        ]

    broker.witness_fault_log.clear()
    for key in sorted(spaces.get("faults", {})):
        broker.witness_fault_log.append(
            _fault_from_json(spaces["faults"][key])  # type: ignore[arg-type]
        )

    _replay_ledger(broker.ledger, spaces.get("ledger", {}))


def _replay_ledger(ledger: Ledger, entries: dict[str, object]) -> None:
    """Rebuild balances/minted/burned by replaying journaled movements.

    The journal callback is detached during replay so restoration never
    re-journals its own input.
    """
    callback = ledger.on_entry
    ledger.on_entry = None
    try:
        ledger.accounts.clear()
        ledger.minted = 0
        ledger.burned = 0
        ledger.history.clear()
        for key in sorted(entries):
            fields = entries[key]
            source = str(fields["src"])  # type: ignore[index]
            destination = str(fields["dst"])  # type: ignore[index]
            memo = str(fields["memo"])  # type: ignore[index]
            amount = int(fields["amount"])  # type: ignore[index]
            if source == "<external>":
                ledger.mint(destination, amount, memo=memo)
            elif destination == "<external>":
                ledger.burn(source, amount, memo=memo)
            else:
                ledger.transfer(source, destination, amount, memo=memo)
    finally:
        ledger.on_entry = callback


def _peek_ticket_counter(broker: Broker) -> int:
    """Read the next ticket id without consuming it."""
    peeked = next(broker._ticket_ids)
    broker._ticket_ids = itertools.count(peeked)
    return peeked


def witness_spaces(witness: WitnessService) -> dict[str, dict[str, object]]:
    """A witness's commitment/spent tables in the store space schema."""
    identity = witness.merchant_id
    return {
        f"commitments:{identity}": {
            f"{coin_hash:x}": _commitment_to_json(record)
            for coin_hash, record in witness._commitments.items()
        },
        f"spent:{identity}": {
            f"{coin_hash:x}": _spent_to_json(record)
            for coin_hash, record in witness._spent.items()
        },
        f"witness:{identity}": {"signed_count": witness.signed_count},
    }


def restore_witness(
    witness: WitnessService, spaces: dict[str, dict[str, object]]
) -> None:
    """Rebuild a witness's tables in place from a space-schema dump."""
    identity = witness.merchant_id
    witness._commitments.clear()
    for key, fields in spaces.get(f"commitments:{identity}", {}).items():
        witness._commitments[int(key, 16)] = _commitment_from_json(
            fields  # type: ignore[arg-type]
        )
    witness._spent.clear()
    for key, fields in spaces.get(f"spent:{identity}", {}).items():
        witness._spent[int(key, 16)] = _spent_from_json(fields)  # type: ignore[arg-type]
    meta = spaces.get(f"witness:{identity}", {})
    witness.signed_count = int(meta.get("signed_count", 0))  # type: ignore[arg-type]


# ----------------------------------------------------------------------
# Single-file snapshots (the original interface, now gap-free)
# ----------------------------------------------------------------------

def save_broker(broker: Broker, path: str | Path) -> None:
    """Serialize the full broker state (including secrets) to JSON."""
    state = {"version": STATE_VERSION, "spaces": broker_spaces(broker)}
    Path(path).write_text(json.dumps(state, indent=1, sort_keys=True))


def load_broker(path: str | Path, params: SystemParams) -> Broker:
    """Restore a broker (and its ledger) from :func:`save_broker` output.

    Raises:
        ValueError: unsupported state-file version.
    """
    state = json.loads(Path(path).read_text())
    if state.get("version") != STATE_VERSION:
        raise ValueError(f"unsupported broker state version {state.get('version')!r}")
    with counters.suppressed():
        broker = Broker(params)
    restore_broker(broker, state["spaces"])
    return broker


# ----------------------------------------------------------------------
# Journaling over a durable store
# ----------------------------------------------------------------------

class BrokerJournal:
    """Mirrors every broker mutation into a :class:`~repro.store.Store`.

    Hook methods are invoked by :class:`Broker` after each in-memory
    mutation and *before* the mutating method returns. Each hook runs
    inside a :meth:`Store.operation` scope, whose commit (WAL fsync plus
    commit marker) is the durability point — journal-before-acknowledge.
    When the broker opens an :meth:`operation` scope around a whole
    protocol step, the hooks it fires *join* that scope, so everything
    the step journals — ledger movements included — commits atomically:
    recovery replays all of it or none of it, never a prefix.
    """

    def __init__(self, broker: Broker, store: "Store") -> None:
        self.broker = broker
        self.store = store

    def operation(self) -> "AbstractContextManager[None]":
        """One atomic durability unit (see :meth:`Store.operation`)."""
        return self.store.operation()

    # -- hooks (called from Broker) ------------------------------------
    def record_meta(self) -> None:
        """Journal the key/counter singleton after a counter advance."""
        with self.store.operation():
            self._put_meta()

    def record_merchant(self, account: MerchantAccount) -> None:
        """Journal one merchant record (registration or counters)."""
        with self.store.operation():
            self.store.put(
                "merchants", account.merchant_id, _merchant_to_json(account)
            )

    def record_table(self, table: WitnessAssignmentTable) -> None:
        """Journal a newly published witness table and the version counter."""
        with self.store.operation():
            self.store.put("tables", str(table.version), _table_to_json(table))
            self._put_meta()

    def record_ticket(self, ticket_id: int, ticket: _WithdrawalTicket) -> None:
        """Journal an opened withdrawal/renewal session."""
        with self.store.operation():
            self.store.put("tickets", str(ticket_id), _ticket_to_json(ticket))
            self._put_meta()

    def drop_ticket(self, ticket_id: int) -> None:
        """Journal the close of a withdrawal/renewal session."""
        with self.store.operation():
            self.store.delete("tickets", str(ticket_id))

    def record_batch(self, ticket_id: int, batch: list[_WithdrawalTicket]) -> None:
        """Journal an opened batch-withdrawal session."""
        with self.store.operation():
            self.store.put(
                "batches", str(ticket_id), [_ticket_to_json(ticket) for ticket in batch]
            )
            self._put_meta()

    def drop_batch(self, ticket_id: int) -> None:
        """Journal the close of a batch-withdrawal session."""
        with self.store.operation():
            self.store.delete("batches", str(ticket_id))

    def record_deposit(self, bare: BareCoin, record: _DepositRecord) -> None:
        """Journal a cleared deposit before the merchant is told."""
        with self.store.operation():
            self.store.put(
                "deposits", _bare_key(bare, self.broker.params), _deposit_to_json(record)
            )

    def record_renewal(self, record: _RenewalRecord) -> None:
        """Journal a renewal transcript before the response is sent."""
        with self.store.operation():
            self.store.put(
                "renewals",
                _bare_key(record.bare, self.broker.params),
                _renewal_to_json(record),
            )

    def record_fault(
        self, seq: int, entry: tuple[str, SignedTranscript, SignedTranscript]
    ) -> None:
        """Journal one witness-fault log entry."""
        with self.store.operation():
            self.store.put("faults", _seq_key(seq), _fault_to_json(entry))

    def drop_record(self, space: str, bare: BareCoin) -> None:
        """Journal a purge of one deposit/renewal record."""
        with self.store.operation():
            self.store.delete(space, _bare_key(bare, self.broker.params))

    def on_ledger_entry(self, seq: int, entry: tuple[str, str, str, int]) -> None:
        """Journal one ledger movement (wired to :attr:`Ledger.on_entry`).

        Inside a broker operation scope this joins it — the movement
        commits together with the records of the step that caused it;
        a ledger movement outside any scope commits on its own.
        """
        with self.store.operation():
            self.store.put("ledger", _seq_key(seq), _ledger_entry_to_json(entry))

    # -- bulk -----------------------------------------------------------
    def write_baseline(self) -> None:
        """Journal the broker's entire current state (initial attach)."""
        with self.store.operation():
            spaces = broker_spaces(self.broker)
            for space, table in spaces.items():
                if space == "meta":
                    self.store.put("meta", "state", table)
                    continue
                for key, value in table.items():
                    self.store.put(space, key, value)

    def _put_meta(self) -> None:
        self.store.put("meta", "state", _meta_record(self.broker))


class WitnessJournal:
    """Mirrors a witness's table mutations into a store (same contract
    as :class:`BrokerJournal`: each hook is one atomic
    :meth:`Store.operation`, committed before the method returns).
    """

    def __init__(self, witness: WitnessService, store: "Store") -> None:
        self.witness = witness
        self.store = store
        self._commit_space = f"commitments:{witness.merchant_id}"
        self._spent_space = f"spent:{witness.merchant_id}"
        self._meta_space = f"witness:{witness.merchant_id}"

    def record_commitment(self, coin_hash: int, record: _CommitmentRecord) -> None:
        """Journal an issued commitment."""
        with self.store.operation():
            self.store.put(
                self._commit_space, f"{coin_hash:x}", _commitment_to_json(record)
            )

    def drop_commitment(self, coin_hash: int) -> None:
        """Journal a consumed or expired commitment."""
        with self.store.operation():
            self.store.delete(self._commit_space, f"{coin_hash:x}")

    def record_spent(self, coin_hash: int, record: _SpentRecord) -> None:
        """Journal a spent-coin record (first spend or extracted proof).

        The spent record (sharded by coin hash) and the signer counter
        (pinned to shard 0) commit as one unit.
        """
        with self.store.operation():
            self.store.put(self._spent_space, f"{coin_hash:x}", _spent_to_json(record))
            self.store.put(self._meta_space, "signed_count", self.witness.signed_count)

    def drop_spent(self, coin_hash: int) -> None:
        """Journal a purged spent-coin record."""
        with self.store.operation():
            self.store.delete(self._spent_space, f"{coin_hash:x}")

    def write_baseline(self) -> None:
        """Journal the witness's entire current tables (initial attach)."""
        with self.store.operation():
            for space, table in witness_spaces(self.witness).items():
                for key, value in table.items():
                    self.store.put(space, key, value)


def attach_journal(broker: Broker, store: "Store", *, baseline: bool = True) -> BrokerJournal:
    """Journal every future mutation of ``broker`` into ``store``.

    Args:
        broker: the live broker.
        store: an opened (and, if pre-existing, recovered) store.
        baseline: also journal the broker's *current* state first, so a
            store attached mid-life starts complete. Pass ``False`` when
            the store's contents were just restored into the broker.
    """
    journal = BrokerJournal(broker, store)
    broker.journal = journal
    broker.ledger.on_entry = journal.on_ledger_entry
    if baseline:
        journal.write_baseline()
    return journal


def attach_witness_journal(
    witness: WitnessService, store: "Store", *, baseline: bool = True
) -> WitnessJournal:
    """Journal every future mutation of ``witness``'s tables into ``store``."""
    journal = WitnessJournal(witness, store)
    witness.journal = journal
    if baseline:
        journal.write_baseline()
    return journal


def reconcile_broker(broker: Broker) -> list[str]:
    """Cross-check a recovered broker's ledger against its deposit records.

    Every deposit/witness-fault record is created alongside exactly one
    ``"coin deposit"`` ledger credit, inside the same atomic store
    operation; purging expired records removes records but never ledger
    history. The checkable invariant is therefore one-directional:

        ``len(deposits) + len(faults) <= count(memo == "coin deposit")``

    A violation means a transcript record was journaled without its
    funding movement — exactly the half-journaled state atomic commit
    exists to prevent — and the recovered state must not be trusted.

    Returns:
        Problem descriptions (empty when the invariant holds).
    """
    credits = sum(
        1 for _src, _dst, memo, _amount in broker.ledger.history
        if memo == "coin deposit"
    )
    records = len(broker._deposits) + len(broker.witness_fault_log)
    problems: list[str] = []
    if records > credits:
        problems.append(
            f"{records} deposit/witness-fault record(s) but only {credits} "
            "'coin deposit' ledger credit(s) — a transcript record was "
            "journaled without its funding movement"
        )
    if not broker.ledger.conserved():
        problems.append(
            "recovered ledger does not conserve money "
            f"(minted={broker.ledger.minted} burned={broker.ledger.burned})"
        )
    return problems


def _reconcile_or_raise(broker: Broker) -> None:
    problems = reconcile_broker(broker)
    if problems:
        from repro.store import StoreCorruptError

        raise StoreCorruptError(
            "recovered broker state failed reconciliation: " + "; ".join(problems)
        )


def attach_broker_store(broker: Broker, store: "Store") -> "RecoveryStats":
    """Recover a store, restore its state into ``broker``, start journaling.

    The one call a restarting daemon (or chaos scenario) makes: replays
    snapshot + WAL, and — when the store holds broker state — rebuilds
    the broker in place from it (reconciling the recovered ledger against
    the deposit records before trusting it); a fresh store instead gets
    the broker's current state as its baseline. Either way the broker
    journals every subsequent mutation.

    Returns:
        The recovery statistics (all-zero for a brand-new store).

    Raises:
        StoreCorruptError: the recovered state failed reconciliation.
    """
    stats = store.recover()
    spaces = store.dump()
    meta = spaces.get("meta", {}).get("state")
    if meta is not None:
        restore_broker(broker, {**spaces, "meta": meta})  # type: ignore[dict-item]
        _reconcile_or_raise(broker)
        attach_journal(broker, store, baseline=False)
    else:
        attach_journal(broker, store, baseline=True)
    return stats


def load_broker_from_store(store: "Store", params: SystemParams) -> Broker:
    """Recover a store and build a fresh broker from its contents.

    Raises:
        ValueError: the store holds no broker state.
        StoreCorruptError: the recovered state failed reconciliation.
    """
    with counters.suppressed():
        broker = Broker(params)
    store.recover()
    spaces = store.dump()
    meta = spaces.get("meta", {}).get("state")
    if meta is None:
        raise ValueError("store holds no broker state")
    restore_broker(broker, {**spaces, "meta": meta})  # type: ignore[dict-item]
    _reconcile_or_raise(broker)
    return broker


# ----------------------------------------------------------------------
# JSON helpers shared with the wire codecs
# ----------------------------------------------------------------------

def _jsonify(wire: dict[str, object]) -> dict[str, object]:
    out: dict[str, object] = {}
    for key, value in wire.items():
        if isinstance(value, dict):
            out[key] = _jsonify(value)
        elif isinstance(value, int):
            out[key] = int_to_text(value)
        else:
            out[key] = value
    return out


def _flatten(data: object, prefix: str = "") -> dict[str, str]:
    if not isinstance(data, dict):
        raise ValueError("malformed broker state entry")
    out: dict[str, str] = {}
    for key, value in data.items():
        full_key = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(_flatten(value, full_key))
        else:
            out[full_key] = str(value)
    return out


__all__ = [
    "BrokerJournal",
    "STATE_VERSION",
    "WitnessJournal",
    "attach_broker_store",
    "attach_journal",
    "attach_witness_journal",
    "broker_spaces",
    "load_broker",
    "load_broker_from_store",
    "reconcile_broker",
    "restore_broker",
    "restore_witness",
    "save_broker",
    "witness_spaces",
]
