"""Broker state persistence.

Section 3: the broker is "a dedicated (but not necessarily on-line)
server" — it goes down, restarts, and must come back with its signing
keys, merchant registry, witness tables and (critically) its deposit and
renewal databases intact: forgetting a deposited coin would let the same
coin be cashed twice across a restart.

State is serialized to JSON using the same wire codecs as the network
layer, so a stored transcript is byte-identical to a transmitted one.
The file contains the broker's SECRET keys; a deployment would encrypt it
at rest — key management is out of scope here, as it is in the paper.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.bank import Ledger
from repro.core.broker import Broker, MerchantAccount, _DepositRecord, _RenewalRecord
from repro.core.coin import BareCoin
from repro.core.params import SystemParams
from repro.core.transcripts import SignedTranscript
from repro.core.witness_ranges import SignedWitnessEntry, WitnessAssignmentTable
from repro.crypto.blind import PartiallyBlindSigner
from repro.crypto.representation import RepresentationResponse
from repro.crypto.schnorr import SchnorrKeyPair
from repro.crypto.serialize import int_to_text, text_to_int

STATE_VERSION = 1


def save_broker(broker: Broker, path: str | Path) -> None:
    """Serialize the full broker state (including secrets) to JSON."""
    state = {
        "version": STATE_VERSION,
        "account": broker.account,
        "keys": {
            "blind_secret": int_to_text(broker._signer._secret),
            "sign_secret": int_to_text(broker._sign_key.secret),
        },
        "next_version": broker._next_version,
        "merchants": {
            merchant_id: {
                "public_key": int_to_text(account.public_key),
                "security_deposit": account.security_deposit,
                "coins_witnessed": account.coins_witnessed,
                "incidents": account.incidents,
            }
            for merchant_id, account in broker.merchants.items()
        },
        "tables": {
            str(version): {
                "space": int_to_text(table.space),
                "entries": [_jsonify(entry.to_wire()) for entry in table.entries],
            }
            for version, table in broker.tables.items()
        },
        "deposits": [
            {
                "signed": _jsonify(record.signed.to_wire()),
                "deposited_at": record.deposited_at,
            }
            for record in broker._deposits.values()
        ],
        "renewals": [
            {
                "bare": _jsonify(record.bare.to_wire()),
                "challenge": int_to_text(record.challenge),
                "r1": int_to_text(record.response.r1),
                "r2": int_to_text(record.response.r2),
                "renewed_at": record.renewed_at,
            }
            for record in broker._renewals.values()
        ],
        "ledger": {
            "minted": broker.ledger.minted,
            "burned": broker.ledger.burned,
            "accounts": {
                name: account.balance for name, account in broker.ledger.accounts.items()
            },
        },
    }
    Path(path).write_text(json.dumps(state, indent=1))


def load_broker(path: str | Path, params: SystemParams) -> Broker:
    """Restore a broker (and its ledger) from :func:`save_broker` output.

    Raises:
        ValueError: unsupported state-file version.
    """
    state = json.loads(Path(path).read_text())
    if state.get("version") != STATE_VERSION:
        raise ValueError(f"unsupported broker state version {state.get('version')!r}")

    ledger = Ledger()
    ledger.minted = state["ledger"]["minted"]
    ledger.burned = state["ledger"]["burned"]
    for name, balance in state["ledger"]["accounts"].items():
        ledger.open_account(name).balance = balance

    broker = Broker(params, ledger=ledger, broker_account=state["account"])
    broker._signer = PartiallyBlindSigner(
        params.group, params.hashes, secret=text_to_int(state["keys"]["blind_secret"])
    )
    sign_secret = text_to_int(state["keys"]["sign_secret"])
    from repro.crypto import counters

    with counters.suppressed():
        sign_public = pow(params.group.g, sign_secret, params.group.p)
    broker._sign_key = SchnorrKeyPair(
        group=params.group, secret=sign_secret, public=sign_public
    )
    broker._next_version = state["next_version"]

    for merchant_id, fields in state["merchants"].items():
        broker.merchants[merchant_id] = MerchantAccount(
            merchant_id=merchant_id,
            public_key=text_to_int(fields["public_key"]),
            security_deposit=fields["security_deposit"],
            coins_witnessed=fields["coins_witnessed"],
            incidents=fields["incidents"],
        )

    for version_text, table_state in state["tables"].items():
        entries = tuple(
            SignedWitnessEntry.from_wire(_flatten(entry))
            for entry in table_state["entries"]
        )
        broker.tables[int(version_text)] = WitnessAssignmentTable(
            version=int(version_text),
            entries=entries,
            space=text_to_int(table_state["space"]),
        )

    for record in state["deposits"]:
        signed = SignedTranscript.from_wire(_flatten(record["signed"]))
        broker._deposits[signed.transcript.coin.bare] = _DepositRecord(
            signed=signed, deposited_at=record["deposited_at"]
        )

    for record in state["renewals"]:
        bare = BareCoin.from_wire(_flatten(record["bare"]))
        broker._renewals[bare] = _RenewalRecord(
            bare=bare,
            challenge=text_to_int(record["challenge"]),
            response=RepresentationResponse(
                r1=text_to_int(record["r1"]), r2=text_to_int(record["r2"])
            ),
            renewed_at=record["renewed_at"],
        )

    return broker


def _jsonify(wire: dict[str, object]) -> dict[str, object]:
    out: dict[str, object] = {}
    for key, value in wire.items():
        if isinstance(value, dict):
            out[key] = _jsonify(value)
        elif isinstance(value, int):
            out[key] = int_to_text(value)
        else:
            out[key] = value
    return out


def _flatten(data: object, prefix: str = "") -> dict[str, str]:
    if not isinstance(data, dict):
        raise ValueError("malformed broker state entry")
    out: dict[str, str] = {}
    for key, value in data.items():
        full_key = f"{prefix}.{key}" if prefix else key
        if isinstance(value, dict):
            out.update(_flatten(value, full_key))
        else:
            out[full_key] = str(value)
    return out


__all__ = ["save_broker", "load_broker", "STATE_VERSION"]
