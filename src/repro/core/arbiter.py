"""Third-party conflict resolution.

The paper repeatedly appeals to arbitration: *"in case of problems, all
communication transcripts can be submitted to a third party for resolution,
which can decide who has violated the protocols"* (Section 5) and leaves
the verification "a routine exercise" (Section 6). This module is that
routine exercise, made executable. The arbiter holds no secrets — every
judgment uses only public keys and submitted transcripts.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.core.coin import Coin
from repro.core.exceptions import CommitmentError, InvalidPaymentError
from repro.core.params import SystemParams
from repro.core.transcripts import (
    DoubleSpendProof,
    PaymentTranscript,
    SignedTranscript,
    WitnessCommitment,
    verify_payment_response,
)
from repro.core.witness_ranges import verify_entry_matches
from repro.crypto.hashing import encode_for_hash


class Verdict(enum.Enum):
    """Who the arbiter finds at fault."""

    NO_VIOLATION = "no-violation"
    CLIENT_DOUBLE_SPENT = "client-double-spent"
    WITNESS_VIOLATED = "witness-violated"
    MERCHANT_VIOLATED = "merchant-violated"
    PROOF_INVALID = "proof-invalid"


@dataclass(frozen=True)
class Judgment:
    """An arbitration outcome with a human-readable explanation."""

    verdict: Verdict
    reason: str


@dataclass(frozen=True)
class Arbiter:
    """A stateless third-party judge.

    Args:
        params: system parameters.
        broker_blind_public: the broker's coin-signature key.
        broker_sign_public: the broker's plain signature key.
    """

    params: SystemParams
    broker_blind_public: int
    broker_sign_public: int

    def judge_double_spend_claim(self, coin: Coin, proof: DoubleSpendProof) -> Judgment:
        """Decide whether a double-spend refusal was justified.

        A valid proof — representations that open the coin's ``A``/``B`` —
        convicts the client; anything else means the refusing party had no
        evidence.
        """
        if proof.verify(self.params, coin):
            return Judgment(
                verdict=Verdict.CLIENT_DOUBLE_SPENT,
                reason="revealed representations open the coin's commitments",
            )
        return Judgment(
            verdict=Verdict.PROOF_INVALID,
            reason="revealed values do not open the coin's commitments",
        )

    def judge_conflicting_transcripts(
        self,
        witness_public: int,
        first: SignedTranscript,
        second: SignedTranscript,
    ) -> Judgment:
        """Decide the Algorithm 3 case 2-b dispute.

        Two valid witness signatures on transcripts of the same coin at
        *different* merchants convict the witness; at the *same* merchant,
        the depositing merchant is at fault (it replayed its own deposit).
        """
        if first.transcript.coin.bare != second.transcript.coin.bare:
            return Judgment(
                verdict=Verdict.NO_VIOLATION,
                reason="transcripts concern different coins",
            )
        for signed in (first, second):
            if not signed.verify_witness_signature(self.params, witness_public):
                return Judgment(
                    verdict=Verdict.PROOF_INVALID,
                    reason="a submitted witness signature does not verify",
                )
        if first.transcript.merchant_id == second.transcript.merchant_id:
            if (
                first.transcript.timestamp == second.transcript.timestamp
                and first.transcript.response == second.transcript.response
            ):
                return Judgment(
                    verdict=Verdict.NO_VIOLATION,
                    reason="the two submissions are the same transcript",
                )
            return Judgment(
                verdict=Verdict.MERCHANT_VIOLATED,
                reason="same merchant obtained two signatures for one coin",
            )
        return Judgment(
            verdict=Verdict.WITNESS_VIOLATED,
            reason="witness signed the same coin for two merchants",
        )

    def judge_commitment_race(
        self,
        witness_public: int,
        commitment: WitnessCommitment,
        revealed_v: tuple[object, ...],
        refusal: DoubleSpendProof,
        coin: Coin,
    ) -> Judgment:
        """Decide the Section 5 race-condition dispute.

        A merchant held a commitment, yet the witness refused with a
        double-spend proof. The witness must reveal the committed ``v``:
        if ``v`` contains neither a prior transcript nor the secrets, the
        witness promised a fresh coin and then claimed otherwise — a
        protocol violation. (A witness that committed *after* the first
        spend has a ``v`` recording that spend, so the refusal stands.)

        Raises:
            CommitmentError: the commitment signature itself is invalid.
        """
        if not commitment.verify(self.params, witness_public):
            raise CommitmentError("submitted commitment is not validly signed")
        if self.params.hashes.h(*_coerce_v(revealed_v)) != commitment.v_hash:
            return Judgment(
                verdict=Verdict.WITNESS_VIOLATED,
                reason="revealed v does not match the committed h(v)",
            )
        tag = revealed_v[0] if revealed_v else None
        if tag == "fresh":
            if refusal.verify(self.params, coin):
                # The commitment promised an unseen coin, yet the witness
                # produced the secrets: it signed a conflicting transcript
                # after committing.
                return Judgment(
                    verdict=Verdict.WITNESS_VIOLATED,
                    reason="witness committed to a fresh coin then claimed double-spend",
                )
            return Judgment(
                verdict=Verdict.PROOF_INVALID,
                reason="refusal proof is invalid and the coin was fresh",
            )
        if tag in ("salted-transcript", "secrets"):
            if refusal.verify(self.params, coin):
                return Judgment(
                    verdict=Verdict.CLIENT_DOUBLE_SPENT,
                    reason="coin was already spent before the commitment",
                )
            return Judgment(
                verdict=Verdict.PROOF_INVALID,
                reason="witness had evidence but produced an invalid proof",
            )
        return Judgment(
            verdict=Verdict.WITNESS_VIOLATED,
            reason=f"committed value has unknown form {tag!r}",
        )

    def judge_payment_transcript(self, transcript: PaymentTranscript) -> Judgment:
        """Re-run the public checks on a disputed payment transcript."""
        coin = transcript.coin
        try:
            coin.ensure_valid_signature(self.params, self.broker_blind_public)
            verify_entry_matches(
                self.params,
                self.broker_sign_public,
                coin.witness_entry,
                coin.digest(self.params),
                coin.info.list_version,
            )
            verify_payment_response(self.params, transcript)
        except InvalidPaymentError as error:
            return Judgment(verdict=Verdict.MERCHANT_VIOLATED, reason=str(error))
        except Exception as error:  # noqa: BLE001 - any check failure is decisive
            return Judgment(verdict=Verdict.PROOF_INVALID, reason=str(error))
        return Judgment(verdict=Verdict.NO_VIOLATION, reason="transcript verifies")


def _coerce_v(v: tuple[object, ...]) -> tuple[int | str | bytes, ...]:
    out: list[int | str | bytes] = []
    for part in v:
        if isinstance(part, (int, str, bytes)):
            out.append(part)
        else:
            out.append(encode_for_hash(str(part)))
    return tuple(out)


__all__ = ["Arbiter", "Judgment", "Verdict"]
