"""The paper's primary contribution: witness-based anonymous e-cash.

Public API map:

* Parameters — :func:`repro.core.params.default_params`,
  :func:`repro.core.params.test_params`.
* Parties — :class:`repro.core.broker.Broker`,
  :class:`repro.core.client.Client`, :class:`repro.core.merchant.Merchant`,
  :class:`repro.core.witness.WitnessService`,
  :class:`repro.core.arbiter.Arbiter`.
* Objects — :class:`repro.core.coin.Coin`,
  :class:`repro.core.transcripts.PaymentTranscript`, ...
* Orchestration — :mod:`repro.core.protocols` (in-memory) and
  :class:`repro.core.system.EcashSystem` (one-call deployment).
"""

from repro.core.arbiter import Arbiter, Judgment, Verdict
from repro.core.bank import Ledger
from repro.core.broker import Broker, DepositOutcome, DepositResult
from repro.core.client import Client, StoredCoin, Wallet
from repro.core.coin import BareCoin, Coin
from repro.core.exceptions import (
    CommitmentError,
    CommitmentOutstandingError,
    DoubleDepositError,
    DoubleSpendError,
    EcashError,
    ExpiredCoinError,
    InsufficientFundsError,
    InvalidCoinError,
    InvalidPaymentError,
    ProtocolViolationError,
    RenewalRefusedError,
    ServiceUnavailableError,
    UnknownMerchantError,
    WrongWitnessError,
)
from repro.core.escrow import EscrowedCoin, TrusteeService, run_escrowed_withdrawal
from repro.core.fair_exchange import FairExchangeArbiter, Offer, make_offer
from repro.core.incentives import FeeCollectingBroker, FeePolicy
from repro.core.info import CoinInfo, standard_info
from repro.core.merchant import Merchant, PaymentRequest
from repro.core.multiwitness import MultiWitnessCoin, MultiWitnessService, spend_multi
from repro.core.params import SystemParams, default_params, test_params
from repro.core.persistence import load_broker, save_broker
from repro.core.protocols import (
    run_batch_withdrawal,
    run_deposit,
    run_payment,
    run_renewal,
    run_withdrawal,
)
from repro.core.system import EcashSystem, MerchantNode
from repro.core.transcripts import (
    CommitmentRequest,
    DoubleSpendProof,
    PaymentTranscript,
    SignedTranscript,
    WitnessCommitment,
)
from repro.core.witness import WitnessService
from repro.core.witness_ranges import (
    SignedWitnessEntry,
    WitnessAssignmentTable,
    WitnessRange,
)

__all__ = [
    "Arbiter",
    "Judgment",
    "Verdict",
    "Ledger",
    "Broker",
    "DepositOutcome",
    "DepositResult",
    "Client",
    "StoredCoin",
    "Wallet",
    "BareCoin",
    "Coin",
    "CoinInfo",
    "standard_info",
    "Merchant",
    "PaymentRequest",
    "SystemParams",
    "default_params",
    "test_params",
    "run_batch_withdrawal",
    "run_deposit",
    "run_payment",
    "run_renewal",
    "run_withdrawal",
    "EscrowedCoin",
    "TrusteeService",
    "run_escrowed_withdrawal",
    "FairExchangeArbiter",
    "Offer",
    "make_offer",
    "FeeCollectingBroker",
    "FeePolicy",
    "MultiWitnessCoin",
    "MultiWitnessService",
    "spend_multi",
    "load_broker",
    "save_broker",
    "EcashSystem",
    "MerchantNode",
    "CommitmentRequest",
    "DoubleSpendProof",
    "PaymentTranscript",
    "SignedTranscript",
    "WitnessCommitment",
    "WitnessService",
    "SignedWitnessEntry",
    "WitnessAssignmentTable",
    "WitnessRange",
    # exceptions
    "EcashError",
    "CommitmentError",
    "CommitmentOutstandingError",
    "DoubleDepositError",
    "DoubleSpendError",
    "ExpiredCoinError",
    "InsufficientFundsError",
    "InvalidCoinError",
    "InvalidPaymentError",
    "ProtocolViolationError",
    "RenewalRefusedError",
    "ServiceUnavailableError",
    "UnknownMerchantError",
    "WrongWitnessError",
]
